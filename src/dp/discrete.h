// Discrete differentially-private primitives used by ablations and
// available to downstream users:
//
//   * ExponentialMechanism — selects an index with probability
//     proportional to exp(eps * utility / (2 * sensitivity)).
//   * randomized_response  — classic eps-LDP bit release.
//   * GeometricMechanism   — two-sided geometric (discrete Laplace) noise
//     for integer counts, the natural DP primitive for frequency vectors.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"

namespace poiprivacy::dp {

class ExponentialMechanism {
 public:
  /// `sensitivity` is the utility function's sensitivity.
  ExponentialMechanism(double epsilon, double sensitivity);

  /// Index sampled with probability proportional to
  /// exp(eps * utility[i] / (2 * sensitivity)). Requires nonempty input.
  std::size_t select(std::span<const double> utilities,
                     common::Rng& rng) const;

  /// Selection probabilities (for tests and analysis).
  std::vector<double> probabilities(std::span<const double> utilities) const;

 private:
  double epsilon_;
  double sensitivity_;
};

/// eps-LDP randomized response for one bit: answers truthfully with
/// probability e^eps / (e^eps + 1).
bool randomized_response(bool truth, double epsilon, common::Rng& rng);

/// Unbiased population-frequency estimator for randomized response:
/// given the observed positive fraction, invert the perturbation.
double randomized_response_estimate(double observed_fraction, double epsilon);

class GeometricMechanism {
 public:
  /// eps-DP for integer-valued queries with the given L1 sensitivity.
  GeometricMechanism(double epsilon, std::int64_t sensitivity);

  /// value + two-sided geometric noise with parameter
  /// alpha = exp(-eps / sensitivity).
  std::int64_t perturb(std::int64_t value, common::Rng& rng) const;

  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
};

}  // namespace poiprivacy::dp
