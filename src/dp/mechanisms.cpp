#include "dp/mechanisms.h"

#include <cmath>
#include <stdexcept>

namespace poiprivacy::dp {

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity) {
  if (epsilon <= 0.0 || sensitivity <= 0.0) {
    throw std::invalid_argument("laplace: epsilon and sensitivity must be > 0");
  }
  scale_ = sensitivity / epsilon;
}

double LaplaceMechanism::perturb(double value, common::Rng& rng) const {
  return value + rng.laplace(scale_);
}

double GaussianMechanism::calibrated_sigma(PrivacyParams params,
                                           double sensitivity) {
  if (params.epsilon <= 0.0 || params.delta <= 0.0 || params.delta >= 1.0) {
    throw std::invalid_argument(
        "gaussian: requires epsilon > 0 and delta in (0, 1)");
  }
  if (sensitivity < 0.0) {
    throw std::invalid_argument("gaussian: sensitivity must be >= 0");
  }
  return std::sqrt(2.0 * std::log(1.25 / params.delta)) * sensitivity /
         params.epsilon;
}

GaussianMechanism::GaussianMechanism(PrivacyParams params, double sensitivity)
    : sigma_(calibrated_sigma(params, sensitivity)) {}

double GaussianMechanism::perturb(double value, common::Rng& rng) const {
  return sigma_ > 0.0 ? value + rng.normal(0.0, sigma_) : value;
}

PlanarLaplaceMechanism::PlanarLaplaceMechanism(double epsilon_per_km)
    : epsilon_per_km_(epsilon_per_km) {
  if (epsilon_per_km <= 0.0) {
    throw std::invalid_argument("planar laplace: epsilon must be > 0");
  }
}

PlanarLaplaceMechanism PlanarLaplaceMechanism::with_unit(double epsilon,
                                                         double unit_km) {
  if (unit_km <= 0.0) {
    throw std::invalid_argument("planar laplace: unit must be > 0");
  }
  return PlanarLaplaceMechanism(epsilon / unit_km);
}

geo::Point PlanarLaplaceMechanism::perturb(geo::Point location,
                                           common::Rng& rng) const {
  // Radius of the 2-D Laplace density eps^2/(2 pi) exp(-eps r) follows
  // Gamma(shape 2, rate eps); the angle is uniform.
  const double radius = rng.gamma2(epsilon_per_km_);
  const double theta = rng.uniform(0.0, 2.0 * M_PI);
  return {location.x + radius * std::cos(theta),
          location.y + radius * std::sin(theta)};
}

}  // namespace poiprivacy::dp
