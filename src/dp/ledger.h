// dp::Ledger — the one privacy-accounting engine of the repo.
//
// The codebase used to carry three disjoint accounting stacks: a
// PrivacyAccountant (basic / advanced composition for the eval and
// defense pipelines), a WindowedAccountant (window-level composition
// with budget renewal for the continual-release workloads), and the
// fixed-point AtomicBudgetMeter inside the serving layer's session
// table. The Ledger unifies them behind one API:
//
//   composition POLICY                  charge BACKEND
//   ------------------------------      --------------------------------
//   kBasic                  sums        kExact       double sums, the
//   kAdvancedHeterogeneous  tightest-   (eval/mia)   per-epsilon-group
//                           of(basic,                map — bit-identical
//                           Thm 3.20                 to the historical
//                           per eps                  accountants
//                           group)      kFixedPoint  one packed 64-bit
//   kWindowedRenewal        per-window  (serving)    word, single-CAS
//                           budget that              admission
//                           renews at                (dp/budget.h)
//                           window
//                           boundaries
//
// Tightness guarantee (test-enforced by tests/ledger_property_test):
// the fixed-point backend is never LOOSER than the exact one — costs
// quantize snap-or-ceil and ceilings snap-or-floor (see dp/budget.h),
// so any charge schedule the fixed backend admits, the exact basic
// accountant admits too. Values exact in 1e-6/1e-9 units (every shipped
// policy) snap, keeping the historical byte-identical goldens.
//
// Epoch semantics (kWindowedRenewal): epochs map onto fixed-length
// accounting windows (window_of = epoch / window_epochs); each window
// owns a fresh budget — the w-event-style guarantee where the bound
// holds over any single window, never by overdrawing the current one.
// Under the exact backend every touched window keeps its own
// per-epsilon-group history; under the fixed backend the single meter
// resets when a charge first arrives in a later window (owner-
// synchronized, like AtomicBudgetMeter::reset — the serving layer's
// session table performs the same renewal fleet-wide from
// advance_epoch).
//
// Thread safety: the kFixedPoint backend's would_exceed / try_charge /
// record are lock-free and linearizable per ledger (window transitions
// excepted, see above). The kExact backend is single-threaded by
// design — it backs the deterministic eval/mia paths, which already
// serialize accounting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>

#include "dp/budget.h"
#include "dp/mechanisms.h"

namespace poiprivacy::dp {

enum class LedgerPolicy : std::uint8_t {
  kBasic = 0,              ///< sum of epsilons/deltas vs the ceilings
  kAdvancedHeterogeneous,  ///< tightest-of(basic, Thm 3.20 per eps group)
  kWindowedRenewal,        ///< per-window budget, renewed at boundaries
};

enum class LedgerBackend : std::uint8_t {
  kExact = 0,   ///< double-precision history (eval / mia / defense)
  kFixedPoint,  ///< packed-word AtomicBudgetMeter (serving layer)
};

/// Renewal policy of a windowed ledger: how many epochs share one
/// accounting window, and the per-window epsilon budget that renews at
/// each window boundary (0 = unbounded, pure bookkeeping).
struct WindowPolicy {
  std::size_t window_epochs = 1;
  double epsilon_budget = 0.0;
};

struct LedgerConfig {
  LedgerPolicy policy = LedgerPolicy::kBasic;
  LedgerBackend backend = LedgerBackend::kExact;
  /// Lifetime ceilings for kBasic / kAdvancedHeterogeneous; 0 reads as
  /// unbounded (the historical PrivacyAccountant had no ceiling at all).
  double epsilon_ceiling = 0.0;
  double delta_ceiling = 0.0;
  /// kAdvancedHeterogeneous: slack delta' of the advanced bound; the
  /// composed guarantee is tightest-of(basic, advanced) and the slack
  /// adds to the composed delta. <= 0 degrades to plain basic.
  double advanced_slack = 1e-6;
  /// kWindowedRenewal geometry + per-window budget.
  WindowPolicy window;
};

/// One accounting engine; see the header comment for the policy/backend
/// matrix. Not copyable (the fixed backend embeds an atomic meter).
class Ledger {
 public:
  /// Throws std::invalid_argument on an ill-formed config: zero
  /// window_epochs or negative budget under kWindowedRenewal, or
  /// kAdvancedHeterogeneous over the fixed-point backend (the packed
  /// word cannot carry a per-epsilon-group history).
  explicit Ledger(LedgerConfig config = {});

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  const LedgerConfig& config() const noexcept { return config_; }

  // -- admission ------------------------------------------------------------

  /// Would charging `params` against `epoch` pass the policy's bound?
  /// Never throws: invalid params (eps <= 0, delta outside [0, 1)) can
  /// never be admitted and report true. Under the fixed backend this is
  /// an advisory peek (a concurrent charge can invalidate it); the
  /// authoritative admission check is try_charge. This is THE admission
  /// predicate — every other layer (sessions, serving, streams)
  /// delegates here or to try_charge's equivalent internal check.
  bool would_exceed(PrivacyParams params, std::size_t epoch = 0) const;

  /// Charge-if-admissible: false (charging nothing) when the params are
  /// invalid or the charge would pass the bound. Linearizable under the
  /// fixed backend.
  bool try_charge(PrivacyParams params, std::size_t epoch = 0);

  /// Throwing charge for callers that treat refusal as a logic error:
  /// std::invalid_argument on invalid params, std::runtime_error when
  /// the budget would be exceeded. A rejected charge touches nothing —
  /// windows_touched() counts real releases only.
  void charge(PrivacyParams params, std::size_t epoch = 0);

  /// Unconditional record: validates params (throws) but never budget-
  /// checks — the bookkeeping path for releases performed elsewhere
  /// (e.g. a serving layer that already admitted the request).
  void record(PrivacyParams params, std::size_t epoch = 0);

  // -- lifetime composition -------------------------------------------------

  std::size_t releases() const noexcept;

  /// The composed cost under the configured policy: basic for kBasic /
  /// kWindowedRenewal (lifetime), tightest-of(basic, advanced) for
  /// kAdvancedHeterogeneous. Fixed backend: the quantized basic sums.
  PrivacyParams spent() const;

  /// Componentwise budget left before the lifetime ceilings, clamped at
  /// zero; +infinity for an unbounded ceiling.
  PrivacyParams remaining() const;

  /// Basic composition: exact sums of epsilons and deltas, in charge
  /// order (fixed backend: the quantized sums).
  PrivacyParams basic_composition() const noexcept;

  /// Advanced composition with total slack delta_prime: a homogeneous
  /// history uses Thm 3.20 directly; with G distinct epsilons each
  /// group composes under slack delta_prime / G and the bounds sum.
  /// Throws std::invalid_argument on slack outside (0, 1) and under the
  /// fixed backend (which keeps no per-epsilon history).
  PrivacyParams advanced_composition(double delta_prime) const;

  /// Distinct per-release epsilons recorded so far (exact backend).
  std::size_t epsilon_groups() const noexcept;

  // -- windowed composition (kWindowedRenewal; epoch-indexed) ---------------

  /// The accounting window `epoch` belongs to (epoch / window_epochs —
  /// an epoch exactly on a boundary opens the NEXT window).
  std::size_t window_of(std::size_t epoch) const noexcept {
    return epoch / config_.window.window_epochs;
  }

  /// Windows that have recorded at least one release.
  std::size_t windows_touched() const noexcept { return windows_.size(); }

  /// Basic composition of one window's releases ({0, 0} if untouched).
  PrivacyParams window_composition(std::size_t window) const noexcept;

  /// Advanced composition of one window's releases (Thm 3.20 per eps
  /// group; {0, delta_prime} if untouched).
  PrivacyParams window_advanced_composition(std::size_t window,
                                            double delta_prime) const;

  /// The worst per-window basic composition — the epsilon the renewal
  /// guarantee actually promises per window.
  PrivacyParams peak_window_composition() const noexcept;

  /// Basic composition across every window (the unbounded-stream cost).
  PrivacyParams lifetime_composition() const noexcept;

  // -- fixed-point backend introspection ------------------------------------

  FixedBudget fixed_spent() const noexcept { return meter_.spent(); }
  FixedBudget fixed_ceiling() const noexcept { return fixed_ceiling_; }

 private:
  /// One charge history: exact sums plus the per-epsilon-group map the
  /// advanced bound composes over. The lifetime total and every touched
  /// window each keep one.
  struct Group {
    std::size_t releases = 0;
    double epsilon_sum = 0.0;
    double delta_sum = 0.0;
    std::map<double, std::size_t> by_epsilon;  ///< releases per epsilon

    void add(PrivacyParams params);
    PrivacyParams basic() const noexcept { return {epsilon_sum, delta_sum}; }
    PrivacyParams advanced(double delta_prime) const;
  };

  static bool invalid(PrivacyParams params) noexcept {
    return params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0;
  }

  /// Composed cost of `group` after a hypothetical extra charge, under
  /// the configured composition policy.
  PrivacyParams composed_after(const Group& group, PrivacyParams params) const;
  PrivacyParams composed_of(const Group& group) const;
  bool exceeds_ceilings(PrivacyParams composed) const noexcept;
  void commit_exact(PrivacyParams params, std::size_t epoch);
  /// Fixed backend: renew the meter when `epoch` opened a later window
  /// (owner-synchronized; see the header comment).
  void roll_fixed_window(std::size_t epoch);

  LedgerConfig config_;
  // Exact backend state. total_ is the lifetime history; windows_ holds
  // one history per touched accounting window (kWindowedRenewal; the
  // other policies charge everything to window 0).
  Group total_;
  std::map<std::size_t, Group> windows_;
  // Fixed backend state.
  AtomicBudgetMeter meter_;
  FixedBudget fixed_ceiling_{};
  std::atomic<std::size_t> fixed_window_{0};
  std::atomic<std::size_t> releases_{0};
};

}  // namespace poiprivacy::dp
