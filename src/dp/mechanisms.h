// Differential-privacy mechanisms.
//
//   * LaplaceMechanism       — classic eps-DP additive noise (for ablation).
//   * GaussianMechanism      — (eps, delta)-DP calibrated per the paper's
//     Definition 2: sigma >= sqrt(2 ln(1.25/delta)) * Delta / eps.
//   * PlanarLaplaceMechanism — geo-indistinguishability (Andres et al.,
//     CCS'13): perturbs a 2-D location with density proportional to
//     exp(-eps * dist(l, l')). The radial component is Gamma(2, eps), the
//     angle uniform.
#pragma once

#include "common/rng.h"
#include "geo/geometry.h"

namespace poiprivacy::dp {

/// Privacy parameters for (eps, delta)-DP.
struct PrivacyParams {
  double epsilon = 1.0;
  double delta = 0.0;
};

class LaplaceMechanism {
 public:
  /// `sensitivity` is the L1 sensitivity of the protected function.
  LaplaceMechanism(double epsilon, double sensitivity);

  double perturb(double value, common::Rng& rng) const;
  double scale() const noexcept { return scale_; }

 private:
  double scale_;
};

class GaussianMechanism {
 public:
  /// `sensitivity` is the L2 sensitivity; requires delta in (0, 1).
  GaussianMechanism(PrivacyParams params, double sensitivity);

  double perturb(double value, common::Rng& rng) const;

  /// The calibrated noise standard deviation.
  double sigma() const noexcept { return sigma_; }

  /// sigma for the given parameters without constructing a mechanism.
  static double calibrated_sigma(PrivacyParams params, double sensitivity);

 private:
  double sigma_;
};

class PlanarLaplaceMechanism {
 public:
  /// `epsilon_per_km` is the geo-ind privacy parameter expressed per km.
  /// The paper's experiments use a 100 m distance unit, so its eps = 0.1
  /// corresponds to epsilon_per_km = 1.0 here (eps per unit / unit in km).
  explicit PlanarLaplaceMechanism(double epsilon_per_km);

  geo::Point perturb(geo::Point location, common::Rng& rng) const;

  /// Helper converting the paper's parameterisation (eps per `unit_km`).
  static PlanarLaplaceMechanism with_unit(double epsilon, double unit_km);

 private:
  double epsilon_per_km_;
};

}  // namespace poiprivacy::dp
