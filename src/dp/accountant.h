// Privacy accounting across repeated releases. A user who publishes k
// aggregates through an (eps, delta)-DP mechanism has, by basic
// composition, spent (k*eps, k*delta); advanced composition (Dwork &
// Roth, Thm 3.20) gives the tighter
//   eps' = eps * sqrt(2 k ln(1/delta')) + k eps (e^eps - 1)
// for any extra slack delta'. Mixed-epsilon histories (a session served
// under several release policies) are composed per-epsilon group: each
// group gets Thm 3.20 with an equal share of the slack, and the group
// bounds compose additively.
#pragma once

#include <cstddef>
#include <map>

#include "dp/mechanisms.h"

namespace poiprivacy::dp {

class PrivacyAccountant {
 public:
  /// Records one (eps, delta)-DP release. Throws on nonpositive eps or
  /// delta outside [0, 1).
  void spend(PrivacyParams params);

  std::size_t releases() const noexcept { return releases_; }

  /// Basic composition: sums of epsilons and deltas.
  PrivacyParams basic_composition() const noexcept;

  /// Advanced composition with total slack delta_prime. A homogeneous
  /// history uses Thm 3.20 directly; with G distinct epsilons each group
  /// is composed under slack delta_prime / G and the results summed.
  PrivacyParams advanced_composition(double delta_prime) const;

  /// Number of distinct per-release epsilons recorded so far.
  std::size_t epsilon_groups() const noexcept { return by_epsilon_.size(); }

 private:
  std::size_t releases_ = 0;
  double epsilon_sum_ = 0.0;
  double delta_sum_ = 0.0;
  std::map<double, std::size_t> by_epsilon_;  ///< releases per epsilon
};

}  // namespace poiprivacy::dp
