// Privacy accounting across repeated releases. A user who publishes k
// aggregates through an (eps, delta)-DP mechanism has, by basic
// composition, spent (k*eps, k*delta); advanced composition (Dwork &
// Roth, Thm 3.20) gives the tighter
//   eps' = eps * sqrt(2 k ln(1/delta')) + k eps (e^eps - 1)
// for any extra slack delta'.
#pragma once

#include <cstddef>

#include "dp/mechanisms.h"

namespace poiprivacy::dp {

class PrivacyAccountant {
 public:
  /// Records one (eps, delta)-DP release. Throws on nonpositive eps or
  /// delta outside [0, 1).
  void spend(PrivacyParams params);

  std::size_t releases() const noexcept { return releases_; }

  /// Basic composition: sums of epsilons and deltas.
  PrivacyParams basic_composition() const noexcept;

  /// Advanced composition with slack delta_prime; only valid when every
  /// recorded release used the same epsilon (throws otherwise).
  PrivacyParams advanced_composition(double delta_prime) const;

 private:
  std::size_t releases_ = 0;
  double epsilon_sum_ = 0.0;
  double delta_sum_ = 0.0;
  double common_epsilon_ = -1.0;  ///< -1 until first spend; NaN if mixed
  bool mixed_epsilon_ = false;
};

}  // namespace poiprivacy::dp
