// Privacy accounting across repeated releases. A user who publishes k
// aggregates through an (eps, delta)-DP mechanism has, by basic
// composition, spent (k*eps, k*delta); advanced composition (Dwork &
// Roth, Thm 3.20) gives the tighter
//   eps' = eps * sqrt(2 k ln(1/delta')) + k eps (e^eps - 1)
// for any extra slack delta'. Mixed-epsilon histories (a session served
// under several release policies) are composed per-epsilon group: each
// group gets Thm 3.20 with an equal share of the slack, and the group
// bounds compose additively.
// Window-level composition (WindowedAccountant below) serves the
// continual-release workloads: time is divided into epochs, epochs group
// into fixed-length accounting windows, and the budget renews at every
// window boundary — the standard w-event-style guarantee where the bound
// holds over any single window rather than the unbounded stream.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "dp/mechanisms.h"

namespace poiprivacy::dp {

class PrivacyAccountant {
 public:
  /// Records one (eps, delta)-DP release. Throws on nonpositive eps or
  /// delta outside [0, 1).
  void spend(PrivacyParams params);

  std::size_t releases() const noexcept { return releases_; }

  /// Basic composition: sums of epsilons and deltas.
  PrivacyParams basic_composition() const noexcept;

  /// Advanced composition with total slack delta_prime. A homogeneous
  /// history uses Thm 3.20 directly; with G distinct epsilons each group
  /// is composed under slack delta_prime / G and the results summed.
  PrivacyParams advanced_composition(double delta_prime) const;

  /// Number of distinct per-release epsilons recorded so far.
  std::size_t epsilon_groups() const noexcept { return by_epsilon_.size(); }

 private:
  std::size_t releases_ = 0;
  double epsilon_sum_ = 0.0;
  double delta_sum_ = 0.0;
  std::map<double, std::size_t> by_epsilon_;  ///< releases per epsilon
};

/// Renewal policy of a WindowedAccountant: how many epochs share one
/// accounting window, and the per-window epsilon budget that renews at
/// each window boundary (0 = unbounded, pure bookkeeping).
struct WindowPolicy {
  std::size_t window_epochs = 1;
  double epsilon_budget = 0.0;
};

/// Privacy accounting for periodic aggregate streams: every release is
/// tagged with the epoch it covers, epochs map onto fixed-length windows
/// (window_of), and each window owns its own PrivacyAccountant — so the
/// per-epsilon-group composition machinery above applies per window, and
/// the budget guarantee renews when a window closes. Releases against an
/// untouched window start from a fresh budget; the lifetime_* queries
/// still compose across every window for the unbounded-stream view.
class WindowedAccountant {
 public:
  /// Throws on window_epochs == 0 or a negative budget.
  explicit WindowedAccountant(WindowPolicy policy);

  const WindowPolicy& policy() const noexcept { return policy_; }

  /// The accounting window epoch `epoch` belongs to (epoch / window_epochs
  /// — an epoch exactly on a boundary opens the NEXT window).
  std::size_t window_of(std::size_t epoch) const noexcept {
    return epoch / policy_.window_epochs;
  }

  /// True when charging `epsilon` more to `epoch`'s window would push the
  /// window's basic-composition epsilon past the policy budget. Always
  /// false with an unbounded (0) budget.
  bool would_exceed(std::size_t epoch, double epsilon) const noexcept;

  /// Records one (eps, delta)-DP release against `epoch`'s window.
  /// Throws std::invalid_argument on invalid params (PrivacyAccountant
  /// rules) and std::runtime_error when the window budget would be
  /// exceeded — renewal happens only at window boundaries, never by
  /// overdrawing the current window.
  void spend(std::size_t epoch, PrivacyParams params);

  std::size_t releases() const noexcept { return releases_; }

  /// Windows that have recorded at least one release.
  std::size_t windows_touched() const noexcept { return windows_.size(); }

  /// Basic composition of one window's releases ({0, 0} if untouched).
  PrivacyParams window_composition(std::size_t window) const noexcept;

  /// Advanced composition of one window's releases (Thm 3.20 per epsilon
  /// group; {0, delta_prime} if untouched).
  PrivacyParams window_advanced_composition(std::size_t window,
                                            double delta_prime) const;

  /// The worst per-window basic composition — the epsilon the renewal
  /// guarantee actually promises per window.
  PrivacyParams peak_window_composition() const noexcept;

  /// Basic composition across every window (the unbounded-stream cost).
  PrivacyParams lifetime_composition() const noexcept;

 private:
  WindowPolicy policy_;
  std::size_t releases_ = 0;
  std::map<std::size_t, PrivacyAccountant> windows_;  ///< by window index
};

}  // namespace poiprivacy::dp
