#include "dp/ledger.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace poiprivacy::dp {

namespace {

/// Thm 3.20 epsilon bound for k releases at `eps` with slack delta_prime.
double advanced_epsilon(double eps, double k, double delta_prime) {
  return eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
         k * eps * (std::exp(eps) - 1.0);
}

PrivacyParams tighter(PrivacyParams a, PrivacyParams b) {
  return a.epsilon <= b.epsilon ? a : b;
}

/// A 0 ceiling reads as unbounded; in fixed point that is the saturated
/// word (which any realistic schedule can never fill).
FixedBudget fixed_ceiling_of(double epsilon_ceiling,
                             double delta_ceiling) noexcept {
  FixedBudget ceiling =
      FixedBudget::ceiling_of(epsilon_ceiling, delta_ceiling);
  if (epsilon_ceiling <= 0.0) ceiling.epsilon_units = FixedBudget::kMaxUnits;
  if (delta_ceiling <= 0.0) ceiling.delta_units = FixedBudget::kMaxUnits;
  return ceiling;
}

constexpr FixedBudget kUnboundedFixed{FixedBudget::kMaxUnits,
                                      FixedBudget::kMaxUnits};

}  // namespace

void Ledger::Group::add(PrivacyParams params) {
  ++releases;
  epsilon_sum += params.epsilon;
  delta_sum += params.delta;
  ++by_epsilon[params.epsilon];
}

PrivacyParams Ledger::Group::advanced(double delta_prime) const {
  if (delta_prime <= 0.0 || delta_prime >= 1.0) {
    throw std::invalid_argument("ledger: delta_prime must be in (0, 1)");
  }
  if (releases == 0) return {0.0, delta_prime};
  // Each epsilon group is a k-fold homogeneous composition; the groups
  // then compose additively, with the slack split evenly so the total
  // extra delta stays delta_prime. One group reduces to plain Thm 3.20.
  const double group_slack =
      delta_prime / static_cast<double>(by_epsilon.size());
  double advanced = 0.0;
  for (const auto& [eps, count] : by_epsilon) {
    advanced += advanced_epsilon(eps, static_cast<double>(count), group_slack);
  }
  return {advanced, delta_sum + delta_prime};
}

Ledger::Ledger(LedgerConfig config) : config_(config) {
  if (config_.policy == LedgerPolicy::kWindowedRenewal) {
    if (config_.window.window_epochs == 0) {
      throw std::invalid_argument("ledger: window_epochs must be positive");
    }
    if (config_.window.epsilon_budget < 0.0) {
      throw std::invalid_argument("ledger: epsilon_budget must be nonnegative");
    }
  } else {
    // window_of() divides by window_epochs unconditionally.
    if (config_.window.window_epochs == 0) config_.window.window_epochs = 1;
  }
  if (config_.backend == LedgerBackend::kFixedPoint) {
    if (config_.policy == LedgerPolicy::kAdvancedHeterogeneous) {
      throw std::invalid_argument(
          "ledger: the fixed-point backend keeps no per-epsilon history "
          "and cannot compose the advanced bound");
    }
    fixed_ceiling_ =
        config_.policy == LedgerPolicy::kWindowedRenewal
            ? fixed_ceiling_of(config_.window.epsilon_budget,
                               config_.delta_ceiling)
            : fixed_ceiling_of(config_.epsilon_ceiling, config_.delta_ceiling);
  }
}

PrivacyParams Ledger::composed_of(const Group& group) const {
  const PrivacyParams basic = group.basic();
  if (config_.policy == LedgerPolicy::kAdvancedHeterogeneous &&
      config_.advanced_slack > 0.0 && group.releases > 0) {
    return tighter(basic, group.advanced(config_.advanced_slack));
  }
  return basic;
}

PrivacyParams Ledger::composed_after(const Group& group,
                                     PrivacyParams params) const {
  Group hypothetical = group;
  hypothetical.add(params);
  return composed_of(hypothetical);
}

bool Ledger::exceeds_ceilings(PrivacyParams composed) const noexcept {
  return (config_.epsilon_ceiling > 0.0 &&
          composed.epsilon > config_.epsilon_ceiling) ||
         (config_.delta_ceiling > 0.0 && composed.delta > config_.delta_ceiling);
}

bool Ledger::would_exceed(PrivacyParams params, std::size_t epoch) const {
  if (invalid(params)) return true;  // unadmittable, never chargeable
  if (config_.backend == LedgerBackend::kFixedPoint) {
    // A later window reads as a fresh meter even before a mutator rolls it.
    const FixedBudget used =
        (config_.policy == LedgerPolicy::kWindowedRenewal &&
         window_of(epoch) > fixed_window_.load(std::memory_order_acquire))
            ? FixedBudget{}
            : meter_.spent();
    const FixedBudget cost = FixedBudget::cost_of(params);
    return std::uint64_t{used.epsilon_units} + cost.epsilon_units >
               fixed_ceiling_.epsilon_units ||
           std::uint64_t{used.delta_units} + cost.delta_units >
               fixed_ceiling_.delta_units;
  }
  if (config_.policy == LedgerPolicy::kWindowedRenewal) {
    if (config_.window.epsilon_budget <= 0.0) return false;
    const auto it = windows_.find(window_of(epoch));
    const double spent_eps = it == windows_.end() ? 0.0 : it->second.epsilon_sum;
    return spent_eps + params.epsilon > config_.window.epsilon_budget;
  }
  return exceeds_ceilings(composed_after(total_, params));
}

void Ledger::commit_exact(PrivacyParams params, std::size_t epoch) {
  total_.add(params);
  if (config_.policy == LedgerPolicy::kWindowedRenewal) {
    windows_[window_of(epoch)].add(params);
  }
  releases_.fetch_add(1, std::memory_order_relaxed);
}

void Ledger::roll_fixed_window(std::size_t epoch) {
  if (config_.policy != LedgerPolicy::kWindowedRenewal) return;
  const std::size_t window = window_of(epoch);
  if (window > fixed_window_.load(std::memory_order_relaxed)) {
    // Owner-synchronized, like AtomicBudgetMeter::reset: a renewal is
    // never concurrent with charges to the SAME ledger.
    fixed_window_.store(window, std::memory_order_relaxed);
    meter_.reset();
  }
}

bool Ledger::try_charge(PrivacyParams params, std::size_t epoch) {
  if (invalid(params)) return false;
  if (config_.backend == LedgerBackend::kFixedPoint) {
    roll_fixed_window(epoch);
    if (!meter_.try_charge(FixedBudget::cost_of(params), fixed_ceiling_)) {
      return false;
    }
    releases_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (would_exceed(params, epoch)) return false;
  commit_exact(params, epoch);
  return true;
}

void Ledger::charge(PrivacyParams params, std::size_t epoch) {
  // Validate before touching any state: a rejected charge must not
  // create (or charge) a window, so windows_touched() counts real
  // releases only.
  if (invalid(params)) {
    throw std::invalid_argument(
        "ledger: requires epsilon > 0 and delta in [0, 1)");
  }
  if (!try_charge(params, epoch)) {
    throw std::runtime_error("ledger: budget exhausted");
  }
}

void Ledger::record(PrivacyParams params, std::size_t epoch) {
  if (invalid(params)) {
    throw std::invalid_argument(
        "ledger: requires epsilon > 0 and delta in [0, 1)");
  }
  if (config_.backend == LedgerBackend::kFixedPoint) {
    roll_fixed_window(epoch);
    meter_.try_charge(FixedBudget::cost_of(params), kUnboundedFixed);
    releases_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  commit_exact(params, epoch);
}

std::size_t Ledger::releases() const noexcept {
  return releases_.load(std::memory_order_relaxed);
}

PrivacyParams Ledger::spent() const {
  if (config_.backend == LedgerBackend::kFixedPoint) {
    return meter_.spent().params();
  }
  return composed_of(total_);
}

PrivacyParams Ledger::remaining() const {
  constexpr double kUnbounded = std::numeric_limits<double>::infinity();
  const PrivacyParams used = spent();
  return {config_.epsilon_ceiling > 0.0
              ? std::max(0.0, config_.epsilon_ceiling - used.epsilon)
              : kUnbounded,
          config_.delta_ceiling > 0.0
              ? std::max(0.0, config_.delta_ceiling - used.delta)
              : kUnbounded};
}

PrivacyParams Ledger::basic_composition() const noexcept {
  if (config_.backend == LedgerBackend::kFixedPoint) {
    return meter_.spent().params();
  }
  return total_.basic();
}

PrivacyParams Ledger::advanced_composition(double delta_prime) const {
  if (config_.backend == LedgerBackend::kFixedPoint) {
    throw std::invalid_argument(
        "ledger: the fixed-point backend keeps no per-epsilon history");
  }
  return total_.advanced(delta_prime);
}

std::size_t Ledger::epsilon_groups() const noexcept {
  return total_.by_epsilon.size();
}

PrivacyParams Ledger::window_composition(std::size_t window) const noexcept {
  const auto it = windows_.find(window);
  return it == windows_.end() ? PrivacyParams{0.0, 0.0} : it->second.basic();
}

PrivacyParams Ledger::window_advanced_composition(std::size_t window,
                                                  double delta_prime) const {
  const auto it = windows_.find(window);
  if (it == windows_.end()) return {0.0, delta_prime};
  return it->second.advanced(delta_prime);
}

PrivacyParams Ledger::peak_window_composition() const noexcept {
  PrivacyParams peak{0.0, 0.0};
  for (const auto& [window, group] : windows_) {
    const PrivacyParams composed = group.basic();
    if (composed.epsilon > peak.epsilon) peak = composed;
  }
  return peak;
}

PrivacyParams Ledger::lifetime_composition() const noexcept {
  PrivacyParams total{0.0, 0.0};
  for (const auto& [window, group] : windows_) {
    const PrivacyParams composed = group.basic();
    total.epsilon += composed.epsilon;
    total.delta += composed.delta;
  }
  return total;
}

}  // namespace poiprivacy::dp
