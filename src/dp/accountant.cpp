#include "dp/accountant.h"

#include <cmath>
#include <stdexcept>

namespace poiprivacy::dp {

void PrivacyAccountant::spend(PrivacyParams params) {
  if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
    throw std::invalid_argument(
        "accountant: requires epsilon > 0 and delta in [0, 1)");
  }
  ++releases_;
  epsilon_sum_ += params.epsilon;
  delta_sum_ += params.delta;
  if (common_epsilon_ < 0.0) {
    common_epsilon_ = params.epsilon;
  } else if (common_epsilon_ != params.epsilon) {
    mixed_epsilon_ = true;
  }
}

PrivacyParams PrivacyAccountant::basic_composition() const noexcept {
  return {epsilon_sum_, delta_sum_};
}

PrivacyParams PrivacyAccountant::advanced_composition(
    double delta_prime) const {
  if (delta_prime <= 0.0 || delta_prime >= 1.0) {
    throw std::invalid_argument("accountant: delta_prime must be in (0, 1)");
  }
  if (mixed_epsilon_) {
    throw std::logic_error(
        "accountant: advanced composition requires a uniform epsilon");
  }
  if (releases_ == 0) return {0.0, delta_prime};
  const double eps = common_epsilon_;
  const auto k = static_cast<double>(releases_);
  const double advanced =
      eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
      k * eps * (std::exp(eps) - 1.0);
  return {advanced, delta_sum_ + delta_prime};
}

}  // namespace poiprivacy::dp
