#include "dp/accountant.h"

#include <cmath>
#include <stdexcept>

namespace poiprivacy::dp {

namespace {

/// Thm 3.20 epsilon bound for k releases at `eps` with slack delta_prime.
double advanced_epsilon(double eps, double k, double delta_prime) {
  return eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
         k * eps * (std::exp(eps) - 1.0);
}

}  // namespace

void PrivacyAccountant::spend(PrivacyParams params) {
  if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
    throw std::invalid_argument(
        "accountant: requires epsilon > 0 and delta in [0, 1)");
  }
  ++releases_;
  epsilon_sum_ += params.epsilon;
  delta_sum_ += params.delta;
  ++by_epsilon_[params.epsilon];
}

PrivacyParams PrivacyAccountant::basic_composition() const noexcept {
  return {epsilon_sum_, delta_sum_};
}

PrivacyParams PrivacyAccountant::advanced_composition(
    double delta_prime) const {
  if (delta_prime <= 0.0 || delta_prime >= 1.0) {
    throw std::invalid_argument("accountant: delta_prime must be in (0, 1)");
  }
  if (releases_ == 0) return {0.0, delta_prime};
  // Each epsilon group is a k-fold homogeneous composition; the groups
  // then compose additively, with the slack split evenly so the total
  // extra delta stays delta_prime. One group reduces to plain Thm 3.20.
  const double group_slack =
      delta_prime / static_cast<double>(by_epsilon_.size());
  double advanced = 0.0;
  for (const auto& [eps, count] : by_epsilon_) {
    advanced +=
        advanced_epsilon(eps, static_cast<double>(count), group_slack);
  }
  return {advanced, delta_sum_ + delta_prime};
}

}  // namespace poiprivacy::dp
