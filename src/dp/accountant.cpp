#include "dp/accountant.h"

#include <cmath>
#include <stdexcept>

namespace poiprivacy::dp {

namespace {

/// Thm 3.20 epsilon bound for k releases at `eps` with slack delta_prime.
double advanced_epsilon(double eps, double k, double delta_prime) {
  return eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
         k * eps * (std::exp(eps) - 1.0);
}

}  // namespace

void PrivacyAccountant::spend(PrivacyParams params) {
  if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
    throw std::invalid_argument(
        "accountant: requires epsilon > 0 and delta in [0, 1)");
  }
  ++releases_;
  epsilon_sum_ += params.epsilon;
  delta_sum_ += params.delta;
  ++by_epsilon_[params.epsilon];
}

PrivacyParams PrivacyAccountant::basic_composition() const noexcept {
  return {epsilon_sum_, delta_sum_};
}

PrivacyParams PrivacyAccountant::advanced_composition(
    double delta_prime) const {
  if (delta_prime <= 0.0 || delta_prime >= 1.0) {
    throw std::invalid_argument("accountant: delta_prime must be in (0, 1)");
  }
  if (releases_ == 0) return {0.0, delta_prime};
  // Each epsilon group is a k-fold homogeneous composition; the groups
  // then compose additively, with the slack split evenly so the total
  // extra delta stays delta_prime. One group reduces to plain Thm 3.20.
  const double group_slack =
      delta_prime / static_cast<double>(by_epsilon_.size());
  double advanced = 0.0;
  for (const auto& [eps, count] : by_epsilon_) {
    advanced +=
        advanced_epsilon(eps, static_cast<double>(count), group_slack);
  }
  return {advanced, delta_sum_ + delta_prime};
}

WindowedAccountant::WindowedAccountant(WindowPolicy policy)
    : policy_(policy) {
  if (policy_.window_epochs == 0) {
    throw std::invalid_argument(
        "windowed accountant: window_epochs must be positive");
  }
  if (policy_.epsilon_budget < 0.0) {
    throw std::invalid_argument(
        "windowed accountant: epsilon_budget must be nonnegative");
  }
}

bool WindowedAccountant::would_exceed(std::size_t epoch,
                                      double epsilon) const noexcept {
  if (policy_.epsilon_budget <= 0.0) return false;
  const auto it = windows_.find(window_of(epoch));
  const double spent =
      it == windows_.end() ? 0.0 : it->second.basic_composition().epsilon;
  return spent + epsilon > policy_.epsilon_budget;
}

void WindowedAccountant::spend(std::size_t epoch, PrivacyParams params) {
  // Validate before touching the map: a rejected spend must not create
  // (or charge) the window, so windows_touched() counts real releases.
  if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
    throw std::invalid_argument(
        "windowed accountant: requires epsilon > 0 and delta in [0, 1)");
  }
  if (would_exceed(epoch, params.epsilon)) {
    throw std::runtime_error(
        "windowed accountant: window epsilon budget exhausted");
  }
  windows_[window_of(epoch)].spend(params);
  ++releases_;
}

PrivacyParams WindowedAccountant::window_composition(
    std::size_t window) const noexcept {
  const auto it = windows_.find(window);
  return it == windows_.end() ? PrivacyParams{0.0, 0.0}
                              : it->second.basic_composition();
}

PrivacyParams WindowedAccountant::window_advanced_composition(
    std::size_t window, double delta_prime) const {
  const auto it = windows_.find(window);
  if (it == windows_.end()) return {0.0, delta_prime};
  return it->second.advanced_composition(delta_prime);
}

PrivacyParams WindowedAccountant::peak_window_composition() const noexcept {
  PrivacyParams peak{0.0, 0.0};
  for (const auto& [window, accountant] : windows_) {
    const PrivacyParams composed = accountant.basic_composition();
    if (composed.epsilon > peak.epsilon) peak = composed;
  }
  return peak;
}

PrivacyParams WindowedAccountant::lifetime_composition() const noexcept {
  PrivacyParams total{0.0, 0.0};
  for (const auto& [window, accountant] : windows_) {
    const PrivacyParams composed = accountant.basic_composition();
    total.epsilon += composed.epsilon;
    total.delta += composed.delta;
  }
  return total;
}

}  // namespace poiprivacy::dp
