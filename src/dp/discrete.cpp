#include "dp/discrete.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace poiprivacy::dp {

ExponentialMechanism::ExponentialMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon), sensitivity_(sensitivity) {
  if (epsilon <= 0.0 || sensitivity <= 0.0) {
    throw std::invalid_argument(
        "exponential mechanism: epsilon and sensitivity must be > 0");
  }
}

std::vector<double> ExponentialMechanism::probabilities(
    std::span<const double> utilities) const {
  if (utilities.empty()) {
    throw std::invalid_argument("exponential mechanism: empty utilities");
  }
  // Shift by the max for numerical stability.
  const double max_utility =
      *std::max_element(utilities.begin(), utilities.end());
  std::vector<double> weights;
  weights.reserve(utilities.size());
  double total = 0.0;
  for (const double u : utilities) {
    const double w =
        std::exp(epsilon_ * (u - max_utility) / (2.0 * sensitivity_));
    weights.push_back(w);
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

std::size_t ExponentialMechanism::select(std::span<const double> utilities,
                                         common::Rng& rng) const {
  const std::vector<double> probs = probabilities(utilities);
  return rng.categorical(probs);
}

bool randomized_response(bool truth, double epsilon, common::Rng& rng) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("randomized response: epsilon must be > 0");
  }
  const double p_truth = std::exp(epsilon) / (std::exp(epsilon) + 1.0);
  return rng.bernoulli(p_truth) ? truth : !truth;
}

double randomized_response_estimate(double observed_fraction, double epsilon) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("randomized response: epsilon must be > 0");
  }
  const double p = std::exp(epsilon) / (std::exp(epsilon) + 1.0);
  return (observed_fraction - (1.0 - p)) / (2.0 * p - 1.0);
}

GeometricMechanism::GeometricMechanism(double epsilon,
                                       std::int64_t sensitivity) {
  if (epsilon <= 0.0 || sensitivity <= 0) {
    throw std::invalid_argument(
        "geometric mechanism: epsilon and sensitivity must be > 0");
  }
  alpha_ = std::exp(-epsilon / static_cast<double>(sensitivity));
}

std::int64_t GeometricMechanism::perturb(std::int64_t value,
                                         common::Rng& rng) const {
  // The difference of two iid geometric(1 - alpha) variables on {0,1,...}
  // is exactly the two-sided geometric (discrete Laplace) distribution
  // P[X = k] proportional to alpha^|k|.
  const auto geometric = [this, &rng] {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    return static_cast<std::int64_t>(std::floor(std::log(u) /
                                                std::log(alpha_)));
  };
  return value + geometric() - geometric();
}

}  // namespace poiprivacy::dp
