// Lock-free fixed-point privacy budgets — the admission hot path of the
// serving layer.
//
// dp::Ledger's exact backend composes a user's release history exactly,
// but its admission predicates cost a map copy (and exp/log for the
// advanced bound) per request and need external locking for concurrent
// use. The serving layer's admission decision, however, only needs the
// running basic composition against a fixed ceiling — a pair of bounded
// sums. This header makes that pair a single 64-bit word:
//
//   bits 63..32  charged epsilon, units of 1e-6   (max ~4294 epsilon)
//   bits 31..0   charged delta,   units of 1e-9   (max ~4.29 delta)
//
// so `try_charge` is one compare-and-swap: load the word, add the cost,
// refuse if either component would pass its ceiling, CAS. Admission is
// linearizable — under any interleaving of concurrent charges a user's
// spent budget can never exceed the ceiling, and no mutex is taken.
//
// Quantization contract — conservative by construction (the fixed-point
// tightness half of dp::Ledger's guarantee): costs SNAP-OR-CEIL and
// ceilings SNAP-OR-FLOOR. A value that is exact in 1e-6/1e-9 units up
// to floating-point noise (0.25, 0.5, 1.0, 0.05, ... — every shipped
// policy) snaps to that unit, so those schedules compose bit-identically
// to the double sums; any other value rounds UP as a cost and DOWN as a
// ceiling. Hence for every charge schedule
//
//   sum of unit costs  >=  ceil(true epsilon sum * scale)   (per comp.)
//   unit ceiling       <=  floor(true ceiling * scale)
//
// so whenever the exact basic accountant refuses (true sum + cost >
// ceiling), the fixed path refuses too: the fixed-point backend is
// never LOOSER than the exact one (test-enforced by
// tests/ledger_property_test). Sub-unit values still never quantize to
// free — a positive epsilon charges at least one epsilon unit and a
// positive delta (even the Gaussian 1e-12 floor) at least one delta
// unit.
//
// Composition semantics: the meter is BASIC composition. Where the
// tightest-of(basic, advanced) bound is tighter (many releases at a
// small epsilon), the meter refuses no later than a basic-composition
// accountant would — admission under the meter is never looser than the
// bound it enforces. Advanced composition remains available offline via
// dp::Ledger's exact backend.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "dp/mechanisms.h"

namespace poiprivacy::dp {

/// A privacy budget in fixed point: epsilon in 1e-6 units, delta in 1e-9
/// units. Saturates at the 32-bit ceiling (~4294 epsilon / ~4.29 delta),
/// which reads as "effectively unbounded" for any realistic ceiling.
struct FixedBudget {
  std::uint32_t epsilon_units = 0;
  std::uint32_t delta_units = 0;

  static constexpr double kEpsilonScale = 1e6;
  static constexpr double kDeltaScale = 1e9;
  static constexpr std::uint32_t kMaxUnits = 0xffffffffu;

  /// Snap-or-ceil quantization; a positive component never rounds to
  /// free (costs may only ever over-charge, see the header contract).
  static FixedBudget cost_of(PrivacyParams params) noexcept {
    FixedBudget cost;
    cost.epsilon_units = quantize_up(params.epsilon, kEpsilonScale);
    cost.delta_units = quantize_up(params.delta, kDeltaScale);
    return cost;
  }

  /// Snap-or-floor quantization (ceilings may only ever under-allow).
  static FixedBudget ceiling_of(double epsilon_ceiling,
                                double delta_ceiling) noexcept {
    return {quantize_down(epsilon_ceiling, kEpsilonScale),
            quantize_down(delta_ceiling, kDeltaScale)};
  }

  PrivacyParams params() const noexcept {
    return {static_cast<double>(epsilon_units) / kEpsilonScale,
            static_cast<double>(delta_units) / kDeltaScale};
  }

  friend bool operator==(const FixedBudget&, const FixedBudget&) = default;

 private:
  /// Unit-exact values (llround within a relative 1e-9 of v * scale —
  /// covers the float noise in e.g. 0.1 * 1e6 = 100000.00000000001)
  /// snap to the nearest unit; anything else rounds conservatively.
  static bool snaps(double units, long long nearest) noexcept {
    const double tolerance = 1e-9 * std::max(1.0, units);
    return std::abs(units - static_cast<double>(nearest)) <= tolerance;
  }

  static std::uint32_t quantize_up(double v, double scale) noexcept {
    if (!(v > 0.0)) return 0;
    const double units = v * scale;
    if (units >= static_cast<double>(kMaxUnits)) return kMaxUnits;
    const long long nearest = std::llround(units);
    const long long up = snaps(units, nearest)
                             ? std::max(nearest, 1ll)
                             : static_cast<long long>(std::ceil(units));
    return static_cast<std::uint32_t>(std::max(up, 1ll));
  }

  static std::uint32_t quantize_down(double v, double scale) noexcept {
    if (!(v > 0.0)) return 0;
    const double units = v * scale;
    if (units >= static_cast<double>(kMaxUnits)) return kMaxUnits;
    const long long nearest = std::llround(units);
    const long long down = snaps(units, nearest)
                               ? nearest
                               : static_cast<long long>(std::floor(units));
    return static_cast<std::uint32_t>(std::max(down, 0ll));
  }
};

/// The packed-word ledger for one principal. All operations are lock-free
/// and linearizable; `try_charge` is the only mutator on the hot path.
class AtomicBudgetMeter {
 public:
  /// Charges `cost` unless either component would pass its ceiling.
  /// Returns false (and charges nothing) when the charge would exceed.
  bool try_charge(FixedBudget cost, FixedBudget ceiling) noexcept {
    std::uint64_t seen = word_.load(std::memory_order_relaxed);
    for (;;) {
      const FixedBudget next = add(unpack(seen), cost);
      if (next.epsilon_units > ceiling.epsilon_units ||
          next.delta_units > ceiling.delta_units) {
        return false;
      }
      if (word_.compare_exchange_weak(seen, pack(next),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  FixedBudget spent() const noexcept {
    return unpack(word_.load(std::memory_order_acquire));
  }

  FixedBudget remaining(FixedBudget ceiling) const noexcept {
    const FixedBudget used = spent();
    return {used.epsilon_units >= ceiling.epsilon_units
                ? 0
                : ceiling.epsilon_units - used.epsilon_units,
            used.delta_units >= ceiling.delta_units
                ? 0
                : ceiling.delta_units - used.delta_units};
  }

  /// Budget renewal (TTL eviction / tests). Not linearizable with
  /// concurrent charges by design — callers quiesce first.
  void reset() noexcept { word_.store(0, std::memory_order_release); }

 private:
  static std::uint64_t pack(FixedBudget b) noexcept {
    return (static_cast<std::uint64_t>(b.epsilon_units) << 32) |
           b.delta_units;
  }
  static FixedBudget unpack(std::uint64_t w) noexcept {
    return {static_cast<std::uint32_t>(w >> 32),
            static_cast<std::uint32_t>(w & 0xffffffffu)};
  }
  /// Saturating add: a meter near the 32-bit rim refuses (via the ceiling
  /// check) rather than wrapping.
  static FixedBudget add(FixedBudget a, FixedBudget b) noexcept {
    const std::uint64_t eps = std::uint64_t{a.epsilon_units} + b.epsilon_units;
    const std::uint64_t del = std::uint64_t{a.delta_units} + b.delta_units;
    return {eps > FixedBudget::kMaxUnits
                ? FixedBudget::kMaxUnits
                : static_cast<std::uint32_t>(eps),
            del > FixedBudget::kMaxUnits
                ? FixedBudget::kMaxUnits
                : static_cast<std::uint32_t>(del)};
  }

  std::atomic<std::uint64_t> word_{0};
};

}  // namespace poiprivacy::dp
