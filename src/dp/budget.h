// Lock-free fixed-point privacy budgets — the admission hot path of the
// serving layer.
//
// PrivacyAccountant composes a user's release history exactly, but its
// admission predicates cost a map copy (and exp/log for the advanced
// bound) per request and need external locking for concurrent use. The
// serving layer's admission decision, however, only needs the running
// basic composition against a fixed ceiling — a pair of bounded sums.
// This header makes that pair a single 64-bit word:
//
//   bits 63..32  charged epsilon, units of 1e-6   (max ~4294 epsilon)
//   bits 31..0   charged delta,   units of 1e-9   (max ~4.29 delta)
//
// so `try_charge` is one compare-and-swap: load the word, add the cost,
// refuse if either component would pass its ceiling, CAS. Admission is
// linearizable — under any interleaving of concurrent charges a user's
// spent budget can never exceed the ceiling, and no mutex is taken.
//
// Quantization contract (also the determinism contract with the old
// double-based path): costs and ceilings are rounded to the NEAREST
// unit, so every policy epsilon/delta that is exact in 1e-6/1e-9 units
// (0.25, 0.5, 1.0, 0.05, ...) composes bit-identically to the double
// sums; a policy epsilon below half a unit still charges one full unit
// (a charge may never round to free). Sub-nano deltas (the Gaussian
// 1e-12 floor) do round to zero — the delta ledger's granularity is
// 1e-9, which undercounts such a policy by < 1e-9 per release.
//
// Composition semantics: the ledger is BASIC composition. Where the
// session layer's tightest-of(basic, advanced) bound is tighter (many
// releases at a small epsilon), the ledger refuses no later than a
// basic-composition accountant would — admission under the ledger is
// never looser than the bound it enforces. Advanced composition remains
// available offline via dp::PrivacyAccountant.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

#include "dp/mechanisms.h"

namespace poiprivacy::dp {

/// A privacy budget in fixed point: epsilon in 1e-6 units, delta in 1e-9
/// units. Saturates at the 32-bit ceiling (~4294 epsilon / ~4.29 delta),
/// which reads as "effectively unbounded" for any realistic ceiling.
struct FixedBudget {
  std::uint32_t epsilon_units = 0;
  std::uint32_t delta_units = 0;

  static constexpr double kEpsilonScale = 1e6;
  static constexpr double kDeltaScale = 1e9;
  static constexpr std::uint32_t kMaxUnits = 0xffffffffu;

  /// Nearest-unit quantization; a positive epsilon never rounds to free.
  static FixedBudget cost_of(PrivacyParams params) noexcept {
    FixedBudget cost;
    cost.epsilon_units = quantize(params.epsilon, kEpsilonScale);
    if (params.epsilon > 0.0 && cost.epsilon_units == 0) {
      cost.epsilon_units = 1;
    }
    cost.delta_units = quantize(params.delta, kDeltaScale);
    return cost;
  }

  /// Ceilings quantize like costs (nearest unit, saturating).
  static FixedBudget ceiling_of(double epsilon_ceiling,
                                double delta_ceiling) noexcept {
    return {quantize(epsilon_ceiling, kEpsilonScale),
            quantize(delta_ceiling, kDeltaScale)};
  }

  PrivacyParams params() const noexcept {
    return {static_cast<double>(epsilon_units) / kEpsilonScale,
            static_cast<double>(delta_units) / kDeltaScale};
  }

  friend bool operator==(const FixedBudget&, const FixedBudget&) = default;

 private:
  static std::uint32_t quantize(double v, double scale) noexcept {
    if (!(v > 0.0)) return 0;
    const double units = v * scale;
    if (units >= static_cast<double>(kMaxUnits)) return kMaxUnits;
    return static_cast<std::uint32_t>(std::llround(units));
  }
};

/// The packed-word ledger for one principal. All operations are lock-free
/// and linearizable; `try_charge` is the only mutator on the hot path.
class AtomicBudgetMeter {
 public:
  /// Charges `cost` unless either component would pass its ceiling.
  /// Returns false (and charges nothing) when the charge would exceed.
  bool try_charge(FixedBudget cost, FixedBudget ceiling) noexcept {
    std::uint64_t seen = word_.load(std::memory_order_relaxed);
    for (;;) {
      const FixedBudget next = add(unpack(seen), cost);
      if (next.epsilon_units > ceiling.epsilon_units ||
          next.delta_units > ceiling.delta_units) {
        return false;
      }
      if (word_.compare_exchange_weak(seen, pack(next),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Advisory peek (a concurrent charge can invalidate it immediately;
  /// the authoritative admission check is try_charge itself).
  bool would_exceed(FixedBudget cost, FixedBudget ceiling) const noexcept {
    const FixedBudget next = add(spent(), cost);
    return next.epsilon_units > ceiling.epsilon_units ||
           next.delta_units > ceiling.delta_units;
  }

  FixedBudget spent() const noexcept {
    return unpack(word_.load(std::memory_order_acquire));
  }

  FixedBudget remaining(FixedBudget ceiling) const noexcept {
    const FixedBudget used = spent();
    return {used.epsilon_units >= ceiling.epsilon_units
                ? 0
                : ceiling.epsilon_units - used.epsilon_units,
            used.delta_units >= ceiling.delta_units
                ? 0
                : ceiling.delta_units - used.delta_units};
  }

  /// Budget renewal (TTL eviction / tests). Not linearizable with
  /// concurrent charges by design — callers quiesce first.
  void reset() noexcept { word_.store(0, std::memory_order_release); }

 private:
  static std::uint64_t pack(FixedBudget b) noexcept {
    return (static_cast<std::uint64_t>(b.epsilon_units) << 32) |
           b.delta_units;
  }
  static FixedBudget unpack(std::uint64_t w) noexcept {
    return {static_cast<std::uint32_t>(w >> 32),
            static_cast<std::uint32_t>(w & 0xffffffffu)};
  }
  /// Saturating add: a meter near the 32-bit rim refuses (via the ceiling
  /// check) rather than wrapping.
  static FixedBudget add(FixedBudget a, FixedBudget b) noexcept {
    const std::uint64_t eps = std::uint64_t{a.epsilon_units} + b.epsilon_units;
    const std::uint64_t del = std::uint64_t{a.delta_units} + b.delta_units;
    return {eps > FixedBudget::kMaxUnits
                ? FixedBudget::kMaxUnits
                : static_cast<std::uint32_t>(eps),
            del > FixedBudget::kMaxUnits
                ? FixedBudget::kMaxUnits
                : static_cast<std::uint32_t>(del)};
  }

  std::atomic<std::uint64_t> word_{0};
};

}  // namespace poiprivacy::dp
