#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace poiprivacy::common {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::laplace(double scale) noexcept {
  assert(scale > 0.0);
  const double u = uniform() - 0.5;
  return -scale * std::copysign(std::log1p(-2.0 * std::abs(u)), u);
}

double Rng::gamma2(double rate) noexcept {
  return exponential(rate) + exponential(rate);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (const double w : weights) total += w;
  assert(total > 0.0);
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept {
  return Rng{(*this)() ^ 0xd1b54a32d192ed03ULL};
}

Rng Rng::substream(std::uint64_t task_index) const noexcept {
  // splitmix64 adds the golden-ratio increment before mixing, so index 0
  // does not map to the base stream and nearby indices decorrelate fully.
  std::uint64_t sm = task_index;
  return Rng{seed_ ^ splitmix64(sm)};
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n,
                                             std::size_t k) noexcept {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: after k swaps the prefix holds the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace poiprivacy::common
