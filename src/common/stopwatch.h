// Wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>

namespace poiprivacy::common {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace poiprivacy::common
