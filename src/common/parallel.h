// Deterministic parallel evaluation engine.
//
// A small reusable thread pool plus two primitives the eval runners are
// built on:
//
//   * parallel_for_each(pool, n, chunk, fn) — runs fn(i) for i in [0, n),
//     chunked into tasks of `chunk` consecutive indices. Tasks are claimed
//     dynamically, so scheduling is load-balanced and NOT deterministic —
//     callers must only write to per-index state.
//   * ordered_reduce(pool, n, chunk, init, map, reduce) — maps every index
//     in parallel into a per-index slot, then folds the slots strictly in
//     index order on the calling thread. Because the fold order is fixed,
//     the result (including floating-point rounding) is bit-identical for
//     every thread count, and equal to the serial fold.
//
// The pool spawns `concurrency - 1` workers; the calling thread is the
// remaining executor, so `concurrency == 1` is a pure inline serial path
// with no threads, no locks and no allocation. Nested submissions from
// inside a task run inline on the submitting thread (no deadlock). The
// first exception thrown by a task cancels the remaining tasks and is
// rethrown on the calling thread.
//
// The process-wide default concurrency is set from the `--threads` flag
// (see common/flags.h); it defaults to std::thread::hardware_concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace poiprivacy::common {

/// The process-wide default concurrency: the last value installed via
/// set_default_thread_count, or std::thread::hardware_concurrency() (at
/// least 1) if none was set.
std::size_t default_thread_count() noexcept;

/// Installs the process-wide default concurrency; 0 restores the
/// hardware_concurrency default. Not safe to call concurrently with
/// evaluation using the global pool.
void set_default_thread_count(std::size_t n) noexcept;

class ThreadPool {
 public:
  /// A pool with the given concurrency level (calling thread included):
  /// `concurrency - 1` workers are spawned, 1 means fully inline serial.
  explicit ThreadPool(std::size_t concurrency = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t concurrency() const noexcept { return concurrency_; }

  /// Runs fn(i) for every i in [0, num_tasks) and blocks until all tasks
  /// finished. Task claiming order is unspecified. If a task throws, no
  /// new tasks are started and the first exception is rethrown here.
  /// Nested calls from inside a task run inline on the calling thread.
  void run_tasks(std::size_t num_tasks,
                 const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work_on_current_batch();

  std::size_t concurrency_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::size_t busy_workers_ = 0;

  // Current batch (valid while fn_ != nullptr).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;

  std::mutex run_mu_;  // serializes top-level run_tasks calls
};

/// The process-wide shared pool, sized to default_thread_count(). Lazily
/// (re)built when the default changes; do not change the thread count
/// while an evaluation is in flight.
ThreadPool& global_pool();

/// Runs fn(i) for i in [0, n), `chunk` consecutive indices per task.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, std::size_t n, std::size_t chunk,
                       Fn&& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t num_tasks = (n + chunk - 1) / chunk;
  const std::function<void(std::size_t)> task = [&](std::size_t t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  pool.run_tasks(num_tasks, task);
}

/// Parallel map + ordered serial fold: computes map(i) for every index in
/// parallel, then returns reduce(...reduce(reduce(init, map(0)), map(1))...)
/// folded strictly in index order, so the result is bit-identical to the
/// serial computation for any thread count.
template <typename T, typename Map, typename Reduce>
T ordered_reduce(ThreadPool& pool, std::size_t n, std::size_t chunk, T init,
                 Map&& map, Reduce&& reduce) {
  using R = std::decay_t<decltype(map(std::size_t{0}))>;
  std::vector<std::optional<R>> slots(n);
  parallel_for_each(pool, n, chunk,
                    [&](std::size_t i) { slots[i].emplace(map(i)); });
  T acc = std::move(init);
  for (std::optional<R>& slot : slots) {
    acc = reduce(std::move(acc), std::move(*slot));
  }
  return acc;
}

}  // namespace poiprivacy::common
