#include "common/alloc_count.h"

#include <atomic>

namespace poiprivacy::common {
namespace {

std::atomic<bool> g_active{false};
// Trivially-destructible TLS: safe to touch from allocation paths that
// run before main and during static destruction.
thread_local std::uint64_t t_count = 0;

}  // namespace

bool allocation_counting_active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

std::uint64_t thread_allocation_count() noexcept { return t_count; }

namespace detail {

void enable_allocation_counting() noexcept {
  g_active.store(true, std::memory_order_relaxed);
}

void count_allocation() noexcept { ++t_count; }

}  // namespace detail

}  // namespace poiprivacy::common
