// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name`. Unknown
// flags are an error so typos in sweep scripts fail loudly; `--help` is
// always accepted so every binary can print its known-flag list.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace poiprivacy::common {

class Flags {
 public:
  /// Parses argv. Throws std::invalid_argument on a malformed or (if
  /// `known` is nonempty) unknown flag. `--help` is implicitly known.
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& known = {});

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get(const std::string& name, std::int64_t fallback) const;
  double get(const std::string& name, double fallback) const;
  bool get(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True when the user passed `--help`.
  bool help_requested() const { return has(kHelpFlag); }

  /// "usage: <program> ..." plus one line per known flag — the discovery
  /// aid behind every binary's `--help`.
  std::string usage(const std::string& program) const;

  /// Reads `--threads N` and installs it as the process-wide evaluation
  /// concurrency (common::set_default_thread_count). Without the flag the
  /// default stays hardware_concurrency; `--threads 1` restores the fully
  /// serial path. Returns the effective thread count. Binaries that accept
  /// the flag must list kThreadsFlag among their known flags.
  std::size_t apply_threads_flag() const;

  /// Reads `--metrics[=path]` and arms an at-exit JSON dump of the obs
  /// metrics registry (obs::dump_on_exit): bare `--metrics` dumps to
  /// stderr, `--metrics=FILE` to FILE. Does nothing without the flag, and
  /// dumps `{}` in a -DPOIPRIVACY_NO_METRICS build. Binaries that accept
  /// the flag must list kMetricsFlag among their known flags.
  void apply_metrics_flag() const;

  static constexpr const char* kThreadsFlag = "threads";
  static constexpr const char* kMetricsFlag = "metrics";
  static constexpr const char* kHelpFlag = "help";

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> known_;
};

}  // namespace poiprivacy::common
