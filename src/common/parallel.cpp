#include "common/parallel.h"

#include <memory>

#include "obs/metrics.h"

namespace poiprivacy::common {

namespace {

std::atomic<std::size_t> g_default_threads{0};  // 0 = hardware default

// Depth of run_tasks frames on this thread. Workers and participating
// callers bump it while executing tasks, so nested submissions detect they
// are inside the pool and run inline instead of deadlocking.
thread_local int tls_task_depth = 0;

// Pool instrumentation (top-level batches only; nested inline submissions
// are part of their enclosing task's time). queue_depth counts tasks not
// yet claimed-and-finished in the current batch; with POIPRIVACY_NO_METRICS
// every call below is an empty inline stub.
struct PoolMetrics {
  obs::Counter& batches;
  obs::Counter& tasks;
  obs::Gauge& queue_depth;
  obs::Histogram& task_seconds;
  obs::Histogram& batch_seconds;

  static PoolMetrics& get() {
    static PoolMetrics* metrics = new PoolMetrics{
        obs::global_registry().counter("parallel.batches"),
        obs::global_registry().counter("parallel.tasks"),
        obs::global_registry().gauge("parallel.queue_depth"),
        obs::global_registry().histogram("parallel.task_seconds"),
        obs::global_registry().histogram("parallel.batch_seconds"),
    };
    return *metrics;
  }
};

}  // namespace

std::size_t default_thread_count() noexcept {
  const std::size_t configured = g_default_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_default_thread_count(std::size_t n) noexcept {
  g_default_threads.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t concurrency)
    : concurrency_(concurrency > 0 ? concurrency : 1) {
  workers_.reserve(concurrency_ - 1);
  for (std::size_t i = 0; i + 1 < concurrency_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::work_on_current_batch() {
  const std::function<void(std::size_t)>* fn = fn_;
  const std::size_t total = total_;
  PoolMetrics& metrics = PoolMetrics::get();
  ++tls_task_depth;
  std::size_t i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < total) {
    try {
      {
        const obs::Span span(metrics.task_seconds);
        (*fn)(i);
      }
      metrics.queue_depth.add(-1);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      // Cancel the tasks nobody claimed yet; running ones finish normally.
      next_.store(total, std::memory_order_relaxed);
      break;
    }
  }
  --tls_task_depth;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    if (fn_ == nullptr) continue;  // batch already drained and closed
    ++busy_workers_;
    lock.unlock();
    work_on_current_batch();
    lock.lock();
    if (--busy_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_tasks(std::size_t num_tasks,
                           const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  // Serial path: single-threaded pool, a nested submission from inside a
  // task, or a batch too small to be worth waking workers for.
  if (concurrency_ <= 1 || tls_task_depth > 0 || num_tasks == 1) {
    const bool top_level = tls_task_depth == 0;
    ++tls_task_depth;
    struct DepthGuard {
      ~DepthGuard() { --tls_task_depth; }
    } guard;
    if (!top_level) {
      // Nested submissions run inside an already-timed task.
      for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
      return;
    }
    PoolMetrics& metrics = PoolMetrics::get();
    metrics.batches.add(1);
    metrics.tasks.add(num_tasks);
    metrics.queue_depth.set(static_cast<std::int64_t>(num_tasks));
    const obs::Span batch_span(metrics.batch_seconds);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      {
        const obs::Span task_span(metrics.task_seconds);
        fn(i);
      }
      metrics.queue_depth.add(-1);
    }
    return;
  }

  PoolMetrics& metrics = PoolMetrics::get();
  metrics.batches.add(1);
  metrics.tasks.add(num_tasks);
  metrics.queue_depth.set(static_cast<std::int64_t>(num_tasks));
  obs::Span batch_span(metrics.batch_seconds);

  std::lock_guard<std::mutex> serialize(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    total_ = num_tasks;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  work_on_current_batch();  // the calling thread is an executor too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    fn_ = nullptr;  // workers waking late see a closed batch
    error = error_;
    error_ = nullptr;
  }
  batch_span.stop();
  metrics.queue_depth.set(0);
  if (error) std::rethrow_exception(error);
}

ThreadPool& global_pool() {
  static std::mutex pool_mu;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(pool_mu);
  const std::size_t want = default_thread_count();
  if (!pool || pool->concurrency() != want) {
    pool = std::make_unique<ThreadPool>(want);
  }
  return *pool;
}

}  // namespace poiprivacy::common
