// Small statistics helpers shared by the evaluation harness and benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace poiprivacy::common {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 if fewer than two values.
double stddev(std::span<const double> xs) noexcept;

/// Median; 0 for an empty span.
double median(std::span<const double> xs);

/// Linear-interpolation quantile: the value at fractional rank
/// q * (n - 1) of the sorted sample, interpolating linearly between the
/// two neighbouring order statistics (NumPy's "linear" method, Hyndman &
/// Fan type 7). q outside [0, 1] — including NaN — is clamped into the
/// range; 0 for an empty span. obs::Histogram percentiles follow the
/// same rule, so bench numbers and registry snapshots agree exactly.
double quantile(std::span<const double> xs, double q);

/// Min / max; 0 for an empty span.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// The latency percentiles every throughput bench reports.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// p50/p95/p99 of a sample in one sort (quantile() sorts per call);
/// all-zero for an empty span. Same q * (n - 1) linear interpolation
/// rule as quantile().
Percentiles percentiles(std::span<const double> xs);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Empirical CDF evaluated at caller-chosen thresholds.
struct CdfPoint {
  double x = 0.0;
  double fraction = 0.0;  ///< fraction of samples <= x
};

/// Evaluates the empirical CDF of `samples` at each threshold.
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples,
                                    std::span<const double> thresholds);

/// Evaluates the empirical CDF at `steps` evenly spaced thresholds covering
/// [0, max(samples)].
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples,
                                    std::size_t steps);

/// "0.123" style formatting used by the bench tables.
std::string fmt(double x, int decimals = 3);

}  // namespace poiprivacy::common
