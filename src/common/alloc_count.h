// Heap-allocation counting for zero-allocation assertions.
//
// The bench binary (and only it) replaces the global operator new/delete
// family with forwarding hooks (bench/alloc_hook.cpp) that bump a
// thread-local counter. Library code never pays for this: in binaries
// without the hook, allocation_counting_active() stays false and
// thread_allocation_count() stays 0, so callers phrase checks as
//
//   const auto before = common::thread_allocation_count();
//   <supposedly allocation-free region>
//   const auto delta = common::thread_allocation_count() - before;
//   // delta == 0 whenever counting is active; trivially 0 otherwise.
//
// which passes identically whether or not the hook is linked in — the
// in-process test harness runs the same scenarios without it.
#pragma once

#include <cstdint>

namespace poiprivacy::common {

/// True when the executable linked the allocation hook (bench binaries).
bool allocation_counting_active() noexcept;

/// Number of operator-new calls made by the calling thread since it
/// started, or 0 forever when counting is inactive.
std::uint64_t thread_allocation_count() noexcept;

namespace detail {
/// Called once by the hook's static initializer.
void enable_allocation_counting() noexcept;
/// Called by the hook on every allocation.
void count_allocation() noexcept;
}  // namespace detail

}  // namespace poiprivacy::common
