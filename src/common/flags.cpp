#include "common/flags.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace poiprivacy::common {

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg.compare(0, 2, "--") == 0;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& known)
    : known_(known) {
  if (!known_.empty() &&
      std::find(known_.begin(), known_.end(), kHelpFlag) == known_.end()) {
    known_.push_back(kHelpFlag);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
      has_value = true;
    } else if (i + 1 < argc && !is_flag(argv[i + 1])) {
      value = argv[++i];
      has_value = true;
    }
    if (!known_.empty() &&
        std::find(known_.begin(), known_.end(), name) == known_.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    values_[name] = has_value ? value : "true";
  }
}

std::string Flags::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [--flag value | --flag]...\n";
  if (known_.empty()) {
    out += "  (this binary accepts arbitrary flags)\n";
    return out;
  }
  out += "known flags:\n";
  for (const std::string& name : known_) {
    out += "  --" + name + "\n";
  }
  return out;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Flags::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

std::size_t Flags::apply_threads_flag() const {
  const std::int64_t n = get(kThreadsFlag, std::int64_t{0});
  if (n < 0) throw std::invalid_argument("--threads must be >= 1");
  set_default_thread_count(static_cast<std::size_t>(n));
  return default_thread_count();
}

void Flags::apply_metrics_flag() const {
  if (!has(kMetricsFlag)) return;
  // A bare `--metrics` is stored as the string "true" → dump to stderr.
  const std::string path = get(kMetricsFlag, std::string{});
  obs::dump_on_exit(path == "true" ? std::string{} : path);
}

bool Flags::get(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace poiprivacy::common
