#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace poiprivacy::common {

namespace {

// Value at fractional rank q * (n - 1) of an already-sorted non-empty
// sample (type-7 linear interpolation). NaN q fails both comparisons and
// is treated as 0 — std::clamp would pass NaN through and turn the rank
// into an out-of-range size_t cast (UB).
double sorted_quantile(std::span<const double> sorted, double q) noexcept {
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Percentiles percentiles(std::span<const double> xs) {
  if (xs.empty()) return {};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return {sorted_quantile(sorted, 0.50), sorted_quantile(sorted, 0.95),
          sorted_quantile(sorted, 0.99)};
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples,
                                    std::span<const double> thresholds) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) {
    const auto below = static_cast<double>(
        std::upper_bound(sorted.begin(), sorted.end(), t) - sorted.begin());
    const double frac =
        sorted.empty() ? 0.0 : below / static_cast<double>(sorted.size());
    out.push_back({t, frac});
  }
  return out;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples,
                                    std::size_t steps) {
  const double hi = max_of(samples);
  std::vector<double> thresholds;
  thresholds.reserve(steps);
  for (std::size_t i = 1; i <= steps; ++i) {
    thresholds.push_back(hi * static_cast<double>(i) /
                         static_cast<double>(steps));
  }
  return empirical_cdf(samples, thresholds);
}

std::string fmt(double x, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, x);
  return buf;
}

}  // namespace poiprivacy::common
