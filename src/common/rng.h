// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in this library takes an explicit Rng (or a
// seed) instead of touching global state, so a fixed seed reproduces an
// entire experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace poiprivacy::common {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// plugged into <random> distributions, but the library-provided sampling
/// helpers below are preferred: they are stable across standard-library
/// implementations, which <random> distributions are not.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Laplace (double exponential) with location 0 and the given scale.
  double laplace(double scale) noexcept;

  /// Gamma(shape=2, rate): sum of two exponentials. This is exactly the
  /// radial distribution of the planar Laplace mechanism.
  double gamma2(double rate) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires a nonempty vector with nonnegative entries and positive sum.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Derive an independent child generator; useful for giving each
  /// experiment arm its own stream so arms stay comparable when one of
  /// them changes its number of draws.
  Rng fork() noexcept;

  /// Deterministic per-task stream splitter for parallel evaluation:
  /// returns Rng(seed ^ splitmix64(index)), a function of the construction
  /// seed and the task index only. Unlike fork() it does not advance this
  /// generator's state, so every task gets the same stream no matter which
  /// thread claims it or in which order tasks run.
  Rng substream(std::uint64_t task_index) const noexcept;

  /// The seed this generator was constructed from (substream's base).
  std::uint64_t seed() const noexcept { return seed_; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(
                         uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
  }

  /// Draw k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace poiprivacy::common
