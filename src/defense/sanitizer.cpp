#include "defense/sanitizer.h"

namespace poiprivacy::defense {

Sanitizer::Sanitizer(const poi::PoiDatabase& db,
                     std::int32_t city_freq_threshold)
    : sanitized_(db.types_with_city_freq_at_most(city_freq_threshold)),
      mask_(db.num_types(), false) {
  for (const poi::TypeId t : sanitized_) mask_[t] = true;
}

poi::FrequencyVector Sanitizer::sanitize(poi::FrequencyVector released) const {
  for (const poi::TypeId t : sanitized_) released[t] = 0;
  return released;
}

}  // namespace poiprivacy::defense
