// Location-level defenses evaluated in Section III: the user's location is
// transformed before the aggregate is computed, and the aggregate itself
// is released unmodified.
//
//   * GeoIndDefense — geo-indistinguishability via the planar Laplace
//     mechanism (Section III-B): the aggregate is computed at a perturbed
//     location.
//   * KCloakDefense — adaptive-interval spatial k-cloaking (Section
//     III-C): the aggregate is computed at the centre of the cloaked
//     region, hiding which of the >= k co-located users issued the query.
#pragma once

#include "cloak/kcloak.h"
#include "dp/mechanisms.h"
#include "poi/database.h"

namespace poiprivacy::defense {

class GeoIndDefense {
 public:
  /// `epsilon` and `unit_km` follow the paper: eps = 0.1 with a 100 m
  /// distance unit means epsilon_per_km = 1.
  GeoIndDefense(const poi::PoiDatabase& db, double epsilon,
                double unit_km = 0.1)
      : db_(&db),
        mechanism_(dp::PlanarLaplaceMechanism::with_unit(epsilon, unit_km)) {}

  /// The perturbed location the aggregate will be computed at.
  geo::Point perturb(geo::Point location, common::Rng& rng) const {
    return mechanism_.perturb(location, rng);
  }

  poi::FrequencyVector release(geo::Point location, double r,
                               common::Rng& rng) const {
    return db_->freq(perturb(location, rng), r);
  }

 private:
  const poi::PoiDatabase* db_;
  dp::PlanarLaplaceMechanism mechanism_;
};

class KCloakDefense {
 public:
  KCloakDefense(const poi::PoiDatabase& db,
                const cloak::AdaptiveIntervalCloaker& cloaker, std::size_t k)
      : db_(&db), cloaker_(&cloaker), k_(k) {}

  poi::FrequencyVector release(geo::Point location, double r) const {
    const cloak::CloakResult cloaked = cloaker_->cloak(location, k_);
    return db_->freq(cloaked.region.center(), r);
  }

  std::size_t k() const noexcept { return k_; }

 private:
  const poi::PoiDatabase* db_;
  const cloak::AdaptiveIntervalCloaker* cloaker_;
  std::size_t k_;
};

}  // namespace poiprivacy::defense
