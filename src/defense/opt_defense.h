// The paper's aggregate-level defenses.
//
//   * OptimizationDefense — the non-private formulation of Eq. (7): the
//     true frequency vector is perturbed under an average relative
//     distortion budget beta, with perturbation weighted towards the
//     citywide-rarest types (which drive the re-identification attack).
//
//   * DpDefense — the (eps, delta)-differentially private release of
//     Section V-B / Eq. (8)-(9):
//       1. spatial k-cloaking produces k dummy locations (incl. the user);
//       2. the k frequency vectors are averaged with Gaussian noise whose
//          per-dimension sensitivity is max_d F_d[i] (the paper's proof);
//       3. the optimizer of Eq. (9) post-processes the noised mean, which
//          preserves the DP guarantee (Lemma 3).
#pragma once

#include "cloak/kcloak.h"
#include "dp/mechanisms.h"
#include "opt/distortion.h"
#include "poi/database.h"

namespace poiprivacy::defense {

/// The Eq. (9) post-processing step shared by OptimizationDefense,
/// DpDefense and the serving layer: optimize the (real-valued) base
/// vector under average relative distortion budget `beta`, perturbing
/// only the citywide-rare tail (see DESIGN.md 4b.5). Post-processing, so
/// it preserves whatever DP guarantee the base vector carries (Lemma 3).
poi::FrequencyVector postprocess_release(const poi::PoiDatabase& db,
                                         std::vector<double> base,
                                         double beta,
                                         std::int32_t max_injection);

class OptimizationDefense {
 public:
  /// `max_injection` > 0 additionally injects fake counts into absent
  /// rare types. That hijacks the attack's pivot type and drives its
  /// success rate to zero even at beta = 0.01 — strictly stronger than
  /// the gradual suppression-only defense the paper reports, so it is off
  /// by default and exposed as an ablation.
  OptimizationDefense(const poi::PoiDatabase& db, double beta,
                      std::int32_t max_injection = 0)
      : db_(&db), beta_(beta), max_injection_(max_injection) {}

  poi::FrequencyVector release(const poi::FrequencyVector& original) const;

  double beta() const noexcept { return beta_; }

 private:
  const poi::PoiDatabase* db_;
  double beta_;
  std::int32_t max_injection_;
};

/// Noise mechanism for the private mean of Eq. (8).
enum class DpNoiseKind {
  /// The paper's Gaussian mechanism — (eps, delta)-DP per Definition 2.
  kGaussian,
  /// Two-sided geometric (discrete Laplace) noise — pure eps-DP
  /// (delta = 0); under the paper's neighboring-datasets definition only
  /// one dimension changes, so per-dimension noise calibrated to that
  /// dimension's sensitivity suffices. Ablated in
  /// bench/ablation_dp_noise.
  kGeometric,
};

struct DpDefenseConfig {
  std::size_t k = 20;      ///< cloaking parameter / number of dummies
  double epsilon = 1.0;
  double delta = 0.2;
  DpNoiseKind noise = DpNoiseKind::kGaussian;
  double beta = 0.02;      ///< Eq. (9) distortion budget
  /// See OptimizationDefense: fake-count injection is an extra-strength
  /// ablation, disabled by default.
  std::int32_t max_injection = 0;
};

class DpDefense {
 public:
  DpDefense(const poi::PoiDatabase& db,
            const cloak::AdaptiveIntervalCloaker& cloaker,
            DpDefenseConfig config)
      : db_(&db), cloaker_(&cloaker), config_(config) {}

  /// The full private release pipeline for one query.
  poi::FrequencyVector release(geo::Point location, double r,
                               common::Rng& rng) const;

  /// The intermediate noised mean F*_D (exposed for tests/inspection).
  std::vector<double> noised_mean(geo::Point location, double r,
                                  common::Rng& rng) const;

  const DpDefenseConfig& config() const noexcept { return config_; }

 private:
  const poi::PoiDatabase* db_;
  const cloak::AdaptiveIntervalCloaker* cloaker_;
  DpDefenseConfig config_;
};

}  // namespace poiprivacy::defense
