#include "defense/session.h"

namespace poiprivacy::defense {

namespace {

dp::PrivacyParams tighter(dp::PrivacyParams a, dp::PrivacyParams b) {
  return a.epsilon <= b.epsilon ? a : b;
}

}  // namespace

dp::PrivacyParams ReleaseSession::spent() const {
  dp::PrivacyAccountant copy = accountant_;
  const dp::PrivacyParams basic = copy.basic_composition();
  if (config_.advanced_slack > 0.0 && copy.releases() > 0) {
    return tighter(basic, copy.advanced_composition(config_.advanced_slack));
  }
  return basic;
}

dp::PrivacyParams ReleaseSession::composed_after_one_more() const {
  dp::PrivacyAccountant hypothetical = accountant_;
  hypothetical.spend({config_.release.epsilon, config_.release.delta});
  const dp::PrivacyParams basic = hypothetical.basic_composition();
  if (config_.advanced_slack > 0.0) {
    return tighter(basic,
                   hypothetical.advanced_composition(config_.advanced_slack));
  }
  return basic;
}

bool ReleaseSession::exhausted() const {
  const dp::PrivacyParams next = composed_after_one_more();
  return next.epsilon > config_.epsilon_ceiling ||
         next.delta > config_.delta_ceiling;
}

std::optional<poi::FrequencyVector> ReleaseSession::release(
    geo::Point location, double r, common::Rng& rng) {
  if (exhausted()) return std::nullopt;
  poi::FrequencyVector out = defense_.release(location, r, rng);
  accountant_.spend({config_.release.epsilon, config_.release.delta});
  return out;
}

}  // namespace poiprivacy::defense
