#include "defense/session.h"

namespace poiprivacy::defense {

bool ReleaseSession::exhausted() const {
  return ledger_.would_exceed({config_.release.epsilon, config_.release.delta});
}

std::optional<poi::FrequencyVector> ReleaseSession::release(
    geo::Point location, double r, common::Rng& rng) {
  if (exhausted()) return std::nullopt;
  poi::FrequencyVector out = defense_.release(location, r, rng);
  ledger_.record({config_.release.epsilon, config_.release.delta});
  return out;
}

}  // namespace poiprivacy::defense
