#include "defense/session.h"

#include <algorithm>

namespace poiprivacy::defense {

namespace {

dp::PrivacyParams tighter(dp::PrivacyParams a, dp::PrivacyParams b) {
  return a.epsilon <= b.epsilon ? a : b;
}

}  // namespace

dp::PrivacyParams ReleaseSession::spent() const {
  dp::PrivacyAccountant copy = accountant_;
  const dp::PrivacyParams basic = copy.basic_composition();
  if (config_.advanced_slack > 0.0 && copy.releases() > 0) {
    return tighter(basic, copy.advanced_composition(config_.advanced_slack));
  }
  return basic;
}

dp::PrivacyParams ReleaseSession::remaining() const {
  const dp::PrivacyParams used = spent();
  return {std::max(0.0, config_.epsilon_ceiling - used.epsilon),
          std::max(0.0, config_.delta_ceiling - used.delta)};
}

dp::PrivacyParams ReleaseSession::composed_after(
    dp::PrivacyParams params) const {
  dp::PrivacyAccountant hypothetical = accountant_;
  hypothetical.spend(params);
  const dp::PrivacyParams basic = hypothetical.basic_composition();
  if (config_.advanced_slack > 0.0) {
    return tighter(basic,
                   hypothetical.advanced_composition(config_.advanced_slack));
  }
  return basic;
}

bool ReleaseSession::would_exceed(dp::PrivacyParams params) const {
  if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
    return true;  // unadmittable, never chargeable
  }
  const dp::PrivacyParams next = composed_after(params);
  return next.epsilon > config_.epsilon_ceiling ||
         next.delta > config_.delta_ceiling;
}

bool ReleaseSession::exhausted() const {
  return would_exceed({config_.release.epsilon, config_.release.delta});
}

std::optional<poi::FrequencyVector> ReleaseSession::release(
    geo::Point location, double r, common::Rng& rng) {
  if (exhausted()) return std::nullopt;
  poi::FrequencyVector out = defense_.release(location, r, rng);
  accountant_.spend({config_.release.epsilon, config_.release.delta});
  return out;
}

}  // namespace poiprivacy::defense
