#include "defense/opt_defense.h"

#include "dp/discrete.h"

#include <algorithm>

namespace poiprivacy::defense {

namespace {

/// Perturbation is restricted to the citywide-rare tail (count <= 10, the
/// sanitization threshold): common types carry almost no objective weight
/// and suppressing them would damage the Top-K utility.
int rare_rank_cap(const poi::PoiDatabase& db) {
  return static_cast<int>(db.types_with_city_freq_at_most(10).size());
}

}  // namespace

poi::FrequencyVector postprocess_release(const poi::PoiDatabase& db,
                                         std::vector<double> base,
                                         double beta,
                                         std::int32_t max_injection) {
  opt::DistortionProblem problem;
  problem.base = std::move(base);
  problem.rank = db.infrequency_rank();
  problem.beta = beta;
  problem.max_injection = max_injection;
  problem.max_rank = rare_rank_cap(db);
  return opt::optimize_release(problem).release;
}

poi::FrequencyVector OptimizationDefense::release(
    const poi::FrequencyVector& original) const {
  return postprocess_release(
      *db_, std::vector<double>(original.begin(), original.end()), beta_,
      max_injection_);
}

std::vector<double> DpDefense::noised_mean(geo::Point location, double r,
                                           common::Rng& rng) const {
  const std::vector<geo::Point> dummies =
      cloaker_->dummy_locations(location, config_.k, rng);
  // Shared per-thread scratch (see poi::scratch_arena): the k dummy
  // aggregates land in one reusable buffer, so steady-state releases
  // allocate nothing for the frequency queries. Consumed fully below,
  // before any other component can refill the arena.
  poi::FreqArena& arena = poi::scratch_arena();
  db_->freq_batch(dummies, r, arena);

  const std::size_t m = db_->num_types();
  const double k = static_cast<double>(dummies.size());
  // Row-major accumulation streams each arena row once. Per type, the
  // additions still happen in ascending dummy order, so the floating-point
  // sums (and hence the noise draws below) are bit-identical to the old
  // column-major loop.
  std::vector<double> sum(m, 0.0);
  std::vector<double> sensitivity(m, 0.0);  // Delta_i = max_d F_d[i]
  for (std::size_t d = 0; d < arena.rows(); ++d) {
    const std::span<const std::int32_t> row = arena.row(d);
    for (std::size_t i = 0; i < m; ++i) {
      sum[i] += row[i];
      sensitivity[i] =
          std::max(sensitivity[i], static_cast<double>(row[i]));
    }
  }

  std::vector<double> mean(m, 0.0);
  const dp::PrivacyParams params{config_.epsilon, config_.delta};
  for (std::size_t i = 0; i < m; ++i) {
    double noised = sum[i];
    if (sensitivity[i] > 0.0) {
      switch (config_.noise) {
        case DpNoiseKind::kGaussian: {
          const double sigma =
              dp::GaussianMechanism::calibrated_sigma(params, sensitivity[i]);
          noised = sum[i] + rng.normal(0.0, sigma);
          break;
        }
        case DpNoiseKind::kGeometric: {
          const dp::GeometricMechanism mech(
              config_.epsilon, static_cast<std::int64_t>(sensitivity[i]));
          noised = static_cast<double>(
              mech.perturb(static_cast<std::int64_t>(std::llround(sum[i])),
                           rng));
          break;
        }
      }
    }
    mean[i] = noised / k;
  }
  return mean;
}

poi::FrequencyVector DpDefense::release(geo::Point location, double r,
                                        common::Rng& rng) const {
  return postprocess_release(*db_, noised_mean(location, r, rng),
                             config_.beta, config_.max_injection);
}

}  // namespace poiprivacy::defense
