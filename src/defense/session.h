// ReleaseSession — budget-managed repeated releases for one user.
//
// A mobile user keeps querying the LBS over a day; every DP release
// spends privacy budget, and the guarantees degrade under composition.
// The session wraps the DP defense with a PrivacyAccountant and a hard
// budget ceiling: releases are refused once the composed (eps, delta)
// would exceed it. This operationalizes the paper's per-release guarantee
// into something a real client could ship.
//
// The admission predicates (would_exceed, remaining) and charge() let an
// external serving layer reuse the session's composition math while
// running the release mechanism itself — see service/release_service.h.
#pragma once

#include <optional>

#include "defense/opt_defense.h"
#include "dp/accountant.h"

namespace poiprivacy::defense {

struct SessionConfig {
  DpDefenseConfig release;          ///< per-release mechanism parameters
  double epsilon_ceiling = 10.0;    ///< refuse once composed eps exceeds this
  double delta_ceiling = 0.5;       ///< ... or composed delta exceeds this
  /// Use advanced composition with this slack when it is tighter than
  /// basic composition (<= 0 disables; slack adds to the composed delta).
  double advanced_slack = 1e-6;
};

class ReleaseSession {
 public:
  ReleaseSession(const poi::PoiDatabase& db,
                 const cloak::AdaptiveIntervalCloaker& cloaker,
                 SessionConfig config)
      : defense_(db, cloaker, config.release), config_(config) {}

  /// One protected release, or nullopt if it would blow the budget.
  std::optional<poi::FrequencyVector> release(geo::Point location, double r,
                                              common::Rng& rng);

  /// The privacy cost already spent (tightest available composition).
  dp::PrivacyParams spent() const;

  /// Budget left before either ceiling (componentwise, clamped at zero).
  dp::PrivacyParams remaining() const;

  /// Would one more release at `params` push the composed cost past a
  /// ceiling? Never throws: invalid params (eps <= 0, delta outside
  /// [0, 1)) cannot be admitted and report true.
  bool would_exceed(dp::PrivacyParams params) const;

  /// Records a release performed outside this session's own defense
  /// (e.g. by the serving layer, possibly under a different policy).
  /// Throws on invalid params; callers gate on would_exceed first.
  void charge(dp::PrivacyParams params) { accountant_.spend(params); }

  std::size_t releases() const noexcept { return accountant_.releases(); }
  bool exhausted() const;

  const SessionConfig& config() const noexcept { return config_; }

 private:
  dp::PrivacyParams composed_after(dp::PrivacyParams params) const;

  DpDefense defense_;
  SessionConfig config_;
  dp::PrivacyAccountant accountant_;
};

}  // namespace poiprivacy::defense
