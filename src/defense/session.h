// ReleaseSession — budget-managed repeated releases for one user.
//
// A mobile user keeps querying the LBS over a day; every DP release
// spends privacy budget, and the guarantees degrade under composition.
// The session wraps the DP defense with a PrivacyAccountant and a hard
// budget ceiling: releases are refused once the composed (eps, delta)
// would exceed it. This operationalizes the paper's per-release guarantee
// into something a real client could ship.
#pragma once

#include <optional>

#include "defense/opt_defense.h"
#include "dp/accountant.h"

namespace poiprivacy::defense {

struct SessionConfig {
  DpDefenseConfig release;          ///< per-release mechanism parameters
  double epsilon_ceiling = 10.0;    ///< refuse once composed eps exceeds this
  double delta_ceiling = 0.5;       ///< ... or composed delta exceeds this
  /// Use advanced composition with this slack when it is tighter than
  /// basic composition (<= 0 disables; slack adds to the composed delta).
  double advanced_slack = 1e-6;
};

class ReleaseSession {
 public:
  ReleaseSession(const poi::PoiDatabase& db,
                 const cloak::AdaptiveIntervalCloaker& cloaker,
                 SessionConfig config)
      : defense_(db, cloaker, config.release), config_(config) {}

  /// One protected release, or nullopt if it would blow the budget.
  std::optional<poi::FrequencyVector> release(geo::Point location, double r,
                                              common::Rng& rng);

  /// The privacy cost already spent (tightest available composition).
  dp::PrivacyParams spent() const;

  std::size_t releases() const noexcept { return accountant_.releases(); }
  bool exhausted() const;

 private:
  dp::PrivacyParams composed_after_one_more() const;

  DpDefense defense_;
  SessionConfig config_;
  dp::PrivacyAccountant accountant_;
};

}  // namespace poiprivacy::defense
