// ReleaseSession — budget-managed repeated releases for one user.
//
// A mobile user keeps querying the LBS over a day; every DP release
// spends privacy budget, and the guarantees degrade under composition.
// The session is a thin compat shim over dp::Ledger (policy
// kAdvancedHeterogeneous — tightest-of(basic, advanced) against the
// ceilings — or kBasic when the slack is disabled) that runs the release
// mechanism itself: releases are refused once the composed (eps, delta)
// would exceed the ceiling. This operationalizes the paper's per-release
// guarantee into something a real client could ship.
//
// All accounting lives in the ledger; an external serving layer reuses
// the same admission predicate via `ledger()` (or runs its own
// fixed-point ledger — see service/release_service.h).
#pragma once

#include <optional>

#include "defense/opt_defense.h"
#include "dp/ledger.h"

namespace poiprivacy::defense {

struct SessionConfig {
  DpDefenseConfig release;          ///< per-release mechanism parameters
  double epsilon_ceiling = 10.0;    ///< refuse once composed eps exceeds this
  double delta_ceiling = 0.5;       ///< ... or composed delta exceeds this
  /// Use advanced composition with this slack when it is tighter than
  /// basic composition (<= 0 disables; slack adds to the composed delta).
  double advanced_slack = 1e-6;
};

class ReleaseSession {
 public:
  ReleaseSession(const poi::PoiDatabase& db,
                 const cloak::AdaptiveIntervalCloaker& cloaker,
                 SessionConfig config)
      : defense_(db, cloaker, config.release),
        config_(config),
        ledger_(dp::LedgerConfig{
            config.advanced_slack > 0.0
                ? dp::LedgerPolicy::kAdvancedHeterogeneous
                : dp::LedgerPolicy::kBasic,
            dp::LedgerBackend::kExact, config.epsilon_ceiling,
            config.delta_ceiling, config.advanced_slack,
            dp::WindowPolicy{}}) {}

  /// One protected release, or nullopt if it would blow the budget.
  std::optional<poi::FrequencyVector> release(geo::Point location, double r,
                                              common::Rng& rng);

  /// The privacy cost already spent (tightest available composition).
  dp::PrivacyParams spent() const { return ledger_.spent(); }

  /// Budget left before either ceiling (componentwise, clamped at zero).
  dp::PrivacyParams remaining() const { return ledger_.remaining(); }

  std::size_t releases() const noexcept { return ledger_.releases(); }
  bool exhausted() const;

  /// The session's accounting engine — admission predicates and
  /// out-of-band bookkeeping (`would_exceed`, `record`) live there.
  dp::Ledger& ledger() noexcept { return ledger_; }
  const dp::Ledger& ledger() const noexcept { return ledger_; }

  const SessionConfig& config() const noexcept { return config_; }

 private:
  DpDefense defense_;
  SessionConfig config_;
  dp::Ledger ledger_;
};

}  // namespace poiprivacy::defense
