// Frequency sanitization (Section III-A): zero out the entries of every
// type whose citywide count is at most a threshold. The paper's
// "aggressive" setting uses threshold 10, which sanitizes 90 types in
// Beijing and 138 in New York City.
#pragma once

#include <vector>

#include "poi/database.h"

namespace poiprivacy::defense {

class Sanitizer {
 public:
  Sanitizer(const poi::PoiDatabase& db, std::int32_t city_freq_threshold = 10);

  poi::FrequencyVector sanitize(poi::FrequencyVector released) const;

  bool is_sanitized(poi::TypeId t) const { return mask_[t]; }
  const std::vector<poi::TypeId>& sanitized_types() const noexcept {
    return sanitized_;
  }

 private:
  std::vector<poi::TypeId> sanitized_;
  std::vector<bool> mask_;
};

}  // namespace poiprivacy::defense
