// Budgeted weighted-distortion optimizer implementing the release
// objective of the paper's Eq. (7) (non-private) and Eq. (9) (DP variant):
//
//   max_{F~}  sum_i  (1 / R(i)) * |F~_i - F_i|
//   s.t.      (1/M) sum_i |F~_i - F_i| / (F_i + 1)  <=  beta,
//             F~_i a nonnegative integer,
//
// where R(i) is the citywide infrequency rank (rarest = 1).
//
// Interpretation notes (documented in DESIGN.md):
//   * The base vector may be real-valued (the DP variant feeds in a noised
//     mean), so an integer release necessarily spends some distortion on
//     rounding. We treat beta as the budget for distortion *beyond* the
//     nearest-integer release, which keeps every instance feasible.
//   * The continuous relaxation is a linear program whose optimum dumps
//     the entire budget into the single best benefit/cost type; that is
//     useless as a defense, so the solver caps the per-type change:
//     a positive entry may be suppressed down to 0, and a zero/rare entry
//     may be inflated by at most `max_injection`. Types are processed in
//     descending benefit/cost order, which is exactly the greedy optimum
//     of the capped problem.
#pragma once

#include <span>
#include <vector>

#include "poi/frequency.h"

namespace poiprivacy::opt {

struct DistortionProblem {
  /// Base vector (F in Eq. 7, the noised mean F*_D in Eq. 9). Entries may
  /// be real-valued and are clamped at 0.
  std::vector<double> base;
  /// Citywide infrequency rank per type (1 = rarest). Same length as base.
  std::vector<int> rank;
  /// Average relative-distortion budget (the paper sweeps 0.01..0.05).
  double beta = 0.02;
  /// Cap on fake counts injected into a type whose base entry is 0.
  /// 0 disables injection.
  std::int32_t max_injection = 2;
  /// Only types with infrequency rank <= max_rank may be perturbed
  /// (<= 0 means no restriction). The defenses restrict perturbation to
  /// the rare tail: the weighted objective earns almost nothing on common
  /// types anyway, and spending leftover budget there would wreck the
  /// Top-K utility the paper reports as barely affected by beta.
  int max_rank = 0;
};

struct DistortionSolution {
  poi::FrequencyVector release;
  /// Objective value sum_i |release_i - base_i| / R(i).
  double objective = 0.0;
  /// Mean relative distortion beyond the rounded base (what beta bounds).
  double spent_budget = 0.0;
};

/// Greedy solve of the capped problem; deterministic.
DistortionSolution optimize_release(const DistortionProblem& problem);

/// Objective of Eq. (7) for an arbitrary release.
double weighted_objective(std::span<const double> base,
                          std::span<const int> rank,
                          const poi::FrequencyVector& release);

/// Mean relative distortion (the constraint's left-hand side).
double mean_relative_distortion(std::span<const double> base,
                                const poi::FrequencyVector& release);

}  // namespace poiprivacy::opt
