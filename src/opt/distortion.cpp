#include "opt/distortion.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace poiprivacy::opt {

namespace {

poi::FrequencyVector rounded_base(std::span<const double> base) {
  poi::FrequencyVector out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    out[i] = static_cast<std::int32_t>(std::llround(std::max(0.0, base[i])));
  }
  return out;
}

}  // namespace

double weighted_objective(std::span<const double> base,
                          std::span<const int> rank,
                          const poi::FrequencyVector& release) {
  assert(base.size() == rank.size() && base.size() == release.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    acc += std::abs(release[i] - std::max(0.0, base[i])) /
           static_cast<double>(rank[i]);
  }
  return acc;
}

double mean_relative_distortion(std::span<const double> base,
                                const poi::FrequencyVector& release) {
  assert(base.size() == release.size());
  if (base.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double b = std::max(0.0, base[i]);
    acc += std::abs(release[i] - b) / (b + 1.0);
  }
  return acc / static_cast<double>(base.size());
}

DistortionSolution optimize_release(const DistortionProblem& problem) {
  const std::size_t m = problem.base.size();
  if (problem.rank.size() != m) {
    throw std::invalid_argument("optimize_release: base/rank size mismatch");
  }
  if (problem.beta < 0.0) {
    throw std::invalid_argument("optimize_release: beta must be >= 0");
  }

  DistortionSolution solution;
  solution.release = rounded_base(problem.base);
  if (m == 0) return solution;

  // Per-unit benefit 1/R(i); per-unit budget cost 1/(M (b_i + 1)).
  // Greedy over descending benefit/cost = M (b_i + 1) / R(i).
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto ratio = [&problem, m](std::size_t i) {
    const double b = std::max(0.0, problem.base[i]);
    return static_cast<double>(m) * (b + 1.0) /
           static_cast<double>(problem.rank[i]);
  };
  std::sort(order.begin(), order.end(), [&ratio](std::size_t a, std::size_t b) {
    const double ra = ratio(a);
    const double rb = ratio(b);
    if (ra != rb) return ra > rb;
    return a < b;  // deterministic tie-break
  });

  double remaining = problem.beta * static_cast<double>(m);
  for (const std::size_t i : order) {
    if (remaining <= 0.0) break;
    if (problem.max_rank > 0 && problem.rank[i] > problem.max_rank) continue;
    const double b = std::max(0.0, problem.base[i]);
    const double unit_cost = 1.0 / (b + 1.0);
    // Suppress positive entries down to 0; inject into zero entries.
    const std::int32_t cap = solution.release[i] > 0
                                 ? solution.release[i]
                                 : problem.max_injection;
    if (cap <= 0) continue;
    const auto affordable = static_cast<std::int32_t>(remaining / unit_cost);
    const std::int32_t delta = std::min(cap, affordable);
    if (delta <= 0) continue;
    if (solution.release[i] > 0) {
      solution.release[i] -= delta;
    } else {
      solution.release[i] += delta;
    }
    remaining -= static_cast<double>(delta) * unit_cost;
  }

  solution.objective = weighted_objective(problem.base, problem.rank,
                                          solution.release);
  const double base_distortion =
      mean_relative_distortion(problem.base, rounded_base(problem.base));
  solution.spent_budget =
      mean_relative_distortion(problem.base, solution.release) -
      base_distortion;
  return solution;
}

}  // namespace poiprivacy::opt
