// Geographic coordinates and the local planar projection used to map a
// city onto the km-based plane that the rest of the library works in.
#pragma once

#include "geo/geometry.h"

namespace poiprivacy::geo {

/// WGS84 geographic coordinate in degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr bool operator==(const LatLon&, const LatLon&) = default;
};

/// Great-circle distance in km (haversine on a spherical Earth).
double haversine_km(LatLon a, LatLon b) noexcept;

/// Equirectangular projection about a reference point. Adequate for a
/// city-scale extent (tens of km), where the distortion relative to the
/// haversine distance is well under 0.1%.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon reference) noexcept;

  Point to_plane(LatLon geo) const noexcept;
  LatLon to_geo(Point p) const noexcept;
  LatLon reference() const noexcept { return reference_; }

 private:
  LatLon reference_;
  double km_per_deg_lat_;
  double km_per_deg_lon_;
};

}  // namespace poiprivacy::geo
