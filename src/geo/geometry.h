// Planar geometry primitives. All coordinates are kilometres in a local
// projected plane (see geo/projection.h).
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace poiprivacy::geo {

struct Point {
  double x = 0.0;  ///< km east of the local origin
  double y = 0.0;  ///< km north of the local origin

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) noexcept {
  return {a.x + b.x, a.y + b.y};
}
constexpr Point operator-(Point a, Point b) noexcept {
  return {a.x - b.x, a.y - b.y};
}
constexpr Point operator*(Point a, double s) noexcept {
  return {a.x * s, a.y * s};
}

inline double distance(Point a, Point b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

inline double distance_sq(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Axis-aligned bounding box.
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double width() const noexcept { return max_x - min_x; }
  double height() const noexcept { return max_y - min_y; }
  double area() const noexcept { return width() * height(); }
  Point center() const noexcept {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }
  bool contains(Point p) const noexcept {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  /// Clamps p to the box.
  Point clamp(Point p) const noexcept;
  /// Does the box intersect the disk of radius r centred at c?
  bool intersects_disk(Point c, double r) const noexcept;

  friend constexpr bool operator==(const BBox&, const BBox&) = default;
};

struct Circle {
  Point center;
  double radius = 0.0;

  double area() const noexcept { return M_PI * radius * radius; }
  bool contains(Point p) const noexcept {
    return distance_sq(center, p) <= radius * radius;
  }
  BBox bbox() const noexcept {
    return {center.x - radius, center.y - radius, center.x + radius,
            center.y + radius};
  }
};

/// Exact intersection area of two disks (standard lens formula).
double disk_intersection_area(const Circle& a, const Circle& b) noexcept;

/// Area of the intersection of all given disks, estimated on a regular
/// `resolution` x `resolution` grid over the bbox of the first disk.
/// Deterministic; relative error shrinks as O(1/resolution).
/// Returns 0 for an empty span.
double disks_intersection_area(std::span<const Circle> disks,
                               int resolution = 256);

/// True iff p lies in every disk.
bool in_all_disks(Point p, std::span<const Circle> disks) noexcept;

}  // namespace poiprivacy::geo
