#include "geo/latlon.h"

#include <cmath>

namespace poiprivacy::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;
constexpr double deg2rad(double deg) noexcept { return deg * M_PI / 180.0; }
}  // namespace

double haversine_km(LatLon a, LatLon b) noexcept {
  const double phi1 = deg2rad(a.lat_deg);
  const double phi2 = deg2rad(b.lat_deg);
  const double dphi = phi2 - phi1;
  const double dlambda = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dphi / 2.0);
  const double t = std::sin(dlambda / 2.0);
  const double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

LocalProjection::LocalProjection(LatLon reference) noexcept
    : reference_(reference),
      km_per_deg_lat_(kEarthRadiusKm * M_PI / 180.0),
      km_per_deg_lon_(kEarthRadiusKm * M_PI / 180.0 *
                      std::cos(deg2rad(reference.lat_deg))) {}

Point LocalProjection::to_plane(LatLon geo) const noexcept {
  return {(geo.lon_deg - reference_.lon_deg) * km_per_deg_lon_,
          (geo.lat_deg - reference_.lat_deg) * km_per_deg_lat_};
}

LatLon LocalProjection::to_geo(Point p) const noexcept {
  return {reference_.lat_deg + p.y / km_per_deg_lat_,
          reference_.lon_deg + p.x / km_per_deg_lon_};
}

}  // namespace poiprivacy::geo
