#include "geo/hull.h"

#include <algorithm>
#include <cmath>

namespace poiprivacy::geo {

namespace {

double cross(Point o, Point a, Point b) noexcept {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

}  // namespace

std::vector<Point> convex_hull(std::span<const Point> points) {
  std::vector<Point> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), [](Point a, Point b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) return pts;

  std::vector<Point> hull(2 * pts.size());
  std::size_t k = 0;
  // Lower hull.
  for (const Point& p : pts) {
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], p) <= 0.0) --k;
    hull[k++] = p;
  }
  // Upper hull.
  const std::size_t lower_end = k + 1;
  for (std::size_t i = pts.size() - 1; i-- > 0;) {
    while (k >= lower_end && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return hull;
}

double polygon_signed_area(std::span<const Point> ring) noexcept {
  if (ring.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Point a = ring[i];
    const Point b = ring[(i + 1) % ring.size()];
    acc += a.x * b.y - b.x * a.y;
  }
  return acc / 2.0;
}

double polygon_area(std::span<const Point> ring) noexcept {
  return std::abs(polygon_signed_area(ring));
}

bool polygon_contains(std::span<const Point> ring, Point p) noexcept {
  if (ring.size() < 3) return false;
  bool inside = false;
  for (std::size_t i = 0, j = ring.size() - 1; i < ring.size(); j = i++) {
    const Point a = ring[i];
    const Point b = ring[j];
    // Boundary check: p on segment ab.
    const double d = cross(a, b, p);
    if (std::abs(d) < 1e-12 &&
        p.x >= std::min(a.x, b.x) - 1e-12 &&
        p.x <= std::max(a.x, b.x) + 1e-12 &&
        p.y >= std::min(a.y, b.y) - 1e-12 &&
        p.y <= std::max(a.y, b.y) + 1e-12) {
      return true;
    }
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at =
          a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

}  // namespace poiprivacy::geo
