// Convex hulls and polygon operations, used to summarize anchor sets and
// cloaked regions.
#pragma once

#include <span>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::geo {

/// Convex hull (Andrew monotone chain), counter-clockwise, no repeated
/// first point. Collinear input degenerates to its two extreme points;
/// fewer than 3 distinct points are returned as-is (deduplicated).
std::vector<Point> convex_hull(std::span<const Point> points);

/// Signed polygon area via the shoelace formula (positive for CCW rings).
double polygon_signed_area(std::span<const Point> ring) noexcept;

/// |signed area|.
double polygon_area(std::span<const Point> ring) noexcept;

/// Point-in-polygon by ray casting; boundary points count as inside.
bool polygon_contains(std::span<const Point> ring, Point p) noexcept;

}  // namespace poiprivacy::geo
