#include "geo/geometry.h"

#include <algorithm>

namespace poiprivacy::geo {

Point BBox::clamp(Point p) const noexcept {
  return {std::clamp(p.x, min_x, max_x), std::clamp(p.y, min_y, max_y)};
}

bool BBox::intersects_disk(Point c, double r) const noexcept {
  const Point nearest = clamp(c);
  return distance_sq(nearest, c) <= r * r;
}

double disk_intersection_area(const Circle& a, const Circle& b) noexcept {
  const double d = distance(a.center, b.center);
  const double r1 = a.radius;
  const double r2 = b.radius;
  if (d >= r1 + r2) return 0.0;
  if (d <= std::abs(r1 - r2)) {
    const double r = std::min(r1, r2);
    return M_PI * r * r;
  }
  const double r1_sq = r1 * r1;
  const double r2_sq = r2 * r2;
  const double alpha = std::acos(
      std::clamp((d * d + r1_sq - r2_sq) / (2.0 * d * r1), -1.0, 1.0));
  const double beta = std::acos(
      std::clamp((d * d + r2_sq - r1_sq) / (2.0 * d * r2), -1.0, 1.0));
  return r1_sq * (alpha - std::sin(2.0 * alpha) / 2.0) +
         r2_sq * (beta - std::sin(2.0 * beta) / 2.0);
}

bool in_all_disks(Point p, std::span<const Circle> disks) noexcept {
  for (const Circle& c : disks) {
    if (!c.contains(p)) return false;
  }
  return true;
}

double disks_intersection_area(std::span<const Circle> disks, int resolution) {
  if (disks.empty()) return 0.0;
  // The intersection is contained in the smallest disk; sample its bbox.
  const Circle* smallest = &disks[0];
  for (const Circle& c : disks) {
    if (c.radius < smallest->radius) smallest = &c;
  }
  const BBox box = smallest->bbox();
  const double dx = box.width() / resolution;
  const double dy = box.height() / resolution;
  const double cell = dx * dy;
  std::size_t inside = 0;
  for (int iy = 0; iy < resolution; ++iy) {
    const double y = box.min_y + (iy + 0.5) * dy;
    for (int ix = 0; ix < resolution; ++ix) {
      const Point p{box.min_x + (ix + 0.5) * dx, y};
      if (in_all_disks(p, disks)) ++inside;
    }
  }
  return static_cast<double>(inside) * cell;
}

}  // namespace poiprivacy::geo
