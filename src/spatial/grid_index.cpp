#include "spatial/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace poiprivacy::spatial {

GridIndex::GridIndex(std::vector<geo::Point> points, geo::BBox bounds,
                     double cell_km)
    : points_(std::move(points)), bounds_(bounds), cell_km_(cell_km) {
  assert(cell_km_ > 0.0);
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_km_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_km_)));
  cells_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
  for (std::uint32_t id = 0; id < points_.size(); ++id) {
    const auto [cx, cy] = cell_of(points_[id]);
    cells_[cell_index(cx, cy)].push_back(id);
  }
}

std::pair<int, int> GridIndex::cell_of(geo::Point p) const noexcept {
  int cx = static_cast<int>((p.x - bounds_.min_x) / cell_km_);
  int cy = static_cast<int>((p.y - bounds_.min_y) / cell_km_);
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

std::size_t GridIndex::cell_index(int cx, int cy) const noexcept {
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(cx);
}

std::vector<std::uint32_t> GridIndex::query_disk(geo::Point center,
                                                 double radius) const {
  std::vector<std::uint32_t> out;
  for_each_in_disk(center, radius,
                   [&out](std::uint32_t id, geo::Point) { out.push_back(id); });
  return out;
}

std::size_t GridIndex::count_in_disk(geo::Point center, double radius) const {
  std::size_t n = 0;
  for_each_in_disk(center, radius, [&n](std::uint32_t, geo::Point) { ++n; });
  return n;
}

}  // namespace poiprivacy::spatial
