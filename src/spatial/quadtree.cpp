#include "spatial/quadtree.h"

#include <utility>

namespace poiprivacy::spatial {

Quadtree::Quadtree(std::vector<geo::Point> points, geo::BBox bounds,
                   std::size_t max_leaf, int max_depth)
    : points_(std::move(points)),
      bounds_(bounds),
      max_leaf_(max_leaf),
      max_depth_(max_depth) {
  std::vector<std::uint32_t> ids(points_.size());
  for (std::uint32_t i = 0; i < points_.size(); ++i) ids[i] = i;
  root_ = build(bounds_, std::move(ids), 0);
}

std::int32_t Quadtree::build(const geo::BBox& box,
                             std::vector<std::uint32_t> ids, int depth) {
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({});
  nodes_[index].box = box;
  nodes_[index].count = ids.size();
  if (ids.size() <= max_leaf_ || depth >= max_depth_) {
    nodes_[index].ids = std::move(ids);
    return index;
  }
  const geo::Point c = box.center();
  const geo::BBox quads[4] = {
      {box.min_x, box.min_y, c.x, c.y},
      {c.x, box.min_y, box.max_x, c.y},
      {box.min_x, c.y, c.x, box.max_y},
      {c.x, c.y, box.max_x, box.max_y},
  };
  std::vector<std::uint32_t> parts[4];
  for (const std::uint32_t id : ids) {
    const geo::Point p = points_[id];
    // Assign boundary points to exactly one quadrant (left/bottom wins).
    const int qx = p.x < c.x ? 0 : 1;
    const int qy = p.y < c.y ? 0 : 1;
    parts[qy * 2 + qx].push_back(id);
  }
  ids.clear();
  ids.shrink_to_fit();
  for (int q = 0; q < 4; ++q) {
    // Recursive build may reallocate nodes_, so write via index afterwards.
    const std::int32_t child = build(quads[q], std::move(parts[q]), depth + 1);
    nodes_[index].children[q] = child;
  }
  return index;
}

bool Quadtree::box_contains(const geo::BBox& outer, const geo::BBox& inner) {
  return outer.min_x <= inner.min_x && outer.min_y <= inner.min_y &&
         outer.max_x >= inner.max_x && outer.max_y >= inner.max_y;
}

bool Quadtree::box_intersects(const geo::BBox& a, const geo::BBox& b) {
  return a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y &&
         b.min_y <= a.max_y;
}

void Quadtree::count_rec(std::int32_t node, const geo::BBox& box,
                         std::size_t& acc) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!box_intersects(box, n.box) || n.count == 0) return;
  if (box_contains(box, n.box)) {
    acc += n.count;
    return;
  }
  if (n.is_leaf()) {
    for (const std::uint32_t id : n.ids) {
      if (box.contains(points_[id])) ++acc;
    }
    return;
  }
  for (const std::int32_t child : n.children) count_rec(child, box, acc);
}

void Quadtree::query_rec(std::int32_t node, const geo::BBox& box,
                         std::vector<std::uint32_t>& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!box_intersects(box, n.box) || n.count == 0) return;
  if (n.is_leaf()) {
    for (const std::uint32_t id : n.ids) {
      if (box.contains(points_[id])) out.push_back(id);
    }
    return;
  }
  for (const std::int32_t child : n.children) query_rec(child, box, out);
}

std::size_t Quadtree::count_in_box(const geo::BBox& box) const {
  std::size_t acc = 0;
  if (root_ >= 0) count_rec(root_, box, acc);
  return acc;
}

std::vector<std::uint32_t> Quadtree::query_box(const geo::BBox& box) const {
  std::vector<std::uint32_t> out;
  if (root_ >= 0) query_rec(root_, box, out);
  return out;
}

}  // namespace poiprivacy::spatial
