// Uniform grid index over 2-D points for fast circular range queries.
//
// This is the workhorse behind the GSP's Query(l, r) operation: POI sets
// per city are static, so a bucketed grid beats tree structures both in
// build time and in query constant factors.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::spatial {

class GridIndex {
 public:
  /// Builds the index over `points`. `cell_km` chooses the bucket size;
  /// values near the most common query radius work well.
  GridIndex(std::vector<geo::Point> points, geo::BBox bounds,
            double cell_km = 0.5);

  /// Ids (indices into the original vector) of all points within `radius`
  /// of `center` (inclusive boundary). Order is unspecified.
  std::vector<std::uint32_t> query_disk(geo::Point center,
                                        double radius) const;

  /// Calls `fn(id, point)` for each point within the disk.
  template <typename Fn>
  void for_each_in_disk(geo::Point center, double radius, Fn&& fn) const {
    const double r_sq = radius * radius;
    const auto [cx0, cy0] = cell_of({center.x - radius, center.y - radius});
    const auto [cx1, cy1] = cell_of({center.x + radius, center.y + radius});
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        for (const std::uint32_t id : cells_[cell_index(cx, cy)]) {
          const geo::Point p = points_[id];
          if (geo::distance_sq(p, center) <= r_sq) fn(id, p);
        }
      }
    }
  }

  /// Number of points within the disk, without materializing ids.
  std::size_t count_in_disk(geo::Point center, double radius) const;

  std::size_t size() const noexcept { return points_.size(); }
  const geo::Point& point(std::uint32_t id) const { return points_[id]; }
  const geo::BBox& bounds() const noexcept { return bounds_; }

 private:
  std::pair<int, int> cell_of(geo::Point p) const noexcept;
  std::size_t cell_index(int cx, int cy) const noexcept;

  std::vector<geo::Point> points_;
  geo::BBox bounds_;
  double cell_km_;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace poiprivacy::spatial
