// Static R-tree over 2-D points, bulk-loaded with Sort-Tile-Recursive
// (STR) packing. An alternative to the uniform grid for skewed point
// sets; `bench/micro_core` compares the two on the city workload.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::spatial {

class RTree {
 public:
  /// Bulk-loads the tree; `leaf_capacity` points per leaf.
  explicit RTree(std::vector<geo::Point> points,
                 std::size_t leaf_capacity = 16);

  /// Ids of points within `radius` of `center` (inclusive).
  std::vector<std::uint32_t> query_disk(geo::Point center,
                                        double radius) const;

  /// Ids of points inside `box` (inclusive).
  std::vector<std::uint32_t> query_box(const geo::BBox& box) const;

  std::size_t size() const noexcept { return points_.size(); }
  const geo::Point& point(std::uint32_t id) const { return points_[id]; }
  /// Tree height (0 for an empty tree, 1 for a single leaf level).
  int height() const noexcept { return height_; }

 private:
  struct Node {
    geo::BBox box;
    std::int32_t first_child = -1;  ///< index into nodes_, or -1 for leaf
    std::int32_t child_count = 0;
    std::int32_t first_point = 0;   ///< leaf: offset into order_
    std::int32_t point_count = 0;
  };

  void query_disk_rec(std::int32_t node, geo::Point center, double radius,
                      std::vector<std::uint32_t>& out) const;
  void query_box_rec(std::int32_t node, const geo::BBox& box,
                     std::vector<std::uint32_t>& out) const;

  std::vector<geo::Point> points_;
  std::vector<std::uint32_t> order_;  ///< point ids grouped by leaf
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  int height_ = 0;
};

}  // namespace poiprivacy::spatial
