#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

namespace poiprivacy::spatial {

namespace {

geo::BBox bbox_of_points(const std::vector<geo::Point>& points,
                         const std::vector<std::uint32_t>& ids,
                         std::size_t lo, std::size_t hi) {
  geo::BBox box{points[ids[lo]].x, points[ids[lo]].y, points[ids[lo]].x,
                points[ids[lo]].y};
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const geo::Point p = points[ids[i]];
    box.min_x = std::min(box.min_x, p.x);
    box.min_y = std::min(box.min_y, p.y);
    box.max_x = std::max(box.max_x, p.x);
    box.max_y = std::max(box.max_y, p.y);
  }
  return box;
}

geo::BBox merge(const geo::BBox& a, const geo::BBox& b) {
  return {std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
          std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}

bool box_intersects(const geo::BBox& a, const geo::BBox& b) {
  return a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y &&
         b.min_y <= a.max_y;
}

}  // namespace

RTree::RTree(std::vector<geo::Point> points, std::size_t leaf_capacity)
    : points_(std::move(points)) {
  const std::size_t n = points_.size();
  if (n == 0) return;
  leaf_capacity = std::max<std::size_t>(1, leaf_capacity);

  // STR packing: sort by x, slice into vertical strips of
  // ceil(sqrt(num_leaves)) leaves, sort each strip by y, cut into leaves.
  order_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) order_[i] = i;
  const auto num_leaves =
      static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                         static_cast<double>(leaf_capacity)));
  const auto strips = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t strip_size =
      (n + strips - 1) / strips;  // points per strip

  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return points_[a].x < points_[b].x;
            });
  std::vector<std::int32_t> level;  // node indices of the current level
  for (std::size_t s = 0; s < n; s += strip_size) {
    const std::size_t strip_end = std::min(n, s + strip_size);
    std::sort(order_.begin() + static_cast<std::ptrdiff_t>(s),
              order_.begin() + static_cast<std::ptrdiff_t>(strip_end),
              [this](std::uint32_t a, std::uint32_t b) {
                return points_[a].y < points_[b].y;
              });
    for (std::size_t leaf = s; leaf < strip_end; leaf += leaf_capacity) {
      const std::size_t leaf_end = std::min(strip_end, leaf + leaf_capacity);
      Node node;
      node.box = bbox_of_points(points_, order_, leaf, leaf_end);
      node.first_point = static_cast<std::int32_t>(leaf);
      node.point_count = static_cast<std::int32_t>(leaf_end - leaf);
      level.push_back(static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
  }
  height_ = 1;

  // Pack parents bottom-up; internal fanout must be at least 2 or the
  // level count would never shrink.
  const std::size_t fanout = std::max<std::size_t>(2, leaf_capacity);
  while (level.size() > 1) {
    std::vector<std::int32_t> parents;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      const std::size_t end = std::min(level.size(), i + fanout);
      Node node;
      node.box = nodes_[static_cast<std::size_t>(level[i])].box;
      for (std::size_t j = i + 1; j < end; ++j) {
        node.box = merge(node.box,
                         nodes_[static_cast<std::size_t>(level[j])].box);
      }
      node.first_child = level[static_cast<std::size_t>(i)];
      node.child_count = static_cast<std::int32_t>(end - i);
      parents.push_back(static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front();
}

void RTree::query_disk_rec(std::int32_t node, geo::Point center,
                           double radius,
                           std::vector<std::uint32_t>& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!n.box.intersects_disk(center, radius)) return;
  if (n.first_child < 0) {
    const double r_sq = radius * radius;
    for (std::int32_t i = 0; i < n.point_count; ++i) {
      const std::uint32_t id =
          order_[static_cast<std::size_t>(n.first_point + i)];
      if (geo::distance_sq(points_[id], center) <= r_sq) out.push_back(id);
    }
    return;
  }
  // STR packing stores a parent's children contiguously in level order,
  // which is NOT contiguous in nodes_ across strips; child ids are
  // consecutive because each level is appended in order.
  for (std::int32_t c = 0; c < n.child_count; ++c) {
    query_disk_rec(n.first_child + c, center, radius, out);
  }
}

void RTree::query_box_rec(std::int32_t node, const geo::BBox& box,
                          std::vector<std::uint32_t>& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!box_intersects(n.box, box)) return;
  if (n.first_child < 0) {
    for (std::int32_t i = 0; i < n.point_count; ++i) {
      const std::uint32_t id =
          order_[static_cast<std::size_t>(n.first_point + i)];
      if (box.contains(points_[id])) out.push_back(id);
    }
    return;
  }
  for (std::int32_t c = 0; c < n.child_count; ++c) {
    query_box_rec(n.first_child + c, box, out);
  }
}

std::vector<std::uint32_t> RTree::query_disk(geo::Point center,
                                             double radius) const {
  std::vector<std::uint32_t> out;
  if (root_ >= 0) query_disk_rec(root_, center, radius, out);
  return out;
}

std::vector<std::uint32_t> RTree::query_box(const geo::BBox& box) const {
  std::vector<std::uint32_t> out;
  if (root_ >= 0) query_box_rec(root_, box, out);
  return out;
}

}  // namespace poiprivacy::spatial
