// Static 2-D k-d tree for nearest-neighbour lookups (used to snap
// check-ins to POIs and by dataset diagnostics).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::spatial {

class KdTree {
 public:
  explicit KdTree(std::vector<geo::Point> points);

  /// Id of the closest point, or nullopt if the tree is empty.
  std::optional<std::uint32_t> nearest(geo::Point query) const;

  /// Ids of the k closest points (fewer if the tree is smaller), closest
  /// first.
  std::vector<std::uint32_t> k_nearest(geo::Point query, std::size_t k) const;

  std::size_t size() const noexcept { return points_.size(); }
  const geo::Point& point(std::uint32_t id) const { return points_[id]; }

 private:
  struct Node {
    std::uint32_t id = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    bool split_x = true;
  };

  std::int32_t build(std::vector<std::uint32_t>& ids, std::size_t lo,
                     std::size_t hi, bool split_x);
  void nearest_rec(std::int32_t node, geo::Point query,
                   std::uint32_t& best_id, double& best_d2) const;
  void k_nearest_rec(std::int32_t node, geo::Point query, std::size_t k,
                     std::vector<std::pair<double, std::uint32_t>>& heap) const;

  std::vector<geo::Point> points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace poiprivacy::spatial
