#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>

namespace poiprivacy::spatial {

KdTree::KdTree(std::vector<geo::Point> points) : points_(std::move(points)) {
  std::vector<std::uint32_t> ids(points_.size());
  for (std::uint32_t i = 0; i < points_.size(); ++i) ids[i] = i;
  nodes_.reserve(points_.size());
  if (!ids.empty()) root_ = build(ids, 0, ids.size(), true);
}

std::int32_t KdTree::build(std::vector<std::uint32_t>& ids, std::size_t lo,
                           std::size_t hi, bool split_x) {
  if (lo >= hi) return -1;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                   ids.begin() + static_cast<std::ptrdiff_t>(mid),
                   ids.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return split_x ? points_[a].x < points_[b].x
                                    : points_[a].y < points_[b].y;
                   });
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({ids[mid], -1, -1, split_x});
  const std::int32_t left = build(ids, lo, mid, !split_x);
  const std::int32_t right = build(ids, mid + 1, hi, !split_x);
  nodes_[static_cast<std::size_t>(index)].left = left;
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

void KdTree::nearest_rec(std::int32_t node, geo::Point query,
                         std::uint32_t& best_id, double& best_d2) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const geo::Point p = points_[n.id];
  const double d2 = geo::distance_sq(p, query);
  if (d2 < best_d2) {
    best_d2 = d2;
    best_id = n.id;
  }
  const double delta = n.split_x ? query.x - p.x : query.y - p.y;
  const std::int32_t near_child = delta < 0 ? n.left : n.right;
  const std::int32_t far_child = delta < 0 ? n.right : n.left;
  nearest_rec(near_child, query, best_id, best_d2);
  if (delta * delta < best_d2) nearest_rec(far_child, query, best_id, best_d2);
}

std::optional<std::uint32_t> KdTree::nearest(geo::Point query) const {
  if (root_ < 0) return std::nullopt;
  std::uint32_t best_id = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  nearest_rec(root_, query, best_id, best_d2);
  return best_id;
}

void KdTree::k_nearest_rec(
    std::int32_t node, geo::Point query, std::size_t k,
    std::vector<std::pair<double, std::uint32_t>>& heap) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const geo::Point p = points_[n.id];
  const double d2 = geo::distance_sq(p, query);
  if (heap.size() < k) {
    heap.emplace_back(d2, n.id);
    std::push_heap(heap.begin(), heap.end());
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, n.id};
    std::push_heap(heap.begin(), heap.end());
  }
  const double delta = n.split_x ? query.x - p.x : query.y - p.y;
  const std::int32_t near_child = delta < 0 ? n.left : n.right;
  const std::int32_t far_child = delta < 0 ? n.right : n.left;
  k_nearest_rec(near_child, query, k, heap);
  if (heap.size() < k || delta * delta < heap.front().first) {
    k_nearest_rec(far_child, query, k, heap);
  }
}

std::vector<std::uint32_t> KdTree::k_nearest(geo::Point query,
                                             std::size_t k) const {
  std::vector<std::pair<double, std::uint32_t>> heap;
  if (root_ >= 0 && k > 0) k_nearest_rec(root_, query, k, heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<std::uint32_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, id] : heap) out.push_back(id);
  return out;
}

}  // namespace poiprivacy::spatial
