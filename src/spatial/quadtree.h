// Point-counting quadtree used by the adaptive-interval k-cloaking
// algorithm (Gruteser & Grunwald, MobiSys'03): the cloaker repeatedly
// quarters the city and needs fast "how many users are in this quadrant?"
// answers.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::spatial {

class Quadtree {
 public:
  /// Builds over a static point set. `max_leaf` bounds the points per leaf,
  /// `max_depth` bounds recursion.
  Quadtree(std::vector<geo::Point> points, geo::BBox bounds,
           std::size_t max_leaf = 32, int max_depth = 24);

  /// Number of points inside `box` (inclusive boundary).
  std::size_t count_in_box(const geo::BBox& box) const;

  /// Ids of points inside `box`.
  std::vector<std::uint32_t> query_box(const geo::BBox& box) const;

  const geo::BBox& bounds() const noexcept { return bounds_; }
  std::size_t size() const noexcept { return points_.size(); }
  const geo::Point& point(std::uint32_t id) const { return points_[id]; }

 private:
  struct Node {
    geo::BBox box;
    std::int32_t children[4] = {-1, -1, -1, -1};  ///< -1 = absent
    std::vector<std::uint32_t> ids;               ///< leaf payload
    std::size_t count = 0;                        ///< points in subtree
    bool is_leaf() const noexcept { return children[0] < 0; }
  };

  std::int32_t build(const geo::BBox& box, std::vector<std::uint32_t> ids,
                     int depth);
  void count_rec(std::int32_t node, const geo::BBox& box,
                 std::size_t& acc) const;
  void query_rec(std::int32_t node, const geo::BBox& box,
                 std::vector<std::uint32_t>& out) const;
  static bool box_contains(const geo::BBox& outer, const geo::BBox& inner);
  static bool box_intersects(const geo::BBox& a, const geo::BBox& b);

  std::vector<geo::Point> points_;
  geo::BBox bounds_;
  std::size_t max_leaf_;
  int max_depth_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace poiprivacy::spatial
