// Shared option plumbing for the figure-reproduction scenarios: flag
// parsing with uniform defaults and workbench construction. Lives in eval
// so the scenario registry, the `poibench` driver, the per-figure shim
// binaries, and the tests all share one parser.
//
// Every scenario accepts:
//   --seed N        master seed (default 42)
//   --locations N   locations per dataset (default 250; paper uses 1000)
//   --full          paper-scale sample sizes (slower)
//   --threads N     evaluation threads (default hardware_concurrency;
//                   1 restores the serial path; results are identical
//                   for every value)
//   --metrics[=F]   dump the obs metrics registry as JSON at exit —
//                   to stderr, or to file F when given a value (no-op
//                   in a -DPOIPRIVACY_NO_METRICS build)
//   --help          print the known-flag list and exit
//
// An unknown `--flag` prints an error naming the flag plus the usage text
// to stderr and exits with status 2 — sweep-script typos fail loudly
// instead of aborting with an uncaught exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "eval/datasets.h"

namespace poiprivacy::eval {

struct BenchOptions {
  std::uint64_t seed = 42;
  std::size_t locations = 250;
  bool full = false;
  std::size_t threads = 1;
  common::Flags flags;

  BenchOptions(int argc, const char* const* argv,
               std::vector<std::string> extra_flags = {});

  WorkbenchConfig workbench_config() const;

  /// Prints the scenario banner plus the seed/locations/threads context
  /// line to stdout.
  void print_context(const std::string& what) const;
};

/// The query ranges r every figure sweeps (Section VI-A).
inline const double kQueryRangesKm[] = {0.5, 1.0, 2.0, 4.0};

}  // namespace poiprivacy::eval
