#include "eval/json.h"

#include <cmath>
#include <cstdio>

namespace poiprivacy::eval {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator
  }
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  comma();
  value_string(name);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::value(double x) {
  comma();
  if (!std::isfinite(x)) {
    out_ += "null";  // JSON has no inf/nan
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  out_ += buf;
}

void JsonWriter::value(std::int64_t x) {
  comma();
  out_ += std::to_string(x);
}

void JsonWriter::value(std::uint64_t x) {
  comma();
  out_ += std::to_string(x);
}

void JsonWriter::value(bool x) {
  comma();
  out_ += x ? "true" : "false";
}

void JsonWriter::value(const std::string& x) {
  comma();
  value_string(x);
}

void JsonWriter::value_string(const std::string& x) {
  out_ += '"';
  for (const char c : x) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\b':
        out_ += "\\b";
        break;
      case '\f':
        out_ += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

}  // namespace poiprivacy::eval
