#include "eval/datasets.h"

namespace poiprivacy::eval {

const char* dataset_name(DatasetKind kind) noexcept {
  switch (kind) {
    case DatasetKind::kBeijingTdrive:
      return "BJ:T-drive";
    case DatasetKind::kBeijingRandom:
      return "BJ:Random";
    case DatasetKind::kNycFoursquare:
      return "NYC:Foursquare";
    case DatasetKind::kNycRandom:
      return "NYC:Random";
  }
  return "?";
}

namespace {

std::vector<geo::Point> random_locations(const geo::BBox& bounds,
                                         std::size_t count,
                                         common::Rng& rng) {
  std::vector<geo::Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.uniform(bounds.min_x, bounds.max_x),
                   rng.uniform(bounds.min_y, bounds.max_y)});
  }
  return out;
}

}  // namespace

Workbench::Workbench(const WorkbenchConfig& config)
    : config_(config),
      beijing_(poi::generate_city(poi::beijing_preset(), config.seed)),
      nyc_(poi::generate_city(poi::nyc_preset(), config.seed + 1)) {
  common::Rng rng(config.seed ^ 0xabcdef1234567890ULL);

  traj::TaxiConfig taxi_config;
  taxi_config.num_taxis = config.num_taxis;
  taxi_config.points_per_taxi = config.points_per_taxi;
  common::Rng taxi_rng = rng.fork();
  taxi_trajectories_ =
      traj::generate_taxi_trajectories(beijing_, taxi_config, taxi_rng);

  traj::CheckinConfig checkin_config;
  checkin_config.num_users = config.num_checkin_users;
  checkin_config.checkins_per_user = config.checkins_per_user;
  common::Rng checkin_rng = rng.fork();
  checkin_trajectories_ =
      traj::generate_checkins(nyc_, checkin_config, checkin_rng);

  common::Rng sample_rng = rng.fork();
  locations_[0] = traj::sample_locations(
      taxi_trajectories_, config.locations_per_dataset, sample_rng);
  locations_[1] = random_locations(beijing_.db.bounds(),
                                   config.locations_per_dataset, sample_rng);
  locations_[2] = traj::sample_locations(
      checkin_trajectories_, config.locations_per_dataset, sample_rng);
  locations_[3] = random_locations(nyc_.db.bounds(),
                                   config.locations_per_dataset, sample_rng);
}

const poi::City& Workbench::city_of(DatasetKind kind) const noexcept {
  switch (kind) {
    case DatasetKind::kBeijingTdrive:
    case DatasetKind::kBeijingRandom:
      return beijing_;
    case DatasetKind::kNycFoursquare:
    case DatasetKind::kNycRandom:
      return nyc_;
  }
  return beijing_;
}

const std::vector<geo::Point>& Workbench::locations(
    DatasetKind kind) const noexcept {
  return locations_[static_cast<int>(kind)];
}

}  // namespace poiprivacy::eval
