// ScenarioRegistry — the figure/ablation benchmarks as first-class data.
//
// Every `bench/fig*` and `ablation_*` main used to be a standalone binary
// with copy-pasted flag plumbing. Each is now a registered Scenario: a
// name, a description, the extra flags it understands, and a run function
// over eval::BenchOptions. One driver binary (`poibench`) lists and runs
// them (`--list`, `--scenario NAME`, `--all --smoke`), the per-figure
// executables are two-line shims over run_main, and the test suite drives
// the same entry points — so the scenario catalog, the CLI surface, and
// the golden coverage can no longer drift apart.
//
// Registration is explicit (bench/scenarios/register_all_scenarios), not
// static-initializer magic: scenarios live in a static library, where
// self-registering translation units would be silently dropped by the
// linker.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/bench_options.h"

namespace poiprivacy::eval {

struct Scenario {
  /// Registry key, also the legacy binary's name (e.g. "fig05_kcloak").
  std::string name;
  /// One-line summary shown by `poibench --list`.
  std::string description;
  /// Flags this scenario reads beyond the common set (BenchOptions adds
  /// seed/locations/full/threads/metrics/help itself).
  std::vector<std::string> extra_flags;
  /// Canonical tiny-city argument list for smoke runs: small enough for
  /// the regression gate to run every scenario at several thread counts,
  /// pinned to a fixed seed so outputs are comparable across builds.
  std::vector<std::string> smoke_args;
  /// True when stdout is a pure function of the flags (figure tables).
  /// False for timing benchmarks, which `--all` therefore skips.
  bool deterministic = true;
  /// The scenario body; returns the process exit code.
  std::function<int(const BenchOptions&)> run;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry.
  static ScenarioRegistry& instance();

  /// Registers a scenario. A duplicate name aborts the process with a
  /// "fatal: duplicate scenario registration: NAME" message on stderr —
  /// two scenarios answering to one key is always a merge mistake, and
  /// failing fast beats shadowing one of them. A scenario without a run
  /// function throws std::invalid_argument.
  void add(Scenario scenario);

  /// Looks up a scenario by name; nullptr when absent.
  const Scenario* find(std::string_view name) const noexcept;

  /// All scenarios in registration order.
  const std::vector<Scenario>& all() const noexcept { return scenarios_; }

  /// Runs one scenario as if it were a standalone binary: parses argv
  /// with the scenario's extra flags (so `--help` and unknown-flag
  /// rejection behave exactly like the legacy executables) and invokes
  /// run. Unknown scenario names print the known list to stderr and
  /// return 2.
  int run_main(std::string_view name, int argc,
               const char* const* argv) const;

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace poiprivacy::eval
