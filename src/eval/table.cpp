#include "eval/table.h"

#include <algorithm>
#include <ostream>

namespace poiprivacy::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) out << '-';
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

void print_note(std::ostream& out, const std::string& note) {
  out << "   " << note << "\n";
}

}  // namespace poiprivacy::eval
