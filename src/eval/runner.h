// Experiment runners shared by the bench binaries: evaluate the baseline
// attack against an arbitrary release mechanism, the fine-grained attack,
// and defense utility.
//
// All runners execute the per-location loop on the process-wide thread
// pool (common/parallel.h, `--threads N`, default hardware_concurrency)
// and combine per-location results with an ordered reduction, so every
// stats object — counters, mean values, even the order of `areas_km2` —
// is bit-identical for any thread count and equal to the serial run.
#pragma once

#include <functional>
#include <span>

#include "attack/fine_grained.h"
#include "attack/region_reid.h"
#include "common/rng.h"
#include "poi/database.h"

namespace poiprivacy::eval {

/// A release mechanism: what aggregate does the defender publish for a
/// user at `l` querying radius `r`? The identity release is db.freq(l, r).
/// Runners call it from multiple threads concurrently, so it must be
/// thread-safe and a pure function of (l, r) — for randomized mechanisms
/// use SeededReleaseFn, which gets a per-location RNG substream instead.
using ReleaseFn =
    std::function<poi::FrequencyVector(geo::Point l, double r)>;

/// A randomized release mechanism. The evaluation engine hands every
/// location its own deterministic stream (`Rng(seed).substream(i)` for
/// location index i), so results do not depend on thread count or
/// scheduling order.
using SeededReleaseFn = std::function<poi::FrequencyVector(
    geo::Point l, double r, common::Rng& rng)>;

/// The unprotected release.
ReleaseFn identity_release(const poi::PoiDatabase& db);

struct AttackStats {
  /// Locations evaluated (every location counts, per Section II-D).
  std::size_t attempts = 0;
  /// Released vector was all-zero: the attack has no pivot type and
  /// cannot even start. Disjoint from `unique`.
  std::size_t empty_releases = 0;
  /// |Phi| == 1 (the attack declared success).
  std::size_t unique = 0;
  /// |Phi| == 1 and the true location is within r of the anchor.
  std::size_t correct = 0;
  /// Anchor-vector cache traffic attributable to this evaluation
  /// (hits + misses == anchor lookups performed by the attack).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  double success_rate() const noexcept {
    return attempts ? static_cast<double>(correct) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
  double unique_rate() const noexcept {
    return attempts ? static_cast<double>(unique) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
  /// The counters form a chain of monotone invariants:
  ///   correct <= unique <= attempts, and a location is either empty or
  ///   attackable, so unique + empty_releases <= attempts.
  bool counters_consistent() const noexcept {
    return correct <= unique && unique <= attempts &&
           empty_releases <= attempts &&
           unique + empty_releases <= attempts;
  }

  friend bool operator==(const AttackStats&, const AttackStats&) = default;
};

/// Runs the baseline attack on each location's released aggregate.
AttackStats evaluate_attack(const poi::PoiDatabase& db,
                            std::span<const geo::Point> locations, double r,
                            const ReleaseFn& release);

/// Same, for a randomized release: location i draws from
/// Rng(release_seed).substream(i).
AttackStats evaluate_attack(const poi::PoiDatabase& db,
                            std::span<const geo::Point> locations, double r,
                            const SeededReleaseFn& release,
                            std::uint64_t release_seed);

struct FineGrainedStats {
  std::size_t attempts = 0;
  std::size_t successes = 0;          ///< baseline stage unique
  std::size_t contains_truth = 0;     ///< feasible region covers the truth
  std::vector<double> areas_km2;      ///< per successful attack, in
                                      ///< location order
  std::vector<double> aux_counts;     ///< anchors found per success

  double mean_area() const;

  friend bool operator==(const FineGrainedStats&,
                         const FineGrainedStats&) = default;
};

/// Runs the fine-grained attack on unprotected releases.
FineGrainedStats evaluate_fine_grained(const poi::PoiDatabase& db,
                                       std::span<const geo::Point> locations,
                                       double r,
                                       const attack::FineGrainedConfig& config);

struct UtilityStats {
  std::size_t samples = 0;
  double mean_jaccard = 0.0;  ///< Top-K Jaccard vs the unprotected vector

  friend bool operator==(const UtilityStats&, const UtilityStats&) = default;
};

/// Mean Top-K Jaccard of a release mechanism against the truth.
UtilityStats evaluate_utility(const poi::PoiDatabase& db,
                              std::span<const geo::Point> locations, double r,
                              const ReleaseFn& release, std::size_t top_k = 10);

/// Same, for a randomized release (per-location RNG substreams).
UtilityStats evaluate_utility(const poi::PoiDatabase& db,
                              std::span<const geo::Point> locations, double r,
                              const SeededReleaseFn& release,
                              std::uint64_t release_seed,
                              std::size_t top_k = 10);

}  // namespace poiprivacy::eval
