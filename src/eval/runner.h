// Experiment runners shared by the bench binaries: evaluate the baseline
// attack against an arbitrary release mechanism, the fine-grained attack,
// and defense utility.
#pragma once

#include <functional>
#include <span>

#include "attack/fine_grained.h"
#include "attack/region_reid.h"
#include "poi/database.h"

namespace poiprivacy::eval {

/// A release mechanism: what aggregate does the defender publish for a
/// user at `l` querying radius `r`? The identity release is db.freq(l, r).
using ReleaseFn =
    std::function<poi::FrequencyVector(geo::Point l, double r)>;

/// The unprotected release.
ReleaseFn identity_release(const poi::PoiDatabase& db);

struct AttackStats {
  std::size_t attempts = 0;
  /// |Phi| == 1 (the attack declared success).
  std::size_t unique = 0;
  /// |Phi| == 1 and the true location is within r of the anchor.
  std::size_t correct = 0;

  double success_rate() const noexcept {
    return attempts ? static_cast<double>(correct) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
  double unique_rate() const noexcept {
    return attempts ? static_cast<double>(unique) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
};

/// Runs the baseline attack on each location's released aggregate.
AttackStats evaluate_attack(const poi::PoiDatabase& db,
                            std::span<const geo::Point> locations, double r,
                            const ReleaseFn& release);

struct FineGrainedStats {
  std::size_t attempts = 0;
  std::size_t successes = 0;          ///< baseline stage unique
  std::size_t contains_truth = 0;     ///< feasible region covers the truth
  std::vector<double> areas_km2;      ///< per successful attack
  std::vector<double> aux_counts;     ///< anchors found per success

  double mean_area() const;
};

/// Runs the fine-grained attack on unprotected releases.
FineGrainedStats evaluate_fine_grained(const poi::PoiDatabase& db,
                                       std::span<const geo::Point> locations,
                                       double r,
                                       const attack::FineGrainedConfig& config);

struct UtilityStats {
  std::size_t samples = 0;
  double mean_jaccard = 0.0;  ///< Top-K Jaccard vs the unprotected vector
};

/// Mean Top-K Jaccard of a release mechanism against the truth.
UtilityStats evaluate_utility(const poi::PoiDatabase& db,
                              std::span<const geo::Point> locations, double r,
                              const ReleaseFn& release, std::size_t top_k = 10);

}  // namespace poiprivacy::eval
