// Dataset workbench for the evaluation: builds the two synthetic cities
// and the four user-location datasets the paper evaluates on —
// (a) T-drive taxi locations in Beijing, (b) random locations in Beijing,
// (c) Foursquare check-ins in NYC, (d) random locations in NYC.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "poi/city_model.h"
#include "traj/generators.h"

namespace poiprivacy::eval {

enum class DatasetKind {
  kBeijingTdrive,
  kBeijingRandom,
  kNycFoursquare,
  kNycRandom,
};

constexpr DatasetKind kAllDatasets[] = {
    DatasetKind::kBeijingTdrive,
    DatasetKind::kBeijingRandom,
    DatasetKind::kNycFoursquare,
    DatasetKind::kNycRandom,
};

const char* dataset_name(DatasetKind kind) noexcept;

struct WorkbenchConfig {
  std::uint64_t seed = 42;
  /// Locations per dataset (the paper samples 1,000 per experiment).
  std::size_t locations_per_dataset = 300;
  std::size_t num_taxis = 120;
  std::size_t points_per_taxi = 60;
  std::size_t num_checkin_users = 120;
  std::size_t checkins_per_user = 40;
};

/// Owns the cities, the raw traces, and the per-dataset location samples.
class Workbench {
 public:
  explicit Workbench(const WorkbenchConfig& config = {});

  const poi::City& beijing() const noexcept { return beijing_; }
  const poi::City& nyc() const noexcept { return nyc_; }

  /// The city a dataset's locations live in.
  const poi::City& city_of(DatasetKind kind) const noexcept;

  const std::vector<geo::Point>& locations(DatasetKind kind) const noexcept;

  /// The underlying Beijing taxi trajectories (for the trajectory attack).
  const std::vector<traj::Trajectory>& taxi_trajectories() const noexcept {
    return taxi_trajectories_;
  }
  const std::vector<traj::Trajectory>& checkin_trajectories() const noexcept {
    return checkin_trajectories_;
  }

  const WorkbenchConfig& config() const noexcept { return config_; }

 private:
  WorkbenchConfig config_;
  poi::City beijing_;
  poi::City nyc_;
  std::vector<traj::Trajectory> taxi_trajectories_;
  std::vector<traj::Trajectory> checkin_trajectories_;
  std::vector<geo::Point> locations_[4];
};

}  // namespace poiprivacy::eval
