#include "eval/bench_options.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>

namespace poiprivacy::eval {

namespace {

std::vector<std::string> known_flags(std::vector<std::string> extra_flags) {
  std::vector<std::string> known{"seed", "locations", "full",
                                 common::Flags::kThreadsFlag,
                                 common::Flags::kMetricsFlag};
  known.insert(known.end(), std::make_move_iterator(extra_flags.begin()),
               std::make_move_iterator(extra_flags.end()));
  return known;
}

/// Flags members are built in the initializer list, so the unknown-flag
/// rejection lives in this factory: the parser's std::invalid_argument
/// (naming the offending flag) becomes a clean stderr message + exit 2
/// instead of an uncaught-exception abort.
common::Flags parse_or_exit(int argc, const char* const* argv,
                            const std::vector<std::string>& known) {
  try {
    return common::Flags(argc, argv, known);
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n"
              << common::Flags(0, nullptr, known).usage(
                     argc > 0 ? argv[0] : "poibench");
    std::exit(2);
  }
}

}  // namespace

BenchOptions::BenchOptions(int argc, const char* const* argv,
                           std::vector<std::string> extra_flags)
    : flags(parse_or_exit(argc, argv, known_flags(std::move(extra_flags)))) {
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    std::exit(0);
  }
  seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  full = flags.get("full", false);
  locations = static_cast<std::size_t>(
      flags.get("locations", static_cast<std::int64_t>(full ? 1000 : 250)));
  threads = flags.apply_threads_flag();
  flags.apply_metrics_flag();
}

WorkbenchConfig BenchOptions::workbench_config() const {
  WorkbenchConfig config;
  config.seed = seed;
  config.locations_per_dataset = locations;
  if (full) {
    config.num_taxis = 400;
    config.points_per_taxi = 80;
    config.num_checkin_users = 400;
    config.checkins_per_user = 60;
  }
  return config;
}

void BenchOptions::print_context(const std::string& what) const {
  std::cout << what << "\n";
  std::cout << "   seed=" << seed << " locations=" << locations
            << " threads=" << threads
            << (full ? " (paper-scale --full run)" : " (reduced default run)")
            << "\n";
}

}  // namespace poiprivacy::eval
