#include "eval/uniqueness.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace poiprivacy::eval {

std::size_t UniquenessMap::count(CellOutcome outcome) const {
  return static_cast<std::size_t>(
      std::count(cells.begin(), cells.end(), outcome));
}

double UniquenessMap::uniqueness_ratio() const {
  const std::size_t unique = count(CellOutcome::kUnique);
  const std::size_t nonempty = cells.size() - count(CellOutcome::kEmpty);
  return nonempty ? static_cast<double>(unique) /
                        static_cast<double>(nonempty)
                  : 0.0;
}

UniquenessMap analyze_uniqueness(const poi::PoiDatabase& db, double r,
                                 double cell_km) {
  const geo::BBox& bounds = db.bounds();
  UniquenessMap map;
  map.cell_km = cell_km;
  map.nx = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_km)));
  map.ny = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_km)));
  map.cells.resize(static_cast<std::size_t>(map.nx) * map.ny);

  const attack::RegionReidentifier reid(db);
  // Each parallel task owns a row of disjoint cells, so the probe sweep is
  // embarrassingly parallel and trivially thread-count-invariant.
  common::parallel_for_each(
      common::global_pool(), static_cast<std::size_t>(map.ny), 1,
      [&](std::size_t row) {
        const int iy = static_cast<int>(row);
        for (int ix = 0; ix < map.nx; ++ix) {
          const geo::Point probe{bounds.min_x + (ix + 0.5) * cell_km,
                                 bounds.min_y + (iy + 0.5) * cell_km};
          const poi::FrequencyVector released = db.freq(probe, r);
          CellOutcome outcome = CellOutcome::kAmbiguous;
          if (poi::total(released) == 0) {
            outcome = CellOutcome::kEmpty;
          } else {
            const attack::ReidResult result = reid.infer(released, r);
            if (attack::attack_success(result, db, probe, r)) {
              outcome = CellOutcome::kUnique;
            }
          }
          map.cells[static_cast<std::size_t>(iy) * map.nx + ix] = outcome;
        }
      });
  return map;
}

std::string render_ascii(const UniquenessMap& map) {
  std::string out;
  out.reserve(static_cast<std::size_t>(map.ny) * (map.nx + 1));
  for (int iy = map.ny - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < map.nx; ++ix) {
      switch (map.at(ix, iy)) {
        case CellOutcome::kUnique:
          out += '#';
          break;
        case CellOutcome::kAmbiguous:
          out += '.';
          break;
        case CellOutcome::kEmpty:
          out += ' ';
          break;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace poiprivacy::eval
