// Plain-text table/series printing shared by the bench binaries, so every
// figure reproduction reports its rows in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace poiprivacy::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "== title ==" with a blank line around it.
void print_section(std::ostream& out, const std::string& title);

/// Prints "key: value" context lines (seed, sample sizes, ...).
void print_note(std::ostream& out, const std::string& note);

}  // namespace poiprivacy::eval
