#include "eval/scenario.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace poiprivacy::eval {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (find(scenario.name) != nullptr) {
    // Two scenarios answering to one key is always a merge mistake, and a
    // registry that silently shadowed one of them would corrupt the smoke
    // gate's catalog — abort so the broken build cannot even --list.
    std::cerr << "fatal: duplicate scenario registration: " << scenario.name
              << "\n";
    std::abort();
  }
  if (!scenario.run) {
    throw std::invalid_argument("scenario without a run function: " +
                                scenario.name);
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

int ScenarioRegistry::run_main(std::string_view name, int argc,
                               const char* const* argv) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    std::cerr << "error: unknown scenario: " << name << "\n"
              << "known scenarios:\n";
    for (const Scenario& s : scenarios_) {
      std::cerr << "  " << s.name << "\n";
    }
    return 2;
  }
  const BenchOptions options(argc, argv, scenario->extra_flags);
  return scenario->run(options);
}

}  // namespace poiprivacy::eval
