#include "eval/runner.h"

#include "common/stats.h"

namespace poiprivacy::eval {

ReleaseFn identity_release(const poi::PoiDatabase& db) {
  return [&db](geo::Point l, double r) { return db.freq(l, r); };
}

AttackStats evaluate_attack(const poi::PoiDatabase& db,
                            std::span<const geo::Point> locations, double r,
                            const ReleaseFn& release) {
  const attack::RegionReidentifier reid(db);
  AttackStats stats;
  for (const geo::Point l : locations) {
    ++stats.attempts;
    const attack::ReidResult result = reid.infer(release(l, r), r);
    if (result.unique()) {
      ++stats.unique;
      if (attack::attack_success(result, db, l, r)) ++stats.correct;
    }
  }
  return stats;
}

double FineGrainedStats::mean_area() const {
  return common::mean(areas_km2);
}

FineGrainedStats evaluate_fine_grained(
    const poi::PoiDatabase& db, std::span<const geo::Point> locations,
    double r, const attack::FineGrainedConfig& config) {
  const attack::FineGrainedAttack fine(db, config);
  FineGrainedStats stats;
  for (const geo::Point l : locations) {
    ++stats.attempts;
    const attack::FineGrainedResult result = fine.infer(db.freq(l, r), r);
    if (!result.baseline_unique) continue;
    // Only count attacks that correctly anchored the user; a unique-but-
    // wrong anchor is a failed attack, not a small search area.
    const geo::Point anchor = db.poi(result.major_anchor).pos;
    if (geo::distance(anchor, l) > r + 1e-9) continue;
    ++stats.successes;
    if (result.contains(l)) ++stats.contains_truth;
    stats.areas_km2.push_back(result.area_km2);
    stats.aux_counts.push_back(
        static_cast<double>(result.aux_anchors.size()));
  }
  return stats;
}

UtilityStats evaluate_utility(const poi::PoiDatabase& db,
                              std::span<const geo::Point> locations, double r,
                              const ReleaseFn& release, std::size_t top_k) {
  UtilityStats stats;
  double acc = 0.0;
  for (const geo::Point l : locations) {
    const poi::FrequencyVector truth = db.freq(l, r);
    const poi::FrequencyVector published = release(l, r);
    acc += poi::top_k_jaccard(truth, published, top_k);
    ++stats.samples;
  }
  stats.mean_jaccard = stats.samples ? acc / static_cast<double>(stats.samples)
                                     : 0.0;
  return stats;
}

}  // namespace poiprivacy::eval
