#include "eval/runner.h"

#include "common/parallel.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace poiprivacy::eval {

namespace {

// Whole-evaluation latency spans. Pure observation: stats flow through
// ordered_reduce unchanged whether or not metrics are compiled in.
struct EvalMetrics {
  obs::Histogram& attack_seconds;
  obs::Histogram& fine_grained_seconds;
  obs::Histogram& utility_seconds;

  static EvalMetrics& get() {
    static EvalMetrics* metrics = new EvalMetrics{
        obs::global_registry().histogram("eval.attack_seconds"),
        obs::global_registry().histogram("eval.fine_grained_seconds"),
        obs::global_registry().histogram("eval.utility_seconds"),
    };
    return *metrics;
  }
};

/// Locations per parallel task. Part of the determinism contract only in
/// so far as it must not depend on the thread count (it does not); small
/// enough to load-balance the expensive attack loops.
constexpr std::size_t kLocationChunk = 8;

struct AttackOutcome {
  bool empty_release = false;
  bool unique = false;
  bool correct = false;
};

AttackStats reduce_attack_outcomes(AttackStats acc, AttackOutcome outcome) {
  ++acc.attempts;
  if (outcome.empty_release) ++acc.empty_releases;
  if (outcome.unique) ++acc.unique;
  if (outcome.correct) ++acc.correct;
  return acc;
}

/// Shared core of the two evaluate_attack overloads: `attack_one(i)` runs
/// the attack for location index i and returns its outcome.
template <typename AttackOne>
AttackStats evaluate_attack_impl(const poi::PoiDatabase& db, std::size_t n,
                                 AttackOne&& attack_one) {
  const obs::Span span(EvalMetrics::get().attack_seconds);
  const poi::AnchorCacheStats cache_before = db.anchor_cache_stats();
  AttackStats stats = common::ordered_reduce(
      common::global_pool(), n, kLocationChunk, AttackStats{},
      std::forward<AttackOne>(attack_one), reduce_attack_outcomes);
  const poi::AnchorCacheStats cache_after = db.anchor_cache_stats();
  stats.cache_hits = cache_after.hits - cache_before.hits;
  stats.cache_misses = cache_after.misses - cache_before.misses;
  return stats;
}

}  // namespace

ReleaseFn identity_release(const poi::PoiDatabase& db) {
  return [&db](geo::Point l, double r) { return db.freq(l, r); };
}

AttackStats evaluate_attack(const poi::PoiDatabase& db,
                            std::span<const geo::Point> locations, double r,
                            const ReleaseFn& release) {
  const attack::RegionReidentifier reid(db);
  return evaluate_attack_impl(db, locations.size(), [&](std::size_t i) {
    const geo::Point l = locations[i];
    const attack::ReidResult result = reid.infer(release(l, r), r);
    AttackOutcome outcome;
    outcome.empty_release = !result.pivot_type.has_value();
    outcome.unique = result.unique();
    outcome.correct =
        outcome.unique && attack::attack_success(result, db, l, r);
    return outcome;
  });
}

AttackStats evaluate_attack(const poi::PoiDatabase& db,
                            std::span<const geo::Point> locations, double r,
                            const SeededReleaseFn& release,
                            std::uint64_t release_seed) {
  const attack::RegionReidentifier reid(db);
  const common::Rng base(release_seed);
  return evaluate_attack_impl(db, locations.size(), [&](std::size_t i) {
    const geo::Point l = locations[i];
    common::Rng rng = base.substream(i);
    const attack::ReidResult result = reid.infer(release(l, r, rng), r);
    AttackOutcome outcome;
    outcome.empty_release = !result.pivot_type.has_value();
    outcome.unique = result.unique();
    outcome.correct =
        outcome.unique && attack::attack_success(result, db, l, r);
    return outcome;
  });
}

double FineGrainedStats::mean_area() const {
  return common::mean(areas_km2);
}

FineGrainedStats evaluate_fine_grained(
    const poi::PoiDatabase& db, std::span<const geo::Point> locations,
    double r, const attack::FineGrainedConfig& config) {
  const obs::Span span(EvalMetrics::get().fine_grained_seconds);
  const attack::FineGrainedAttack fine(db, config);

  struct Outcome {
    bool success = false;
    bool contains_truth = false;
    double area_km2 = 0.0;
    double aux_count = 0.0;
  };
  return common::ordered_reduce(
      common::global_pool(), locations.size(), kLocationChunk,
      FineGrainedStats{},
      [&](std::size_t i) {
        const geo::Point l = locations[i];
        const attack::FineGrainedResult result = fine.infer(db.freq(l, r), r);
        Outcome outcome;
        if (!result.baseline_unique) return outcome;
        // Only count attacks that correctly anchored the user; a unique-
        // but-wrong anchor is a failed attack, not a small search area.
        const geo::Point anchor = db.poi(result.major_anchor).pos;
        if (geo::distance(anchor, l) > r + 1e-9) return outcome;
        outcome.success = true;
        outcome.contains_truth = result.contains(l);
        outcome.area_km2 = result.area_km2;
        outcome.aux_count = static_cast<double>(result.aux_anchors.size());
        return outcome;
      },
      [](FineGrainedStats acc, Outcome outcome) {
        ++acc.attempts;
        if (outcome.success) {
          ++acc.successes;
          if (outcome.contains_truth) ++acc.contains_truth;
          acc.areas_km2.push_back(outcome.area_km2);
          acc.aux_counts.push_back(outcome.aux_count);
        }
        return acc;
      });
}

namespace {

template <typename SampleOne>
UtilityStats evaluate_utility_impl(std::size_t n, std::size_t top_k,
                                   const poi::PoiDatabase& db,
                                   std::span<const geo::Point> locations,
                                   double r, SampleOne&& sample_one) {
  const obs::Span span(EvalMetrics::get().utility_seconds);
  struct Acc {
    UtilityStats stats;
    double sum = 0.0;
  };
  Acc acc = common::ordered_reduce(
      common::global_pool(), n, kLocationChunk, Acc{},
      [&](std::size_t i) {
        const geo::Point l = locations[i];
        const poi::FrequencyVector truth = db.freq(l, r);
        return poi::top_k_jaccard(truth, sample_one(i, l), top_k);
      },
      [](Acc a, double jaccard) {
        a.sum += jaccard;
        ++a.stats.samples;
        return a;
      });
  acc.stats.mean_jaccard =
      acc.stats.samples ? acc.sum / static_cast<double>(acc.stats.samples)
                        : 0.0;
  return acc.stats;
}

}  // namespace

UtilityStats evaluate_utility(const poi::PoiDatabase& db,
                              std::span<const geo::Point> locations, double r,
                              const ReleaseFn& release, std::size_t top_k) {
  return evaluate_utility_impl(
      locations.size(), top_k, db, locations, r,
      [&](std::size_t, geo::Point l) { return release(l, r); });
}

UtilityStats evaluate_utility(const poi::PoiDatabase& db,
                              std::span<const geo::Point> locations, double r,
                              const SeededReleaseFn& release,
                              std::uint64_t release_seed, std::size_t top_k) {
  const common::Rng base(release_seed);
  return evaluate_utility_impl(locations.size(), top_k, db, locations, r,
                               [&](std::size_t i, geo::Point l) {
                                 common::Rng rng = base.substream(i);
                                 return release(l, r, rng);
                               });
}

}  // namespace poiprivacy::eval
