// Minimal JSON emission for bench binaries that report machine-readable
// results (plain-text tables remain the human-facing format; JSON lines
// are what sweep scripts and dashboards ingest).
//
//   eval::JsonWriter json;
//   json.begin_object();
//   json.field("requests_per_sec", 1234.5);
//   json.key("latency_ms");
//   json.begin_object();
//   ...
//   json.end_object();
//   json.end_object();
//   std::cout << json.str() << "\n";
//
// Numbers are emitted with enough digits to round-trip doubles; strings
// are escaped per RFC 8259 (control characters, quote, backslash).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poiprivacy::eval {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next value inside an object.
  void key(const std::string& name);

  void value(double x);
  void value(std::int64_t x);
  void value(std::uint64_t x);
  void value(bool x);
  void value(const std::string& x);
  void value(const char* x) { value(std::string(x)); }

  /// key() + value() in one call.
  template <typename T>
  void field(const std::string& name, T x) {
    key(name);
    value(x);
  }

  const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void value_string(const std::string& x);

  std::string out_;
  /// Whether a value has already been written at each nesting level.
  std::vector<bool> needs_comma_{false};
  bool pending_key_ = false;
};

}  // namespace poiprivacy::eval
