// Location-uniqueness analysis — the phenomenon (Cao et al., IMWUT'18)
// that motivates the whole paper: how much of a city can be re-identified
// from POI type aggregates alone?
//
// The analyzer sweeps a regular grid of probe locations and runs the
// baseline attack on each honest release, producing
//   * the citywide uniqueness ratio per query range, and
//   * a per-cell map (unique / ambiguous / empty) for visualisation.
#pragma once

#include <vector>

#include "attack/region_reid.h"
#include "poi/database.h"

namespace poiprivacy::eval {

enum class CellOutcome : std::uint8_t {
  kEmpty,      ///< no POI within range: nothing released, nothing to attack
  kAmbiguous,  ///< attack left zero or several candidates
  kUnique,     ///< attack re-identified the probe uniquely (and correctly)
};

struct UniquenessMap {
  int nx = 0;
  int ny = 0;
  double cell_km = 0.0;
  std::vector<CellOutcome> cells;  ///< row-major, bottom row first

  CellOutcome at(int ix, int iy) const {
    return cells[static_cast<std::size_t>(iy) * nx + ix];
  }
  std::size_t count(CellOutcome outcome) const;
  /// Unique cells over non-empty cells (0 if the city is empty).
  double uniqueness_ratio() const;
};

/// Probes the city on a grid of the given pitch at query radius r.
UniquenessMap analyze_uniqueness(const poi::PoiDatabase& db, double r,
                                 double cell_km = 1.0);

/// Renders the map as ASCII art ('#': unique, '.': ambiguous, ' ': empty),
/// top row first, one row per line.
std::string render_ascii(const UniquenessMap& map);

}  // namespace poiprivacy::eval
