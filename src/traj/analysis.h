// Trajectory analytics: the mobility statistics used to sanity-check the
// synthetic traces against real-trace behaviour (speeds, coverage) and to
// derive check-in-like events from continuous traces.
#pragma once

#include <vector>

#include "traj/trajectory.h"

namespace poiprivacy::traj {

struct TrajectoryStats {
  double total_distance_km = 0.0;
  double duration_hours = 0.0;
  double mean_speed_kmh = 0.0;       ///< over moving segments
  double max_segment_speed_kmh = 0.0;
  double radius_of_gyration_km = 0.0;
};

/// Basic per-trajectory statistics; zeroes for fewer than two points.
TrajectoryStats analyze(const Trajectory& trajectory);

struct StayPoint {
  geo::Point center;
  TimeSec arrival = 0;
  TimeSec departure = 0;

  TimeSec dwell() const noexcept { return departure - arrival; }
};

/// Stay-point detection (Li et al., GIS'08 style): a maximal run of fixes
/// within `radius_km` of its first fix lasting at least `min_dwell`
/// becomes a stay point at the run's centroid.
std::vector<StayPoint> detect_stay_points(const Trajectory& trajectory,
                                          double radius_km = 0.2,
                                          TimeSec min_dwell = 20 * 60);

}  // namespace poiprivacy::traj
