#include "traj/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace poiprivacy::traj {

namespace {

/// A cluster-biased point: mostly near a hot cluster, sometimes uniform.
geo::Point cluster_biased_point(const poi::City& city, common::Rng& rng) {
  const geo::BBox& b = city.db.bounds();
  const poi::CityLayout& layout = city.layout;
  if (layout.cluster_centers.empty() || rng.bernoulli(0.2)) {
    return {rng.uniform(b.min_x, b.max_x), rng.uniform(b.min_y, b.max_y)};
  }
  const std::size_t c = rng.categorical(layout.cluster_weights);
  const double sigma = layout.cluster_sigmas_km[c];
  return b.clamp({layout.cluster_centers[c].x + rng.normal(0.0, sigma),
                  layout.cluster_centers[c].y + rng.normal(0.0, sigma)});
}

}  // namespace

void generate_taxi_points(const poi::City& city, const TaxiConfig& config,
                          common::Rng& rng, std::span<TrackPoint> out) {
  const geo::BBox& bounds = city.db.bounds();
  geo::Point pos = cluster_biased_point(city, rng);
  geo::Point waypoint = cluster_biased_point(city, rng);
  TimeSec now = rng.uniform_int(0, kSecondsPerWeek - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {pos, now};
    const TimeSec gap =
        rng.uniform_int(config.min_sample_gap, config.max_sample_gap);
    const double speed_kms =
        rng.uniform(config.min_speed_kmh, config.max_speed_kmh) / 3600.0;
    double travel = speed_kms * static_cast<double>(gap);
    // Advance towards the waypoint, re-targeting when reached.
    while (travel > 1e-9) {
      const double remaining = geo::distance(pos, waypoint);
      if (remaining <= travel) {
        pos = waypoint;
        travel -= remaining;
        waypoint = cluster_biased_point(city, rng);
      } else {
        const double f = travel / remaining;
        pos = {pos.x + (waypoint.x - pos.x) * f,
               pos.y + (waypoint.y - pos.y) * f};
        travel = 0.0;
      }
    }
    pos = bounds.clamp({pos.x + rng.normal(0.0, config.path_jitter_km),
                        pos.y + rng.normal(0.0, config.path_jitter_km)});
    now += gap;
  }
}

void generate_checkin_points(const poi::City& city,
                             const CheckinConfig& config, common::Rng& rng,
                             std::span<TrackPoint> out) {
  const auto& pois = city.db.pois();
  assert(!pois.empty());
  const geo::BBox& bounds = city.db.bounds();
  TimeSec now = rng.uniform_int(0, kSecondsPerWeek - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Uniform over POIs == density-biased over space, mimicking the
    // popularity skew of real check-ins.
    const auto& venue = pois[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1))];
    const geo::Point pos = bounds.clamp(
        {venue.pos.x + rng.normal(0.0, config.position_noise_km),
         venue.pos.y + rng.normal(0.0, config.position_noise_km)});
    out[i] = {pos, now};
    now += rng.uniform_int(config.min_gap, config.max_gap);
  }
}

std::vector<Trajectory> generate_taxi_trajectories(const poi::City& city,
                                                   const TaxiConfig& config,
                                                   common::Rng& rng) {
  std::vector<Trajectory> out;
  out.reserve(config.num_taxis);
  for (std::uint32_t taxi = 0; taxi < config.num_taxis; ++taxi) {
    Trajectory t;
    t.user_id = taxi;
    // Sized up front: the per-point helper never reallocates mid-walk.
    t.points.resize(config.points_per_taxi);
    generate_taxi_points(city, config, rng, t.points);
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Trajectory> generate_checkins(const poi::City& city,
                                          const CheckinConfig& config,
                                          common::Rng& rng) {
  std::vector<Trajectory> out;
  out.reserve(config.num_users);
  for (std::uint32_t user = 0; user < config.num_users; ++user) {
    Trajectory t;
    t.user_id = user;
    t.points.resize(config.checkins_per_user);
    generate_checkin_points(city, config, rng, t.points);
    out.push_back(std::move(t));
  }
  return out;
}

void fill_taxi_store(const poi::City& city, const TaxiConfig& config,
                     std::uint64_t seed, TrajectoryStore& store) {
  store.resize(config.num_taxis, config.points_per_taxi);
  const common::Rng base(seed);
  for (std::size_t u = 0; u < store.num_users(); ++u) {
    common::Rng rng = base.substream(u);
    generate_taxi_points(city, config, rng, store.user_points(u));
  }
}

void fill_taxi_store(const poi::City& city, const TaxiConfig& config,
                     std::uint64_t seed, TrajectoryStore& store,
                     common::ThreadPool& pool) {
  store.resize(config.num_taxis, config.points_per_taxi);
  const common::Rng base(seed);
  common::parallel_for_each(
      pool, store.num_users(), 256, [&](std::size_t u) {
        common::Rng rng = base.substream(u);
        generate_taxi_points(city, config, rng, store.user_points(u));
      });
}

void fill_checkin_store(const poi::City& city, const CheckinConfig& config,
                        std::uint64_t seed, TrajectoryStore& store) {
  store.resize(config.num_users, config.checkins_per_user);
  const common::Rng base(seed);
  for (std::size_t u = 0; u < store.num_users(); ++u) {
    common::Rng rng = base.substream(u);
    generate_checkin_points(city, config, rng, store.user_points(u));
  }
}

void fill_checkin_store(const poi::City& city, const CheckinConfig& config,
                        std::uint64_t seed, TrajectoryStore& store,
                        common::ThreadPool& pool) {
  store.resize(config.num_users, config.checkins_per_user);
  const common::Rng base(seed);
  common::parallel_for_each(
      pool, store.num_users(), 256, [&](std::size_t u) {
        common::Rng rng = base.substream(u);
        generate_checkin_points(city, config, rng, store.user_points(u));
      });
}

std::vector<geo::Point> sample_locations(
    const std::vector<Trajectory>& trajectories, std::size_t count,
    common::Rng& rng) {
  std::vector<geo::Point> pool;
  for (const Trajectory& t : trajectories) {
    for (const TrackPoint& p : t.points) pool.push_back(p.pos);
  }
  if (pool.empty()) return {};
  std::vector<geo::Point> out;
  out.reserve(count);
  if (count >= pool.size()) {
    out = pool;
    rng.shuffle(out);
    return out;
  }
  for (const std::size_t idx : rng.sample_indices(pool.size(), count)) {
    out.push_back(pool[idx]);
  }
  return out;
}

std::vector<ReleasePair> extract_release_pairs(
    const std::vector<Trajectory>& trajectories, const poi::PoiDatabase& db,
    double radius_km, TimeSec max_gap) {
  std::vector<ReleasePair> out;
  for (const Trajectory& t : trajectories) {
    for (std::size_t i = 0; i + 1 < t.points.size(); ++i) {
      const TrackPoint& a = t.points[i];
      const TrackPoint& b = t.points[i + 1];
      const TimeSec gap = b.time - a.time;
      if (gap <= 0 || gap > max_gap) continue;
      if (db.freq(a.pos, radius_km) == db.freq(b.pos, radius_km)) continue;
      out.push_back({a.pos, b.pos, a.time, b.time});
    }
  }
  return out;
}

}  // namespace poiprivacy::traj
