#include "traj/analysis.h"

#include <algorithm>
#include <cmath>

namespace poiprivacy::traj {

TrajectoryStats analyze(const Trajectory& trajectory) {
  TrajectoryStats stats;
  const auto& points = trajectory.points;
  if (points.size() < 2) return stats;

  double weighted_speed = 0.0;
  double moving_time = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double km = geo::distance(points[i].pos, points[i - 1].pos);
    const double hours =
        static_cast<double>(points[i].time - points[i - 1].time) / 3600.0;
    stats.total_distance_km += km;
    if (hours > 0.0) {
      const double speed = km / hours;
      stats.max_segment_speed_kmh = std::max(stats.max_segment_speed_kmh,
                                             speed);
      weighted_speed += km;
      moving_time += hours;
    }
  }
  stats.duration_hours =
      static_cast<double>(points.back().time - points.front().time) / 3600.0;
  stats.mean_speed_kmh = moving_time > 0.0 ? weighted_speed / moving_time
                                           : 0.0;

  geo::Point centroid{0.0, 0.0};
  for (const TrackPoint& p : points) {
    centroid.x += p.pos.x;
    centroid.y += p.pos.y;
  }
  centroid.x /= static_cast<double>(points.size());
  centroid.y /= static_cast<double>(points.size());
  double acc = 0.0;
  for (const TrackPoint& p : points) {
    acc += geo::distance_sq(p.pos, centroid);
  }
  stats.radius_of_gyration_km =
      std::sqrt(acc / static_cast<double>(points.size()));
  return stats;
}

std::vector<StayPoint> detect_stay_points(const Trajectory& trajectory,
                                          double radius_km,
                                          TimeSec min_dwell) {
  std::vector<StayPoint> out;
  const auto& points = trajectory.points;
  std::size_t i = 0;
  while (i < points.size()) {
    // Extend the run while fixes stay within radius of the run's start.
    std::size_t j = i + 1;
    while (j < points.size() &&
           geo::distance(points[j].pos, points[i].pos) <= radius_km) {
      ++j;
    }
    const TimeSec dwell = points[j - 1].time - points[i].time;
    if (j > i + 1 && dwell >= min_dwell) {
      geo::Point center{0.0, 0.0};
      for (std::size_t k = i; k < j; ++k) {
        center.x += points[k].pos.x;
        center.y += points[k].pos.y;
      }
      const auto n = static_cast<double>(j - i);
      out.push_back(
          {{center.x / n, center.y / n}, points[i].time, points[j - 1].time});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace poiprivacy::traj
