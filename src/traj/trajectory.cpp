#include "traj/trajectory.h"

namespace poiprivacy::traj {

namespace {
TimeSec mod_floor(TimeSec value, TimeSec modulus) noexcept {
  TimeSec m = value % modulus;
  if (m < 0) m += modulus;
  return m;
}
}  // namespace

int hour_of_day(TimeSec t) noexcept {
  return static_cast<int>(mod_floor(t, kSecondsPerDay) / kSecondsPerHour);
}

int day_of_week(TimeSec t) noexcept {
  return static_cast<int>(mod_floor(t, kSecondsPerWeek) / kSecondsPerDay);
}

}  // namespace poiprivacy::traj
