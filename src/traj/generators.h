// Synthetic user-location data sources standing in for the paper's
// real-world traces (see DESIGN.md, Substitutions):
//
//   * TaxiTrajectoryGenerator  — T-drive-style taxi trajectories in the
//     Beijing model: waypoint movement between hot clusters at realistic
//     speeds, sampled every 1-5 minutes.
//   * CheckinGenerator         — Foursquare-style check-in sequences in
//     the NYC model: locations snap to (noisy neighbourhoods of) POIs,
//     with hour-scale gaps between check-ins.
//
// Both produce locations biased towards dense POI areas, which is why —
// as the paper observes — the attacks do better on real traces than on
// uniformly random locations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "poi/city_model.h"
#include "traj/trajectory.h"

namespace poiprivacy::traj {

struct TaxiConfig {
  std::size_t num_taxis = 100;
  std::size_t points_per_taxi = 60;
  double min_speed_kmh = 20.0;
  double max_speed_kmh = 50.0;
  TimeSec min_sample_gap = 60;    ///< seconds between consecutive fixes
  TimeSec max_sample_gap = 300;
  /// Gaussian jitter (km) applied around the straight waypoint path, a
  /// cheap stand-in for road-network deviation.
  double path_jitter_km = 0.08;
};

/// Generates taxi trajectories over the given city layout.
std::vector<Trajectory> generate_taxi_trajectories(
    const poi::City& city, const TaxiConfig& config, common::Rng& rng);

struct CheckinConfig {
  std::size_t num_users = 100;
  std::size_t checkins_per_user = 30;
  /// Check-in positions are POI positions plus this Gaussian noise (km).
  double position_noise_km = 0.1;
  TimeSec min_gap = 30 * 60;        ///< 30 minutes
  TimeSec max_gap = 8 * 3600;       ///< 8 hours
};

/// Generates check-in sequences (each user's check-ins form a Trajectory).
std::vector<Trajectory> generate_checkins(const poi::City& city,
                                          const CheckinConfig& config,
                                          common::Rng& rng);

/// One user's taxi trajectory into caller-owned storage (`out.size()`
/// points; the draw sequence per point is identical to
/// generate_taxi_trajectories). Allocation-free.
void generate_taxi_points(const poi::City& city, const TaxiConfig& config,
                          common::Rng& rng, std::span<TrackPoint> out);

/// One user's check-in sequence into caller-owned storage. Allocation-free.
void generate_checkin_points(const poi::City& city,
                             const CheckinConfig& config, common::Rng& rng,
                             std::span<TrackPoint> out);

/// Structure-of-arrays trajectory storage for population-scale sweeps:
/// one flat TrackPoint block, fixed points-per-user stride, so 100K+
/// users cost one allocation instead of one vector per user.
class TrajectoryStore {
 public:
  /// Sizes the store for `users` x `points_per_user` (reuses capacity).
  void resize(std::size_t users, std::size_t points_per_user) {
    users_ = users;
    per_user_ = points_per_user;
    points_.resize(users * points_per_user);
  }

  std::size_t num_users() const noexcept { return users_; }
  std::size_t points_per_user() const noexcept { return per_user_; }
  std::size_t total_points() const noexcept { return points_.size(); }

  std::span<TrackPoint> user_points(std::size_t u) noexcept {
    return std::span(points_).subspan(u * per_user_, per_user_);
  }
  std::span<const TrackPoint> user_points(std::size_t u) const noexcept {
    return std::span(points_).subspan(u * per_user_, per_user_);
  }

 private:
  std::vector<TrackPoint> points_;
  std::size_t users_ = 0;
  std::size_t per_user_ = 0;
};

/// Fills `store` with config.num_taxis x config.points_per_taxi taxi
/// points. Each user u draws from common::Rng(seed).substream(u) — a
/// function of (seed, u) alone — so the serial overload and the parallel
/// one produce bit-identical stores at every thread count. The serial
/// overload performs zero heap allocations once the store is sized
/// (asserted by the linkage_100k scenario's smoke-mode allocation check).
void fill_taxi_store(const poi::City& city, const TaxiConfig& config,
                     std::uint64_t seed, TrajectoryStore& store);
void fill_taxi_store(const poi::City& city, const TaxiConfig& config,
                     std::uint64_t seed, TrajectoryStore& store,
                     common::ThreadPool& pool);

/// Check-in analog of fill_taxi_store (num_users x checkins_per_user).
void fill_checkin_store(const poi::City& city, const CheckinConfig& config,
                        std::uint64_t seed, TrajectoryStore& store);
void fill_checkin_store(const poi::City& city, const CheckinConfig& config,
                        std::uint64_t seed, TrajectoryStore& store,
                        common::ThreadPool& pool);

/// Flattens trajectories into a plain location sample (used when a figure
/// needs "locations from dataset X" rather than full trajectories).
std::vector<geo::Point> sample_locations(
    const std::vector<Trajectory>& trajectories, std::size_t count,
    common::Rng& rng);

/// A pair of successive aggregate releases from one trajectory — the unit
/// the trajectory-uniqueness attack works on. The paper keeps pairs whose
/// frequency vectors differ and whose gap is below 10 minutes.
struct ReleasePair {
  geo::Point first;
  geo::Point second;
  TimeSec first_time = 0;
  TimeSec second_time = 0;

  TimeSec duration() const noexcept { return second_time - first_time; }
  double distance_km() const noexcept {
    return geo::distance(first, second);
  }
};

/// Extracts qualifying successive-release pairs from trajectories:
/// duration in (0, max_gap] and Freq(first, r) != Freq(second, r).
std::vector<ReleasePair> extract_release_pairs(
    const std::vector<Trajectory>& trajectories, const poi::PoiDatabase& db,
    double radius_km, TimeSec max_gap = 10 * 60);

}  // namespace poiprivacy::traj
