// Trajectory data model: timestamped location sequences, the input to the
// trajectory-uniqueness attack (Section IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::traj {

/// Seconds since an arbitrary epoch (the generators use Monday 00:00 so
/// hour-of-day / day-of-week features are straightforward).
using TimeSec = std::int64_t;

constexpr TimeSec kSecondsPerHour = 3600;
constexpr TimeSec kSecondsPerDay = 24 * kSecondsPerHour;
constexpr TimeSec kSecondsPerWeek = 7 * kSecondsPerDay;

struct TrackPoint {
  geo::Point pos;
  TimeSec time = 0;
};

struct Trajectory {
  std::uint32_t user_id = 0;
  std::vector<TrackPoint> points;
};

/// Hour of day in [0, 24) for a timestamp.
int hour_of_day(TimeSec t) noexcept;

/// Day of week in [0, 7), 0 = Monday.
int day_of_week(TimeSec t) noexcept;

}  // namespace poiprivacy::traj
