// Adaptive-interval spatial k-cloaking (Gruteser & Grunwald, MobiSys'03),
// used both as a standalone defense (Section III-C) and as the dummy-
// location source inside the differentially private defense (Section V-B).
//
// The cloaker quarters the city recursively: as long as the quadrant
// containing the requester still holds at least k users (the requester
// plus k-1 registered users), it descends; the first quadrant that would
// break k-anonymity stops the recursion and its parent is the cloak.
#pragma once

#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"
#include "spatial/quadtree.h"

namespace poiprivacy::cloak {

struct CloakResult {
  geo::BBox region;
  std::size_t users_inside = 0;  ///< registered users in the region
  int depth = 0;                 ///< number of quartering steps taken
};

class AdaptiveIntervalCloaker {
 public:
  /// `users` are the registered user positions (the requester is counted
  /// implicitly and need not be among them).
  AdaptiveIntervalCloaker(std::vector<geo::Point> users, geo::BBox bounds);

  /// Smallest quadrant chain containing `target` with >= k-anonymity.
  /// k <= 1 degenerates to the deepest quadrant containing the target.
  CloakResult cloak(geo::Point target, std::size_t k) const;

  /// k dummy locations for the DP defense: the target itself plus k-1
  /// locations drawn from the registered users inside the cloaked region
  /// (topped up with uniform points in the region if there are too few).
  std::vector<geo::Point> dummy_locations(geo::Point target, std::size_t k,
                                          common::Rng& rng) const;

  /// k locations drawn from the registered users inside `region` (topped
  /// up with uniform points in the region). Unlike dummy_locations the
  /// requester is not included, so the draw is a pure function of
  /// (region, k, rng state) — the canonical dummy set the serving layer
  /// caches per cloaked region.
  std::vector<geo::Point> region_dummy_locations(const geo::BBox& region,
                                                 std::size_t k,
                                                 common::Rng& rng) const;

  std::size_t num_users() const noexcept { return users_.size(); }
  const geo::BBox& bounds() const noexcept { return bounds_; }

 private:
  /// Draws users inside `region` (then uniform top-up) until out.size() == k.
  void append_region_draws(std::vector<geo::Point>& out,
                           const geo::BBox& region, std::size_t k,
                           common::Rng& rng) const;

  geo::BBox bounds_;
  std::vector<geo::Point> users_;
  spatial::Quadtree tree_;
  static constexpr int kMaxDepth = 20;
};

/// Uniform synthetic user population (the paper assumes 10,000 users
/// uniformly distributed over each city).
std::vector<geo::Point> uniform_population(const geo::BBox& bounds,
                                           std::size_t count,
                                           common::Rng& rng);

}  // namespace poiprivacy::cloak
