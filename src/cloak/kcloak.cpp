#include "cloak/kcloak.h"

#include <algorithm>

namespace poiprivacy::cloak {

AdaptiveIntervalCloaker::AdaptiveIntervalCloaker(std::vector<geo::Point> users,
                                                 geo::BBox bounds)
    : bounds_(bounds), users_(users), tree_(std::move(users), bounds) {}

CloakResult AdaptiveIntervalCloaker::cloak(geo::Point target,
                                           std::size_t k) const {
  geo::BBox current = bounds_;
  int depth = 0;
  while (depth < kMaxDepth) {
    const geo::Point c = current.center();
    // Quadrant containing the target (boundary goes left/bottom, matching
    // the quadtree's partition rule).
    const geo::BBox quadrant{
        target.x < c.x ? current.min_x : c.x,
        target.y < c.y ? current.min_y : c.y,
        target.x < c.x ? c.x : current.max_x,
        target.y < c.y ? c.y : current.max_y,
    };
    // Requester + (k-1) registered users give k-anonymity.
    const std::size_t inside = tree_.count_in_box(quadrant);
    if (inside + 1 < k) break;
    current = quadrant;
    ++depth;
  }
  return {current, tree_.count_in_box(current), depth};
}

std::vector<geo::Point> AdaptiveIntervalCloaker::dummy_locations(
    geo::Point target, std::size_t k, common::Rng& rng) const {
  std::vector<geo::Point> out;
  if (k == 0) return out;
  const CloakResult result = cloak(target, k);
  out.push_back(target);
  append_region_draws(out, result.region, k, rng);
  return out;
}

std::vector<geo::Point> AdaptiveIntervalCloaker::region_dummy_locations(
    const geo::BBox& region, std::size_t k, common::Rng& rng) const {
  std::vector<geo::Point> out;
  append_region_draws(out, region, k, rng);
  return out;
}

void AdaptiveIntervalCloaker::append_region_draws(std::vector<geo::Point>& out,
                                                  const geo::BBox& region,
                                                  std::size_t k,
                                                  common::Rng& rng) const {
  std::vector<std::uint32_t> ids = tree_.query_box(region);
  rng.shuffle(ids);
  for (const std::uint32_t id : ids) {
    if (out.size() >= k) break;
    out.push_back(tree_.point(id));
  }
  while (out.size() < k) {
    out.push_back({rng.uniform(region.min_x, region.max_x),
                   rng.uniform(region.min_y, region.max_y)});
  }
}

std::vector<geo::Point> uniform_population(const geo::BBox& bounds,
                                           std::size_t count,
                                           common::Rng& rng) {
  std::vector<geo::Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.uniform(bounds.min_x, bounds.max_x),
                   rng.uniform(bounds.min_y, bounds.max_y)});
  }
  return out;
}

}  // namespace poiprivacy::cloak
