// Pivot-robust re-identification — an extension beyond the paper.
//
// The aggregate-level defenses (sanitization, Eq. 7/9 optimization)
// perturb exactly the entries the baseline attack keys on: the rarest
// present types. This variant assumes the released vector may have up to
// a few suppressed or inflated entries and compensates:
//
//   * instead of one pivot it tries the `num_pivots` rarest present
//     types;
//   * the domination test tolerates up to `max_violations` violated
//     dimensions with total deficit at most `max_deficit` (a suppressed
//     entry in the release can only make domination easier, but an
//     *inflated* one would wrongly prune the true anchor — the tolerant
//     test survives that);
//   * candidates found under different pivots vote: positions within r of
//     each other are merged, and the attack succeeds when one merged
//     cluster clearly dominates the vote.
#pragma once

#include "attack/region_reid.h"

namespace poiprivacy::attack {

struct RobustReidConfig {
  std::size_t num_pivots = 3;     ///< how many rare present types to try
  int max_violations = 2;         ///< dimensions allowed to violate domination
  std::int32_t max_deficit = 3;   ///< total count deficit tolerated
  /// A cluster wins when it has at least this fraction of all votes.
  double win_margin = 0.5;
};

struct RobustReidResult {
  /// Merged candidate clusters, best first.
  struct Cluster {
    geo::Point center;
    int votes = 0;
  };
  std::vector<Cluster> clusters;
  bool decided = false;  ///< one cluster won the vote

  geo::Point best() const { return clusters.front().center; }
};

/// Tolerant domination: a >= b except for at most `max_violations`
/// dimensions whose total deficit is at most `max_deficit`. Span-based so
/// it runs directly over FreqArena rows.
bool dominates_tolerant(std::span<const std::int32_t> a,
                        std::span<const std::int32_t> b, int max_violations,
                        std::int32_t max_deficit) noexcept;

class RobustReidentifier {
 public:
  RobustReidentifier(const poi::PoiDatabase& db, RobustReidConfig config = {})
      : ctx_(db), config_(config) {}

  RobustReidResult infer(const poi::FrequencyVector& released, double r) const;

  /// Success criterion analogous to attack_success: decided and the best
  /// cluster's centre is within r of the truth.
  bool success(const RobustReidResult& result, geo::Point truth,
               double r) const noexcept;

 private:
  AttackContext ctx_;
  RobustReidConfig config_;
};

}  // namespace poiprivacy::attack
