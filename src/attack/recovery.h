// Learning-based recovery of sanitized POI type frequencies
// (Section III-A, "Prediction against sanitization").
//
// The defender zeroes the entries of citywide-infrequent types. The
// attacker — who knows the POI database and which types are sanitized —
// trains one SVM classifier per sanitized type that predicts the hidden
// frequency from the visible (non-sanitized) entries, then rebuilds an
// approximate full vector and runs the baseline attack on it.
//
// Training data is what the paper uses: Freq vectors of random locations
// in the city, standardized. Because a rare type is absent from most
// random disks, we optionally enrich the sample with disks centred near
// the rare POIs themselves; the adversary can do this for free since the
// POI database is public. (DESIGN.md discusses this as the substitution
// for the paper's 10,000-sample training runs.)
#pragma once

#include <span>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/svm.h"
#include "poi/database.h"

namespace poiprivacy::attack {

struct RecoveryConfig {
  std::size_t train_samples = 400;       ///< random-location samples
  std::size_t validation_samples = 150;  ///< held-out random locations
  /// Extra training disks centred near each rare POI (0 disables).
  std::size_t samples_per_rare_poi = 2;
  ml::SvmConfig svm{};  ///< default: RBF kernel, C = 1
};

class SanitizationRecovery {
 public:
  /// Trains one model per sanitized type for query radius `r`.
  SanitizationRecovery(const poi::PoiDatabase& db,
                       std::span<const poi::TypeId> sanitized_types, double r,
                       const RecoveryConfig& config, common::Rng& rng);

  /// Per-type validation accuracies, aligned with sanitized_types().
  const std::vector<double>& validation_accuracies() const noexcept {
    return accuracies_;
  }
  double mean_validation_accuracy() const;

  /// Fills the sanitized entries of a sanitized release with predictions.
  poi::FrequencyVector recover(const poi::FrequencyVector& sanitized) const;

  const std::vector<poi::TypeId>& sanitized_types() const noexcept {
    return sanitized_;
  }

 private:
  std::vector<double> features_of(const poi::FrequencyVector& f) const;

  const poi::PoiDatabase* db_;
  std::vector<poi::TypeId> sanitized_;
  std::vector<bool> is_sanitized_;
  std::vector<poi::TypeId> visible_types_;
  ml::StandardScaler scaler_;
  std::vector<ml::SvmClassifier> models_;  ///< one per sanitized type
  std::vector<double> accuracies_;
};

}  // namespace poiprivacy::attack
