#include "attack/linkage_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace poiprivacy::attack {
namespace {

constexpr std::size_t words_for(std::size_t n) noexcept {
  return (n + 63) / 64;
}

void set_bit(std::span<std::uint64_t> words, std::size_t i) noexcept {
  words[i >> 6] |= std::uint64_t{1} << (i & 63);
}

bool test_bit(std::span<const std::uint64_t> words, std::size_t i) noexcept {
  return (words[i >> 6] >> (i & 63)) & 1;
}

/// Sets bits [0, n) and clears any tail bits of the last word, so that
/// popcounts and all-zero checks over whole words stay exact.
void set_first_bits(std::span<std::uint64_t> words, std::size_t n) noexcept {
  std::fill(words.begin(), words.end(), std::uint64_t{0});
  for (std::size_t w = 0; w < n / 64; ++w) words[w] = ~std::uint64_t{0};
  if (n % 64 != 0) words[n / 64] = (std::uint64_t{1} << (n % 64)) - 1;
}

bool all_zero(std::span<const std::uint64_t> words) noexcept {
  for (const std::uint64_t w : words) {
    if (w != 0) return false;
  }
  return true;
}

/// Squared distance bounds from p to the bbox. Every subtraction and
/// square below is the same shape as geo::distance_sq's, and IEEE
/// rounding is monotone, so for any member q of the box
///   min_sq <= distance_sq(p, q) <= max_sq
/// holds bit-rigorously — whole-bucket accept/reject decisions agree
/// with the per-candidate squared test exactly.
struct SqBounds {
  double min_sq, max_sq;
};

SqBounds bbox_distance_sq_bounds(geo::Point p, const geo::BBox& b) noexcept {
  const double dx_lo = std::max(0.0, std::max(b.min_x - p.x, p.x - b.max_x));
  const double dy_lo = std::max(0.0, std::max(b.min_y - p.y, p.y - b.max_y));
  const double dx_hi = std::max(b.max_x - p.x, p.x - b.min_x);
  const double dy_hi = std::max(b.max_y - p.y, p.y - b.min_y);
  return {dx_lo * dx_lo + dy_lo * dy_lo, dx_hi * dx_hi + dy_hi * dy_hi};
}

}  // namespace

// ---- CandidateBlockIndex ----------------------------------------------------

void CandidateBlockIndex::build(const AttackContext& ctx,
                                std::span<const poi::PoiId> candidates) {
  entries_.clear();
  buckets_.clear();
  sort_scratch_.clear();

  const poi::TileAggregates& tiles = ctx.tiles();
  const std::int32_t nx = tiles.nx();
  sort_scratch_.reserve(candidates.size());
  for (std::uint32_t i = 0; i < candidates.size(); ++i) {
    const poi::TileAggregates::Tile t =
        tiles.tile_of(ctx.db().poi(candidates[i]).pos);
    sort_scratch_.emplace_back(t.iy * nx + t.ix, i);
  }
  // Pair order (tile id, candidate index) is a total order, so the sort
  // is deterministic regardless of the sort algorithm's stability.
  std::sort(sort_scratch_.begin(), sort_scratch_.end());

  entries_.reserve(candidates.size());
  for (std::size_t k = 0; k < sort_scratch_.size(); ++k) {
    const auto [tile, index] = sort_scratch_[k];
    const geo::Point pos = ctx.db().poi(candidates[index]).pos;
    if (buckets_.empty() || sort_scratch_[k - 1].first != tile) {
      buckets_.push_back(Bucket{static_cast<std::uint32_t>(k),
                                static_cast<std::uint32_t>(k),
                                geo::BBox{pos.x, pos.y, pos.x, pos.y}});
    }
    Bucket& bucket = buckets_.back();
    bucket.end = static_cast<std::uint32_t>(k + 1);
    bucket.bbox.min_x = std::min(bucket.bbox.min_x, pos.x);
    bucket.bbox.min_y = std::min(bucket.bbox.min_y, pos.y);
    bucket.bbox.max_x = std::max(bucket.bbox.max_x, pos.x);
    bucket.bbox.max_y = std::max(bucket.bbox.max_y, pos.y);
    entries_.push_back(Entry{index, pos});
  }
}

bool CandidateBlockIndex::any_in_annulus(
    geo::Point p, double lo_km, double hi_km,
    std::span<const std::uint64_t> alive) const noexcept {
  const double lo_sq = lo_km * lo_km;
  const double hi_sq = hi_km * hi_km;
  for (const Bucket& bucket : buckets_) {
    const SqBounds b = bbox_distance_sq_bounds(p, bucket.bbox);
    if (b.min_sq > hi_sq || b.max_sq < lo_sq) continue;  // whole tile out
    const bool whole_tile_in = b.min_sq >= lo_sq && b.max_sq <= hi_sq;
    for (std::uint32_t k = bucket.begin; k < bucket.end; ++k) {
      const Entry& e = entries_[k];
      if (!alive.empty() && !test_bit(alive, e.index)) continue;
      if (whole_tile_in) return true;
      const double d_sq = geo::distance_sq(p, e.pos);
      if (d_sq >= lo_sq && d_sq <= hi_sq) return true;
    }
  }
  return false;
}

void CandidateBlockIndex::annulus_mask_into(
    geo::Point p, double lo_km, double hi_km,
    std::span<std::uint64_t> out) const noexcept {
  const double lo_sq = lo_km * lo_km;
  const double hi_sq = hi_km * hi_km;
  for (const Bucket& bucket : buckets_) {
    const SqBounds b = bbox_distance_sq_bounds(p, bucket.bbox);
    if (b.min_sq > hi_sq || b.max_sq < lo_sq) continue;  // whole tile out
    if (b.min_sq >= lo_sq && b.max_sq <= hi_sq) {        // whole tile in
      for (std::uint32_t k = bucket.begin; k < bucket.end; ++k) {
        set_bit(out, entries_[k].index);
      }
      continue;
    }
    for (std::uint32_t k = bucket.begin; k < bucket.end; ++k) {
      const double d_sq = geo::distance_sq(p, entries_[k].pos);
      if (d_sq >= lo_sq && d_sq <= hi_sq) set_bit(out, entries_[k].index);
    }
  }
}

// ---- solve_chain ------------------------------------------------------------

void LinkageEngine::solve_chain(
    std::span<const std::vector<poi::PoiId>> layers,
    std::span<const double> step_km,
    std::vector<poi::PoiId>& surviving_first) const {
  surviving_first.clear();
  if (layers.empty()) return;

  // Packed alive masks, one per layer, initially all-true: alive[t] bit i
  // means candidate i of layer t can reach the end of the chain.
  std::vector<std::vector<std::uint64_t>> alive(layers.size());
  for (std::size_t t = 0; t < layers.size(); ++t) {
    alive[t].resize(words_for(layers[t].size()));
    set_first_bits(alive[t], layers[t].size());
  }

  CandidateBlockIndex index;
  for (std::size_t t = layers.size() - 1; t-- > 0;) {
    const std::vector<poi::PoiId>& here = layers[t];
    const std::vector<poi::PoiId>& next = layers[t + 1];
    // An empty layer carries no evidence; the step is transparent.
    if (here.empty() || next.empty()) continue;
    // Already-unique layer: whatever this step decides, the transparent
    // all-dead fallback below would resurrect a lone candidate anyway, so
    // bit 0 stays set either way — skip the whole step.
    if (here.size() == 1) continue;

    // |d - estimate| <= slack, tested in squared form against the block
    // index (d >= 0, so the annulus [max(0, est-slack), est+slack] is the
    // same predicate without the square root per pair).
    const double estimate = step_km[t];
    const double lo = std::max(0.0, estimate - slack_);
    const double hi = estimate + slack_;
    index.build(ctx_, next);

    bool any_alive = false;
    for (std::size_t i = 0; i < here.size(); ++i) {
      const geo::Point pa = ctx_.db().poi(here[i]).pos;
      if (index.any_in_annulus(pa, lo, hi, alive[t + 1])) {
        any_alive = true;
      } else {
        alive[t][i >> 6] &= ~(std::uint64_t{1} << (i & 63));
      }
    }
    // A step that eliminates every candidate says more about the
    // regressor than about the user; treat it as transparent, matching
    // the pairwise attack's empty-filter fallback.
    if (!any_alive) set_first_bits(alive[t], here.size());
  }

  for (std::size_t i = 0; i < layers[0].size(); ++i) {
    if (test_bit(alive[0], i)) surviving_first.push_back(layers[0][i]);
  }
}

// ---- Tracker ----------------------------------------------------------------

void LinkageEngine::Tracker::reset() noexcept {
  survivors_.clear();
  frontier_.clear();
  words_ = 0;
  bits_.clear();
  union_.clear();
  seen_ = 0;
  last_layer_size_ = 0;
  started_ = false;
}

std::size_t LinkageEngine::Tracker::frontier_alive() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t w : union_) n += std::popcount(w);
  return n;
}

void LinkageEngine::Tracker::remember_release(
    std::span<const std::int32_t> released, traj::TimeSec time) {
  prev_freq_.assign(released.begin(), released.end());
  prev_time_ = time;
}

void LinkageEngine::Tracker::start_stream(
    std::span<const std::int32_t> released, traj::TimeSec time) {
  started_ = true;
  survivors_.assign(layer_.candidates.begin(), layer_.candidates.end());
  frontier_.assign(layer_.candidates.begin(), layer_.candidates.end());
  const std::size_t n = survivors_.size();
  words_ = words_for(n);
  // Identity frontier: survivor i reaches exactly itself.
  bits_.assign(n * words_, 0);
  for (std::size_t i = 0; i < n; ++i) {
    set_bit(std::span(bits_).subspan(i * words_, words_), i);
  }
  union_.resize(words_);
  set_first_bits(union_, n);
  remember_release(released, time);
}

std::size_t LinkageEngine::Tracker::observe(
    std::span<const std::int32_t> released, traj::TimeSec time) {
  engine_->layer_into(released, reid_scratch_, layer_);
  last_layer_size_ = layer_.candidates.size();
  ++seen_;

  if (!started_) {
    // The first release defines the linkage target. An empty first layer
    // leaves the tracker inert: there is nothing to link later evidence
    // back to.
    start_stream(released, time);
    return survivors_.size();
  }
  if (survivors_.empty()) return 0;
  if (layer_.candidates.empty()) {
    // No evidence in this release; the stream stays anchored at the last
    // informative one so the next step estimate spans the gap.
    return survivors_.size();
  }

  const double estimate = engine_->estimate_step_km(
      prev_freq_, released, prev_time_, time, features_);
  const double lo = std::max(0.0, estimate - engine_->slack_km());
  const double hi = estimate + engine_->slack_km();

  index_.build(engine_->context(), layer_.candidates);
  const std::size_t new_n = layer_.candidates.size();
  const std::size_t new_words = words_for(new_n);

  // One annulus reach row per alive frontier candidate (dead ones are in
  // no survivor's row, so their rows are never read).
  reach_.assign(frontier_.size() * new_words, 0);
  for (std::size_t f = 0; f < frontier_.size(); ++f) {
    if (!test_bit(union_, f)) continue;
    index_.annulus_mask_into(
        engine_->db().poi(frontier_[f]).pos, lo, hi,
        std::span(reach_).subspan(f * new_words, new_words));
  }

  // Fold: survivor s reaches new-layer candidate j iff some candidate in
  // s's current frontier row reaches j.
  next_bits_.assign(survivors_.size() * new_words, 0);
  std::size_t alive_count = 0;
  for (std::size_t s = 0; s < survivors_.size(); ++s) {
    const std::span<const std::uint64_t> row(bits_.data() + s * words_,
                                             words_);
    const std::span<std::uint64_t> out(next_bits_.data() + s * new_words,
                                       new_words);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = row[w];
      while (word != 0) {
        const std::size_t f = w * 64 + std::countr_zero(word);
        word &= word - 1;
        const std::uint64_t* reach_row = reach_.data() + f * new_words;
        for (std::size_t v = 0; v < new_words; ++v) out[v] |= reach_row[v];
      }
    }
    alive_count += !all_zero(out);
  }

  if (alive_count == 0) {
    // Same rationale as the chain fallback: a step that would kill every
    // survivor is evidence against the regressor, not the survivors.
    // Keep them all and restart the frontier from the whole new layer.
    frontier_.assign(layer_.candidates.begin(), layer_.candidates.end());
    words_ = new_words;
    bits_.assign(survivors_.size() * new_words, 0);
    for (std::size_t s = 0; s < survivors_.size(); ++s) {
      set_first_bits(std::span(bits_).subspan(s * new_words, new_words),
                     new_n);
    }
    union_.resize(new_words);
    set_first_bits(union_, new_n);
    remember_release(released, time);
    return survivors_.size();
  }

  // Compact dead survivors out permanently (monotone shrink) and rebase
  // the frontier onto the new layer.
  union_.assign(new_words, 0);
  bits_.resize(std::max(bits_.size(), alive_count * new_words));
  std::size_t w_out = 0;
  for (std::size_t s = 0; s < survivors_.size(); ++s) {
    const std::span<const std::uint64_t> row(next_bits_.data() + s * new_words,
                                             new_words);
    if (all_zero(row)) continue;
    survivors_[w_out] = survivors_[s];
    for (std::size_t v = 0; v < new_words; ++v) {
      bits_[w_out * new_words + v] = row[v];
      union_[v] |= row[v];
    }
    ++w_out;
  }
  survivors_.resize(w_out);
  bits_.resize(w_out * new_words);
  frontier_.assign(layer_.candidates.begin(), layer_.candidates.end());
  words_ = new_words;
  remember_release(released, time);
  return survivors_.size();
}

}  // namespace poiprivacy::attack
