// AttackContext — the shared query engine under every attack family.
//
// The four attack families of the paper (baseline region re-id §II-D,
// fine-grained Alg. 1, trajectory §V) and our robust/chain extensions all
// reduce to the same adversary loop: pick the rarest released types, walk
// the candidate POIs of the pivot type, reject candidates cheaply with a
// tile-envelope bound, and only then pay for the exact F(p, 2r) dominance
// test through the anchor cache. This object owns those primitives once:
//
//   * per-thread FreqArena scratch (poi::scratch_arena) for allocation-
//     free aggregate queries,
//   * the database's lazily built poi::TileAggregates handle plus Window
//     construction,
//   * anchor-vector cache access and per-type candidate enumeration,
//   * the fused pivot/rarest-present scan,
//   * the exact tile-envelope prune (with its adaptive gate) and the
//     tolerant violation/deficit prune.
//
// The concrete attacks (RegionReidentifier, RobustReidentifier,
// FineGrainedAttack, TrajectoryAttack, ChainAttack) are thin strategy
// layers over this engine: they decide *which* candidates to ask about
// and how to combine the answers, never *how* to enumerate or prune.
//
// An AttackContext is one pointer, trivially copyable, and stateless
// beyond the database reference, so attacks store it by value and share
// it freely across threads; all mutable scratch lives in thread_locals
// owned by the poi layer. Every primitive is a pure function of its
// arguments and the database, so routing an attack through the context
// is a no-op for its outputs — the golden and determinism suites pin
// this bit-for-bit.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "poi/database.h"

namespace poiprivacy::attack {

class AttackContext {
 public:
  explicit AttackContext(const poi::PoiDatabase& db) : db_(&db) {}

  const poi::PoiDatabase& db() const noexcept { return *db_; }

  // ---- Scratch ------------------------------------------------------------

  /// The calling thread's scratch arena (see poi::scratch_arena for the
  /// lifetime contract).
  poi::FreqArena& scratch() const noexcept { return poi::scratch_arena(); }

  /// F(center_i, radius) for a batch of centers into the calling thread's
  /// scratch arena (row i corresponds to centers[i]). Invalidates any
  /// previously returned scratch row on this thread.
  poi::FreqArena& freq_batch_scratch(std::span<const geo::Point> centers,
                                     double radius) const {
    poi::FreqArena& arena = poi::scratch_arena();
    db_->freq_batch(centers, radius, arena);
    return arena;
  }

  /// F(center, radius) as a scratch row. Same invalidation rule.
  std::span<const std::int32_t> freq_scratch(geo::Point center,
                                             double radius) const {
    return freq_batch_scratch({&center, 1}, radius).row(0);
  }

  // ---- Candidate enumeration & the anchor cache ---------------------------

  /// Candidate anchors of a pivot type: every POI of that type.
  std::span<const poi::PoiId> candidates_of_type(poi::TypeId type) const {
    return db_->pois_of_type(type);
  }

  /// F(poi(id).pos, radius) through the database's sharded anchor cache —
  /// the hot path of every dominance scan (same anchors probed at the
  /// same 2r for each evaluated location).
  const poi::FrequencyVector& anchor_freq(poi::PoiId id, double radius) const {
    return db_->anchor_freq(id, radius);
  }

  /// Exact dominance test of a cached anchor aggregate against a
  /// release: the anchor's stored bit-packed fingerprint must cover the
  /// released one (a handful of word-parallel AND-NOTs) before the full
  /// per-type scan runs. The fingerprint rejection is exact — a type
  /// present in the release but absent around the anchor already
  /// violates dominance — so the result equals
  /// dominates(anchor_freq(id, radius), released) bit-for-bit.
  /// `released_fp` is pack_fingerprint(released), packed once per infer.
  bool anchor_dominates(poi::PoiId id, double radius,
                        std::span<const std::int32_t> released,
                        std::span<const poi::FingerprintWord> released_fp)
      const {
    const poi::AnchorAggregate& anchor = db_->anchor_aggregate(id, radius);
    if (!poi::fingerprint_covers(anchor.fp, released_fp)) return false;
    return poi::dominates(anchor.freq, released);
  }

  // ---- Pivot / rarest-present scan ----------------------------------------

  /// One allocation-free pass over `released` filling out[0..n) with the
  /// n = min(out.size(), #present) citywide-rarest present types in
  /// ascending (city count, id) order; returns n. out[0] is the attack
  /// pivot. `skip` excludes one type from consideration. Bounded insertion
  /// into the caller's array costs ~one comparison per type, where an
  /// allocating sort costs ~1us per call — more than a whole candidate
  /// loop at large r.
  std::size_t rarest_present(std::span<const std::int32_t> released,
                             std::span<poi::TypeId> out,
                             std::optional<poi::TypeId> skip = std::nullopt)
      const noexcept;

  /// Citywide-rarest present type, if any (rarest_present with one slot).
  std::optional<poi::TypeId> pivot_type(
      std::span<const std::int32_t> released) const noexcept;

  /// Allocating form of rarest_present for callers that keep the list:
  /// the `max_n` citywide-rarest types present in `released`, rarest
  /// first, excluding `skip`. These drive the tile-envelope prunes: a
  /// rare type has few POIs citywide, so most candidate windows contain
  /// zero of them and one integer comparison rejects the candidate before
  /// any disk aggregation or cache lookup. `skip` exists because a
  /// candidate of type t always contributes to its own window, making the
  /// t-bound useless against pivot-type candidates.
  std::vector<poi::TypeId> rare_present_types(
      std::span<const std::int32_t> released, std::size_t max_n,
      std::optional<poi::TypeId> skip = std::nullopt) const;

  // ---- Tile-envelope pruning ----------------------------------------------

  const poi::TileAggregates& tiles() const { return db_->tile_aggregates(); }

  /// Resolved covering rectangle around a candidate (see
  /// poi/tile_aggregates.h for the envelope invariant).
  poi::TileAggregates::Window window(geo::Point pos, double radius) const {
    return db_->tile_aggregates().window(pos, radius);
  }

  /// Exact prune: true when some probed rare type's tile bound already
  /// falls short of the released count, so the full dominance test must
  /// fail — the candidate is rejected without touching the anchor cache.
  /// Rare types have few POIs citywide, which makes a zero-count window —
  /// and thus a one-comparison rejection — the common case.
  static bool exact_prune(const poi::TileAggregates::Window& win,
                          std::span<const std::int32_t> released,
                          std::span<const poi::TypeId> rare) noexcept {
    for (const poi::TypeId t : rare) {
      if (win.type_bound(t) < released[t]) return true;
    }
    return false;
  }

  /// Exact prune plus the total-count bound: used where candidates are not
  /// all of one pivot type, so the window total carries extra signal.
  static bool exact_prune_with_total(const poi::TileAggregates::Window& win,
                                     std::span<const std::int32_t> released,
                                     std::span<const poi::TypeId> rare,
                                     std::int64_t released_total) noexcept {
    if (exact_prune(win, released, rare)) return true;
    return win.total_bound() < released_total;
  }

  /// Tolerant prune for the violation/deficit-budgeted dominance test:
  /// each probed type t with type_bound(t) < released[t] is a guaranteed
  /// violation with deficit at least released[t] - bound (the tile bound
  /// dominates F(p, 2r)[t]); distinct types accumulate. Independently the
  /// deficit is at least released_total - total_bound. When either budget
  /// is already exceeded, dominates_tolerant must fail too — rejection is
  /// exact.
  static bool tolerant_prune(const poi::TileAggregates::Window& win,
                             std::span<const std::int32_t> released,
                             std::span<const poi::TypeId> rare,
                             int max_violations, std::int64_t max_deficit,
                             std::int64_t released_total) noexcept {
    int violations = 0;
    std::int64_t deficit = 0;
    for (const poi::TypeId t : rare) {
      const std::int32_t bound = win.type_bound(t);
      if (bound < released[t]) {
        ++violations;
        deficit += released[t] - bound;
      }
    }
    if (violations > max_violations || deficit > max_deficit) return true;
    return win.total_bound() + max_deficit < released_total;
  }

  /// The adaptive gate in front of exact_prune: at small r nearly every
  /// candidate dominates the near-empty release, so probing is pure
  /// overhead. The first kProbe candidates measure the reject rate; below
  /// kMinRejects the remaining candidates go straight to the cached
  /// dominance scan. The gate is a deterministic function of the candidate
  /// sequence, and pruning only ever skips candidates the full test would
  /// reject, so results are bit-identical with the prune on, off, or
  /// mixed.
  class AdaptiveGate {
   public:
    explicit AdaptiveGate(bool enabled) noexcept : enabled_(enabled) {}

    /// Probe the tile envelope for the next candidate?
    bool enabled() const noexcept { return enabled_; }

    /// Records one probe's outcome; may permanently disable the gate.
    void record(bool fired) noexcept {
      ++probed_;
      rejected_ += fired;
      if (probed_ == kProbe && rejected_ < kMinRejects) enabled_ = false;
    }

   private:
    static constexpr int kProbe = 32;
    static constexpr int kMinRejects = 8;
    bool enabled_;
    int probed_ = 0;
    int rejected_ = 0;
  };

  /// BatchedEnvelope — one coarse tile verdict shared by every candidate
  /// that bins into the same tile.
  ///
  /// Candidate loops probe the same rare-type bounds for thousands of
  /// candidates, and candidates cluster spatially, so most probes hit a
  /// tile that has already been judged. The envelope memoizes one coarse
  /// verdict per tile using tile_window(), whose bounds dominate every
  /// member candidate's own window bounds:
  ///
  ///   * coarse PRUNED -> every member's own exact_prune would fire too
  ///     (a coarse shortfall implies a per-candidate shortfall), so the
  ///     whole tile is rejected by one probe set;
  ///   * coarse PASS   -> fall back to the member's own per-candidate
  ///     window, so survivor sets — and the AdaptiveGate::record
  ///     sequence observed by callers — stay bit-identical to the
  ///     unbatched loop.
  ///
  /// Holds views of `released` and `rare`; the caller keeps them alive
  /// for the envelope's lifetime.
  class BatchedEnvelope {
   public:
    BatchedEnvelope(const AttackContext& ctx, double radius,
                    std::span<const std::int32_t> released,
                    std::span<const poi::TypeId> rare);

    /// Same envelope, but the per-tile verdict table lives in
    /// caller-owned storage: a loop that builds one envelope per release
    /// (the streaming linkage tracker) reuses the buffer's capacity
    /// instead of allocating nx*ny verdict bytes per step. `scratch`
    /// must outlive the envelope.
    BatchedEnvelope(const AttackContext& ctx, double radius,
                    std::span<const std::int32_t> released,
                    std::span<const poi::TypeId> rare,
                    std::vector<std::int8_t>& scratch);

    /// exact_prune() verdict for a candidate at `pos`; bit-identical to
    /// exact_prune(ctx.window(pos, radius), released, rare).
    bool pruned(geo::Point pos);

    /// Appends the ids in `candidates` whose envelope passes to
    /// `survivors`, preserving order — the same set a per-candidate
    /// exact_prune loop keeps (pinned by
    /// tests/tile_window_property_test.cpp).
    void prune_batch(std::span<const poi::PoiId> candidates,
                     std::vector<poi::PoiId>& survivors);

   private:
    enum : std::int8_t { kUnknown = -1, kPass = 0, kPruned = 1 };
    const AttackContext* ctx_;
    const poi::TileAggregates* tiles_;
    double radius_;
    std::span<const std::int32_t> released_;
    std::span<const poi::TypeId> rare_;
    std::vector<std::int8_t> owned_verdict_;   ///< backs tile_verdict_ by default
    std::vector<std::int8_t>* tile_verdict_;   ///< one verdict per tile
  };

 private:
  const poi::PoiDatabase* db_;
};

}  // namespace poiprivacy::attack
