#include "attack/robust_reid.h"

#include <algorithm>

namespace poiprivacy::attack {

bool dominates_tolerant(std::span<const std::int32_t> a,
                        std::span<const std::int32_t> b, int max_violations,
                        std::int32_t max_deficit) noexcept {
  int violations = 0;
  std::int32_t deficit = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      ++violations;
      deficit += b[i] - a[i];
      if (violations > max_violations || deficit > max_deficit) return false;
    }
  }
  return true;
}

RobustReidResult RobustReidentifier::infer(
    const poi::FrequencyVector& released, double r) const {
  RobustReidResult result;

  // The `num_pivots` rarest present types.
  const std::vector<poi::TypeId> pivots =
      ctx_.rare_present_types(released, config_.num_pivots);

  // Gather candidates per pivot with the tolerant test; a candidate set
  // that explodes carries no information, so bound it.
  constexpr std::size_t kMaxCandidatesPerPivot = 64;
  const std::int64_t released_total = poi::total(released);
  // Exact tolerant prune (AttackContext::tolerant_prune). Probing more
  // types than the exact attacks do (kPruneTypes = 6) pays off here
  // because a single rare-type shortfall is tolerated, not disqualifying.
  constexpr std::size_t kPruneTypes = 6;
  const std::vector<poi::TypeId> rare =
      ctx_.rare_present_types(released, kPruneTypes);
  std::vector<geo::Point> votes;
  for (const poi::TypeId pivot : pivots) {
    std::vector<geo::Point> candidates;
    for (const poi::PoiId id : ctx_.candidates_of_type(pivot)) {
      const geo::Point pos = ctx_.db().poi(id).pos;
      if (AttackContext::tolerant_prune(ctx_.window(pos, 2.0 * r), released,
                                        rare, config_.max_violations,
                                        config_.max_deficit, released_total)) {
        continue;
      }
      // Scratch row, consumed immediately by the tolerant test below.
      const std::span<const std::int32_t> around =
          ctx_.freq_scratch(pos, 2.0 * r);
      if (dominates_tolerant(around, released, config_.max_violations,
                             config_.max_deficit)) {
        candidates.push_back(pos);
        if (candidates.size() > kMaxCandidatesPerPivot) break;
      }
    }
    if (candidates.size() <= kMaxCandidatesPerPivot) {
      votes.insert(votes.end(), candidates.begin(), candidates.end());
    }
  }

  // Greedy clustering: positions within 2r of a cluster seed merge into
  // it (anchors of the same user are within 2r of each other).
  for (const geo::Point v : votes) {
    bool merged = false;
    for (auto& cluster : result.clusters) {
      if (geo::distance(cluster.center, v) <= 2.0 * r) {
        // Running mean keeps the centre near the densest evidence.
        const double n = cluster.votes;
        cluster.center = {(cluster.center.x * n + v.x) / (n + 1),
                          (cluster.center.y * n + v.y) / (n + 1)};
        ++cluster.votes;
        merged = true;
        break;
      }
    }
    if (!merged) result.clusters.push_back({v, 1});
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const auto& a, const auto& b) { return a.votes > b.votes; });

  if (!result.clusters.empty()) {
    int total = 0;
    for (const auto& cluster : result.clusters) total += cluster.votes;
    result.decided = result.clusters.front().votes >=
                     config_.win_margin * static_cast<double>(total);
  }
  return result;
}

bool RobustReidentifier::success(const RobustReidResult& result,
                                 geo::Point truth, double r) const noexcept {
  return result.decided &&
         geo::distance(result.best(), truth) <= 2.0 * r + 1e-9;
}

}  // namespace poiprivacy::attack
