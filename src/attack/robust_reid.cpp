#include "attack/robust_reid.h"

#include <algorithm>

namespace poiprivacy::attack {

bool dominates_tolerant(std::span<const std::int32_t> a,
                        std::span<const std::int32_t> b, int max_violations,
                        std::int32_t max_deficit) noexcept {
  int violations = 0;
  std::int32_t deficit = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      ++violations;
      deficit += b[i] - a[i];
      if (violations > max_violations || deficit > max_deficit) return false;
    }
  }
  return true;
}

RobustReidResult RobustReidentifier::infer(
    const poi::FrequencyVector& released, double r) const {
  RobustReidResult result;
  const poi::FrequencyVector& city = db_->city_freq();

  // The `num_pivots` rarest present types.
  std::vector<poi::TypeId> pivots;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] > 0) pivots.push_back(t);
  }
  std::sort(pivots.begin(), pivots.end(),
            [&city](poi::TypeId a, poi::TypeId b) {
              if (city[a] != city[b]) return city[a] < city[b];
              return a < b;
            });
  if (pivots.size() > config_.num_pivots) pivots.resize(config_.num_pivots);

  // Gather candidates per pivot with the tolerant test; a candidate set
  // that explodes carries no information, so bound it.
  constexpr std::size_t kMaxCandidatesPerPivot = 64;
  const poi::TileAggregates& tiles = db_->tile_aggregates();
  const std::int64_t released_total = poi::total(released);
  // Exact tolerant prune. Each probed type t with type_bound(t) <
  // released[t] is a guaranteed violation with deficit at least
  // released[t] - bound (the tile bound dominates F(p, 2r)[t]); distinct
  // types accumulate. Independently, the deficit is at least
  // total(released) - total_bound. When either already exceeds the
  // configured tolerance, the tolerant test below must fail. Probing more
  // types than the exact attacks do (kPruneTypes = 6) pays off here
  // because a single rare-type shortfall is tolerated, not disqualifying.
  constexpr std::size_t kPruneTypes = 6;
  const std::vector<poi::TypeId> rare =
      rare_present_types(*db_, released, kPruneTypes);
  const auto pruned = [&](const poi::TileAggregates::Window& win) {
    int violations = 0;
    std::int64_t deficit = 0;
    for (const poi::TypeId t : rare) {
      const std::int32_t bound = win.type_bound(t);
      if (bound < released[t]) {
        ++violations;
        deficit += released[t] - bound;
      }
    }
    if (violations > config_.max_violations || deficit > config_.max_deficit) {
      return true;
    }
    return win.total_bound() + config_.max_deficit < released_total;
  };
  poi::FrequencyVector around;  // reused across every candidate
  std::vector<geo::Point> votes;
  for (const poi::TypeId pivot : pivots) {
    std::vector<geo::Point> candidates;
    for (const poi::PoiId id : db_->pois_of_type(pivot)) {
      const geo::Point pos = db_->poi(id).pos;
      if (pruned(tiles.window(pos, 2.0 * r))) continue;
      db_->freq_into(pos, 2.0 * r, around);
      if (dominates_tolerant(around, released, config_.max_violations,
                             config_.max_deficit)) {
        candidates.push_back(pos);
        if (candidates.size() > kMaxCandidatesPerPivot) break;
      }
    }
    if (candidates.size() <= kMaxCandidatesPerPivot) {
      votes.insert(votes.end(), candidates.begin(), candidates.end());
    }
  }

  // Greedy clustering: positions within 2r of a cluster seed merge into
  // it (anchors of the same user are within 2r of each other).
  for (const geo::Point v : votes) {
    bool merged = false;
    for (auto& cluster : result.clusters) {
      if (geo::distance(cluster.center, v) <= 2.0 * r) {
        // Running mean keeps the centre near the densest evidence.
        const double n = cluster.votes;
        cluster.center = {(cluster.center.x * n + v.x) / (n + 1),
                          (cluster.center.y * n + v.y) / (n + 1)};
        ++cluster.votes;
        merged = true;
        break;
      }
    }
    if (!merged) result.clusters.push_back({v, 1});
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const auto& a, const auto& b) { return a.votes > b.votes; });

  if (!result.clusters.empty()) {
    int total = 0;
    for (const auto& cluster : result.clusters) total += cluster.votes;
    result.decided = result.clusters.front().votes >=
                     config_.win_margin * static_cast<double>(total);
  }
  return result;
}

bool RobustReidentifier::success(const RobustReidResult& result,
                                 geo::Point truth, double r) const noexcept {
  return result.decided &&
         geo::distance(result.best(), truth) <= 2.0 * r + 1e-9;
}

}  // namespace poiprivacy::attack
