#include "attack/chain_attack.h"

#include <algorithm>
#include <cmath>

namespace poiprivacy::attack {

ChainInferenceResult ChainAttack::infer(
    std::span<const TimedRelease> releases) const {
  ChainInferenceResult result;
  if (releases.empty()) return result;

  result.layers.reserve(releases.size());
  for (const TimedRelease& release : releases) {
    result.layers.push_back(reid_.infer(release.freq, r_).candidates);
  }

  // Estimated distance per step via the pairwise attack's regressor.
  for (std::size_t t = 0; t + 1 < releases.size(); ++t) {
    const PairInferenceResult step =
        pairwise_->infer(releases[t].freq, releases[t + 1].freq,
                         releases[t].time, releases[t + 1].time);
    result.estimated_step_km.push_back(step.estimated_distance_km);
  }

  // Backward reachability: alive[t][i] = candidate i of layer t can reach
  // the end of the chain through consistent edges. A layer with no
  // candidates carries no evidence and is treated as transparent.
  const double slack = pairwise_->tolerance_km() + r_;
  std::vector<std::vector<bool>> alive(result.layers.size());
  for (std::size_t t = 0; t < result.layers.size(); ++t) {
    alive[t].assign(result.layers[t].size(), true);
  }
  for (std::size_t t = result.layers.size() - 1; t-- > 0;) {
    const auto& here = result.layers[t];
    const auto& next = result.layers[t + 1];
    if (here.empty() || next.empty()) continue;
    const double estimate = result.estimated_step_km[t];
    for (std::size_t i = 0; i < here.size(); ++i) {
      const geo::Point pa = ctx_.db().poi(here[i]).pos;
      bool reachable = false;
      for (std::size_t j = 0; j < next.size() && !reachable; ++j) {
        if (!alive[t + 1][j]) continue;
        const double d = geo::distance(pa, ctx_.db().poi(next[j]).pos);
        reachable = std::abs(d - estimate) <= slack;
      }
      alive[t][i] = reachable;
    }
    // A step that eliminates every candidate says more about the
    // regressor than about the user; treat it as transparent, matching
    // the pairwise attack's empty-filter fallback.
    if (std::none_of(alive[t].begin(), alive[t].end(),
                     [](bool b) { return b; })) {
      alive[t].assign(here.size(), true);
    }
  }

  if (!result.layers.empty()) {
    for (std::size_t i = 0; i < result.layers[0].size(); ++i) {
      if (alive[0][i]) {
        result.surviving_first_candidates.push_back(result.layers[0][i]);
      }
    }
  }
  return result;
}

bool ChainAttack::success(const ChainInferenceResult& result,
                          geo::Point first_truth) const noexcept {
  return result.unique() &&
         geo::distance(ctx_.db().poi(result.surviving_first_candidates.front()).pos,
                       first_truth) <= r_ + 1e-9;
}

}  // namespace poiprivacy::attack
