#include "attack/chain_attack.h"

namespace poiprivacy::attack {

ChainInferenceResult ChainAttack::infer(
    std::span<const TimedRelease> releases) const {
  ChainInferenceResult result;
  if (releases.empty()) return result;

  // One baseline layer per release, into reused scratch.
  ReidScratch scratch;
  ReidResult layer;
  result.layers.reserve(releases.size());
  for (const TimedRelease& release : releases) {
    engine_.layer_into(release.freq, scratch, layer);
    result.layers.push_back(layer.candidates);
  }

  // Estimated distance per step via the pairwise attack's regressor.
  std::vector<double> features;
  result.estimated_step_km.reserve(releases.size() - 1);
  for (std::size_t t = 0; t + 1 < releases.size(); ++t) {
    result.estimated_step_km.push_back(engine_.estimate_step_km(
        releases[t].freq, releases[t + 1].freq, releases[t].time,
        releases[t + 1].time, features));
  }

  engine_.solve_chain(result.layers, result.estimated_step_km,
                      result.surviving_first_candidates);
  return result;
}

bool ChainAttack::success(const ChainInferenceResult& result,
                          geo::Point first_truth) const noexcept {
  if (!result.unique()) return false;
  const geo::Point anchor =
      engine_.db().poi(result.surviving_first_candidates.front()).pos;
  return geo::distance(anchor, first_truth) <= engine_.r() + 1e-9;
}

}  // namespace poiprivacy::attack
