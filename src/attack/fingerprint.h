// Fingerprint (exhaustive-search) attack — an extension beyond the paper.
//
// The adversary precomputes, for every cell of a regular grid over the
// city, an upper-envelope frequency vector: the counts within radius
// r + half the cell diagonal of the cell centre. For any location l
// inside a cell, disk(l, r) is contained in that envelope's disk, so the
// envelope dominates F(l, r): a cell whose envelope fails to dominate a
// released vector provably does NOT contain the releaser. The surviving
// cells form a no-false-negative feasible region whose total area
// directly measures how identifying an aggregate is — independent of the
// pivot-type heuristic of the baseline attack, and naturally robust to
// entry suppression (a suppressed release is still dominated by the true
// cell's envelope).
#pragma once

#include <cstdint>
#include <vector>

#include "poi/database.h"

namespace poiprivacy::attack {

struct FingerprintConfig {
  /// Grid pitch in km. Smaller pitch = finer region, more precompute.
  double cell_km = 1.0;
};

struct FingerprintResult {
  std::vector<std::uint32_t> feasible_cells;  ///< indices into the grid
  double feasible_area_km2 = 0.0;
  /// Centroid of the feasible region (meaningful when the region is
  /// small and connected).
  geo::Point centroid;
};

class FingerprintAttack {
 public:
  /// Precomputes the envelope table for query radius `r`.
  FingerprintAttack(const poi::PoiDatabase& db, double r,
                    FingerprintConfig config = {});

  /// Feasible region for a released vector.
  FingerprintResult infer(const poi::FrequencyVector& released) const;

  /// Does the feasible region of `result` cover `location`?
  bool covers(const FingerprintResult& result, geo::Point location) const;

  double r() const noexcept { return r_; }
  std::size_t num_cells() const noexcept { return envelopes_.rows(); }
  geo::Point cell_center(std::uint32_t cell) const;

 private:
  const poi::PoiDatabase* db_;
  double r_;
  FingerprintConfig config_;
  int nx_ = 0;
  int ny_ = 0;
  /// One envelope row per cell, contiguous so the dominance scan in
  /// infer() streams straight through one buffer.
  poi::FreqArena envelopes_;
};

}  // namespace poiprivacy::attack
