#include "attack/attack_context.h"

#include <algorithm>

namespace poiprivacy::attack {

std::size_t AttackContext::rarest_present(
    std::span<const std::int32_t> released, std::span<poi::TypeId> out,
    std::optional<poi::TypeId> skip) const noexcept {
  const poi::FrequencyVector& city = db_->city_freq();
  std::size_t n = 0;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] <= 0) continue;
    if (skip && t == *skip) continue;
    std::size_t pos = n;
    while (pos > 0 && (city[t] < city[out[pos - 1]] ||
                       (city[t] == city[out[pos - 1]] && t < out[pos - 1]))) {
      --pos;
    }
    if (pos >= out.size()) continue;
    for (std::size_t j = std::min(n, out.size() - 1); j > pos; --j) {
      out[j] = out[j - 1];
    }
    out[pos] = t;
    if (n < out.size()) ++n;
  }
  return n;
}

std::optional<poi::TypeId> AttackContext::pivot_type(
    std::span<const std::int32_t> released) const noexcept {
  poi::TypeId slot[1];
  if (rarest_present(released, slot) == 0) return std::nullopt;
  return slot[0];
}

std::vector<poi::TypeId> AttackContext::rare_present_types(
    std::span<const std::int32_t> released, std::size_t max_n,
    std::optional<poi::TypeId> skip) const {
  const poi::FrequencyVector& city = db_->city_freq();
  std::vector<poi::TypeId> present;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] > 0 && (!skip || t != *skip)) present.push_back(t);
  }
  const std::size_t keep = std::min(max_n, present.size());
  std::partial_sort(present.begin(),
                    present.begin() + static_cast<std::ptrdiff_t>(keep),
                    present.end(), [&city](poi::TypeId a, poi::TypeId b) {
                      if (city[a] != city[b]) return city[a] < city[b];
                      return a < b;
                    });
  present.resize(keep);
  return present;
}

}  // namespace poiprivacy::attack
