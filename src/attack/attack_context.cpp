#include "attack/attack_context.h"

#include <algorithm>

namespace poiprivacy::attack {

namespace {

// Stack budget for packing a release's presence bits in the noexcept,
// allocation-free scans below: 16 words cover 1024 POI types, far above
// any real registry (the paper's cities top out at M = 272). Larger
// vectors fall back to the plain per-type loop.
constexpr std::size_t kMaxStackWords = 16;

}  // namespace

std::size_t AttackContext::rarest_present(
    std::span<const std::int32_t> released, std::span<poi::TypeId> out,
    std::optional<poi::TypeId> skip) const noexcept {
  const poi::FrequencyVector& city = db_->city_freq();
  std::size_t n = 0;
  const auto consider = [&](poi::TypeId t) {
    if (skip && t == *skip) return;
    std::size_t pos = n;
    while (pos > 0 && (city[t] < city[out[pos - 1]] ||
                       (city[t] == city[out[pos - 1]] && t < out[pos - 1]))) {
      --pos;
    }
    if (pos >= out.size()) return;
    for (std::size_t j = std::min(n, out.size() - 1); j > pos; --j) {
      out[j] = out[j - 1];
    }
    out[pos] = t;
    if (n < out.size()) ++n;
  };
  const std::size_t words = poi::fingerprint_words(released.size());
  if (words <= kMaxStackWords) {
    // Word-parallel scan: pack the presence bits once (SIMD under the
    // active kernel tier), then visit only the set bits. Bits come out
    // in ascending type id, exactly like the plain loop, so the filled
    // prefix is unchanged.
    poi::FingerprintWord fp[kMaxStackWords];
    poi::pack_fingerprint(released, {fp, words});
    poi::for_each_present_type({fp, words}, consider);
  } else {
    for (poi::TypeId t = 0; t < released.size(); ++t) {
      if (released[t] > 0) consider(t);
    }
  }
  return n;
}

std::optional<poi::TypeId> AttackContext::pivot_type(
    std::span<const std::int32_t> released) const noexcept {
  poi::TypeId slot[1];
  if (rarest_present(released, slot) == 0) return std::nullopt;
  return slot[0];
}

std::vector<poi::TypeId> AttackContext::rare_present_types(
    std::span<const std::int32_t> released, std::size_t max_n,
    std::optional<poi::TypeId> skip) const {
  const poi::FrequencyVector& city = db_->city_freq();
  std::vector<poi::TypeId> present;
  const std::size_t words = poi::fingerprint_words(released.size());
  if (words <= kMaxStackWords) {
    poi::FingerprintWord fp[kMaxStackWords];
    poi::pack_fingerprint(released, {fp, words});
    poi::for_each_present_type({fp, words}, [&](poi::TypeId t) {
      if (!skip || t != *skip) present.push_back(t);
    });
  } else {
    for (poi::TypeId t = 0; t < released.size(); ++t) {
      if (released[t] > 0 && (!skip || t != *skip)) present.push_back(t);
    }
  }
  const std::size_t keep = std::min(max_n, present.size());
  std::partial_sort(present.begin(),
                    present.begin() + static_cast<std::ptrdiff_t>(keep),
                    present.end(), [&city](poi::TypeId a, poi::TypeId b) {
                      if (city[a] != city[b]) return city[a] < city[b];
                      return a < b;
                    });
  present.resize(keep);
  return present;
}

AttackContext::BatchedEnvelope::BatchedEnvelope(
    const AttackContext& ctx, double radius,
    std::span<const std::int32_t> released, std::span<const poi::TypeId> rare)
    : ctx_(&ctx),
      tiles_(&ctx.tiles()),
      radius_(radius),
      released_(released),
      rare_(rare),
      tile_verdict_(&owned_verdict_) {
  tile_verdict_->assign(static_cast<std::size_t>(tiles_->nx()) * tiles_->ny(),
                        kUnknown);
}

AttackContext::BatchedEnvelope::BatchedEnvelope(
    const AttackContext& ctx, double radius,
    std::span<const std::int32_t> released, std::span<const poi::TypeId> rare,
    std::vector<std::int8_t>& scratch)
    : ctx_(&ctx),
      tiles_(&ctx.tiles()),
      radius_(radius),
      released_(released),
      rare_(rare),
      tile_verdict_(&scratch) {
  tile_verdict_->assign(static_cast<std::size_t>(tiles_->nx()) * tiles_->ny(),
                        kUnknown);
}

bool AttackContext::BatchedEnvelope::pruned(geo::Point pos) {
  const poi::TileAggregates::Tile tile = tiles_->tile_of(pos);
  std::int8_t& verdict =
      (*tile_verdict_)[static_cast<std::size_t>(tile.iy) * tiles_->nx() +
                       tile.ix];
  if (verdict == kUnknown) {
    verdict = exact_prune(tiles_->tile_window(tile.ix, tile.iy, radius_),
                          released_, rare_)
                  ? kPruned
                  : kPass;
  }
  // Coarse shortfall implies every member candidate's own shortfall, so
  // returning true here matches what the per-candidate probe would say.
  if (verdict == kPruned) return true;
  return exact_prune(ctx_->window(pos, radius_), released_, rare_);
}

void AttackContext::BatchedEnvelope::prune_batch(
    std::span<const poi::PoiId> candidates,
    std::vector<poi::PoiId>& survivors) {
  for (const poi::PoiId id : candidates) {
    if (!pruned(ctx_->db().poi(id).pos)) survivors.push_back(id);
  }
}

}  // namespace poiprivacy::attack
