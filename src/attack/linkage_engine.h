// LinkageEngine — streaming multi-release linkage at 100K-user scale.
//
// The chain attack (attack/chain_attack.h) generalizes the paper's
// two-release trajectory-uniqueness attack to T successive releases, but
// its step filter is an all-pairs C_t x C_{t+1} scan per step — fine at
// bench-sized populations, quadratic in candidate count at scale. This
// engine owns the scalable core both the chain attack and the new
// streaming tracker are built on:
//
//   * CandidateBlockIndex — a blocking index over one release layer's
//     candidate anchors. Candidates are binned by poi::TileAggregates
//     tile, each bucket keeping the exact bbox of its members, so a
//     distance-annulus query first compares the bucket bbox's min/max
//     distance against the annulus: one whole tile of candidates is
//     accepted or rejected per envelope comparison, and only straddling
//     buckets pay per-candidate squared-distance tests. Results are
//     exact — identical to the all-pairs scan bit for bit (squared
//     distances against squared bounds on both sides; pinned by
//     tests/linkage_property_test.cpp).
//
//   * solve_chain — the chain attack's backward consistency sweep over
//     precomputed layers, re-expressed over the block index with packed
//     alive bitmasks, the squared-distance annulus test, and a
//     short-circuit for already-unique layers. Byte-identical survivor
//     sets to the historical all-pairs loop, including the transparent
//     fallback for steps that would eliminate every candidate.
//
//   * Tracker — the streaming attack: per tracked user it maintains the
//     set of layer-0 candidates still alive plus, per survivor, a
//     bit-packed frontier of current-layer candidates it can reach
//     through distance-consistent steps. Each new release runs one
//     baseline inference (tile-envelope + fingerprint pruned, into
//     reused scratch), one SVR step estimate, one block-index build, and
//     a word-parallel frontier intersection — zero allocations per step
//     in steady state. Survivor sets are monotone non-increasing in the
//     number of releases by construction: a release either prunes
//     survivors or (when it carries no evidence — an empty layer, or a
//     step that would kill everyone) is transparent and changes nothing.
//
// The semantic difference between the two solvers is deliberate. The
// backward sweep reproduces ChainAttack exactly — but its transparent
// fallback can resurrect layer-0 candidates when later evidence arrives,
// so it is not monotone and cannot stream. The forward tracker trades
// that corner case for monotonicity and O(1) state per release, which is
// what a 100K-user, many-release sweep needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/region_reid.h"
#include "attack/trajectory_attack.h"

namespace poiprivacy::attack {

/// One timestamped release of a POI aggregate.
struct TimedRelease {
  poi::FrequencyVector freq;
  traj::TimeSec time = 0;
};

/// Blocking index over one release layer's candidate anchors (see file
/// header). build() reuses all internal capacity, so a per-release
/// rebuild is allocation-free in steady state.
class CandidateBlockIndex {
 public:
  /// Rebuilds the index over `candidates` (their order defines the bit
  /// positions every query below reports).
  void build(const AttackContext& ctx, std::span<const poi::PoiId> candidates);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }

  /// True when some candidate within [lo_km, hi_km] of p has its bit set
  /// in `alive` (a bitmask over candidate order; an empty span means all
  /// candidates are alive).
  bool any_in_annulus(geo::Point p, double lo_km, double hi_km,
                      std::span<const std::uint64_t> alive) const noexcept;

  /// Sets bit j in `out` (caller-zeroed words over candidate order) for
  /// every candidate within [lo_km, hi_km] of p.
  void annulus_mask_into(geo::Point p, double lo_km, double hi_km,
                         std::span<std::uint64_t> out) const noexcept;

 private:
  struct Entry {
    std::uint32_t index;  ///< position in the indexed candidate span
    geo::Point pos;
  };
  struct Bucket {
    std::uint32_t begin, end;  ///< entry range [begin, end)
    geo::BBox bbox;            ///< exact bbox of the member positions
  };

  std::vector<Entry> entries_;   ///< sorted by (tile id, candidate index)
  std::vector<Bucket> buckets_;  ///< one per non-empty tile
  std::vector<std::pair<std::int32_t, std::uint32_t>> sort_scratch_;
};

class LinkageEngine {
 public:
  /// Shares the pairwise attack's trained distance regressor; `r` is the
  /// query radius of the releases under attack. The consistency slack is
  /// the pairwise attack's tolerance plus r (see TrajectoryAttack::infer
  /// for the derivation).
  LinkageEngine(const poi::PoiDatabase& db, const TrajectoryAttack& pairwise,
                double r)
      : ctx_(db),
        pairwise_(&pairwise),
        reid_(db),
        r_(r),
        slack_(pairwise.tolerance_km() + r) {}

  const poi::PoiDatabase& db() const noexcept { return ctx_.db(); }
  const AttackContext& context() const noexcept { return ctx_; }
  double r() const noexcept { return r_; }
  double slack_km() const noexcept { return slack_; }

  /// One release's candidate layer — the baseline attack, bit-identical
  /// to RegionReidentifier::infer(released, r()).candidates, into reused
  /// storage.
  void layer_into(std::span<const std::int32_t> released, ReidScratch& scratch,
                  ReidResult& out) const {
    reid_.infer_into(released, r_, scratch, out);
  }

  /// The SVR travel-distance estimate for one step (reused `features`
  /// scratch; bit-identical to TrajectoryAttack::infer's estimate).
  double estimate_step_km(std::span<const std::int32_t> f1,
                          std::span<const std::int32_t> f2, traj::TimeSec t1,
                          traj::TimeSec t2,
                          std::vector<double>& features) const {
    return pairwise_->estimate_distance_km(f1, f2, t1, t2, features);
  }

  /// The chain attack's backward consistency sweep (ChainAttack
  /// semantics, including the transparent all-dead fallback): fills
  /// `surviving_first` with the layer-0 candidates that can reach the end
  /// of the chain. Byte-identical survivors to the historical all-pairs
  /// loop, at blocked subquadratic cost.
  void solve_chain(std::span<const std::vector<poi::PoiId>> layers,
                   std::span<const double> step_km,
                   std::vector<poi::PoiId>& surviving_first) const;

  /// Streaming per-user linkage state (see file header for the forward
  /// intersection invariant). Reset and reuse one Tracker across users:
  /// after warm-up no observe() call allocates.
  class Tracker {
   public:
    explicit Tracker(const LinkageEngine& engine) : engine_(&engine) {}

    void reset() noexcept;

    /// Feeds the next release of the tracked user's stream; returns the
    /// survivor count after the update.
    std::size_t observe(std::span<const std::int32_t> released,
                        traj::TimeSec time);

    /// Layer-0 candidates still alive, in layer order. Never grows as
    /// more releases are observed.
    std::span<const poi::PoiId> survivors() const noexcept {
      return survivors_;
    }

    std::size_t releases_seen() const noexcept { return seen_; }
    bool unique() const noexcept {
      return seen_ > 0 && survivors_.size() == 1;
    }
    /// Size of the candidate layer the last observe() computed.
    std::size_t last_layer_size() const noexcept { return last_layer_size_; }
    /// Alive candidates in the current frontier (the union of the
    /// survivors' reachable sets).
    std::size_t frontier_alive() const noexcept;

   private:
    void start_stream(std::span<const std::int32_t> released,
                      traj::TimeSec time);
    void remember_release(std::span<const std::int32_t> released,
                          traj::TimeSec time);

    const LinkageEngine* engine_;
    // Per-release layer computation (reused capacity).
    ReidScratch reid_scratch_;
    ReidResult layer_;
    CandidateBlockIndex index_;
    // Survivor state: survivors_ (layer-0 ids) and one bit row per
    // survivor over the current frontier (bits_, row stride words_).
    std::vector<poi::PoiId> survivors_;
    std::vector<poi::PoiId> frontier_;
    std::size_t words_ = 0;
    std::vector<std::uint64_t> bits_;
    std::vector<std::uint64_t> next_bits_;  ///< double buffer for the fold
    std::vector<std::uint64_t> union_;      ///< OR of the survivor rows
    std::vector<std::uint64_t> reach_;      ///< per-frontier annulus rows
    // Last informative release (empty layers carry no evidence and are
    // skipped, so the next step estimate spans the gap).
    poi::FrequencyVector prev_freq_;
    traj::TimeSec prev_time_ = 0;
    std::vector<double> features_;
    std::size_t seen_ = 0;
    std::size_t last_layer_size_ = 0;
    bool started_ = false;
  };

 private:
  AttackContext ctx_;
  const TrajectoryAttack* pairwise_;
  RegionReidentifier reid_;
  double r_;
  double slack_;
};

}  // namespace poiprivacy::attack
