#include "attack/trajectory_attack.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "traj/trajectory.h"

namespace poiprivacy::attack {

std::vector<double> TrajectoryAttack::make_features(
    std::span<const std::int32_t> f1, std::span<const std::int32_t> f2,
    traj::TimeSec t1, traj::TimeSec t2) const {
  std::vector<double> row;
  make_features_into(f1, f2, t1, t2, row);
  return row;
}

void TrajectoryAttack::make_features_into(std::span<const std::int32_t> f1,
                                          std::span<const std::int32_t> f2,
                                          traj::TimeSec t1, traj::TimeSec t2,
                                          std::vector<double>& out) const {
  out.clear();
  out.reserve(2 + 24 + 7);
  out.push_back(static_cast<double>(t2 - t1));
  out.push_back(static_cast<double>(poi::l1_distance(f1, f2)));
  ml::one_hot(static_cast<std::size_t>(traj::hour_of_day(t1)), 24, out);
  ml::one_hot(static_cast<std::size_t>(traj::day_of_week(t1)), 7, out);
}

double TrajectoryAttack::estimate_distance_km(
    std::span<const std::int32_t> f1, std::span<const std::int32_t> f2,
    traj::TimeSec t1, traj::TimeSec t2, std::vector<double>& features) const {
  make_features_into(f1, f2, t1, t2, features);
  scaler_.transform_row(features);
  return std::max(0.0, regressor_.predict(features));
}

TrajectoryAttack::TrajectoryAttack(const poi::PoiDatabase& db,
                                   std::span<const traj::ReleasePair> history,
                                   double r,
                                   const TrajectoryAttackConfig& config,
                                   common::Rng& rng)
    : ctx_(db), r_(r), reid_(db), regressor_(config.svr) {
  // Feature/target corpus from the attacker's historical pairs. Both
  // endpoint aggregates of a pair land in the thread's scratch arena and
  // are consumed by make_features before the next fill.
  ml::Matrix x;
  std::vector<double> y;
  y.reserve(history.size());
  for (const traj::ReleasePair& pair : history) {
    const std::array<geo::Point, 2> endpoints{pair.first, pair.second};
    const poi::FreqArena& arena = ctx_.freq_batch_scratch(endpoints, r);
    x.push_row(make_features(arena.row(0), arena.row(1), pair.first_time,
                             pair.second_time));
    y.push_back(pair.distance_km());
  }

  const auto [train_idx, valid_idx] =
      ml::train_test_split(x.rows(), config.validation_fraction, rng);
  const ml::Matrix x_train_raw = ml::take_rows(x, train_idx);
  const ml::Matrix x_train = scaler_.fit_transform(x_train_raw);
  const std::vector<double> y_train = ml::take(std::span(y), train_idx);
  regressor_.train(x_train, y_train, rng);

  if (!valid_idx.empty()) {
    const ml::Matrix x_valid =
        scaler_.transform(ml::take_rows(x, valid_idx));
    const std::vector<double> y_valid = ml::take(std::span(y), valid_idx);
    validation_mae_ =
        ml::mean_absolute_error(y_valid, regressor_.predict(x_valid));
  }
  tolerance_ = config.tolerance_km > 0.0
                   ? config.tolerance_km
                   : std::max(0.1, 2.0 * validation_mae_);
}

PairInferenceResult TrajectoryAttack::infer(const poi::FrequencyVector& f1,
                                            const poi::FrequencyVector& f2,
                                            traj::TimeSec t1,
                                            traj::TimeSec t2) const {
  PairInferenceResult result;
  result.first = reid_.infer(f1, r_);
  result.second = reid_.infer(f2, r_);

  std::vector<double> features;
  result.estimated_distance_km =
      estimate_distance_km(f1, f2, t1, t2, features);

  if (result.second.candidates.empty()) {
    // No second-release evidence; the pair filter cannot help.
    result.filtered_first_candidates = result.first.candidates;
    return result;
  }
  for (const poi::PoiId a : result.first.candidates) {
    const geo::Point pa = ctx_.db().poi(a).pos;
    const bool consistent = std::any_of(
        result.second.candidates.begin(), result.second.candidates.end(),
        [&](poi::PoiId b) {
          // Anchors sit within r of the true endpoints, so the anchor
          // distance deviates from the travelled distance by at most 2r;
          // typical deviations are near r, and the empty-filter fallback
          // below makes the tighter bound safe.
          return std::abs(geo::distance(pa, ctx_.db().poi(b).pos) -
                          result.estimated_distance_km) <=
                 tolerance_ + r_;
        });
    if (consistent) result.filtered_first_candidates.push_back(a);
  }
  if (result.filtered_first_candidates.empty()) {
    // The regressor was too aggressive; a rational attacker falls back to
    // the unfiltered candidates rather than concluding "nowhere".
    result.filtered_first_candidates = result.first.candidates;
  }
  return result;
}

}  // namespace poiprivacy::attack
