#include "attack/recovery.h"

#include <algorithm>
#include <cassert>

namespace poiprivacy::attack {

namespace {

geo::Point random_location(const geo::BBox& b, common::Rng& rng) {
  return {rng.uniform(b.min_x, b.max_x), rng.uniform(b.min_y, b.max_y)};
}

}  // namespace

SanitizationRecovery::SanitizationRecovery(
    const poi::PoiDatabase& db, std::span<const poi::TypeId> sanitized_types,
    double r, const RecoveryConfig& config, common::Rng& rng)
    : db_(&db), sanitized_(sanitized_types.begin(), sanitized_types.end()) {
  is_sanitized_.assign(db.num_types(), false);
  for (const poi::TypeId t : sanitized_) is_sanitized_[t] = true;
  for (poi::TypeId t = 0; t < db.num_types(); ++t) {
    if (!is_sanitized_[t]) visible_types_.push_back(t);
  }

  // Assemble the shared training/validation corpora of full Freq vectors.
  std::vector<poi::FrequencyVector> train_vecs;
  train_vecs.reserve(config.train_samples);
  const geo::BBox& bounds = db.bounds();
  for (std::size_t i = 0; i < config.train_samples; ++i) {
    train_vecs.push_back(db.freq(random_location(bounds, rng), r));
  }
  if (config.samples_per_rare_poi > 0) {
    for (const poi::TypeId t : sanitized_) {
      for (const poi::PoiId id : db.pois_of_type(t)) {
        for (std::size_t s = 0; s < config.samples_per_rare_poi; ++s) {
          const geo::Point jittered = bounds.clamp(
              {db.poi(id).pos.x + rng.normal(0.0, r / 2.0),
               db.poi(id).pos.y + rng.normal(0.0, r / 2.0)});
          train_vecs.push_back(db.freq(jittered, r));
        }
      }
    }
  }
  std::vector<poi::FrequencyVector> valid_vecs;
  valid_vecs.reserve(config.validation_samples);
  for (std::size_t i = 0; i < config.validation_samples; ++i) {
    valid_vecs.push_back(db.freq(random_location(bounds, rng), r));
  }

  ml::Matrix x_train(train_vecs.size(), visible_types_.size());
  for (std::size_t i = 0; i < train_vecs.size(); ++i) {
    auto row = x_train.row(i);
    for (std::size_t j = 0; j < visible_types_.size(); ++j) {
      row[j] = train_vecs[i][visible_types_[j]];
    }
  }
  const ml::Matrix x_train_std = scaler_.fit_transform(x_train);

  ml::Matrix x_valid(valid_vecs.size(), visible_types_.size());
  for (std::size_t i = 0; i < valid_vecs.size(); ++i) {
    auto row = x_valid.row(i);
    for (std::size_t j = 0; j < visible_types_.size(); ++j) {
      row[j] = valid_vecs[i][visible_types_[j]];
    }
  }
  const ml::Matrix x_valid_std = scaler_.transform(x_valid);

  models_.reserve(sanitized_.size());
  accuracies_.reserve(sanitized_.size());
  std::vector<int> labels(train_vecs.size());
  std::vector<int> valid_labels(valid_vecs.size());
  for (const poi::TypeId t : sanitized_) {
    for (std::size_t i = 0; i < train_vecs.size(); ++i) {
      labels[i] = train_vecs[i][t];
    }
    ml::SvmClassifier model(config.svm);
    model.train(x_train_std, labels, rng);

    for (std::size_t i = 0; i < valid_vecs.size(); ++i) {
      valid_labels[i] = valid_vecs[i][t];
    }
    const std::vector<int> predicted = model.predict(x_valid_std);
    accuracies_.push_back(ml::accuracy(valid_labels, predicted));
    models_.push_back(std::move(model));
  }
}

double SanitizationRecovery::mean_validation_accuracy() const {
  if (accuracies_.empty()) return 0.0;
  double acc = 0.0;
  for (const double a : accuracies_) acc += a;
  return acc / static_cast<double>(accuracies_.size());
}

std::vector<double> SanitizationRecovery::features_of(
    const poi::FrequencyVector& f) const {
  std::vector<double> row;
  row.reserve(visible_types_.size());
  for (const poi::TypeId t : visible_types_) {
    row.push_back(f[t]);
  }
  scaler_.transform_row(row);
  return row;
}

poi::FrequencyVector SanitizationRecovery::recover(
    const poi::FrequencyVector& sanitized) const {
  assert(sanitized.size() == db_->num_types());
  const std::vector<double> features = features_of(sanitized);
  poi::FrequencyVector out = sanitized;
  for (std::size_t m = 0; m < sanitized_.size(); ++m) {
    out[sanitized_[m]] =
        std::max(0, models_[m].predict(features));
  }
  return out;
}

}  // namespace poiprivacy::attack
