// Trajectory-uniqueness attack (Section IV-B).
//
// When a user releases two successive aggregates F(l1, r), F(l2, r), the
// attacker first runs the baseline attack on each, obtaining candidate
// sets C1, C2. An SVR regressor — trained on historical release pairs —
// estimates the distance the user travelled between the releases from
//   (duration, L1 distance of the two vectors,
//    one-hot hour-of-day, one-hot day-of-week),
// and candidate pairs (a, b) in C1 x C2 whose geographic distance is
// inconsistent with the estimate are discarded. If the surviving pairs
// project to a single first-location candidate, the attack succeeds even
// where the single-release attack was ambiguous.
#pragma once

#include <span>

#include "attack/attack_context.h"
#include "attack/region_reid.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/svr.h"
#include "traj/generators.h"

namespace poiprivacy::attack {

struct TrajectoryAttackConfig {
  /// Distance-consistency tolerance (km). <= 0 derives it from the
  /// regressor's validation MAE: tolerance = max(0.1, 2 * MAE).
  double tolerance_km = -1.0;
  double validation_fraction = 0.25;
  ml::SvrConfig svr{};
};

struct PairInferenceResult {
  ReidResult first;                 ///< baseline result for F(l1, r)
  ReidResult second;                ///< baseline result for F(l2, r)
  double estimated_distance_km = 0.0;
  /// First-location candidates surviving the pair filter.
  std::vector<poi::PoiId> filtered_first_candidates;

  bool baseline_unique() const noexcept { return first.unique(); }
  bool enhanced_unique() const noexcept {
    return filtered_first_candidates.size() == 1;
  }
};

class TrajectoryAttack {
 public:
  /// Trains the distance regressor on historical release pairs (the
  /// attacker's prior knowledge).
  TrajectoryAttack(const poi::PoiDatabase& db,
                   std::span<const traj::ReleasePair> history, double r,
                   const TrajectoryAttackConfig& config, common::Rng& rng);

  /// Attacks one pair of successive releases.
  PairInferenceResult infer(const poi::FrequencyVector& f1,
                            const poi::FrequencyVector& f2,
                            traj::TimeSec t1, traj::TimeSec t2) const;

  /// The SVR travel-distance estimate for one release pair — exactly the
  /// estimated_distance_km that infer() reports, without running the two
  /// baseline attacks. `features` is caller scratch whose capacity is
  /// reused across calls, so a streaming caller (the linkage engine's
  /// per-step consistency filter) pays zero allocations in steady state.
  double estimate_distance_km(std::span<const std::int32_t> f1,
                              std::span<const std::int32_t> f2,
                              traj::TimeSec t1, traj::TimeSec t2,
                              std::vector<double>& features) const;

  double validation_mae_km() const noexcept { return validation_mae_; }
  double tolerance_km() const noexcept { return tolerance_; }

 private:
  std::vector<double> make_features(std::span<const std::int32_t> f1,
                                    std::span<const std::int32_t> f2,
                                    traj::TimeSec t1,
                                    traj::TimeSec t2) const;
  void make_features_into(std::span<const std::int32_t> f1,
                          std::span<const std::int32_t> f2, traj::TimeSec t1,
                          traj::TimeSec t2, std::vector<double>& out) const;

  AttackContext ctx_;
  double r_;
  RegionReidentifier reid_;
  ml::StandardScaler scaler_;
  ml::Svr regressor_;
  double validation_mae_ = 0.0;
  double tolerance_ = 0.1;
};

}  // namespace poiprivacy::attack
