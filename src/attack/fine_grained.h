// Fine-grained location inference (Section IV-A, Algorithm 1).
//
// After the baseline attack pins the user to disk(p*, r) around the major
// anchor p*, the attacker harvests *auxiliary anchors*: POIs in
// P(p*, 2r) that provably (or very likely) lie within r of the true
// location l. Two harvesting rules:
//
//   * exact rule  — if F(p*, 2r)[t] == F(l, r)[t] for a type t, then every
//     type-t POI in P(p*, 2r) is also in P(l, r): it IS within r of l.
//   * pruned rule — otherwise a type-t POI p in P(p*, 2r) is kept if
//     F(p, 2r) dominates F(l, r), the same no-false-negative covering
//     test the baseline uses (this one can admit false positives).
//
// Types are visited in ascending F_diff order (cheapest evidence first),
// stopping after `max_aux` anchors. Every anchor a implies l is in
// disk(a, r), so the feasible region is the intersection of all anchor
// disks — typically a small fraction of the baseline's pi r^2.
#pragma once

#include "attack/region_reid.h"
#include "geo/geometry.h"

namespace poiprivacy::attack {

struct FineGrainedConfig {
  /// MAX_aux of Algorithm 1; the paper uses 20 in the main experiments.
  std::size_t max_aux = 20;
  /// Grid resolution for the feasible-area estimate.
  int area_resolution = 192;
  /// Pruned-rule anchors are only harvested from types whose F_diff is at
  /// most this value: each extra same-type POI in the 2r annulus is a
  /// potential false anchor, so high-F_diff types are too risky to use.
  std::int32_t max_pruned_diff = 1;
  /// Ablation: visit types in ascending F_diff order (paper) vs type-id
  /// order.
  bool sort_by_diff = true;
};

struct FineGrainedResult {
  bool baseline_unique = false;     ///< did the baseline stage succeed?
  poi::PoiId major_anchor = 0;      ///< valid iff baseline_unique
  std::vector<poi::PoiId> aux_anchors;
  std::vector<geo::Circle> feasible_disks;  ///< anchor disks of radius r
  double area_km2 = 0.0;            ///< area of the disk intersection
  /// Candidate anchors discarded because their disk contradicted the
  /// region built so far (false-positive suppression).
  std::size_t rejected_anchors = 0;

  /// Whether a ground-truth location is consistent with every anchor.
  bool contains(geo::Point truth) const noexcept {
    return geo::in_all_disks(truth, feasible_disks);
  }
};

class FineGrainedAttack {
 public:
  FineGrainedAttack(const poi::PoiDatabase& db, FineGrainedConfig config = {})
      : ctx_(db), reid_(db), config_(config) {}

  FineGrainedResult infer(const poi::FrequencyVector& released,
                          double r) const;

  const FineGrainedConfig& config() const noexcept { return config_; }

 private:
  AttackContext ctx_;
  RegionReidentifier reid_;
  FineGrainedConfig config_;
};

}  // namespace poiprivacy::attack
