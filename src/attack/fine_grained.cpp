#include "attack/fine_grained.h"

#include <algorithm>
#include <numeric>

namespace poiprivacy::attack {

namespace {

/// Incrementally-refined feasible region: a boolean mask over a regular
/// grid covering the major anchor's disk. Adding an anchor disk keeps only
/// the grid cells inside it; an addition that would empty the mask is
/// rejected (the user must be somewhere, so an anchor inconsistent with
/// all prior evidence is treated as a false positive and skipped — a
/// robustness refinement over the paper's Algorithm 1, see DESIGN.md).
class FeasibleRegion {
 public:
  FeasibleRegion(const geo::Circle& base, int resolution)
      : resolution_(resolution) {
    const geo::BBox box = base.bbox();
    origin_ = {box.min_x, box.min_y};
    cell_x_ = box.width() / resolution;
    cell_y_ = box.height() / resolution;
    mask_.resize(static_cast<std::size_t>(resolution) *
                 static_cast<std::size_t>(resolution));
    alive_ = 0;
    for (int iy = 0; iy < resolution; ++iy) {
      for (int ix = 0; ix < resolution; ++ix) {
        const bool inside = base.contains(cell_center(ix, iy));
        mask_[index(ix, iy)] = inside;
        alive_ += inside;
      }
    }
  }

  /// Tries to intersect with `disk`; returns false (and leaves the region
  /// unchanged) if the result would be empty.
  bool try_intersect(const geo::Circle& disk) {
    std::size_t survivors = 0;
    for (int iy = 0; iy < resolution_; ++iy) {
      for (int ix = 0; ix < resolution_; ++ix) {
        if (mask_[index(ix, iy)] && disk.contains(cell_center(ix, iy))) {
          ++survivors;
        }
      }
    }
    if (survivors == 0) return false;
    for (int iy = 0; iy < resolution_; ++iy) {
      for (int ix = 0; ix < resolution_; ++ix) {
        auto cell = mask_[index(ix, iy)];
        if (cell && !disk.contains(cell_center(ix, iy))) {
          mask_[index(ix, iy)] = false;
        }
      }
    }
    alive_ = survivors;
    return true;
  }

  double area() const { return static_cast<double>(alive_) * cell_x_ * cell_y_; }

 private:
  geo::Point cell_center(int ix, int iy) const {
    return {origin_.x + (ix + 0.5) * cell_x_, origin_.y + (iy + 0.5) * cell_y_};
  }
  std::size_t index(int ix, int iy) const {
    return static_cast<std::size_t>(iy) * resolution_ + ix;
  }

  int resolution_;
  geo::Point origin_;
  double cell_x_ = 0.0;
  double cell_y_ = 0.0;
  std::vector<char> mask_;
  std::size_t alive_ = 0;
};

}  // namespace

FineGrainedResult FineGrainedAttack::infer(
    const poi::FrequencyVector& released, double r) const {
  FineGrainedResult result;
  const ReidResult baseline = reid_.infer(released, r);
  if (!baseline.unique()) return result;

  result.baseline_unique = true;
  result.major_anchor = baseline.candidates.front();
  const poi::PoiDatabase& db = ctx_.db();
  const geo::Point anchor_pos = db.poi(result.major_anchor).pos;
  result.feasible_disks.push_back({anchor_pos, r});

  const std::vector<poi::PoiId> around = db.query(anchor_pos, 2.0 * r);
  const poi::FrequencyVector& f_anchor =
      ctx_.anchor_freq(result.major_anchor, 2.0 * r);
  const poi::FrequencyVector f_diff = poi::diff(f_anchor, released);

  // Bucket the anchor's neighbourhood by type once.
  std::vector<std::vector<poi::PoiId>> by_type(db.num_types());
  for (const poi::PoiId id : around) {
    if (id != result.major_anchor) by_type[db.poi(id).type].push_back(id);
  }

  // Visit types in ascending F_diff order (cheapest, most reliable
  // evidence first: F_diff == 0 anchors are provably within r of l).
  std::vector<poi::TypeId> order;
  order.reserve(db.num_types());
  for (poi::TypeId t = 0; t < db.num_types(); ++t) {
    // Only types actually present in the released vector carry the
    // guarantee that their nearby POIs could anchor l.
    if (released[t] > 0 && !by_type[t].empty()) order.push_back(t);
  }
  if (config_.sort_by_diff) {
    std::stable_sort(order.begin(), order.end(),
                     [&f_diff](poi::TypeId a, poi::TypeId b) {
                       return f_diff[a] < f_diff[b];
                     });
  }

  // Tile-envelope prune for the dominance-tested (pruned-rule) anchors
  // below: same exact rejection as the baseline attack's
  // (AttackContext::exact_prune_with_total), probing the rarest present
  // types first. A candidate of the type currently being visited always
  // contributes to its own window, so its own bound never fires —
  // harmless, the other probes still reject.
  constexpr std::size_t kPruneTypes = 4;
  const std::vector<poi::TypeId> rare =
      ctx_.rare_present_types(released, kPruneTypes);
  const std::int64_t released_total = poi::total(released);
  const auto tile_pruned = [&](geo::Point pos) {
    return AttackContext::exact_prune_with_total(
        ctx_.window(pos, 2.0 * r), released, rare, released_total);
  };
  // Presence bits of the release, packed once for the word-parallel
  // pre-check inside anchor_dominates below.
  std::vector<poi::FingerprintWord> released_fp(
      poi::fingerprint_words(released.size()));
  poi::pack_fingerprint(released, released_fp);

  FeasibleRegion region({anchor_pos, r}, config_.area_resolution);
  const auto consider = [&](poi::PoiId id) {
    if (result.aux_anchors.size() >= config_.max_aux) return;
    const geo::Circle disk{db.poi(id).pos, r};
    if (region.try_intersect(disk)) {
      result.aux_anchors.push_back(id);
      result.feasible_disks.push_back(disk);
    } else {
      ++result.rejected_anchors;
    }
  };

  for (const poi::TypeId t : order) {
    if (result.aux_anchors.size() >= config_.max_aux) break;
    if (f_diff[t] == 0) {
      // Exact rule: counts match, so every type-t POI near the anchor is
      // provably inside P(l, r).
      for (const poi::PoiId id : by_type[t]) consider(id);
    } else {
      // Pruned rule: keep p only if F(p, 2r) dominates the release — the
      // same no-false-negative covering test as the baseline (false
      // positives possible; the region consistency check above rejects
      // the contradictory ones, and high-F_diff types are skipped as too
      // risky).
      if (f_diff[t] > config_.max_pruned_diff) continue;
      for (const poi::PoiId id : by_type[t]) {
        if (result.aux_anchors.size() >= config_.max_aux) break;
        if (tile_pruned(db.poi(id).pos)) continue;
        if (ctx_.anchor_dominates(id, 2.0 * r, released, released_fp)) {
          consider(id);
        }
      }
    }
  }

  result.area_km2 = region.area();
  return result;
}

}  // namespace poiprivacy::attack
