// Multi-release chain attack — generalizes the paper's two-release
// trajectory-uniqueness attack (Section IV-B) to an arbitrary number of
// successive releases.
//
// Each release yields a candidate set via the baseline attack. The chain
// attack builds a layered graph whose layer t holds release t's
// candidates, with an edge between consecutive candidates when their
// geographic distance is consistent with the SVR-estimated travel
// distance for that step. A candidate in layer 0 survives iff some path
// through all layers starts at it; the attack succeeds when exactly one
// layer-0 candidate survives. Longer chains add constraints, so success
// is monotone in chain length in expectation — the natural "trajectory
// uniqueness" sweep the paper leaves as future work.
#pragma once

#include <span>

#include "attack/trajectory_attack.h"

namespace poiprivacy::attack {

/// One timestamped release of a POI aggregate.
struct TimedRelease {
  poi::FrequencyVector freq;
  traj::TimeSec time = 0;
};

struct ChainInferenceResult {
  /// Candidate sets per release (baseline attack output).
  std::vector<std::vector<poi::PoiId>> layers;
  /// Layer-0 candidates with at least one consistent path through every
  /// subsequent layer.
  std::vector<poi::PoiId> surviving_first_candidates;
  /// Estimated step distances (layers.size() - 1 entries).
  std::vector<double> estimated_step_km;

  bool unique() const noexcept {
    return surviving_first_candidates.size() == 1;
  }
};

class ChainAttack {
 public:
  /// Reuses the two-release attack's trained distance regressor.
  ChainAttack(const poi::PoiDatabase& db, const TrajectoryAttack& pairwise,
              double r)
      : ctx_(db), pairwise_(&pairwise), reid_(db), r_(r) {}

  /// Runs the attack over n >= 1 successive releases.
  ChainInferenceResult infer(std::span<const TimedRelease> releases) const;

  /// Success criterion: a unique surviving first candidate within r of
  /// the true first location.
  bool success(const ChainInferenceResult& result,
               geo::Point first_truth) const noexcept;

 private:
  AttackContext ctx_;
  const TrajectoryAttack* pairwise_;
  RegionReidentifier reid_;
  double r_;
};

}  // namespace poiprivacy::attack
