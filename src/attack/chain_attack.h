// Multi-release chain attack — generalizes the paper's two-release
// trajectory-uniqueness attack (Section IV-B) to an arbitrary number of
// successive releases.
//
// Each release yields a candidate set via the baseline attack. The chain
// attack builds a layered graph whose layer t holds release t's
// candidates, with an edge between consecutive candidates when their
// geographic distance is consistent with the SVR-estimated travel
// distance for that step. A candidate in layer 0 survives iff some path
// through all layers starts at it; the attack succeeds when exactly one
// layer-0 candidate survives. Longer chains add constraints, so success
// is monotone in chain length in expectation — the natural "trajectory
// uniqueness" sweep the paper leaves as future work.
//
// This class is the strategy layer: it shapes the per-release layers and
// step estimates and interprets the survivor set. The layered solve
// itself — blocking index, squared-annulus consistency test, backward
// sweep with the transparent fallback — lives in attack::LinkageEngine
// (attack/linkage_engine.h), shared with the streaming 100K-user
// tracker. Outputs are byte-identical to the historical all-pairs loop
// (pinned by the ext_chain_attack golden and
// tests/linkage_property_test.cpp).
#pragma once

#include <span>

#include "attack/linkage_engine.h"

namespace poiprivacy::attack {

struct ChainInferenceResult {
  /// Candidate sets per release (baseline attack output).
  std::vector<std::vector<poi::PoiId>> layers;
  /// Layer-0 candidates with at least one consistent path through every
  /// subsequent layer.
  std::vector<poi::PoiId> surviving_first_candidates;
  /// Estimated step distances (layers.size() - 1 entries).
  std::vector<double> estimated_step_km;

  bool unique() const noexcept {
    return surviving_first_candidates.size() == 1;
  }
};

class ChainAttack {
 public:
  /// Reuses the two-release attack's trained distance regressor.
  ChainAttack(const poi::PoiDatabase& db, const TrajectoryAttack& pairwise,
              double r)
      : engine_(db, pairwise, r) {}

  /// Runs the attack over n >= 1 successive releases.
  ChainInferenceResult infer(std::span<const TimedRelease> releases) const;

  /// Success criterion: a unique surviving first candidate within r of
  /// the true first location.
  bool success(const ChainInferenceResult& result,
               geo::Point first_truth) const noexcept;

  const LinkageEngine& engine() const noexcept { return engine_; }

 private:
  LinkageEngine engine_;
};

}  // namespace poiprivacy::attack
