#include "attack/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace poiprivacy::attack {

FingerprintAttack::FingerprintAttack(const poi::PoiDatabase& db, double r,
                                     FingerprintConfig config)
    : db_(&db), r_(r), config_(config) {
  const geo::BBox& bounds = db.bounds();
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() /
                                               config_.cell_km)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() /
                                               config_.cell_km)));
  const double envelope_radius =
      r + config_.cell_km * std::numbers::sqrt2 / 2.0;
  std::vector<geo::Point> centers;
  centers.reserve(static_cast<std::size_t>(nx_) * ny_);
  for (int iy = 0; iy < ny_; ++iy) {
    for (int ix = 0; ix < nx_; ++ix) {
      centers.push_back({bounds.min_x + (ix + 0.5) * config_.cell_km,
                         bounds.min_y + (iy + 0.5) * config_.cell_km});
    }
  }
  db.freq_batch(centers, envelope_radius, envelopes_);
  // Presence bits per envelope row: infer() refutes most cells with a
  // few word ops before paying for the per-type dominance scan.
  envelopes_.pack_fingerprints();
}

geo::Point FingerprintAttack::cell_center(std::uint32_t cell) const {
  const geo::BBox& bounds = db_->bounds();
  const int ix = static_cast<int>(cell) % nx_;
  const int iy = static_cast<int>(cell) / nx_;
  return {bounds.min_x + (ix + 0.5) * config_.cell_km,
          bounds.min_y + (iy + 0.5) * config_.cell_km};
}

FingerprintResult FingerprintAttack::infer(
    const poi::FrequencyVector& released) const {
  FingerprintResult result;
  double sum_x = 0.0;
  double sum_y = 0.0;
  // Pack the release once; a cell whose presence bits fail to cover the
  // release's cannot dominate it, so the word-parallel covers test
  // rejects most cells before the per-type scan runs. Most survivors
  // still fail dominance, so the early-exit variant finishes the job.
  std::vector<poi::FingerprintWord> released_fp(
      poi::fingerprint_words(released.size()));
  poi::pack_fingerprint(released, released_fp);
  for (std::uint32_t cell = 0; cell < envelopes_.rows(); ++cell) {
    if (!poi::fingerprint_covers(envelopes_.fingerprint(cell), released_fp)) {
      continue;
    }
    if (poi::dominates_early_exit(envelopes_.row(cell), released)) {
      result.feasible_cells.push_back(cell);
      const geo::Point c = cell_center(cell);
      sum_x += c.x;
      sum_y += c.y;
    }
  }
  const double cell_area = config_.cell_km * config_.cell_km;
  result.feasible_area_km2 =
      static_cast<double>(result.feasible_cells.size()) * cell_area;
  if (!result.feasible_cells.empty()) {
    const auto n = static_cast<double>(result.feasible_cells.size());
    result.centroid = {sum_x / n, sum_y / n};
  }
  return result;
}

bool FingerprintAttack::covers(const FingerprintResult& result,
                               geo::Point location) const {
  const geo::BBox& bounds = db_->bounds();
  const int ix = std::clamp(
      static_cast<int>((location.x - bounds.min_x) / config_.cell_km), 0,
      nx_ - 1);
  const int iy = std::clamp(
      static_cast<int>((location.y - bounds.min_y) / config_.cell_km), 0,
      ny_ - 1);
  const auto cell = static_cast<std::uint32_t>(iy * nx_ + ix);
  return std::binary_search(result.feasible_cells.begin(),
                            result.feasible_cells.end(), cell);
}

}  // namespace poiprivacy::attack
