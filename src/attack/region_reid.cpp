#include "attack/region_reid.h"

#include <array>
#include <span>

namespace poiprivacy::attack {

ReidResult RegionReidentifier::infer(const poi::FrequencyVector& released,
                                     double r) const {
  ReidResult result;
  ReidScratch scratch;
  infer_into(released, r, scratch, result);
  return result;
}

void RegionReidentifier::infer_into(std::span<const std::int32_t> released,
                                    double r, ReidScratch& scratch,
                                    ReidResult& out) const {
  out.candidates.clear();
  out.pivot_type.reset();

  // One fused scan finds the pivot AND the next kPruneTypes rarest
  // present types (AttackContext::rarest_present, same (city-count, id)
  // order as pivot_type()).
  constexpr std::size_t kPruneTypes = 4;
  std::array<poi::TypeId, 1 + kPruneTypes> rarest;
  const std::size_t nrare = ctx_.rarest_present(released, rarest);
  if (nrare == 0) return;
  out.pivot_type = rarest[0];
  const std::span<const poi::TypeId> rare(rarest.data() + 1, nrare - 1);

  // Tile-envelope pruning (AttackContext::exact_prune): dominance requires
  // F(p, 2r)[t] >= released[t] for every t, and the tile bound dominates
  // the left-hand side, so a candidate whose bound already falls short is
  // rejected exactly — without touching the anchor cache or running the
  // disk aggregation. The probed types skip the pivot (every candidate is
  // itself a pivot-type POI, so that bound can never fire). (A total-count
  // bound was measured to reject ~nothing the rare-type probes don't, so
  // this hot loop does not pay for one.) The envelope batches the probes:
  // candidates sharing a tile share one coarse verdict, with the
  // per-candidate window as the exact fallback, so the gate sees the same
  // fired sequence as the unbatched loop.
  AttackContext::AdaptiveGate gate(!rare.empty());
  AttackContext::BatchedEnvelope envelope(ctx_, 2.0 * r, released, rare,
                                          scratch.tile_verdict);

  // Pack the release's presence bits once; every anchor's fingerprint is
  // cached alongside its vector, so the dominance scan below starts with
  // a word-parallel covers pre-check.
  scratch.released_fp.resize(poi::fingerprint_words(released.size()));
  poi::pack_fingerprint(released, scratch.released_fp);

  for (const poi::PoiId candidate : ctx_.candidates_of_type(*out.pivot_type)) {
    if (gate.enabled()) {
      const bool fired = envelope.pruned(ctx_.db().poi(candidate).pos);
      gate.record(fired);
      if (fired) continue;
    }
    // Cached: the same anchors are probed at the same 2r for every
    // evaluated location, and this dominance scan is the attack's hot path.
    if (ctx_.anchor_dominates(candidate, 2.0 * r, released,
                              scratch.released_fp)) {
      out.candidates.push_back(candidate);
    }
  }
}

bool attack_success(const ReidResult& result, const poi::PoiDatabase& db,
                    geo::Point true_location, double r) noexcept {
  if (!result.unique()) return false;
  const geo::Point anchor = db.poi(result.candidates.front()).pos;
  return geo::distance(anchor, true_location) <= r + 1e-9;
}

}  // namespace poiprivacy::attack
