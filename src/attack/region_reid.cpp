#include "attack/region_reid.h"

#include <algorithm>
#include <array>
#include <span>

namespace poiprivacy::attack {

std::vector<poi::TypeId> rare_present_types(
    const poi::PoiDatabase& db, const poi::FrequencyVector& released,
    std::size_t max_n, std::optional<poi::TypeId> skip) {
  const poi::FrequencyVector& city = db.city_freq();
  std::vector<poi::TypeId> present;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] > 0 && (!skip || t != *skip)) present.push_back(t);
  }
  const std::size_t keep = std::min(max_n, present.size());
  std::partial_sort(present.begin(),
                    present.begin() + static_cast<std::ptrdiff_t>(keep),
                    present.end(), [&city](poi::TypeId a, poi::TypeId b) {
                      if (city[a] != city[b]) return city[a] < city[b];
                      return a < b;
                    });
  present.resize(keep);
  return present;
}

std::optional<poi::TypeId> RegionReidentifier::pivot_type(
    const poi::FrequencyVector& released) const {
  const poi::FrequencyVector& city = db_->city_freq();
  std::optional<poi::TypeId> best;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] <= 0) continue;
    if (!best || city[t] < city[*best] ||
        (city[t] == city[*best] && t < *best)) {
      best = t;
    }
  }
  return best;
}

ReidResult RegionReidentifier::infer(const poi::FrequencyVector& released,
                                     double r) const {
  ReidResult result;

  // One allocation-free pass finds the pivot AND the next kPruneTypes
  // rarest present types (same (city-count, id) order as pivot_type() and
  // rare_present_types()): bounded insertion into a sorted array costs
  // ~one comparison per type, where the allocating helper costs ~1us per
  // call — more than the whole candidate loop at large r.
  constexpr std::size_t kPruneTypes = 4;
  const poi::FrequencyVector& city = db_->city_freq();
  std::array<poi::TypeId, 1 + kPruneTypes> rarest;
  std::size_t nrare = 0;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] <= 0) continue;
    std::size_t pos = nrare;
    while (pos > 0 && (city[t] < city[rarest[pos - 1]] ||
                       (city[t] == city[rarest[pos - 1]] &&
                        t < rarest[pos - 1]))) {
      --pos;
    }
    if (pos >= rarest.size()) continue;
    for (std::size_t j = std::min(nrare, rarest.size() - 1); j > pos; --j) {
      rarest[j] = rarest[j - 1];
    }
    rarest[pos] = t;
    if (nrare < rarest.size()) ++nrare;
  }
  if (nrare == 0) return result;
  result.pivot_type = rarest[0];
  const std::span<const poi::TypeId> rare(rarest.data() + 1, nrare - 1);

  // Tile-envelope pruning: dominance requires F(p, 2r)[t] >= released[t]
  // for every t, and the tile bound dominates the left-hand side, so a
  // candidate whose bound already falls short is rejected exactly —
  // without touching the anchor cache or running the disk aggregation.
  // The probed types skip the pivot (every candidate is itself a
  // pivot-type POI, so that bound can never fire): rare types have few
  // POIs citywide, which makes a zero-count window — and thus a
  // one-comparison rejection — the common case when the release carries
  // many types. (A total-count bound was measured to reject ~nothing the
  // rare-type probes don't, so the hot loop does not pay for one.)
  //
  // The prune is gated adaptively: at small r nearly every candidate
  // dominates the near-empty release, so probing is pure overhead. The
  // first kProbe candidates measure the reject rate; below kMinRejects
  // the remaining candidates go straight to the cached dominance scan.
  // The gate is a deterministic function of the candidate sequence, and
  // pruning only ever skips candidates the full test would reject, so
  // results are bit-identical with the prune on, off, or mixed.
  constexpr int kProbe = 32;
  constexpr int kMinRejects = 8;
  const poi::TileAggregates& tiles = db_->tile_aggregates();
  int probed = 0;
  int rejected = 0;
  bool prune_on = !rare.empty();

  for (const poi::PoiId candidate : db_->pois_of_type(*result.pivot_type)) {
    if (prune_on) {
      const poi::TileAggregates::Window win =
          tiles.window(db_->poi(candidate).pos, 2.0 * r);
      bool fired = false;
      for (const poi::TypeId t : rare) {
        if (win.type_bound(t) < released[t]) {
          fired = true;
          break;
        }
      }
      ++probed;
      rejected += fired;
      if (probed == kProbe && rejected < kMinRejects) prune_on = false;
      if (fired) continue;
    }
    // Cached: the same anchors are probed at the same 2r for every
    // evaluated location, and this dominance scan is the attack's hot path.
    const poi::FrequencyVector& around = db_->anchor_freq(candidate, 2.0 * r);
    if (poi::dominates(around, released)) {
      result.candidates.push_back(candidate);
    }
  }
  return result;
}

bool attack_success(const ReidResult& result, const poi::PoiDatabase& db,
                    geo::Point true_location, double r) noexcept {
  if (!result.unique()) return false;
  const geo::Point anchor = db.poi(result.candidates.front()).pos;
  return geo::distance(anchor, true_location) <= r + 1e-9;
}

}  // namespace poiprivacy::attack
