#include "attack/region_reid.h"

namespace poiprivacy::attack {

std::optional<poi::TypeId> RegionReidentifier::pivot_type(
    const poi::FrequencyVector& released) const {
  const poi::FrequencyVector& city = db_->city_freq();
  std::optional<poi::TypeId> best;
  for (poi::TypeId t = 0; t < released.size(); ++t) {
    if (released[t] <= 0) continue;
    if (!best || city[t] < city[*best] ||
        (city[t] == city[*best] && t < *best)) {
      best = t;
    }
  }
  return best;
}

ReidResult RegionReidentifier::infer(const poi::FrequencyVector& released,
                                     double r) const {
  ReidResult result;
  result.pivot_type = pivot_type(released);
  if (!result.pivot_type) return result;

  for (const poi::PoiId candidate : db_->pois_of_type(*result.pivot_type)) {
    // Cached: the same anchors are probed at the same 2r for every
    // evaluated location, and this dominance scan is the attack's hot path.
    const poi::FrequencyVector& around = db_->anchor_freq(candidate, 2.0 * r);
    if (poi::dominates(around, released)) {
      result.candidates.push_back(candidate);
    }
  }
  return result;
}

bool attack_success(const ReidResult& result, const poi::PoiDatabase& db,
                    geo::Point true_location, double r) noexcept {
  if (!result.unique()) return false;
  const geo::Point anchor = db.poi(result.candidates.front()).pos;
  return geo::distance(anchor, true_location) <= r + 1e-9;
}

}  // namespace poiprivacy::attack
