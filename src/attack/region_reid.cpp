#include "attack/region_reid.h"

#include <array>
#include <span>

namespace poiprivacy::attack {

ReidResult RegionReidentifier::infer(const poi::FrequencyVector& released,
                                     double r) const {
  ReidResult result;

  // One fused scan finds the pivot AND the next kPruneTypes rarest
  // present types (AttackContext::rarest_present, same (city-count, id)
  // order as pivot_type()).
  constexpr std::size_t kPruneTypes = 4;
  std::array<poi::TypeId, 1 + kPruneTypes> rarest;
  const std::size_t nrare = ctx_.rarest_present(released, rarest);
  if (nrare == 0) return result;
  result.pivot_type = rarest[0];
  const std::span<const poi::TypeId> rare(rarest.data() + 1, nrare - 1);

  // Tile-envelope pruning (AttackContext::exact_prune): dominance requires
  // F(p, 2r)[t] >= released[t] for every t, and the tile bound dominates
  // the left-hand side, so a candidate whose bound already falls short is
  // rejected exactly — without touching the anchor cache or running the
  // disk aggregation. The probed types skip the pivot (every candidate is
  // itself a pivot-type POI, so that bound can never fire). (A total-count
  // bound was measured to reject ~nothing the rare-type probes don't, so
  // this hot loop does not pay for one.)
  AttackContext::AdaptiveGate gate(!rare.empty());

  for (const poi::PoiId candidate : ctx_.candidates_of_type(*result.pivot_type)) {
    if (gate.enabled()) {
      const poi::TileAggregates::Window win =
          ctx_.window(ctx_.db().poi(candidate).pos, 2.0 * r);
      const bool fired = AttackContext::exact_prune(win, released, rare);
      gate.record(fired);
      if (fired) continue;
    }
    // Cached: the same anchors are probed at the same 2r for every
    // evaluated location, and this dominance scan is the attack's hot path.
    const poi::FrequencyVector& around = ctx_.anchor_freq(candidate, 2.0 * r);
    if (poi::dominates(around, released)) {
      result.candidates.push_back(candidate);
    }
  }
  return result;
}

bool attack_success(const ReidResult& result, const poi::PoiDatabase& db,
                    geo::Point true_location, double r) noexcept {
  if (!result.unique()) return false;
  const geo::Point anchor = db.poi(result.candidates.front()).pos;
  return geo::distance(anchor, true_location) <= r + 1e-9;
}

}  // namespace poiprivacy::attack
