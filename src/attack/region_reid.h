// Region re-identification — the baseline attack of Cao et al. (IMWUT'18)
// as reviewed in Section II-D of the paper.
//
// Given a released type frequency vector F(l, r), the attacker:
//   1. takes the citywide-rarest type t present in the vector,
//   2. collects every POI of type t as a candidate anchor,
//   3. prunes candidates p whose F(p, 2r) fails to dominate F(l, r)
//      componentwise (if p is within r of l, disk(l, r) is contained in
//      disk(p, 2r), so domination is necessary — the attack has no false
//      negatives),
//   4. declares success iff exactly one candidate survives; the user then
//      lies somewhere in disk(p*, r), an area of pi r^2.
//
// The enumeration/pruning machinery (pivot scan, tile-envelope prune,
// adaptive gate, anchor cache) lives in attack::AttackContext; this class
// is the strategy layer that wires those primitives into the baseline
// candidate loop.
#pragma once

#include <optional>

#include "attack/attack_context.h"
#include "poi/database.h"

namespace poiprivacy::attack {

struct ReidResult {
  /// Candidate anchors surviving the pruning step (Phi in the paper).
  std::vector<poi::PoiId> candidates;
  /// The pivot (most infrequent present) type, if the vector was nonempty.
  std::optional<poi::TypeId> pivot_type;

  bool unique() const noexcept { return candidates.size() == 1; }
};

/// Reusable buffers for infer_into: the released fingerprint words and
/// the batched envelope's per-tile verdict table. A caller that runs one
/// inference per release (the streaming linkage tracker) keeps one of
/// these and pays zero allocations per call in steady state.
struct ReidScratch {
  std::vector<poi::FingerprintWord> released_fp;
  std::vector<std::int8_t> tile_verdict;
};

class RegionReidentifier {
 public:
  explicit RegionReidentifier(const poi::PoiDatabase& db) : ctx_(db) {}

  /// Runs the attack on a released vector for query radius `r` km.
  ReidResult infer(const poi::FrequencyVector& released, double r) const;

  /// infer() into caller-owned result/scratch storage: `out` is cleared
  /// and refilled with the identical candidate set (bit-for-bit the same
  /// enumeration, envelope and dominance path), reusing the capacity of
  /// all four buffers across calls.
  void infer_into(std::span<const std::int32_t> released, double r,
                  ReidScratch& scratch, ReidResult& out) const;

  /// Citywide-rarest type with a positive entry, if any.
  std::optional<poi::TypeId> pivot_type(
      const poi::FrequencyVector& released) const {
    return ctx_.pivot_type(released);
  }

  const poi::PoiDatabase& db() const noexcept { return ctx_.db(); }

 private:
  AttackContext ctx_;
};

/// The paper's success criterion, evaluated against ground truth: the
/// attack produced exactly one candidate and the true location indeed
/// lies within r of it.
bool attack_success(const ReidResult& result, const poi::PoiDatabase& db,
                    geo::Point true_location, double r) noexcept;

}  // namespace poiprivacy::attack
