// Region re-identification — the baseline attack of Cao et al. (IMWUT'18)
// as reviewed in Section II-D of the paper.
//
// Given a released type frequency vector F(l, r), the attacker:
//   1. takes the citywide-rarest type t present in the vector,
//   2. collects every POI of type t as a candidate anchor,
//   3. prunes candidates p whose F(p, 2r) fails to dominate F(l, r)
//      componentwise (if p is within r of l, disk(l, r) is contained in
//      disk(p, 2r), so domination is necessary — the attack has no false
//      negatives),
//   4. declares success iff exactly one candidate survives; the user then
//      lies somewhere in disk(p*, r), an area of pi r^2.
#pragma once

#include <optional>

#include "poi/database.h"

namespace poiprivacy::attack {

struct ReidResult {
  /// Candidate anchors surviving the pruning step (Phi in the paper).
  std::vector<poi::PoiId> candidates;
  /// The pivot (most infrequent present) type, if the vector was nonempty.
  std::optional<poi::TypeId> pivot_type;

  bool unique() const noexcept { return candidates.size() == 1; }
};

class RegionReidentifier {
 public:
  explicit RegionReidentifier(const poi::PoiDatabase& db) : db_(&db) {}

  /// Runs the attack on a released vector for query radius `r` km.
  ReidResult infer(const poi::FrequencyVector& released, double r) const;

  /// Citywide-rarest type with a positive entry, if any.
  std::optional<poi::TypeId> pivot_type(
      const poi::FrequencyVector& released) const;

  const poi::PoiDatabase& db() const noexcept { return *db_; }

 private:
  const poi::PoiDatabase* db_;
};

/// The paper's success criterion, evaluated against ground truth: the
/// attack produced exactly one candidate and the true location indeed
/// lies within r of it.
bool attack_success(const ReidResult& result, const poi::PoiDatabase& db,
                    geo::Point true_location, double r) noexcept;

/// The `max_n` citywide-rarest types present in `released`, rarest first,
/// excluding `skip`. These drive the tile-envelope candidate prune shared
/// by the re-identification attacks: a rare type has few POIs citywide, so
/// most candidate windows contain zero of them and one integer comparison
/// (`window.type_bound(t) < released[t]`) rejects the candidate before any
/// disk aggregation or cache lookup. `skip` exists because a candidate of
/// type t always contributes to its own window, making the t-bound useless
/// against pivot-type candidates.
std::vector<poi::TypeId> rare_present_types(
    const poi::PoiDatabase& db, const poi::FrequencyVector& released,
    std::size_t max_n, std::optional<poi::TypeId> skip = std::nullopt);

}  // namespace poiprivacy::attack
