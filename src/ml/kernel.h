// Kernels shared by the SVM classifier and the SVR regressor.
#pragma once

#include <span>

namespace poiprivacy::ml {

enum class KernelKind {
  kLinear,
  kRbf,
};

struct KernelParams {
  KernelKind kind = KernelKind::kRbf;
  /// RBF width. <= 0 means "scale": 1 / (n_features * feature_variance),
  /// matching scikit-learn's gamma='scale' on standardized inputs (~1/d).
  double gamma = -1.0;
};

/// Resolves gamma='scale' for the given feature dimension.
double effective_gamma(const KernelParams& params, std::size_t num_features);

/// k(a, b) for standardized rows a, b.
double kernel_value(const KernelParams& params, double gamma,
                    std::span<const double> a, std::span<const double> b);

}  // namespace poiprivacy::ml
