// Multinomial (one-vs-rest) logistic regression trained by mini-batch
// SGD with L2 regularization — a linear-model ablation against the
// paper's SVM choice for the sanitization-recovery classifiers
// (bench/ablation_recovery_models).
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace poiprivacy::ml {

struct LogisticConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 60;
  std::size_t batch_size = 16;
};

/// Two-class logistic regression over labels {-1, +1}.
class BinaryLogistic {
 public:
  void train(const Matrix& x, std::span<const int> labels,
             const LogisticConfig& config, common::Rng& rng);

  /// Log-odds (positive => class +1).
  double decision(std::span<const double> row) const;
  /// P(label == +1).
  double probability(std::span<const double> row) const;

  const std::vector<double>& weights() const noexcept { return weights_; }
  double bias() const noexcept { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// One-vs-rest classifier over arbitrary integer labels, mirroring
/// SvmClassifier's interface so the two are drop-in interchangeable.
class LogisticClassifier {
 public:
  explicit LogisticClassifier(LogisticConfig config = {}) : config_(config) {}

  void train(const Matrix& x, std::span<const int> labels, common::Rng& rng);

  int predict(std::span<const double> row) const;
  std::vector<int> predict(const Matrix& x) const;

  const std::vector<int>& classes() const noexcept { return classes_; }

 private:
  LogisticConfig config_;
  std::vector<int> classes_;
  std::vector<BinaryLogistic> machines_;
};

}  // namespace poiprivacy::ml
