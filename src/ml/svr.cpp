#include "ml/svr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace poiprivacy::ml {

namespace {

double soft_threshold(double z, double t) noexcept {
  if (z > t) return z - t;
  if (z < -t) return z + t;
  return 0.0;
}

}  // namespace

void Svr::train(const Matrix& x, std::span<const double> targets,
                common::Rng& rng) {
  const std::size_t n = x.rows();
  assert(targets.size() == n);
  gamma_ = effective_gamma(config_.kernel, x.cols());
  if (n == 0) {
    sv_ = Matrix(0, 0);
    sv_coef_.clear();
    return;
  }
  if (n > 8000) {
    throw std::invalid_argument("svr: training set too large for Gram cache");
  }

  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v =
          kernel_value(config_.kernel, gamma_, x.row(i), x.row(j)) + 1.0;
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  std::vector<double> beta(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_i = sum_j beta_j k'(x_j, x_i)
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double max_step = 0.0;
    for (const std::size_t i : order) {
      const double kii = k[i * n + i];
      // Partial residual without beta_i's own contribution.
      const double g = f[i] - beta[i] * kii - targets[i];
      const double next = std::clamp(soft_threshold(-g, config_.epsilon) / kii,
                                     -config_.c, config_.c);
      const double delta = next - beta[i];
      if (delta == 0.0) continue;
      max_step = std::max(max_step, std::abs(delta));
      beta[i] = next;
      const double* row = &k[i * n];
      for (std::size_t j = 0; j < n; ++j) f[j] += delta * row[j];
    }
    if (max_step < config_.tolerance) break;
  }

  sv_ = Matrix(0, 0);
  sv_coef_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(beta[i]) > 1e-12) {
      sv_.push_row(x.row(i));
      sv_coef_.push_back(beta[i]);
    }
  }
}

double Svr::predict(std::span<const double> row) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < sv_.rows(); ++i) {
    acc += sv_coef_[i] *
           (kernel_value(config_.kernel, gamma_, sv_.row(i), row) + 1.0);
  }
  return acc;
}

std::vector<double> Svr::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace poiprivacy::ml
