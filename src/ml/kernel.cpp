#include "ml/kernel.h"

#include <cassert>
#include <cmath>

namespace poiprivacy::ml {

double effective_gamma(const KernelParams& params, std::size_t num_features) {
  if (params.gamma > 0.0) return params.gamma;
  return num_features > 0 ? 1.0 / static_cast<double>(num_features) : 1.0;
}

double kernel_value(const KernelParams& params, double gamma,
                    std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  switch (params.kind) {
    case KernelKind::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelKind::kRbf: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
      }
      return std::exp(-gamma * d2);
    }
  }
  return 0.0;
}

}  // namespace poiprivacy::ml
