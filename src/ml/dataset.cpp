#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace poiprivacy::ml {

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::push_row: column count mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void StandardScaler::fit(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  means_.assign(d, 0.0);
  scales_.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) means_[j] += row[j];
  }
  for (double& m : means_) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - means_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    scales_[j] = sd > 1e-12 ? sd : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  assert(x.cols() == means_.size());
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(i);
    auto dst = out.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      dst[j] = (src[j] - means_[j]) / scales_[j];
    }
  }
  return out;
}

void StandardScaler::transform_row(std::span<double> row) const {
  assert(row.size() == means_.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    row[j] = (row[j] - means_[j]) / scales_[j];
  }
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> train_test_split(
    std::size_t n, double test_fraction, common::Rng& rng) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  rng.shuffle(indices);
  const auto n_test = static_cast<std::size_t>(
      std::round(test_fraction * static_cast<double>(n)));
  std::vector<std::size_t> test(indices.begin(),
                                indices.begin() + static_cast<std::ptrdiff_t>(
                                                      std::min(n_test, n)));
  std::vector<std::size_t> train(
      indices.begin() + static_cast<std::ptrdiff_t>(std::min(n_test, n)),
      indices.end());
  return {std::move(train), std::move(test)};
}

Matrix take_rows(const Matrix& x, std::span<const std::size_t> indices) {
  Matrix out(indices.size(), x.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = x.row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

std::vector<double> take(std::span<const double> v,
                         std::span<const std::size_t> indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(v[i]);
  return out;
}

std::vector<int> take(std::span<const int> v,
                      std::span<const std::size_t> indices) {
  std::vector<int> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(v[i]);
  return out;
}

double accuracy(std::span<const int> truth, std::span<const int> predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double root_mean_squared_error(std::span<const double> truth,
                               std::span<const double> predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

void one_hot(std::size_t index, std::size_t size, std::vector<double>& out) {
  assert(index < size);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(i == index ? 1.0 : 0.0);
  }
}

}  // namespace poiprivacy::ml
