// Dense sample matrices and dataset utilities for the learning-based
// attacks (sanitization recovery, trajectory distance regression).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace poiprivacy::ml {

/// Row-major dense matrix of samples (rows) x features (columns).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Appends a row (must have cols() entries, or define cols on first row).
  void push_row(std::span<const double> values);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Standardizes features to zero mean / unit variance (constant features
/// are left centred with scale 1), mirroring the paper's preprocessing.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  void transform_row(std::span<double> row) const;
  Matrix fit_transform(const Matrix& x);

  const std::vector<double>& means() const noexcept { return means_; }
  const std::vector<double>& scales() const noexcept { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

/// Random index split: returns (train_indices, test_indices).
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> train_test_split(
    std::size_t n, double test_fraction, common::Rng& rng);

/// Selects the given rows of x (and optionally the matching entries of y).
Matrix take_rows(const Matrix& x, std::span<const std::size_t> indices);
std::vector<double> take(std::span<const double> v,
                         std::span<const std::size_t> indices);
std::vector<int> take(std::span<const int> v,
                      std::span<const std::size_t> indices);

/// Classification accuracy.
double accuracy(std::span<const int> truth, std::span<const int> predicted);

/// Regression errors.
double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> predicted);
double root_mean_squared_error(std::span<const double> truth,
                               std::span<const double> predicted);

/// Writes a one-hot encoding of `index` (0 <= index < size) into out.
void one_hot(std::size_t index, std::size_t size, std::vector<double>& out);

}  // namespace poiprivacy::ml
