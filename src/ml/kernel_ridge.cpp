#include "ml/kernel_ridge.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace poiprivacy::ml {

namespace {

/// In-place Cholesky solve of (A) x = b for symmetric positive-definite A
/// stored row-major. A is destroyed.
std::vector<double> cholesky_solve(std::vector<double>& a, std::size_t n,
                                   std::span<const double> b) {
  // Decompose A = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) {
      throw std::runtime_error("kernel ridge: Gram matrix not PD");
    }
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward substitution L z = b.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * z[k];
    z[i] = v / a[i * n + i];
  }
  // Back substitution L^T x = z.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= a[k * n + ii] * x[k];
    x[ii] = v / a[ii * n + ii];
  }
  return x;
}

}  // namespace

void KernelRidge::train(const Matrix& x, std::span<const double> targets) {
  const std::size_t n = x.rows();
  assert(targets.size() == n);
  if (config_.lambda <= 0.0) {
    throw std::invalid_argument("kernel ridge: lambda must be > 0");
  }
  if (n > 8000) {
    throw std::invalid_argument(
        "kernel ridge: training set too large for Gram cache");
  }
  gamma_ = effective_gamma(config_.kernel, x.cols());
  train_x_ = x;
  if (n == 0) {
    alpha_.clear();
    return;
  }
  std::vector<double> gram(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v =
          kernel_value(config_.kernel, gamma_, x.row(i), x.row(j)) + 1.0;
      gram[i * n + j] = v;
      gram[j * n + i] = v;
    }
    gram[i * n + i] += config_.lambda;
  }
  alpha_ = cholesky_solve(gram, n, targets);
}

double KernelRidge::predict(std::span<const double> row) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < train_x_.rows(); ++i) {
    acc += alpha_[i] *
           (kernel_value(config_.kernel, gamma_, train_x_.row(i), row) + 1.0);
  }
  return acc;
}

std::vector<double> KernelRidge::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace poiprivacy::ml
