#include "ml/svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace poiprivacy::ml {

namespace {

constexpr std::size_t kMaxGramSamples = 8000;

/// Precomputed Gram matrix with the +1 bias term folded in.
std::vector<double> gram_plus_one(const Matrix& x, const KernelParams& params,
                                  double gamma) {
  const std::size_t n = x.rows();
  if (n > kMaxGramSamples) {
    throw std::invalid_argument("svm: training set too large for Gram cache");
  }
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel_value(params, gamma, x.row(i), x.row(j)) + 1.0;
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  return k;
}

}  // namespace

void BinarySvm::train(const Matrix& x, std::span<const int> labels,
                      const SvmConfig& config, common::Rng& rng) {
  const std::size_t n = x.rows();
  assert(labels.size() == n);
  kernel_ = config.kernel;
  gamma_ = effective_gamma(config.kernel, x.cols());
  const std::vector<double> k = gram_plus_one(x, kernel_, gamma_);

  std::vector<double> alpha(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_i = sum_j alpha_j y_j k'(x_j, x_i)
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    rng.shuffle(order);
    double max_violation = 0.0;
    for (const std::size_t i : order) {
      const double y = labels[i];
      const double grad = y * f[i] - 1.0;  // dD/dalpha_i
      // Projected-gradient KKT violation.
      double violation = 0.0;
      if (alpha[i] <= 0.0) {
        violation = std::max(0.0, -grad);
      } else if (alpha[i] >= config.c) {
        violation = std::max(0.0, grad);
      } else {
        violation = std::abs(grad);
      }
      max_violation = std::max(max_violation, violation);
      if (violation < config.tolerance) continue;
      const double kii = k[i * n + i];
      const double next =
          std::clamp(alpha[i] - grad / kii, 0.0, config.c);
      const double delta = next - alpha[i];
      if (delta == 0.0) continue;
      alpha[i] = next;
      const double* row = &k[i * n];
      const double scaled = delta * y;
      for (std::size_t j = 0; j < n; ++j) f[j] += scaled * row[j];
    }
    if (max_violation < config.tolerance) break;
  }

  sv_ = Matrix(0, 0);
  sv_coef_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-12) {
      sv_.push_row(x.row(i));
      sv_coef_.push_back(alpha[i] * labels[i]);
    }
  }
}

double BinarySvm::decision(std::span<const double> row) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < sv_.rows(); ++i) {
    acc += sv_coef_[i] *
           (kernel_value(kernel_, gamma_, sv_.row(i), row) + 1.0);
  }
  return acc;
}

void SvmClassifier::train(const Matrix& x, std::span<const int> labels,
                          common::Rng& rng) {
  classes_.assign(labels.begin(), labels.end());
  std::sort(classes_.begin(), classes_.end());
  classes_.erase(std::unique(classes_.begin(), classes_.end()),
                 classes_.end());
  machines_.clear();
  if (classes_.size() < 2) return;  // constant classifier

  // Two classes need a single machine; more use one-vs-rest.
  const std::size_t num_machines =
      classes_.size() == 2 ? 1 : classes_.size();
  std::vector<int> binary(labels.size());
  for (std::size_t m = 0; m < num_machines; ++m) {
    const int positive = classes_[m];
    for (std::size_t i = 0; i < labels.size(); ++i) {
      binary[i] = labels[i] == positive ? 1 : -1;
    }
    BinarySvm machine;
    machine.train(x, binary, config_, rng);
    machines_.push_back(std::move(machine));
  }
}

int SvmClassifier::predict(std::span<const double> row) const {
  if (classes_.empty()) return 0;
  if (classes_.size() == 1) return classes_[0];
  if (classes_.size() == 2) {
    return machines_[0].decision(row) >= 0.0 ? classes_[0] : classes_[1];
  }
  std::size_t best = 0;
  double best_score = machines_[0].decision(row);
  for (std::size_t m = 1; m < machines_.size(); ++m) {
    const double score = machines_[m].decision(row);
    if (score > best_score) {
      best_score = score;
      best = m;
    }
  }
  return classes_[best];
}

std::vector<int> SvmClassifier::predict(const Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace poiprivacy::ml
