// Kernel support vector machine classifier.
//
// Training solves the L1-loss SVM dual with the bias absorbed into the
// kernel (k'(a,b) = k(a,b) + 1) by coordinate descent — the standard
// dual-coordinate-descent scheme of Hsieh et al. extended to kernels via a
// precomputed Gram matrix. Multi-class problems use one-vs-rest, matching
// scikit-learn's default for the paper's recovery models.
#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/kernel.h"

namespace poiprivacy::ml {

struct SvmConfig {
  KernelParams kernel;
  double c = 1.0;            ///< box constraint
  int max_epochs = 60;       ///< full passes over the training set
  double tolerance = 1e-3;   ///< stop when the largest KKT violation is below
};

/// Two-class machine over labels {-1, +1}.
class BinarySvm {
 public:
  /// Trains on standardized rows. `labels[i]` must be -1 or +1.
  void train(const Matrix& x, std::span<const int> labels,
             const SvmConfig& config, common::Rng& rng);

  /// Decision value (positive => class +1).
  double decision(std::span<const double> row) const;

  std::size_t num_support_vectors() const noexcept { return sv_.rows(); }

 private:
  Matrix sv_;                     ///< support vectors
  std::vector<double> sv_coef_;   ///< alpha_i * y_i per support vector
  KernelParams kernel_;
  double gamma_ = 1.0;
};

/// One-vs-rest multi-class SVM over arbitrary integer labels.
class SvmClassifier {
 public:
  explicit SvmClassifier(SvmConfig config = {}) : config_(config) {}

  /// Trains on standardized rows and integer labels.
  void train(const Matrix& x, std::span<const int> labels, common::Rng& rng);

  int predict(std::span<const double> row) const;
  std::vector<int> predict(const Matrix& x) const;

  const std::vector<int>& classes() const noexcept { return classes_; }

 private:
  SvmConfig config_;
  std::vector<int> classes_;
  std::vector<BinarySvm> machines_;  ///< empty if single-class
};

}  // namespace poiprivacy::ml
