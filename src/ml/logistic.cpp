#include "ml/logistic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace poiprivacy::ml {

namespace {

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void BinaryLogistic::train(const Matrix& x, std::span<const int> labels,
                           const LogisticConfig& config, common::Rng& rng) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  assert(labels.size() == n);
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  if (n == 0) return;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  std::vector<double> grad(d);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    // Mild learning-rate decay for stable convergence.
    const double lr =
        config.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(n, start + batch);
      std::fill(grad.begin(), grad.end(), 0.0);
      double grad_bias = 0.0;
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t i = order[b];
        const auto row = x.row(i);
        // y in {0, 1} for the gradient of the log loss.
        const double y = labels[i] > 0 ? 1.0 : 0.0;
        const double p = probability(row);
        const double err = p - y;
        for (std::size_t j = 0; j < d; ++j) grad[j] += err * row[j];
        grad_bias += err;
      }
      const double scale = lr / static_cast<double>(end - start);
      for (std::size_t j = 0; j < d; ++j) {
        weights_[j] -= scale * grad[j] + lr * config.l2 * weights_[j];
      }
      bias_ -= scale * grad_bias;
    }
  }
}

double BinaryLogistic::decision(std::span<const double> row) const {
  assert(row.size() == weights_.size());
  double z = bias_;
  for (std::size_t j = 0; j < row.size(); ++j) z += weights_[j] * row[j];
  return z;
}

double BinaryLogistic::probability(std::span<const double> row) const {
  return sigmoid(decision(row));
}

void LogisticClassifier::train(const Matrix& x, std::span<const int> labels,
                               common::Rng& rng) {
  classes_.assign(labels.begin(), labels.end());
  std::sort(classes_.begin(), classes_.end());
  classes_.erase(std::unique(classes_.begin(), classes_.end()),
                 classes_.end());
  machines_.clear();
  if (classes_.size() < 2) return;

  const std::size_t num_machines =
      classes_.size() == 2 ? 1 : classes_.size();
  std::vector<int> binary(labels.size());
  for (std::size_t m = 0; m < num_machines; ++m) {
    const int positive = classes_[m];
    for (std::size_t i = 0; i < labels.size(); ++i) {
      binary[i] = labels[i] == positive ? 1 : -1;
    }
    BinaryLogistic machine;
    machine.train(x, binary, config_, rng);
    machines_.push_back(std::move(machine));
  }
}

int LogisticClassifier::predict(std::span<const double> row) const {
  if (classes_.empty()) return 0;
  if (classes_.size() == 1) return classes_[0];
  if (classes_.size() == 2) {
    return machines_[0].decision(row) >= 0.0 ? classes_[0] : classes_[1];
  }
  std::size_t best = 0;
  double best_score = machines_[0].decision(row);
  for (std::size_t m = 1; m < machines_.size(); ++m) {
    const double score = machines_[m].decision(row);
    if (score > best_score) {
      best_score = score;
      best = m;
    }
  }
  return classes_[best];
}

std::vector<int> LogisticClassifier::predict(const Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace poiprivacy::ml
