// Epsilon-insensitive support vector regression, used by the trajectory-
// uniqueness attack to estimate the distance between two successive
// releases (Section IV-B).
//
// Solved in the dual over beta_i = alpha_i - alpha_i^* with the bias
// absorbed into the kernel (k' = k + 1):
//   min_beta  1/2 beta^T K' beta - y^T beta + epsilon * ||beta||_1,
//   beta_i in [-C, C]
// by cyclic coordinate descent with an exact soft-threshold update.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/kernel.h"

namespace poiprivacy::ml {

struct SvrConfig {
  KernelParams kernel;
  double c = 10.0;          ///< box constraint
  double epsilon = 0.05;    ///< insensitive-tube half width
  int max_epochs = 80;
  double tolerance = 1e-4;  ///< stop when the largest coefficient step is below
};

class Svr {
 public:
  explicit Svr(SvrConfig config = {}) : config_(config) {}

  /// Trains on standardized rows and raw targets.
  void train(const Matrix& x, std::span<const double> targets,
             common::Rng& rng);

  double predict(std::span<const double> row) const;
  std::vector<double> predict(const Matrix& x) const;

  std::size_t num_support_vectors() const noexcept { return sv_.rows(); }

 private:
  SvrConfig config_;
  Matrix sv_;
  std::vector<double> sv_coef_;
  double gamma_ = 1.0;
};

}  // namespace poiprivacy::ml
