// Kernel ridge regression — closed-form alternative to the SVR used by
// the trajectory attack (ablated in bench/ablation_regressors).
//
// Solves (K + lambda I) alpha = y via Cholesky on the (bias-absorbed)
// Gram matrix; prediction is sum_i alpha_i k'(x_i, x).
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/kernel.h"

namespace poiprivacy::ml {

struct KernelRidgeConfig {
  KernelParams kernel;
  double lambda = 1.0;  ///< ridge regularizer
};

class KernelRidge {
 public:
  explicit KernelRidge(KernelRidgeConfig config = {}) : config_(config) {}

  /// Trains on standardized rows; throws std::invalid_argument when the
  /// training set is too large for the Gram cache or lambda <= 0.
  void train(const Matrix& x, std::span<const double> targets);

  double predict(std::span<const double> row) const;
  std::vector<double> predict(const Matrix& x) const;

 private:
  KernelRidgeConfig config_;
  Matrix train_x_;
  std::vector<double> alpha_;
  double gamma_ = 1.0;
};

}  // namespace poiprivacy::ml
