// Model-validation utilities: k-fold cross validation and a confusion
// matrix, used by the recovery-model diagnostics.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace poiprivacy::ml {

/// Deterministic k-fold index split: every index lands in exactly one
/// fold; folds differ in size by at most one.
std::vector<std::vector<std::size_t>> k_fold_indices(std::size_t n,
                                                     std::size_t folds,
                                                     common::Rng& rng);

/// Runs k-fold cross validation of a classifier factory.
/// `train_and_score(train_idx, test_idx)` must return the fold's score
/// (e.g., accuracy); the mean score is returned.
double cross_validate(
    std::size_t n, std::size_t folds, common::Rng& rng,
    const std::function<double(std::span<const std::size_t> train,
                               std::span<const std::size_t> test)>&
        train_and_score);

/// Confusion counts over integer labels.
class ConfusionMatrix {
 public:
  void add(int truth, int predicted);

  std::size_t count(int truth, int predicted) const;
  std::size_t total() const noexcept { return total_; }
  double accuracy() const;
  /// Precision/recall for one label (0 when undefined).
  double precision(int label) const;
  double recall(int label) const;
  std::vector<int> labels() const;

 private:
  std::map<std::pair<int, int>, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace poiprivacy::ml
