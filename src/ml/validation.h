// Model-validation utilities: k-fold cross validation, a confusion
// matrix, and ranking metrics (exact AUC, ROC curves) shared by the
// recovery-model diagnostics and the membership-inference distinguishers.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace poiprivacy::ml {

/// Deterministic k-fold index split: every index lands in exactly one
/// fold; folds differ in size by at most one.
std::vector<std::vector<std::size_t>> k_fold_indices(std::size_t n,
                                                     std::size_t folds,
                                                     common::Rng& rng);

/// Runs k-fold cross validation of a classifier factory.
/// `train_and_score(train_idx, test_idx)` must return the fold's score
/// (e.g., accuracy); the mean score is returned.
double cross_validate(
    std::size_t n, std::size_t folds, common::Rng& rng,
    const std::function<double(std::span<const std::size_t> train,
                               std::span<const std::size_t> test)>&
        train_and_score);

/// Confusion counts over integer labels.
class ConfusionMatrix {
 public:
  void add(int truth, int predicted);

  std::size_t count(int truth, int predicted) const;
  std::size_t total() const noexcept { return total_; }
  double accuracy() const;
  /// Precision/recall for one label (0 when undefined).
  double precision(int label) const;
  double recall(int label) const;
  std::vector<int> labels() const;

 private:
  std::map<std::pair<int, int>, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Macro-averaged F1 over the matrix's labels (harmonic mean of
/// precision and recall per label, 0 when both are 0, averaged).
double macro_f1(const ConfusionMatrix& matrix);

// ---- Ranking metrics -------------------------------------------------------
//
// Scores are real-valued decision values (larger => more likely positive);
// labels are +1 / -1, matching the binary classifiers in ml/svm.h and
// ml/logistic.h.

/// Exact area under the ROC curve by the rank statistic
///   AUC = (R_pos - P(P+1)/2) / (P * N)
/// where R_pos is the sum of the positives' 1-based ranks under ascending
/// score order and tied scores receive their average rank — i.e. a tie
/// between a positive and a negative counts 1/2, the Mann-Whitney
/// convention, so a constant classifier scores exactly 0.5. Returns 0.5
/// when either class is absent (no ranking information).
double auc_from_scores(std::span<const double> scores,
                       std::span<const int> labels);

/// One operating point of a score threshold sweep.
struct RocPoint {
  double threshold = 0.0;  ///< predict +1 when score >= threshold
  double fpr = 0.0;        ///< false-positive rate at this threshold
  double tpr = 0.0;        ///< true-positive rate at this threshold
};

/// ROC curve swept over every distinct score (plus the degenerate
/// (0,0) / (1,1) endpoints), in ascending-FPR order. Tied scores
/// collapse into one point, so the trapezoidal area under the returned
/// polyline equals auc_from_scores exactly.
std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels);

/// Confusion matrix of thresholding scores at `threshold` (predict +1
/// when score >= threshold) against the +1/-1 labels.
ConfusionMatrix confusion_from_scores(std::span<const double> scores,
                                      std::span<const int> labels,
                                      double threshold = 0.0);

}  // namespace poiprivacy::ml
