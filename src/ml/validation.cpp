#include "ml/validation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <set>

namespace poiprivacy::ml {

std::vector<std::vector<std::size_t>> k_fold_indices(std::size_t n,
                                                     std::size_t folds,
                                                     common::Rng& rng) {
  assert(folds >= 2 && folds <= std::max<std::size_t>(n, 2));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < n; ++i) {
    out[i % folds].push_back(order[i]);
  }
  return out;
}

double cross_validate(
    std::size_t n, std::size_t folds, common::Rng& rng,
    const std::function<double(std::span<const std::size_t>,
                               std::span<const std::size_t>)>&
        train_and_score) {
  const auto fold_indices = k_fold_indices(n, folds, rng);
  double total = 0.0;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train;
    train.reserve(n);
    for (std::size_t other = 0; other < folds; ++other) {
      if (other == f) continue;
      train.insert(train.end(), fold_indices[other].begin(),
                   fold_indices[other].end());
    }
    total += train_and_score(train, fold_indices[f]);
  }
  return total / static_cast<double>(folds);
}

void ConfusionMatrix::add(int truth, int predicted) {
  ++counts_[{truth, predicted}];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  const auto it = counts_.find({truth, predicted});
  return it == counts_.end() ? 0 : it->second;
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t hits = 0;
  for (const auto& [key, n] : counts_) {
    if (key.first == key.second) hits += n;
  }
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int label) const {
  std::size_t predicted = 0;
  std::size_t correct = 0;
  for (const auto& [key, n] : counts_) {
    if (key.second == label) {
      predicted += n;
      if (key.first == label) correct += n;
    }
  }
  return predicted ? static_cast<double>(correct) / predicted : 0.0;
}

double ConfusionMatrix::recall(int label) const {
  std::size_t actual = 0;
  std::size_t correct = 0;
  for (const auto& [key, n] : counts_) {
    if (key.first == label) {
      actual += n;
      if (key.second == label) correct += n;
    }
  }
  return actual ? static_cast<double>(correct) / actual : 0.0;
}

std::vector<int> ConfusionMatrix::labels() const {
  std::set<int> labels;
  for (const auto& [key, n] : counts_) {
    (void)n;
    labels.insert(key.first);
    labels.insert(key.second);
  }
  return {labels.begin(), labels.end()};
}

double macro_f1(const ConfusionMatrix& matrix) {
  const std::vector<int> labels = matrix.labels();
  if (labels.empty()) return 0.0;
  double sum = 0.0;
  for (const int label : labels) {
    const double p = matrix.precision(label);
    const double r = matrix.recall(label);
    sum += (p + r > 0.0) ? 2.0 * p * r / (p + r) : 0.0;
  }
  return sum / static_cast<double>(labels.size());
}

double auc_from_scores(std::span<const double> scores,
                       std::span<const int> labels) {
  assert(scores.size() == labels.size());
  const std::size_t n = scores.size();
  std::size_t positives = 0;
  for (const int label : labels) positives += label > 0;
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Sum of the positives' average ranks: a run of k tied scores occupying
  // ranks [lo, lo + k) all take rank (lo + (lo + k - 1)) / 2.
  double rank_sum = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>((i + 1) + j);
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0) rank_sum += avg_rank;
    }
    i = j;
  }
  const double p = static_cast<double>(positives);
  return (rank_sum - p * (p + 1.0) / 2.0) /
         (p * static_cast<double>(negatives));
}

std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const int> labels) {
  assert(scores.size() == labels.size());
  const std::size_t n = scores.size();
  std::size_t positives = 0;
  for (const int label : labels) positives += label > 0;
  const std::size_t negatives = n - positives;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < n) {
    // Consume a whole tied-score block before emitting the point, so ties
    // produce one diagonal segment (the trapezoid matching the 1/2 credit
    // the rank AUC gives them).
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0) {
        ++tp;
      } else {
        ++fp;
      }
    }
    curve.push_back(
        {scores[order[i]],
         negatives ? static_cast<double>(fp) / static_cast<double>(negatives)
                   : 0.0,
         positives ? static_cast<double>(tp) / static_cast<double>(positives)
                   : 0.0});
    i = j;
  }
  if (curve.back().fpr != 1.0 || curve.back().tpr != 1.0) {
    curve.push_back({-std::numeric_limits<double>::infinity(), 1.0, 1.0});
  }
  return curve;
}

ConfusionMatrix confusion_from_scores(std::span<const double> scores,
                                      std::span<const int> labels,
                                      double threshold) {
  assert(scores.size() == labels.size());
  ConfusionMatrix matrix;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    matrix.add(labels[i], scores[i] >= threshold ? +1 : -1);
  }
  return matrix;
}

}  // namespace poiprivacy::ml
