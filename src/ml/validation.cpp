#include "ml/validation.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace poiprivacy::ml {

std::vector<std::vector<std::size_t>> k_fold_indices(std::size_t n,
                                                     std::size_t folds,
                                                     common::Rng& rng) {
  assert(folds >= 2 && folds <= std::max<std::size_t>(n, 2));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < n; ++i) {
    out[i % folds].push_back(order[i]);
  }
  return out;
}

double cross_validate(
    std::size_t n, std::size_t folds, common::Rng& rng,
    const std::function<double(std::span<const std::size_t>,
                               std::span<const std::size_t>)>&
        train_and_score) {
  const auto fold_indices = k_fold_indices(n, folds, rng);
  double total = 0.0;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train;
    train.reserve(n);
    for (std::size_t other = 0; other < folds; ++other) {
      if (other == f) continue;
      train.insert(train.end(), fold_indices[other].begin(),
                   fold_indices[other].end());
    }
    total += train_and_score(train, fold_indices[f]);
  }
  return total / static_cast<double>(folds);
}

void ConfusionMatrix::add(int truth, int predicted) {
  ++counts_[{truth, predicted}];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  const auto it = counts_.find({truth, predicted});
  return it == counts_.end() ? 0 : it->second;
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t hits = 0;
  for (const auto& [key, n] : counts_) {
    if (key.first == key.second) hits += n;
  }
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int label) const {
  std::size_t predicted = 0;
  std::size_t correct = 0;
  for (const auto& [key, n] : counts_) {
    if (key.second == label) {
      predicted += n;
      if (key.first == label) correct += n;
    }
  }
  return predicted ? static_cast<double>(correct) / predicted : 0.0;
}

double ConfusionMatrix::recall(int label) const {
  std::size_t actual = 0;
  std::size_t correct = 0;
  for (const auto& [key, n] : counts_) {
    if (key.first == label) {
      actual += n;
      if (key.second == label) correct += n;
    }
  }
  return actual ? static_cast<double>(correct) / actual : 0.0;
}

std::vector<int> ConfusionMatrix::labels() const {
  std::set<int> labels;
  for (const auto& [key, n] : counts_) {
    (void)n;
    labels.insert(key.first);
    labels.insert(key.second);
  }
  return {labels.begin(), labels.end()};
}

}  // namespace poiprivacy::ml
