#include "mia/priors.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace poiprivacy::mia {

const char* prior_name(PriorKind kind) noexcept {
  switch (kind) {
    case PriorKind::kSubsetOfLocations:
      return "subset";
    case PriorKind::kPastGroups:
      return "past_groups";
  }
  return "?";
}

PriorKnowledge resolve_prior(const PriorConfig& config, std::size_t num_users,
                             std::size_t min_pool) {
  if (min_pool > num_users) {
    throw std::invalid_argument("prior: population smaller than one group");
  }
  PriorKnowledge knowledge;
  std::size_t pool = num_users;
  if (config.kind == PriorKind::kSubsetOfLocations) {
    if (config.known_fraction <= 0.0 || config.known_fraction > 1.0) {
      throw std::invalid_argument("prior: known_fraction must be in (0, 1]");
    }
    pool = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(
            config.known_fraction * static_cast<double>(num_users))),
        min_pool, num_users);
    knowledge.trains_on_released = false;
  } else {
    knowledge.trains_on_released = true;
  }
  knowledge.training_pool.resize(pool);
  for (std::size_t u = 0; u < pool; ++u) {
    knowledge.training_pool[u] = static_cast<std::uint32_t>(u);
  }
  return knowledge;
}

}  // namespace poiprivacy::mia
