// The membership-inference distinguishing game (Pyrgelis et al., "Knock
// Knock, Who's There?"): decide from a sequence of released per-tile
// aggregates whether a target user's locations contributed.
//
// One trial:
//   1. derive the trial's Rng substream and pick a target from the
//      prior's known pool;
//   2. sample balanced in/out world groups (in = target + m-1 others,
//      out = m others) and build their aggregate streams over the prior
//      period [0, train_epochs) — raw for the subset prior, through the
//      release mechanism for the past-groups prior;
//   3. train the distinguisher on the extracted features;
//   4. sample fresh in/out groups from the full population, release
//      their streams over the inference period [train_epochs, epochs)
//      (noised when the stream is noised, charged to a windowed
//      dp::Ledger), and score them.
//
// Trials run on the process-wide thread pool with one Rng substream per
// trial and an ordered reduction of the pooled (score, label) pairs, so
// the result — AUC included — is bit-identical for any --threads value.
#pragma once

#include <cstdint>
#include <vector>

#include "mia/distinguisher.h"
#include "mia/features.h"
#include "mia/mobility.h"
#include "mia/priors.h"
#include "mia/stream_release.h"
#include "ml/validation.h"

namespace poiprivacy::mia {

struct GameConfig {
  StreamConfig stream;
  /// Released ROI size (top tiles by prior-period activity).
  std::size_t roi_tiles = 48;
  /// Users aggregated per released group (the target's anonymity set).
  std::size_t group_size = 20;
  /// Balanced in/out instance pairs per trial.
  std::size_t train_pairs = 32;
  std::size_t test_pairs = 8;
  /// The prior period is [0, train_epochs), the inference period
  /// [train_epochs, traces.epochs()). Both periods must release the same
  /// number of windows (the distinguisher's feature dimension is fixed
  /// at training time); an even split always satisfies this.
  std::size_t train_epochs = 8;
  PriorConfig prior;
  FeatureSet features = FeatureSet::kRawConcat;
  DistinguisherConfig distinguisher;
  /// Independent games (fresh target + groups each); scores pool.
  std::size_t trials = 8;
  std::uint64_t seed = 42;
};

struct GameResult {
  /// Pooled test scores/labels in trial-major, pair-major (in, out) order.
  std::vector<double> scores;
  std::vector<int> labels;
  double auc = 0.5;
  ml::ConfusionMatrix confusion;  ///< thresholded at score 0
  /// Worst per-accounting-window composition over the noised releases
  /// of any single trial ({0, 0} for a raw stream).
  dp::PrivacyParams peak_window{0.0, 0.0};
  /// Noised window releases charged across all trials.
  std::size_t dp_releases = 0;

  double accuracy() const { return confusion.accuracy(); }
};

/// Plays the game over pre-generated traces. Deterministic for a fixed
/// config: bit-identical at any thread count.
GameResult play_game(const UserTraces& traces, const GameConfig& config);

}  // namespace poiprivacy::mia
