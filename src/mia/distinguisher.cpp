#include "mia/distinguisher.h"

#include <vector>

namespace poiprivacy::mia {

const char* distinguisher_name(DistinguisherKind kind) noexcept {
  switch (kind) {
    case DistinguisherKind::kLogistic:
      return "logistic";
    case DistinguisherKind::kSvm:
      return "svm";
  }
  return "?";
}

void Distinguisher::train(const ml::Matrix& x, std::span<const int> labels,
                          common::Rng& rng) {
  const ml::Matrix standardized = scaler_.fit_transform(x);
  switch (config_.kind) {
    case DistinguisherKind::kLogistic:
      logistic_.train(standardized, labels, config_.logistic, rng);
      break;
    case DistinguisherKind::kSvm:
      svm_.train(standardized, labels, config_.svm, rng);
      break;
  }
}

double Distinguisher::score(std::span<const double> row) const {
  std::vector<double> standardized(row.begin(), row.end());
  scaler_.transform_row(standardized);
  switch (config_.kind) {
    case DistinguisherKind::kLogistic:
      return logistic_.decision(standardized);
    case DistinguisherKind::kSvm:
      return svm_.decision(standardized);
  }
  return 0.0;
}

}  // namespace poiprivacy::mia
