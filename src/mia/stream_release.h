// AggregateStreamReleaser — the GSP-side continual-release workload: a
// periodic per-tile count aggregate over sliding epoch windows, published
// either raw or noised through the Laplace mechanism (dp/mechanisms) with
// every noised window charged to a dp::Ledger (kWindowedRenewal).
//
// The released vector covers a fixed ROI — the top tiles of the city's
// TileAggregates grid by population activity during a public warm-up
// period — so release rows are compact, comparable across windows, and
// directly feed the FreqArena/kernel machinery (rows are plain int32
// count vectors; poi::total / poi::l1_distance / poi::top_k_jaccard all
// apply).
//
// Determinism contract: releases are pure functions of (traces, group,
// epoch range, rng state); the per-window noise draw order is fixed
// (window-major, then ROI order), so a release is bit-identical for any
// thread count as long as the caller derives `rng` from Rng::substream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "dp/ledger.h"
#include "mia/mobility.h"
#include "poi/frequency.h"

namespace poiprivacy::mia {

struct StreamConfig {
  /// Epochs summed into one released window.
  std::size_t window_epochs = 2;
  /// Epochs between consecutive window starts (1 = fully sliding).
  std::size_t stride = 1;
  /// Per-window privacy budget; 0 releases the raw counts.
  double epsilon = 0.0;
  /// Accounting policy for the windowed ledger the releaser charges
  /// (epoch-indexed; independent of the release window geometry).
  dp::WindowPolicy accounting{4, 0.0};
};

class AggregateStreamReleaser {
 public:
  /// Picks the ROI: the `roi_tiles` most-visited tiles of the whole
  /// population over epochs [0, roi_epochs), ties broken by tile id —
  /// a deterministic public statistic standing in for the "popular ROIs"
  /// real aggregators publish. Throws if the traces are empty.
  AggregateStreamReleaser(const UserTraces& traces, StreamConfig config,
                          std::size_t roi_tiles, std::size_t roi_epochs);

  const StreamConfig& config() const noexcept { return config_; }

  /// Released tile ids (full-grid ids), in released-vector order.
  const std::vector<TileId>& roi() const noexcept { return roi_; }

  /// Epochs covered by the underlying traces.
  std::size_t epochs() const noexcept;

  /// Windows released for the epoch range [begin, end): one per window
  /// start begin, begin+stride, ... with the full window inside the range.
  std::size_t num_windows(std::size_t begin, std::size_t end) const noexcept;

  /// L1 sensitivity of one released window to one user's presence:
  /// visits_per_epoch * window_epochs (every visit lands in some tile;
  /// out-of-ROI visits only lower the realized change).
  double sensitivity() const noexcept;

  /// Releases the aggregate stream of `group` (user indices) over epochs
  /// [begin, end) into `out`: row w is window w's per-ROI-tile count,
  /// raw when config.epsilon == 0, otherwise Laplace-noised (rounded,
  /// clamped at 0) with each window charged to `ledger` (when given) at
  /// the window's start epoch. `rng` is consumed only by the noise
  /// draws, in fixed window-major order.
  void release(std::span<const std::uint32_t> group, std::size_t begin,
               std::size_t end, common::Rng& rng, poi::FreqArena& out,
               dp::Ledger* ledger = nullptr) const;

 private:
  const UserTraces* traces_;
  StreamConfig config_;
  std::vector<TileId> roi_;
  std::vector<std::int32_t> roi_index_;  ///< full-grid tile -> ROI slot or -1
};

}  // namespace poiprivacy::mia
