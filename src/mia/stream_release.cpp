#include "mia/stream_release.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dp/mechanisms.h"

namespace poiprivacy::mia {

AggregateStreamReleaser::AggregateStreamReleaser(const UserTraces& traces,
                                                 StreamConfig config,
                                                 std::size_t roi_tiles,
                                                 std::size_t roi_epochs)
    : traces_(&traces), config_(config) {
  if (config_.window_epochs == 0 || config_.stride == 0) {
    throw std::invalid_argument(
        "stream release: window_epochs and stride must be positive");
  }
  if (roi_tiles == 0 || roi_epochs == 0 || roi_epochs > traces.epochs()) {
    throw std::invalid_argument("stream release: invalid ROI parameters");
  }
  // Population-wide visit counts over the warm-up period; the top tiles
  // (count desc, id asc) become the released ROI.
  std::vector<std::int64_t> totals(traces.num_tiles(), 0);
  for (std::size_t u = 0; u < traces.num_users(); ++u) {
    for (std::size_t e = 0; e < roi_epochs; ++e) {
      for (const TileId tile : traces.visits(u, e)) {
        ++totals[static_cast<std::size_t>(tile)];
      }
    }
  }
  std::vector<TileId> order(traces.num_tiles());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TileId>(i);
  }
  std::sort(order.begin(), order.end(), [&](TileId a, TileId b) {
    const std::int64_t ca = totals[static_cast<std::size_t>(a)];
    const std::int64_t cb = totals[static_cast<std::size_t>(b)];
    return ca != cb ? ca > cb : a < b;
  });
  roi_.assign(order.begin(),
              order.begin() + std::min(roi_tiles, order.size()));
  roi_index_.assign(traces.num_tiles(), -1);
  for (std::size_t slot = 0; slot < roi_.size(); ++slot) {
    roi_index_[static_cast<std::size_t>(roi_[slot])] =
        static_cast<std::int32_t>(slot);
  }
}

std::size_t AggregateStreamReleaser::epochs() const noexcept {
  return traces_->epochs();
}

std::size_t AggregateStreamReleaser::num_windows(std::size_t begin,
                                                 std::size_t end) const
    noexcept {
  if (end < begin + config_.window_epochs) return 0;
  return (end - begin - config_.window_epochs) / config_.stride + 1;
}

double AggregateStreamReleaser::sensitivity() const noexcept {
  return static_cast<double>(traces_->visits_per_epoch()) *
         static_cast<double>(config_.window_epochs);
}

void AggregateStreamReleaser::release(std::span<const std::uint32_t> group,
                                      std::size_t begin, std::size_t end,
                                      common::Rng& rng, poi::FreqArena& out,
                                      dp::Ledger* ledger) const {
  if (end > traces_->epochs()) {
    throw std::invalid_argument("stream release: epoch range out of bounds");
  }
  const std::size_t windows = num_windows(begin, end);
  out.reset(windows, roi_.size());

  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t start = begin + w * config_.stride;
    std::span<std::int32_t> row = out.row(w);
    for (const std::uint32_t user : group) {
      for (std::size_t e = start; e < start + config_.window_epochs; ++e) {
        for (const TileId tile : traces_->visits(user, e)) {
          const std::int32_t slot = roi_index_[static_cast<std::size_t>(tile)];
          if (slot >= 0) ++row[static_cast<std::size_t>(slot)];
        }
      }
    }
    if (config_.epsilon > 0.0) {
      if (ledger != nullptr) {
        ledger->charge({config_.epsilon, 0.0}, start);
      }
      const dp::LaplaceMechanism laplace(config_.epsilon, sensitivity());
      for (std::int32_t& cell : row) {
        const double noised =
            laplace.perturb(static_cast<double>(cell), rng);
        cell = static_cast<std::int32_t>(
            std::max(0.0, std::round(noised)));
      }
    }
  }
}

}  // namespace poiprivacy::mia
