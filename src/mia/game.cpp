#include "mia/game.h"

#include <stdexcept>
#include <utility>

#include "common/parallel.h"

namespace poiprivacy::mia {

namespace {

/// One trial's contribution to the pooled result.
struct TrialOutcome {
  std::vector<double> scores;
  std::vector<int> labels;
  dp::PrivacyParams peak_window{0.0, 0.0};
  std::size_t dp_releases = 0;
};

/// Samples a group of `size` distinct users from `pool`: the target plus
/// size-1 others when `include_target`, otherwise `size` non-target
/// users. Consumes rng deterministically.
std::vector<std::uint32_t> sample_group(std::span<const std::uint32_t> pool,
                                        std::uint32_t target,
                                        bool include_target, std::size_t size,
                                        common::Rng& rng) {
  std::vector<std::uint32_t> others;
  others.reserve(pool.size());
  for (const std::uint32_t user : pool) {
    if (user != target) others.push_back(user);
  }
  const std::size_t picks = include_target ? size - 1 : size;
  std::vector<std::uint32_t> group;
  group.reserve(size);
  if (include_target) group.push_back(target);
  for (const std::size_t idx : rng.sample_indices(others.size(), picks)) {
    group.push_back(others[idx]);
  }
  return group;
}

TrialOutcome run_trial(const UserTraces& traces,
                       const AggregateStreamReleaser& raw_releaser,
                       const AggregateStreamReleaser& released_releaser,
                       const GameConfig& config, std::size_t trial) {
  common::Rng rng = common::Rng(config.seed).substream(trial);
  const PriorKnowledge knowledge =
      resolve_prior(config.prior, traces.num_users(), config.group_size + 1);
  const auto target = knowledge.training_pool[static_cast<std::size_t>(
      rng.uniform_int(0,
                      static_cast<std::int64_t>(knowledge.training_pool.size()) -
                          1))];

  dp::Ledger ledger(dp::LedgerConfig{dp::LedgerPolicy::kWindowedRenewal,
                                     dp::LedgerBackend::kExact, 0.0, 0.0, 0.0,
                                     config.stream.accounting});
  poi::FreqArena& stream = poi::scratch_arena();
  std::vector<double> features;

  // --- Training worlds over the prior period -------------------------------
  const AggregateStreamReleaser& train_releaser =
      knowledge.trains_on_released ? released_releaser : raw_releaser;
  ml::Matrix x_train;
  std::vector<int> y_train;
  for (std::size_t pair = 0; pair < config.train_pairs; ++pair) {
    for (const bool in_world : {true, false}) {
      const std::vector<std::uint32_t> group = sample_group(
          knowledge.training_pool, target, in_world, config.group_size, rng);
      train_releaser.release(group, 0, config.train_epochs, rng, stream,
                             knowledge.trains_on_released ? &ledger
                                                          : nullptr);
      extract_features(stream, config.features, features);
      x_train.push_row(features);
      y_train.push_back(in_world ? +1 : -1);
    }
  }

  Distinguisher distinguisher(config.distinguisher);
  distinguisher.train(x_train, y_train, rng);

  // --- Challenge worlds over the inference period --------------------------
  std::vector<std::uint32_t> population(traces.num_users());
  for (std::size_t u = 0; u < population.size(); ++u) {
    population[u] = static_cast<std::uint32_t>(u);
  }
  TrialOutcome outcome;
  for (std::size_t pair = 0; pair < config.test_pairs; ++pair) {
    for (const bool in_world : {true, false}) {
      const std::vector<std::uint32_t> group = sample_group(
          population, target, in_world, config.group_size, rng);
      released_releaser.release(group, config.train_epochs, traces.epochs(),
                                rng, stream, &ledger);
      extract_features(stream, config.features, features);
      outcome.scores.push_back(distinguisher.score(features));
      outcome.labels.push_back(in_world ? +1 : -1);
    }
  }
  outcome.peak_window = ledger.peak_window_composition();
  outcome.dp_releases = ledger.releases();
  return outcome;
}

}  // namespace

GameResult play_game(const UserTraces& traces, const GameConfig& config) {
  if (config.group_size == 0 || config.group_size >= traces.num_users()) {
    throw std::invalid_argument(
        "mia game: group_size must be in [1, num_users)");
  }
  if (config.train_epochs == 0 ||
      config.train_epochs + config.stream.window_epochs > traces.epochs()) {
    throw std::invalid_argument(
        "mia game: need at least one full window in both periods");
  }
  if (config.train_pairs == 0 || config.test_pairs == 0 ||
      config.trials == 0) {
    throw std::invalid_argument("mia game: pair/trial counts must be positive");
  }

  // The ROI is a public prior-period statistic; the raw releaser doubles
  // as the subset-prior simulator (epsilon forced to 0).
  StreamConfig raw_config = config.stream;
  raw_config.epsilon = 0.0;
  const AggregateStreamReleaser raw_releaser(traces, raw_config,
                                             config.roi_tiles,
                                             config.train_epochs);
  const AggregateStreamReleaser released_releaser(traces, config.stream,
                                                  config.roi_tiles,
                                                  config.train_epochs);
  // The distinguisher scores test streams with the training-fitted scaler
  // and weights, so both periods must release the same number of windows.
  if (released_releaser.num_windows(0, config.train_epochs) !=
      released_releaser.num_windows(config.train_epochs, traces.epochs())) {
    throw std::invalid_argument(
        "mia game: prior and inference periods must release the same number "
        "of windows (adjust train_epochs / window geometry)");
  }

  GameResult result = common::ordered_reduce(
      common::global_pool(), config.trials, /*chunk=*/1, GameResult{},
      [&](std::size_t trial) {
        return run_trial(traces, raw_releaser, released_releaser, config,
                         trial);
      },
      [](GameResult acc, TrialOutcome trial) {
        acc.scores.insert(acc.scores.end(), trial.scores.begin(),
                          trial.scores.end());
        acc.labels.insert(acc.labels.end(), trial.labels.begin(),
                          trial.labels.end());
        if (trial.peak_window.epsilon > acc.peak_window.epsilon) {
          acc.peak_window = trial.peak_window;
        }
        acc.dp_releases += trial.dp_releases;
        return acc;
      });

  result.auc = ml::auc_from_scores(result.scores, result.labels);
  result.confusion =
      ml::confusion_from_scores(result.scores, result.labels, 0.0);
  return result;
}

}  // namespace poiprivacy::mia
