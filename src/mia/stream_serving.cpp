#include "mia/stream_serving.h"

#include <stdexcept>

#include "common/rng.h"
#include "poi/frequency.h"

namespace poiprivacy::mia {

TileStreamSource::TileStreamSource(const AggregateStreamReleaser& releaser,
                                   std::vector<std::uint32_t> group)
    : releaser_(&releaser),
      epochs_(releaser.epochs()),
      group_(std::move(group)) {
  if (releaser.config().epsilon != 0.0) {
    throw std::invalid_argument(
        "tile stream source: needs a raw releaser (epsilon == 0); the "
        "serving layer draws the noise per request");
  }
}

std::size_t TileStreamSource::epochs() const { return epochs_; }

void TileStreamSource::release_raw(std::size_t begin, std::size_t end,
                                   std::vector<double>& out) const {
  poi::FreqArena& arena = poi::scratch_arena();
  // The raw path consumes no randomness; the rng is a signature artifact.
  common::Rng rng(0);
  releaser_->release(group_, begin, end, rng, arena);
  const std::size_t windows = arena.rows();
  const std::size_t series = releaser_->roi().size();
  out.resize(windows * series);
  for (std::size_t w = 0; w < windows; ++w) {
    const std::span<const std::int32_t> row = arena.row(w);
    for (std::size_t s = 0; s < series; ++s) {
      out[w * series + s] = static_cast<double>(row[s]);
    }
  }
}

}  // namespace poiprivacy::mia
