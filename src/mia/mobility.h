// Synthetic per-user mobility over the city tile grid — the population
// whose aggregates the stream releaser publishes and the membership-
// inference game attacks.
//
// Each user gets a small routine (a handful of profile tiles anchored on
// real POI positions, so the profiles inherit the city's spatial
// clustering) and visits `visits_per_epoch` tiles per epoch, mostly from
// the routine. Routine-dominated traces are exactly what makes aggregate
// location time-series vulnerable to membership inference (Pyrgelis et
// al.): a user's contribution to the per-tile counts is concentrated and
// stable across epochs, so a distinguisher can spot its presence.
//
// Generation is deterministic and thread-count independent: user u's
// trace is a pure function of (seed, u) via Rng::substream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/attack_context.h"
#include "common/rng.h"

namespace poiprivacy::mia {

/// Full-grid tile id: iy * nx + ix over the database's TileAggregates
/// grid (the same 1 km binning the attack layer prunes with).
using TileId = std::int32_t;

struct MobilityConfig {
  std::size_t num_users = 100;
  /// Total timeline length; the game splits it into a prior-knowledge
  /// period and an inference period.
  std::size_t epochs = 16;
  std::size_t visits_per_epoch = 3;
  /// Tiles in a user's routine.
  std::size_t profile_tiles = 4;
  /// Probability a visit goes to a routine tile (else a random POI tile).
  double routine_prob = 0.85;
};

/// Per-user, per-epoch tile visits; every (user, epoch) cell holds exactly
/// `visits_per_epoch` tile ids (repeats allowed — a count, not a set).
class UserTraces {
 public:
  UserTraces(std::size_t num_users, std::size_t epochs,
             std::size_t visits_per_epoch, std::size_t num_tiles)
      : num_users_(num_users),
        epochs_(epochs),
        visits_per_epoch_(visits_per_epoch),
        num_tiles_(num_tiles),
        visits_(num_users * epochs * visits_per_epoch, 0) {}

  std::size_t num_users() const noexcept { return num_users_; }
  std::size_t epochs() const noexcept { return epochs_; }
  std::size_t visits_per_epoch() const noexcept { return visits_per_epoch_; }
  /// Tiles in the full grid (nx * ny of the TileAggregates the traces
  /// were generated over).
  std::size_t num_tiles() const noexcept { return num_tiles_; }

  std::span<const TileId> visits(std::size_t user,
                                 std::size_t epoch) const noexcept {
    return {visits_.data() + (user * epochs_ + epoch) * visits_per_epoch_,
            visits_per_epoch_};
  }
  std::span<TileId> visits(std::size_t user, std::size_t epoch) noexcept {
    return {visits_.data() + (user * epochs_ + epoch) * visits_per_epoch_,
            visits_per_epoch_};
  }

 private:
  std::size_t num_users_;
  std::size_t epochs_;
  std::size_t visits_per_epoch_;
  std::size_t num_tiles_;
  std::vector<TileId> visits_;  ///< (user, epoch, visit) row-major
};

/// Deterministically generates the population's traces over the context
/// database's tile grid. User u's trace depends only on (seed, u), so
/// traces are identical for any thread count or generation order.
UserTraces generate_traces(const attack::AttackContext& ctx,
                           const MobilityConfig& config, std::uint64_t seed);

}  // namespace poiprivacy::mia
