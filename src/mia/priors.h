// Prior-knowledge models of the membership-inference adversary, after
// Pyrgelis et al.:
//
//   * kSubsetOfLocations — the adversary knows the actual traces of a
//     subset of the population (including the target) during the prior
//     period, so it can SIMULATE noise-free training aggregates for any
//     group drawn from that subset; `known_fraction` ablates how much of
//     the population it knows.
//   * kPastGroups — the adversary only OBSERVED past released aggregates
//     (noised exactly like the challenge stream) of groups whose
//     membership it knew; it can train on any group, but only through
//     the release mechanism.
//
// resolve_prior turns a config into the two facts the game needs: which
// users training groups may be drawn from, and whether training
// aggregates go through the (possibly noised) release path.
#pragma once

#include <cstdint>
#include <vector>

namespace poiprivacy::mia {

enum class PriorKind { kSubsetOfLocations, kPastGroups };

const char* prior_name(PriorKind kind) noexcept;

struct PriorConfig {
  PriorKind kind = PriorKind::kSubsetOfLocations;
  /// Subset prior: fraction of the population whose traces the adversary
  /// knows (the known users are a fixed prefix of the user ids; the
  /// target is always drawn from the known subset). Ignored by the
  /// past-groups prior.
  double known_fraction = 1.0;
};

struct PriorKnowledge {
  /// Users training groups may be sampled from (always contains the
  /// target).
  std::vector<std::uint32_t> training_pool;
  /// True when training aggregates must go through the release mechanism
  /// (same epsilon as the challenge); false when the adversary simulates
  /// raw aggregates from known traces.
  bool trains_on_released = false;
};

/// Resolves the prior for a population of `num_users`. `min_pool` is the
/// smallest usable pool (group size + 1); the subset prior's pool is
/// clamped to it so the game stays well-posed at tiny known fractions.
PriorKnowledge resolve_prior(const PriorConfig& config, std::size_t num_users,
                             std::size_t min_pool);

}  // namespace poiprivacy::mia
