// The distinguisher of the membership-inference game: a binary scorer
// over ml::BinaryLogistic / ml::BinarySvm (the same model families the
// recovery attacks use), with feature standardization folded in so game
// code hands it raw feature rows. Scores are real decision values
// (positive => "target participated"), which is what the AUC/ROC
// machinery in ml/validation consumes.
#pragma once

#include <span>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/logistic.h"
#include "ml/svm.h"

namespace poiprivacy::mia {

enum class DistinguisherKind { kLogistic, kSvm };

inline constexpr DistinguisherKind kAllDistinguishers[] = {
    DistinguisherKind::kLogistic, DistinguisherKind::kSvm};

const char* distinguisher_name(DistinguisherKind kind) noexcept;

struct DistinguisherConfig {
  DistinguisherKind kind = DistinguisherKind::kLogistic;
  ml::LogisticConfig logistic;
  ml::SvmConfig svm;
};

class Distinguisher {
 public:
  explicit Distinguisher(DistinguisherConfig config = {})
      : config_(config) {}

  /// Fits the scaler on x and trains the binary model. `labels[i]` must
  /// be -1 or +1.
  void train(const ml::Matrix& x, std::span<const int> labels,
             common::Rng& rng);

  /// Decision score of one raw (unstandardized) feature row.
  double score(std::span<const double> row) const;

 private:
  DistinguisherConfig config_;
  ml::StandardScaler scaler_;
  ml::BinaryLogistic logistic_;
  ml::BinarySvm svm_;
};

}  // namespace poiprivacy::mia
