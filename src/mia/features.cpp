#include "mia/features.h"

#include <algorithm>

namespace poiprivacy::mia {

const char* feature_set_name(FeatureSet set) noexcept {
  switch (set) {
    case FeatureSet::kRawConcat:
      return "raw_concat";
    case FeatureSet::kDeltas:
      return "deltas";
    case FeatureSet::kStats:
      return "stats";
  }
  return "?";
}

std::size_t feature_dim(FeatureSet set, std::size_t windows,
                        std::size_t tiles) noexcept {
  switch (set) {
    case FeatureSet::kRawConcat:
      return windows * tiles;
    case FeatureSet::kDeltas:
      return windows <= 1 ? windows * tiles : (windows - 1) * tiles;
    case FeatureSet::kStats:
      return 4 * windows;
  }
  return 0;
}

void extract_features(const poi::FreqArena& stream, FeatureSet set,
                      std::vector<double>& out) {
  const std::size_t windows = stream.rows();
  const std::size_t tiles = stream.row_len();
  out.clear();
  out.reserve(feature_dim(set, windows, tiles));

  switch (set) {
    case FeatureSet::kRawConcat: {
      for (std::size_t w = 0; w < windows; ++w) {
        for (const std::int32_t cell : stream.row(w)) {
          out.push_back(static_cast<double>(cell));
        }
      }
      break;
    }
    case FeatureSet::kDeltas: {
      if (windows <= 1) {
        for (std::size_t w = 0; w < windows; ++w) {
          for (const std::int32_t cell : stream.row(w)) {
            out.push_back(static_cast<double>(cell));
          }
        }
        break;
      }
      std::vector<std::int32_t> delta(tiles);
      for (std::size_t w = 1; w < windows; ++w) {
        poi::diff_into(stream.row(w), stream.row(w - 1), delta);
        for (const std::int32_t cell : delta) {
          out.push_back(static_cast<double>(cell));
        }
      }
      break;
    }
    case FeatureSet::kStats: {
      for (std::size_t w = 0; w < windows; ++w) {
        const std::span<const std::int32_t> row = stream.row(w);
        std::int32_t max = 0;
        std::size_t occupied = 0;
        for (const std::int32_t cell : row) {
          max = std::max(max, cell);
          occupied += cell > 0;
        }
        out.push_back(static_cast<double>(poi::total(row)));
        out.push_back(static_cast<double>(max));
        out.push_back(static_cast<double>(occupied));
        out.push_back(w == 0 ? 0.0
                             : static_cast<double>(poi::l1_distance(
                                   row, stream.row(w - 1))));
      }
      break;
    }
  }
}

}  // namespace poiprivacy::mia
