// TileStreamSource — adapts the mia aggregate stream releaser to the
// serving layer's StreamSource seam, so ReleaseService / serve_tcp can
// serve the very same per-tile sliding-window streams the
// membership-inference suite attacks.
//
// The adapter owns a RAW releaser (config epsilon forced to 0 is the
// caller's job — the ctor throws otherwise): noise is the serving
// layer's responsibility, drawn per request from the request's own
// substream, while the raw window block is a pure function of
// (group, epoch range) and therefore cacheable under a kind-1
// ReleaseCacheKey.
#pragma once

#include <cstdint>
#include <vector>

#include "mia/stream_release.h"
#include "service/stream_source.h"

namespace poiprivacy::mia {

class TileStreamSource final : public service::StreamSource {
 public:
  /// Serves `releaser`'s stream for the fixed population `group` (user
  /// indices, copied). Throws std::invalid_argument when the releaser
  /// is configured to noise its own output (config().epsilon != 0) —
  /// the serving layer draws the noise.
  TileStreamSource(const AggregateStreamReleaser& releaser,
                   std::vector<std::uint32_t> group);

  std::size_t num_series() const override { return releaser_->roi().size(); }
  std::size_t epochs() const override;
  std::size_t num_windows(std::size_t begin, std::size_t end) const override {
    return releaser_->num_windows(begin, end);
  }
  double sensitivity() const override { return releaser_->sensitivity(); }

  /// Raw window-major ROI counts via the thread-local scratch arena;
  /// deterministic and rng-free (the raw path draws no noise).
  void release_raw(std::size_t begin, std::size_t end,
                   std::vector<double>& out) const override;

 private:
  const AggregateStreamReleaser* releaser_;
  std::size_t epochs_;
  std::vector<std::uint32_t> group_;
};

}  // namespace poiprivacy::mia
