#include "mia/mobility.h"

#include <stdexcept>

namespace poiprivacy::mia {

namespace {

TileId tile_id_of(const poi::TileAggregates& tiles, geo::Point pos) noexcept {
  const poi::TileAggregates::Tile tile = tiles.tile_of(pos);
  return static_cast<TileId>(tile.iy) * tiles.nx() +
         static_cast<TileId>(tile.ix);
}

}  // namespace

UserTraces generate_traces(const attack::AttackContext& ctx,
                           const MobilityConfig& config, std::uint64_t seed) {
  if (config.num_users == 0 || config.epochs == 0 ||
      config.visits_per_epoch == 0 || config.profile_tiles == 0) {
    throw std::invalid_argument("mobility: config sizes must be positive");
  }
  const poi::TileAggregates& tiles = ctx.tiles();
  const auto& pois = ctx.db().pois();
  if (pois.empty()) {
    throw std::invalid_argument("mobility: database has no POIs");
  }
  const std::size_t num_tiles =
      static_cast<std::size_t>(tiles.nx()) * static_cast<std::size_t>(tiles.ny());
  UserTraces traces(config.num_users, config.epochs, config.visits_per_epoch,
                    num_tiles);

  const common::Rng base(seed);
  const auto random_poi_tile = [&](common::Rng& rng) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pois.size()) - 1));
    return tile_id_of(tiles, pois[idx].pos);
  };

  for (std::size_t u = 0; u < config.num_users; ++u) {
    common::Rng rng = base.substream(u);
    // The routine: profile tiles anchored on POI positions, so users
    // cluster where the city does.
    std::vector<TileId> profile(config.profile_tiles);
    for (TileId& tile : profile) tile = random_poi_tile(rng);

    for (std::size_t e = 0; e < config.epochs; ++e) {
      std::span<TileId> out = traces.visits(u, e);
      for (TileId& visit : out) {
        if (rng.bernoulli(config.routine_prob)) {
          visit = profile[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(profile.size()) - 1))];
        } else {
          visit = random_poi_tile(rng);
        }
      }
    }
  }
  return traces;
}

}  // namespace poiprivacy::mia
