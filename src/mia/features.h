// Per-epoch feature extraction for the membership-inference
// distinguisher, over a released aggregate stream held in a FreqArena
// (one int32 ROI-count row per window — exactly what the releaser
// emits into poi::scratch_arena()).
//
// Three feature sets, mirroring the Pyrgelis et al. ablation:
//   * kRawConcat — the window rows flattened (W * T dims), the strongest
//     signal when the adversary can afford the dimensionality;
//   * kDeltas    — consecutive per-tile window differences via
//     poi::diff_into ((W-1) * T dims; falls back to the raw row when the
//     stream has a single window), isolating the temporal dynamics;
//   * kStats     — four per-window summary statistics (total, max,
//     occupied-tile count, L1 distance to the previous window), the
//     cheap low-dimensional baseline (4 * W dims). Uses the poi::total /
//     poi::l1_distance kernels, so every dispatch tier produces
//     bit-identical features.
#pragma once

#include <cstddef>
#include <vector>

#include "poi/frequency.h"

namespace poiprivacy::mia {

enum class FeatureSet { kRawConcat, kDeltas, kStats };

inline constexpr FeatureSet kAllFeatureSets[] = {
    FeatureSet::kRawConcat, FeatureSet::kDeltas, FeatureSet::kStats};

const char* feature_set_name(FeatureSet set) noexcept;

/// Feature dimension of a stream of `windows` rows of `tiles` counts.
std::size_t feature_dim(FeatureSet set, std::size_t windows,
                        std::size_t tiles) noexcept;

/// Extracts `set` features from the stream into `out` (resized to the
/// feature dimension). The stream rows are consumed immediately — safe
/// on a scratch-arena stream per the poi::scratch_arena() contract.
void extract_features(const poi::FreqArena& stream, FeatureSet set,
                      std::vector<double>& out);

}  // namespace poiprivacy::mia
