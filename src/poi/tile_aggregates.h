// TileAggregates — per-tile POI count upper bounds for candidate pruning.
//
// The fingerprint attack showed that a per-cell *envelope* (an aggregate
// that provably dominates F(p, r) for every p in the cell) turns a disk
// query into a table lookup. This structure generalizes that machinery
// into a reusable, radius-independent form: POIs are binned once into a
// regular tile grid and 2-D prefix sums are built per type, so for ANY
// probe p and radius r the count of type-t POIs inside the tile-aligned
// rectangle covering disk(p, r) is four array reads.
//
// Pruning invariant (the envelope property): the rectangle contains the
// disk, so for every p, r and t
//
//   type_upper_bound(p, r, t)  >= F(p, r)[t]
//   total_upper_bound(p, r)    >= total(F(p, r))
//
// i.e. the envelope dominates any contained disk. A candidate anchor
// whose upper bound already falls short of a released count can therefore
// be rejected with one integer comparison, without ever running the disk
// aggregation — and the rejection is exact: the full test would have
// failed too, so attack outputs are bit-identical with pruning on or off.
// The invariant is verified over random probes in
// tests/kernel_property_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/geometry.h"
#include "poi/poi.h"

namespace poiprivacy::poi {

class TileAggregates {
 public:
  /// Bins `pois` into tiles of `tile_km` over `bounds` (POIs outside the
  /// bounds clamp into the edge tiles, preserving the invariant) and
  /// builds one prefix-sum plane per type plus a total plane.
  TileAggregates(std::span<const Poi> pois, std::size_t num_types,
                 geo::BBox bounds, double tile_km = 1.0);

  /// Upper bound on F(p, radius)[type]: type-t POIs in the tile-aligned
  /// rectangle covering disk(p, radius).
  std::int32_t type_upper_bound(geo::Point p, double radius,
                                TypeId type) const noexcept;

  /// Upper bound on total(F(p, radius)): all POIs in the covering
  /// rectangle.
  std::int64_t total_upper_bound(geo::Point p, double radius) const noexcept;

  /// A resolved covering rectangle: candidate-pruning loops probe several
  /// type bounds per candidate, and the Window pays the point-to-tile
  /// arithmetic once instead of per probe.
  class Window {
   public:
    std::int32_t type_bound(TypeId type) const noexcept;
    std::int64_t total_bound() const noexcept;

   private:
    friend class TileAggregates;
    Window() = default;
    const TileAggregates* owner_;
    int x0_, y0_, x1_, y1_;  ///< inclusive tile range
  };
  Window window(geo::Point p, double radius) const noexcept;

  /// Tile coordinates a probe bins into (out-of-bounds probes clamp into
  /// the edge tiles, exactly like the POI binning).
  struct Tile {
    int ix, iy;
  };
  Tile tile_of(geo::Point p) const noexcept;

  /// Coarse whole-tile window: a covering rectangle that contains
  /// window(p, radius) for EVERY probe p binned into tile (ix, iy) —
  /// including out-of-bounds probes clamped into an edge tile. Its
  /// bounds therefore dominate every member probe's window bounds, so
  /// one coarse rare-type shortfall rejects a whole tile of candidates
  /// at once, and a coarse pass never contradicts the per-candidate
  /// windows (the batched-envelope contract; pinned by
  /// tests/tile_window_property_test.cpp).
  Window tile_window(int ix, int iy, double radius) const noexcept;

  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  double tile_km() const noexcept { return tile_km_; }

 private:
  struct Rect {
    int x0, y0, x1, y1;  ///< inclusive tile range
  };
  Rect rect_of(geo::Point p, double radius) const noexcept;
  static std::int64_t rect_sum(const std::int32_t* plane, int width,
                               Rect r) noexcept;

  geo::BBox bounds_;
  double tile_km_;
  double inv_tile_km_;  ///< 1 / tile_km_: tile indexing multiplies, never divides
  int nx_ = 0;
  int ny_ = 0;
  std::size_t plane_stride_ = 0;  ///< (nx_+1) * (ny_+1)
  /// Inclusive 2-D prefix sums, one (nx_+1)x(ny_+1) plane per type.
  std::vector<std::int32_t> type_prefix_;
  std::vector<std::int32_t> total_prefix_;  ///< one plane, all types
};

}  // namespace poiprivacy::poi
