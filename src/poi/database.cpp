#include "poi/database.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.h"

namespace poiprivacy::poi {

namespace {

// Registry mirrors of the anchor-cache shard atomics; process-wide, shared
// across PoiDatabase instances. Observation only — anchor_cache_stats()
// keeps reading the shard atomics.
struct AnchorMetrics {
  obs::Counter& hits;
  obs::Counter& misses;

  static AnchorMetrics& get() {
    static AnchorMetrics* metrics = new AnchorMetrics{
        obs::global_registry().counter("poi.anchor_cache.hits"),
        obs::global_registry().counter("poi.anchor_cache.misses"),
    };
    return *metrics;
  }
};

}  // namespace

// Sharded read-mostly cache for anchor frequency vectors, keyed by
// (POI id, radius bits). Sharding keeps writer contention negligible while
// the steady state is lock-cheap shared reads. Entries are never evicted:
// the key space is bounded by |POIs| x |query radii in a run|, and the
// attacks probe the same few radii thousands of times each.
struct PoiDatabase::AnchorCache {
  struct Key {
    PoiId id;
    std::uint64_t radius_bits;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // splitmix64 finalizer over the packed key.
      std::uint64_t z = k.radius_bits ^ (static_cast<std::uint64_t>(k.id) *
                                         0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<Key, AnchorAggregate, KeyHash> entries;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
  };

  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards;

  Shard& shard_for(const Key& key) noexcept {
    return shards[KeyHash{}(key) % kShards];
  }
};

// Lazily built tile aggregates; the once_flag lives on the heap so the
// database stays movable.
struct PoiDatabase::TileHolder {
  std::once_flag once;
  std::unique_ptr<TileAggregates> tiles;
};

namespace {

std::vector<geo::Point> positions_of(const std::vector<Poi>& pois) {
  std::vector<geo::Point> out;
  out.reserve(pois.size());
  for (const Poi& p : pois) out.push_back(p.pos);
  return out;
}

}  // namespace

PoiDatabase::PoiDatabase(std::string city_name, std::vector<Poi> pois,
                         PoiTypeRegistry types, geo::BBox bounds)
    : city_name_(std::move(city_name)),
      pois_(std::move(pois)),
      types_(std::move(types)),
      bounds_(bounds),
      index_(positions_of(pois_), bounds),
      anchor_cache_(std::make_unique<AnchorCache>()),
      tile_holder_(std::make_unique<TileHolder>()) {
  city_freq_.assign(types_.size(), 0);
  by_type_.resize(types_.size());
  for (PoiId i = 0; i < pois_.size(); ++i) {
    assert(pois_[i].id == i && "POI ids must be dense indices");
    assert(pois_[i].type < types_.size());
    ++city_freq_[pois_[i].type];
    by_type_[pois_[i].type].push_back(i);
  }
  // Infrequency rank: rarest type gets rank 1; ties by type id.
  std::vector<TypeId> order(types_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](TypeId a, TypeId b) {
    if (city_freq_[a] != city_freq_[b]) return city_freq_[a] < city_freq_[b];
    return a < b;
  });
  rank_.assign(types_.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank_[order[i]] = static_cast<int>(i) + 1;
  }
}

PoiDatabase::~PoiDatabase() = default;
PoiDatabase::PoiDatabase(PoiDatabase&&) noexcept = default;
PoiDatabase& PoiDatabase::operator=(PoiDatabase&&) noexcept = default;

std::vector<PoiId> PoiDatabase::query(geo::Point center, double radius) const {
  return index_.query_disk(center, radius);
}

const AnchorAggregate& PoiDatabase::anchor_aggregate(PoiId id,
                                                     double radius) const {
  const AnchorCache::Key key{id, std::bit_cast<std::uint64_t>(radius)};
  AnchorCache::Shard& shard = anchor_cache_->shard_for(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      AnchorMetrics::get().hits.add(1);
      return it->second;
    }
  }
  // Compute outside any lock (the fingerprint too, so the insertion
  // critical section stays a move); on a concurrent double-compute the
  // loser discards its copy and counts a hit, so misses stay equal to
  // the number of distinct keys no matter the interleaving.
  AnchorAggregate computed;
  computed.freq = freq(poi(id).pos, radius);
  computed.fp.resize(fingerprint_words(computed.freq.size()));
  pack_fingerprint(computed.freq, computed.fp);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const auto [it, inserted] =
      shard.entries.try_emplace(key, std::move(computed));
  if (inserted) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    AnchorMetrics::get().misses.add(1);
  } else {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    AnchorMetrics::get().hits.add(1);
  }
  return it->second;
}

AnchorCacheStats PoiDatabase::anchor_cache_stats() const noexcept {
  AnchorCacheStats stats;
  for (const AnchorCache::Shard& shard : anchor_cache_->shards) {
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses.load(std::memory_order_relaxed);
  }
  return stats;
}

FrequencyVector PoiDatabase::freq(geo::Point center, double radius) const {
  FrequencyVector f;
  freq_into(center, radius, f);
  return f;
}

void PoiDatabase::freq_into(geo::Point center, double radius,
                            FrequencyVector& out) const {
  out.assign(types_.size(), 0);
  index_.for_each_in_disk(center, radius,
                          [this, &out](std::uint32_t id, geo::Point) {
                            ++out[pois_[id].type];
                          });
}

void PoiDatabase::freq_batch(std::span<const geo::Point> centers, double radius,
                             FreqArena& arena) const {
  arena.reset(centers.size(), types_.size());
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const std::span<std::int32_t> row = arena.row(i);
    index_.for_each_in_disk(centers[i], radius,
                            [this, row](std::uint32_t id, geo::Point) {
                              ++row[pois_[id].type];
                            });
  }
}

const TileAggregates& PoiDatabase::tile_aggregates() const {
  std::call_once(tile_holder_->once, [this] {
    tile_holder_->tiles =
        std::make_unique<TileAggregates>(pois_, types_.size(), bounds_);
  });
  return *tile_holder_->tiles;
}

std::vector<TypeId> PoiDatabase::types_with_city_freq_at_most(
    std::int32_t threshold) const {
  std::vector<TypeId> out;
  for (TypeId t = 0; t < city_freq_.size(); ++t) {
    if (city_freq_[t] > 0 && city_freq_[t] <= threshold) out.push_back(t);
  }
  return out;
}

}  // namespace poiprivacy::poi
