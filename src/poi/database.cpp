#include "poi/database.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace poiprivacy::poi {

namespace {

std::vector<geo::Point> positions_of(const std::vector<Poi>& pois) {
  std::vector<geo::Point> out;
  out.reserve(pois.size());
  for (const Poi& p : pois) out.push_back(p.pos);
  return out;
}

}  // namespace

PoiDatabase::PoiDatabase(std::string city_name, std::vector<Poi> pois,
                         PoiTypeRegistry types, geo::BBox bounds)
    : city_name_(std::move(city_name)),
      pois_(std::move(pois)),
      types_(std::move(types)),
      bounds_(bounds),
      index_(positions_of(pois_), bounds) {
  city_freq_.assign(types_.size(), 0);
  by_type_.resize(types_.size());
  for (PoiId i = 0; i < pois_.size(); ++i) {
    assert(pois_[i].id == i && "POI ids must be dense indices");
    assert(pois_[i].type < types_.size());
    ++city_freq_[pois_[i].type];
    by_type_[pois_[i].type].push_back(i);
  }
  // Infrequency rank: rarest type gets rank 1; ties by type id.
  std::vector<TypeId> order(types_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](TypeId a, TypeId b) {
    if (city_freq_[a] != city_freq_[b]) return city_freq_[a] < city_freq_[b];
    return a < b;
  });
  rank_.assign(types_.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank_[order[i]] = static_cast<int>(i) + 1;
  }
}

std::vector<PoiId> PoiDatabase::query(geo::Point center, double radius) const {
  return index_.query_disk(center, radius);
}

FrequencyVector PoiDatabase::freq(geo::Point center, double radius) const {
  FrequencyVector f(types_.size(), 0);
  index_.for_each_in_disk(center, radius,
                          [this, &f](std::uint32_t id, geo::Point) {
                            ++f[pois_[id].type];
                          });
  return f;
}

std::vector<TypeId> PoiDatabase::types_with_city_freq_at_most(
    std::int32_t threshold) const {
  std::vector<TypeId> out;
  for (TypeId t = 0; t < city_freq_.size(); ++t) {
    if (city_freq_[t] > 0 && city_freq_[t] <= threshold) out.push_back(t);
  }
  return out;
}

}  // namespace poiprivacy::poi
