#include "poi/tile_aggregates.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace poiprivacy::poi {

TileAggregates::TileAggregates(std::span<const Poi> pois,
                               std::size_t num_types, geo::BBox bounds,
                               double tile_km)
    : bounds_(bounds), tile_km_(tile_km), inv_tile_km_(1.0 / tile_km) {
  assert(tile_km > 0.0);
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / tile_km)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / tile_km)));
  const int w = nx_ + 1;
  const int h = ny_ + 1;
  plane_stride_ = static_cast<std::size_t>(w) * h;

  // Bin POIs into per-type tile counts (stored straight into the prefix
  // buffers at offset (iy+1, ix+1), then summed in place). Binning MUST
  // use the same x -> tile formula as rect_of: both are monotone in x, so
  // any POI within `radius` of a probe lands inside the probe's rect even
  // when multiply-by-inverse rounds differently than an exact divide.
  type_prefix_.assign(plane_stride_ * num_types, 0);
  total_prefix_.assign(plane_stride_, 0);
  for (const Poi& p : pois) {
    assert(p.type < num_types);
    const int ix = std::clamp(
        static_cast<int>((p.pos.x - bounds_.min_x) * inv_tile_km_), 0, nx_ - 1);
    const int iy = std::clamp(
        static_cast<int>((p.pos.y - bounds_.min_y) * inv_tile_km_), 0, ny_ - 1);
    const std::size_t at = static_cast<std::size_t>(iy + 1) * w + (ix + 1);
    ++type_prefix_[p.type * plane_stride_ + at];
    ++total_prefix_[at];
  }

  // In-place inclusive 2-D prefix sums: row pass then column pass. Row 0
  // and column 0 stay zero so rect_sum never needs boundary branches.
  const auto prefix_plane = [w, h](std::int32_t* plane) {
    for (int y = 1; y < h; ++y) {
      std::int32_t* row = plane + static_cast<std::size_t>(y) * w;
      for (int x = 1; x < w; ++x) row[x] += row[x - 1];
    }
    for (int y = 2; y < h; ++y) {
      std::int32_t* row = plane + static_cast<std::size_t>(y) * w;
      const std::int32_t* prev = row - w;
      for (int x = 1; x < w; ++x) row[x] += prev[x];
    }
  };
  for (std::size_t t = 0; t < num_types; ++t) {
    prefix_plane(type_prefix_.data() + t * plane_stride_);
  }
  prefix_plane(total_prefix_.data());
}

TileAggregates::Rect TileAggregates::rect_of(geo::Point p,
                                             double radius) const noexcept {
  const auto tile_x = [this](double x) {
    return std::clamp(static_cast<int>((x - bounds_.min_x) * inv_tile_km_), 0,
                      nx_ - 1);
  };
  const auto tile_y = [this](double y) {
    return std::clamp(static_cast<int>((y - bounds_.min_y) * inv_tile_km_), 0,
                      ny_ - 1);
  };
  return {tile_x(p.x - radius), tile_y(p.y - radius), tile_x(p.x + radius),
          tile_y(p.y + radius)};
}

std::int64_t TileAggregates::rect_sum(const std::int32_t* plane, int width,
                                      Rect r) noexcept {
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t top = static_cast<std::size_t>(r.y0) * w;
  const std::size_t bottom = static_cast<std::size_t>(r.y1 + 1) * w;
  return static_cast<std::int64_t>(plane[bottom + r.x1 + 1]) -
         plane[top + r.x1 + 1] - plane[bottom + r.x0] + plane[top + r.x0];
}

TileAggregates::Window TileAggregates::window(geo::Point p,
                                              double radius) const noexcept {
  const Rect r = rect_of(p, radius);
  Window w;
  w.owner_ = this;
  w.x0_ = r.x0;
  w.y0_ = r.y0;
  w.x1_ = r.x1;
  w.y1_ = r.y1;
  return w;
}

std::int32_t TileAggregates::Window::type_bound(TypeId type) const noexcept {
  return static_cast<std::int32_t>(
      rect_sum(owner_->type_prefix_.data() + type * owner_->plane_stride_,
               owner_->nx_ + 1, {x0_, y0_, x1_, y1_}));
}

std::int64_t TileAggregates::Window::total_bound() const noexcept {
  return rect_sum(owner_->total_prefix_.data(), owner_->nx_ + 1,
                  {x0_, y0_, x1_, y1_});
}

TileAggregates::Tile TileAggregates::tile_of(geo::Point p) const noexcept {
  return {std::clamp(static_cast<int>((p.x - bounds_.min_x) * inv_tile_km_), 0,
                     nx_ - 1),
          std::clamp(static_cast<int>((p.y - bounds_.min_y) * inv_tile_km_), 0,
                     ny_ - 1)};
}

TileAggregates::Window TileAggregates::tile_window(int ix, int iy,
                                                   double radius)
    const noexcept {
  // Any unclamped member p of tile (ix, iy) has (p.x - min_x) / tile in
  // [ix, ix + 1), so rect_of(p, radius) spans at most
  // ceil(radius / tile) + 1 tiles beyond the home tile in each direction
  // (the +1 absorbs the multiply-by-inverse rounding). Clamped members
  // of an EDGE tile can sit arbitrarily far outside the bounds, but
  // their rects clamp into the grid on the same side, so the expanded,
  // grid-clamped rectangle below still contains them.
  const int expand =
      static_cast<int>(std::ceil(radius * inv_tile_km_)) + 1;
  Window w;
  w.owner_ = this;
  w.x0_ = std::max(0, ix - expand);
  w.y0_ = std::max(0, iy - expand);
  w.x1_ = std::min(nx_ - 1, ix + expand);
  w.y1_ = std::min(ny_ - 1, iy + expand);
  return w;
}

std::int32_t TileAggregates::type_upper_bound(geo::Point p, double radius,
                                              TypeId type) const noexcept {
  return window(p, radius).type_bound(type);
}

std::int64_t TileAggregates::total_upper_bound(geo::Point p,
                                               double radius) const noexcept {
  return window(p, radius).total_bound();
}

}  // namespace poiprivacy::poi
