// Runtime dispatch tiers for the frequency kernels.
//
// The span kernels in poi/frequency.h are served by one of three
// implementations, selected once per process:
//
//   kScalar  portable straight-line loops the compiler auto-vectorizes
//            at the baseline ISA (always compiled, always available);
//   kAvx2    explicit 8-lane AVX2 intrinsics (x86-64 builds only;
//            selected when cpuid reports AVX2);
//   kNeon    explicit 4-lane NEON intrinsics (AArch64/ARM builds only;
//            NEON is baseline there, so it is selected by default).
//
// Selection order: the POIPRIVACY_KERNEL environment variable
// (`scalar`, `avx2`, or `neon`) if set and available on this machine —
// an unavailable request falls back to the best available tier with a
// one-line note on stderr — otherwise the best available tier. The
// resolved tier never changes observable results: every tier computes
// bit-identical outputs, pinned by tests/kernel_property_test.cpp which
// runs its full oracle sweep once per tier (one ctest entry per
// compiled-in tier) against the poi::scalar_ref loops.
//
// set_kernel_tier() exists so one test process can sweep every
// available tier back-to-back; it is intended for single-threaded test
// setup, not for flipping tiers while kernels are running on other
// threads.
#pragma once

#include <string_view>
#include <vector>

namespace poiprivacy::poi {

enum class KernelTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Lower-case tier name as spelled in POIPRIVACY_KERNEL.
std::string_view kernel_tier_name(KernelTier tier) noexcept;

/// Compiled into this binary AND usable on this machine?
bool kernel_tier_available(KernelTier tier) noexcept;

/// Every available tier, kScalar first.
std::vector<KernelTier> available_kernel_tiers();

/// The tier the frequency kernels currently dispatch to (resolved on
/// first use from POIPRIVACY_KERNEL / cpuid as described above).
KernelTier active_kernel_tier() noexcept;

/// Switches dispatch to `tier`; returns false (and changes nothing) if
/// the tier is not available. Test-only: call before spawning kernel
/// work, not concurrently with it.
bool set_kernel_tier(KernelTier tier) noexcept;

}  // namespace poiprivacy::poi
