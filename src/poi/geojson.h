// GeoJSON export, so cities, attack results, and uniqueness maps can be
// inspected in standard GIS tooling (geojson.io, QGIS, kepler.gl). The
// planar km coordinates are mapped back to WGS84 through a caller-chosen
// reference point.
#pragma once

#include <iosfwd>
#include <span>

#include "geo/latlon.h"
#include "poi/database.h"

namespace poiprivacy::poi {

/// Writes the database as a FeatureCollection of Point features with
/// `type` properties. `reference` anchors the city's (0, 0) corner.
void write_geojson(const PoiDatabase& db, geo::LatLon reference,
                   std::ostream& out);

/// Writes a set of circles (e.g. the fine-grained attack's anchor disks)
/// as Polygon features approximated by `segments`-gons.
void write_geojson_circles(std::span<const geo::Circle> circles,
                           geo::LatLon reference, std::ostream& out,
                           int segments = 32);

}  // namespace poiprivacy::poi
