// CSV persistence for POI databases, so generated cities can be exported,
// inspected, and re-imported (or replaced with a real OSM extract that has
// been converted to the same schema).
//
// Format:
//   # city=<name> min_x=<..> min_y=<..> max_x=<..> max_y=<..>
//   id,type,x_km,y_km
//   0,beijing/type_3,12.500000,3.250000
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "poi/database.h"

namespace poiprivacy::poi {

void save_csv(const PoiDatabase& db, std::ostream& out);
void save_csv(const PoiDatabase& db, const std::string& path);

/// Throws std::runtime_error on malformed input.
PoiDatabase load_csv(std::istream& in);
PoiDatabase load_csv(const std::string& path);

}  // namespace poiprivacy::poi
