// Tier resolution and the live dispatch pointer for the frequency
// kernels. See poi/kernel_tiers.h for the selection contract.
#include "poi/kernel_tiers.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "poi/kernel_ops.h"

namespace poiprivacy::poi {

namespace {

const detail::KernelOps* ops_for(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return &detail::scalar_kernel_ops();
    case KernelTier::kAvx2:
#ifdef POIPRIVACY_HAVE_AVX2_TIER
      return &detail::avx2_kernel_ops();
#else
      return nullptr;
#endif
    case KernelTier::kNeon:
#ifdef POIPRIVACY_HAVE_NEON_TIER
      return &detail::neon_kernel_ops();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool tier_usable(KernelTier tier) noexcept {
  if (tier == KernelTier::kScalar) return true;
#ifdef POIPRIVACY_HAVE_AVX2_TIER
  if (tier == KernelTier::kAvx2) return __builtin_cpu_supports("avx2") != 0;
#endif
#ifdef POIPRIVACY_HAVE_NEON_TIER
  if (tier == KernelTier::kNeon) return true;  // baseline on AArch64
#endif
  return false;
}

KernelTier best_available() noexcept {
#ifdef POIPRIVACY_HAVE_NEON_TIER
  if (tier_usable(KernelTier::kNeon)) return KernelTier::kNeon;
#endif
#ifdef POIPRIVACY_HAVE_AVX2_TIER
  if (tier_usable(KernelTier::kAvx2)) return KernelTier::kAvx2;
#endif
  return KernelTier::kScalar;
}

bool parse_tier(const char* name, KernelTier& out) noexcept {
  if (std::strcmp(name, "scalar") == 0) {
    out = KernelTier::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    out = KernelTier::kAvx2;
  } else if (std::strcmp(name, "neon") == 0) {
    out = KernelTier::kNeon;
  } else {
    return false;
  }
  return true;
}

// The live tier state; the ops pointer itself lives in
// detail::g_active_kernel_ops so the hot-path load inlines into callers.
std::atomic<KernelTier> g_active_tier{KernelTier::kScalar};
std::once_flag g_resolve_once;

void resolve() noexcept {
  KernelTier tier = best_available();
  if (const char* env = std::getenv("POIPRIVACY_KERNEL");
      env != nullptr && *env != '\0') {
    KernelTier requested;
    if (!parse_tier(env, requested)) {
      std::fprintf(stderr,
                   "poiprivacy: POIPRIVACY_KERNEL='%s' is not one of "
                   "scalar|avx2|neon; using '%s'\n",
                   env, std::string(kernel_tier_name(tier)).c_str());
    } else if (!tier_usable(requested)) {
      std::fprintf(stderr,
                   "poiprivacy: POIPRIVACY_KERNEL='%s' is not available on "
                   "this machine; using '%s'\n",
                   env, std::string(kernel_tier_name(tier)).c_str());
    } else {
      tier = requested;
    }
  }
  g_active_tier.store(tier, std::memory_order_relaxed);
  detail::g_active_kernel_ops.store(ops_for(tier), std::memory_order_release);
}

void ensure_resolved() noexcept {
  if (detail::g_active_kernel_ops.load(std::memory_order_acquire) == nullptr) {
    std::call_once(g_resolve_once, resolve);
  }
}

}  // namespace

std::string_view kernel_tier_name(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kNeon:
      return "neon";
  }
  return "unknown";
}

bool kernel_tier_available(KernelTier tier) noexcept {
  return tier_usable(tier);
}

std::vector<KernelTier> available_kernel_tiers() {
  std::vector<KernelTier> tiers;
  for (const KernelTier t :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kNeon}) {
    if (tier_usable(t)) tiers.push_back(t);
  }
  return tiers;
}

KernelTier active_kernel_tier() noexcept {
  ensure_resolved();
  return g_active_tier.load(std::memory_order_relaxed);
}

bool set_kernel_tier(KernelTier tier) noexcept {
  ensure_resolved();
  if (!tier_usable(tier)) return false;
  g_active_tier.store(tier, std::memory_order_relaxed);
  detail::g_active_kernel_ops.store(ops_for(tier), std::memory_order_release);
  return true;
}

namespace detail {

std::atomic<const KernelOps*> g_active_kernel_ops{nullptr};

const KernelOps& resolve_active_kernel_ops() noexcept {
  ensure_resolved();
  return *g_active_kernel_ops.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace poiprivacy::poi
