// POI type frequency vectors — the aggregate that users release to LBS
// applications and that the attacks/defenses operate on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "poi/poi.h"

namespace poiprivacy::poi {

/// F(l, r): count of POIs of each type within radius r of location l.
/// Indexed by TypeId; length is the number of types in the city.
using FrequencyVector = std::vector<std::int32_t>;

/// a - b elementwise (sizes must match).
FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b);

/// Sum of |a_i - b_i|.
std::int64_t l1_distance(const FrequencyVector& a, const FrequencyVector& b);

/// True iff a_i >= b_i for every i. This is the covering test at the heart
/// of the region re-identification attack: if p lies within r of l then
/// F(p, 2r) dominates F(l, r) componentwise.
bool dominates(const FrequencyVector& a, const FrequencyVector& b) noexcept;

/// Total number of POIs counted.
std::int64_t total(const FrequencyVector& f) noexcept;

/// Type ids of the K largest entries (ties broken by smaller id), only
/// types with positive frequency. May return fewer than K.
std::vector<TypeId> top_k_types(const FrequencyVector& f, std::size_t k);

/// Jaccard index |A ∩ B| / |A ∪ B| of two type sets; 1.0 if both empty.
double jaccard(std::span<const TypeId> a, std::span<const TypeId> b);

/// Top-K Jaccard utility between an original and a protected vector — the
/// paper's utility metric for the defense mechanisms (Section VI-A).
double top_k_jaccard(const FrequencyVector& original,
                     const FrequencyVector& protected_vec, std::size_t k);

}  // namespace poiprivacy::poi
