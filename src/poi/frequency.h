// POI type frequency vectors — the aggregate that users release to LBS
// applications and that the attacks/defenses operate on.
//
// The free functions below are the frequency *kernel layer*: contiguous
// int32 row kernels that every pipeline (re-identification,
// fingerprinting, the DP defense, the serving layer) bottoms out in.
// They accept spans so the same code path serves owned FrequencyVectors
// and rows of a FreqArena, and they dispatch at runtime to one of the
// kernel tiers of poi/kernel_tiers.h — portable auto-vectorized loops,
// explicit AVX2, or explicit NEON — selected once per process (cpuid /
// POIPRIVACY_KERNEL). Every tier computes bit-identical results. The
// original scalar loops are kept verbatim in scalar_ref:: as the
// reference oracle — tests/kernel_property_test.cpp pits every kernel
// of every tier against its oracle on seeded random inputs.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

#include "poi/kernel_ops.h"
#include "poi/kernel_tiers.h"
#include "poi/poi.h"

namespace poiprivacy::poi {

/// Frequency-vector storage starts on a cache-line boundary: the SIMD
/// kernel tiers read rows in 32-byte gulps, and a 32-byte load that
/// straddles a cache line costs roughly twice one that does not — on the
/// straight-line kernels (dominates, diff_into, l1_distance) that split
/// alone costs ~1.4x. 16-byte malloc alignment guarantees a straddle
/// every other vector, so the container carries its own allocator.
inline constexpr std::size_t kFrequencyAlignment = 64;

/// Minimal aligned allocator. Deliberately NOT the over-aligned
/// operator new: glibc's memalign path bypasses the thread cache and
/// costs ~4x a plain small allocation, which matters for the paths that
/// return an owned FrequencyVector per query. Instead over-allocate on
/// the plain (cached) path and align by hand, stashing the raw pointer
/// just below the aligned block for deallocate().
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && Alignment >= sizeof(void*) &&
                (Alignment & (Alignment - 1)) == 0);
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  // Spelled out because the allocator's second parameter is a non-type
  // argument, which defeats allocator_traits' automatic rebinding.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    void* raw = ::operator new(n * sizeof(T) + Alignment + sizeof(void*));
    void* user = reinterpret_cast<void*>(
        (reinterpret_cast<std::uintptr_t>(raw) + sizeof(void*) + Alignment -
         1) &
        ~std::uintptr_t{Alignment - 1});
    static_cast<void**>(user)[-1] = raw;
    return static_cast<T*>(user);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(reinterpret_cast<void**>(p)[-1]);
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// F(l, r): count of POIs of each type within radius r of location l.
/// Indexed by TypeId; length is the number of types in the city.
using FrequencyVector =
    std::vector<std::int32_t, AlignedAllocator<std::int32_t, kFrequencyAlignment>>;

// The span kernels below are inline shims over the active dispatch tier
// (poi/kernel_tiers.h): a call from a hot loop compiles to one atomic
// load of the live table plus one indirect call, with no intermediate
// call frames.

/// a - b elementwise into `out` (all three sizes must match; `out` may
/// alias `a` or `b`).
inline void diff_into(std::span<const std::int32_t> a,
                      std::span<const std::int32_t> b,
                      std::span<std::int32_t> out) noexcept {
  assert(a.size() == b.size() && a.size() == out.size());
  detail::active_kernel_ops().diff_into(a.data(), b.data(), out.data(),
                                        a.size());
}

/// a - b elementwise (sizes must match).
FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b);

/// Sum of |a_i - b_i|.
inline std::int64_t l1_distance(std::span<const std::int32_t> a,
                                std::span<const std::int32_t> b) noexcept {
  assert(a.size() == b.size());
  return detail::active_kernel_ops().l1_distance(a.data(), b.data(), a.size());
}

/// True iff a_i >= b_i for every i. This is the covering test at the heart
/// of the region re-identification attack: if p lies within r of l then
/// F(p, 2r) dominates F(l, r) componentwise.
inline bool dominates(std::span<const std::int32_t> a,
                      std::span<const std::int32_t> b) noexcept {
  assert(a.size() == b.size());
  return detail::active_kernel_ops().dominates(a.data(), b.data(), a.size());
}

/// dominates() with one branch per 64-lane block instead of none: the
/// same result, but returns as soon as a block contains a violation.
/// Prefer it where most rows fail the test (the fingerprint scan, the
/// candidate-pruning loops); prefer the straight-line dominates() where
/// rows usually pass and the early branch is pure overhead.
inline bool dominates_early_exit(std::span<const std::int32_t> a,
                                 std::span<const std::int32_t> b) noexcept {
  assert(a.size() == b.size());
  return detail::active_kernel_ops().dominates_early_exit(a.data(), b.data(),
                                                          a.size());
}

/// Total number of POIs counted.
inline std::int64_t total(std::span<const std::int32_t> f) noexcept {
  return detail::active_kernel_ops().total(f.data(), f.size());
}

/// Type ids of the K largest entries (ties broken by smaller id), only
/// types with positive frequency. May return fewer than K.
std::vector<TypeId> top_k_types(std::span<const std::int32_t> f,
                                std::size_t k);

/// Jaccard index |A ∩ B| / |A ∪ B| of two type sets; 1.0 if both empty.
/// Duplicates in the inputs are ignored (set semantics).
double jaccard(std::span<const TypeId> a, std::span<const TypeId> b);

/// Top-K Jaccard utility between an original and a protected vector — the
/// paper's utility metric for the defense mechanisms (Section VI-A).
double top_k_jaccard(std::span<const std::int32_t> original,
                     std::span<const std::int32_t> protected_vec,
                     std::size_t k);

// ---- Bit-packed presence fingerprints --------------------------------------
//
// One bit per POI type (bit t of word t/64 set iff the count is
// positive), so presence reasoning over M types collapses to
// ceil(M / 64) word ops. The key lemma the attacks use: if
// dominates(a, b) then b's presence bits are a subset of a's, so a
// failed fingerprint_covers() refutes dominance for the price of a few
// AND-NOTs — the word-parallel pre-check in front of every full
// dominance scan, and the word-parallel form of the rare-present-type
// scans. Tail bits past M are always zero, so whole-word operations
// never see garbage (tests pin M = 1, 63, 64, 65, 127, 177, 272).

using FingerprintWord = std::uint64_t;

/// Words needed to fingerprint `num_types` types.
constexpr std::size_t fingerprint_words(std::size_t num_types) noexcept {
  return (num_types + 63) / 64;
}

/// Packs presence bits of `f` into `out` (size fingerprint_words(f.size())).
inline void pack_fingerprint(std::span<const std::int32_t> f,
                             std::span<FingerprintWord> out) noexcept {
  assert(out.size() == fingerprint_words(f.size()));
  detail::active_kernel_ops().pack_fingerprint(f.data(), f.size(), out.data());
}

/// True iff b's presence bits are a subset of a's ((~a & b) == 0
/// word-wise; sizes must match). Necessary for dominates(a_vec, b_vec).
inline bool fingerprint_covers(std::span<const FingerprintWord> a,
                               std::span<const FingerprintWord> b) noexcept {
  assert(a.size() == b.size());
  return detail::active_kernel_ops().fingerprint_covers(a.data(), b.data(),
                                                        a.size());
}

/// All fingerprint bits clear (an empty aggregate).
inline bool fingerprint_empty(std::span<const FingerprintWord> fp) noexcept {
  FingerprintWord any = 0;
  for (const FingerprintWord w : fp) any |= w;
  return any == 0;
}

/// Calls `fn(TypeId)` for every set bit, in ascending type order.
template <typename Fn>
void for_each_present_type(std::span<const FingerprintWord> fp, Fn&& fn) {
  for (std::size_t w = 0; w < fp.size(); ++w) {
    for (FingerprintWord bits = fp[w]; bits != 0; bits &= bits - 1) {
      fn(static_cast<TypeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits))));
    }
  }
}

/// Reusable SoA count matrix: one contiguous int32 buffer, one row per
/// query. reset() reuses the previous allocation whenever the new batch
/// fits, so a long-lived (e.g. per-thread) arena makes batched aggregate
/// queries allocation-free in steady state. Rows are contiguous and
/// packed (stride == row_len, buffer base cache-line aligned), so they
/// feed the span kernels above directly. Deliberately NOT padded to a
/// 32-byte row stride: rows here are filled per batch and then scanned
/// once or with early exit, and measuring showed the fill paying ~25%
/// for padding's cache footprint while the scans gained almost nothing
/// (long straight-line scans run over owned FrequencyVectors, which the
/// aligned allocator above already serves).
class FreqArena {
 public:
  /// Resizes to rows x row_len and zero-fills; keeps capacity. Discards
  /// any fingerprints packed for the previous batch.
  void reset(std::size_t rows, std::size_t row_len);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t row_len() const noexcept { return row_len_; }

  std::span<std::int32_t> row(std::size_t i) noexcept {
    return {data_.data() + i * row_len_, row_len_};
  }
  std::span<const std::int32_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * row_len_, row_len_};
  }

  /// (Re)packs the presence fingerprint of every row, stored alongside
  /// the counts (one fingerprint_words(row_len) run of words per row,
  /// same reused-capacity contract as the counts). Call after the rows
  /// are filled; mutating a row afterwards stales its fingerprint until
  /// the next pack.
  void pack_fingerprints();

  bool has_fingerprints() const noexcept { return has_fingerprints_; }

  /// Bit-packed presence of row i (valid after pack_fingerprints()).
  std::span<const FingerprintWord> fingerprint(std::size_t i) const noexcept {
    assert(has_fingerprints_);
    const std::size_t words = fingerprint_words(row_len_);
    return {fingerprints_.data() + i * words, words};
  }

 private:
  std::vector<std::int32_t, AlignedAllocator<std::int32_t, kFrequencyAlignment>>
      data_;
  std::vector<FingerprintWord> fingerprints_;
  std::size_t rows_ = 0;
  std::size_t row_len_ = 0;
  bool has_fingerprints_ = false;
};

/// The process-wide per-thread scratch arena. One FreqArena per thread,
/// created on first use and reused for the thread's lifetime, so every
/// component that fills-and-consumes a batch of frequency rows inside one
/// call (the attacks' candidate scans, DpDefense::noised_mean, the release
/// service's Phase-D aggregation) shares a single steady-state buffer
/// instead of growing a private `static thread_local` arena each.
///
/// Lifetime contract: the pool workers of common::global_pool() live for
/// the whole process, so after warmup no scratch call allocates. The
/// arena's contents (and any row span taken from it) are valid only until
/// the next scratch_arena()-based fill on the same thread — treat it as a
/// register, not a cache: fill it, consume it, and never hold a row across
/// a call into another component that might also use the scratch arena.
FreqArena& scratch_arena() noexcept;

/// The pre-kernel scalar implementations, kept as the reference oracle
/// for the vectorized kernels (property tests compare the two on random
/// inputs). Not for production call sites.
namespace scalar_ref {

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b);
std::int64_t l1_distance(const FrequencyVector& a, const FrequencyVector& b);
bool dominates(const FrequencyVector& a, const FrequencyVector& b) noexcept;
std::int64_t total(const FrequencyVector& f) noexcept;
std::vector<TypeId> top_k_types(const FrequencyVector& f, std::size_t k);
double jaccard(std::span<const TypeId> a, std::span<const TypeId> b);
double top_k_jaccard(const FrequencyVector& original,
                     const FrequencyVector& protected_vec, std::size_t k);

/// One-bit-at-a-time reference for poi::pack_fingerprint.
std::vector<FingerprintWord> pack_fingerprint(const FrequencyVector& f);

/// Presence-subset test straight off the count vectors: every type
/// present in b is present in a. The semantic poi::fingerprint_covers
/// must reproduce through the packed words.
bool presence_covers(const FrequencyVector& a,
                     const FrequencyVector& b) noexcept;

}  // namespace scalar_ref

}  // namespace poiprivacy::poi
