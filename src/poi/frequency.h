// POI type frequency vectors — the aggregate that users release to LBS
// applications and that the attacks/defenses operate on.
//
// The free functions below are the frequency *kernel layer*: branch-light
// loops over contiguous int32 rows that the compiler auto-vectorizes, and
// that every pipeline (re-identification, fingerprinting, the DP defense,
// the serving layer) bottoms out in. They accept spans so the same code
// path serves owned FrequencyVectors and rows of a FreqArena. The original
// scalar loops are kept verbatim in scalar_ref:: as the reference oracle —
// tests/kernel_property_test.cpp pits every kernel against its oracle on
// seeded random inputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "poi/poi.h"

namespace poiprivacy::poi {

/// F(l, r): count of POIs of each type within radius r of location l.
/// Indexed by TypeId; length is the number of types in the city.
using FrequencyVector = std::vector<std::int32_t>;

/// a - b elementwise into `out` (all three sizes must match; `out` may
/// alias `a` or `b`).
void diff_into(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
               std::span<std::int32_t> out) noexcept;

/// a - b elementwise (sizes must match).
FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b);

/// Sum of |a_i - b_i|.
std::int64_t l1_distance(std::span<const std::int32_t> a,
                         std::span<const std::int32_t> b) noexcept;

/// True iff a_i >= b_i for every i. This is the covering test at the heart
/// of the region re-identification attack: if p lies within r of l then
/// F(p, 2r) dominates F(l, r) componentwise.
bool dominates(std::span<const std::int32_t> a,
               std::span<const std::int32_t> b) noexcept;

/// dominates() with one branch per 64-lane block instead of none: the
/// same result, but returns as soon as a block contains a violation.
/// Prefer it where most rows fail the test (the fingerprint scan, the
/// candidate-pruning loops); prefer the straight-line dominates() where
/// rows usually pass and the early branch is pure overhead.
bool dominates_early_exit(std::span<const std::int32_t> a,
                          std::span<const std::int32_t> b) noexcept;

/// Total number of POIs counted.
std::int64_t total(std::span<const std::int32_t> f) noexcept;

/// Type ids of the K largest entries (ties broken by smaller id), only
/// types with positive frequency. May return fewer than K.
std::vector<TypeId> top_k_types(std::span<const std::int32_t> f,
                                std::size_t k);

/// Jaccard index |A ∩ B| / |A ∪ B| of two type sets; 1.0 if both empty.
/// Duplicates in the inputs are ignored (set semantics).
double jaccard(std::span<const TypeId> a, std::span<const TypeId> b);

/// Top-K Jaccard utility between an original and a protected vector — the
/// paper's utility metric for the defense mechanisms (Section VI-A).
double top_k_jaccard(std::span<const std::int32_t> original,
                     std::span<const std::int32_t> protected_vec,
                     std::size_t k);

/// Reusable SoA count matrix: one contiguous int32 buffer, one row per
/// query. reset() reuses the previous allocation whenever the new batch
/// fits, so a long-lived (e.g. per-thread) arena makes batched aggregate
/// queries allocation-free in steady state. Rows are contiguous, so they
/// feed the span kernels above directly.
class FreqArena {
 public:
  /// Resizes to rows x row_len and zero-fills; keeps capacity.
  void reset(std::size_t rows, std::size_t row_len);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t row_len() const noexcept { return row_len_; }

  std::span<std::int32_t> row(std::size_t i) noexcept {
    return {data_.data() + i * row_len_, row_len_};
  }
  std::span<const std::int32_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * row_len_, row_len_};
  }

 private:
  std::vector<std::int32_t> data_;
  std::size_t rows_ = 0;
  std::size_t row_len_ = 0;
};

/// The process-wide per-thread scratch arena. One FreqArena per thread,
/// created on first use and reused for the thread's lifetime, so every
/// component that fills-and-consumes a batch of frequency rows inside one
/// call (the attacks' candidate scans, DpDefense::noised_mean, the release
/// service's Phase-D aggregation) shares a single steady-state buffer
/// instead of growing a private `static thread_local` arena each.
///
/// Lifetime contract: the pool workers of common::global_pool() live for
/// the whole process, so after warmup no scratch call allocates. The
/// arena's contents (and any row span taken from it) are valid only until
/// the next scratch_arena()-based fill on the same thread — treat it as a
/// register, not a cache: fill it, consume it, and never hold a row across
/// a call into another component that might also use the scratch arena.
FreqArena& scratch_arena() noexcept;

/// The pre-kernel scalar implementations, kept as the reference oracle
/// for the vectorized kernels (property tests compare the two on random
/// inputs). Not for production call sites.
namespace scalar_ref {

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b);
std::int64_t l1_distance(const FrequencyVector& a, const FrequencyVector& b);
bool dominates(const FrequencyVector& a, const FrequencyVector& b) noexcept;
std::int64_t total(const FrequencyVector& f) noexcept;
std::vector<TypeId> top_k_types(const FrequencyVector& f, std::size_t k);
double jaccard(std::span<const TypeId> a, std::span<const TypeId> b);
double top_k_jaccard(const FrequencyVector& original,
                     const FrequencyVector& protected_vec, std::size_t k);

}  // namespace scalar_ref

}  // namespace poiprivacy::poi
