#include "poi/frequency.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <set>

namespace poiprivacy::poi {

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b) {
  assert(a.size() == b.size());
  FrequencyVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::int64_t l1_distance(const FrequencyVector& a, const FrequencyVector& b) {
  assert(a.size() == b.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(static_cast<std::int64_t>(a[i]) - b[i]);
  }
  return acc;
}

bool dominates(const FrequencyVector& a, const FrequencyVector& b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

std::int64_t total(const FrequencyVector& f) noexcept {
  std::int64_t acc = 0;
  for (const std::int32_t n : f) acc += n;
  return acc;
}

std::vector<TypeId> top_k_types(const FrequencyVector& f, std::size_t k) {
  std::vector<TypeId> ids;
  ids.reserve(f.size());
  for (TypeId t = 0; t < f.size(); ++t) {
    if (f[t] > 0) ids.push_back(t);
  }
  const std::size_t keep = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(keep), ids.end(),
                    [&f](TypeId a, TypeId b) {
                      if (f[a] != f[b]) return f[a] > f[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

double jaccard(std::span<const TypeId> a, std::span<const TypeId> b) {
  const std::set<TypeId> sa(a.begin(), a.end());
  const std::set<TypeId> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (const TypeId t : sa) inter += sb.count(t);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double top_k_jaccard(const FrequencyVector& original,
                     const FrequencyVector& protected_vec, std::size_t k) {
  const auto a = top_k_types(original, k);
  const auto b = top_k_types(protected_vec, k);
  return jaccard(a, b);
}

}  // namespace poiprivacy::poi
