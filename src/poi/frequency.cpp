#include "poi/frequency.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <set>

namespace poiprivacy::poi {

// ---- Vectorized kernels ---------------------------------------------------
//
// Written as straight-line index loops over raw spans so GCC/Clang emit
// SIMD for them at -O2: comparisons fold into 0/1 lanes combined with |,
// and the wide accumulators use widening adds. Semantics are exactly
// those of scalar_ref:: below (the property suite enforces it).

void diff_into(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
               std::span<std::int32_t> out) noexcept {
  assert(a.size() == b.size() && a.size() == out.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b) {
  FrequencyVector out(a.size());
  diff_into(a, b, out);
  return out;
}

std::int64_t l1_distance(std::span<const std::int32_t> a,
                         std::span<const std::int32_t> b) noexcept {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  // |a - b| as max(a,b) - min(a,b) keeps the lanes 32-bit (min/max/sub
  // vectorize 4-8 wide; only the accumulate widens). The subtraction is
  // done in uint32: the true difference always fits, so the wraparound
  // arithmetic is exact even for INT32_MAX - INT32_MIN.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t hi = a[i] > b[i] ? a[i] : b[i];
    const std::int32_t lo = a[i] > b[i] ? b[i] : a[i];
    acc += static_cast<std::uint32_t>(hi) - static_cast<std::uint32_t>(lo);
  }
  return static_cast<std::int64_t>(acc);
}

bool dominates(std::span<const std::int32_t> a,
               std::span<const std::int32_t> b) noexcept {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  std::int32_t violated = 0;
  for (std::size_t i = 0; i < n; ++i) violated |= (a[i] < b[i]);
  return violated == 0;
}

bool dominates_early_exit(std::span<const std::int32_t> a,
                          std::span<const std::int32_t> b) noexcept {
  assert(a.size() == b.size());
  constexpr std::size_t kBlock = 64;
  const std::size_t n = a.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::int32_t violated = 0;
    for (std::size_t j = i; j < i + kBlock; ++j) violated |= (a[j] < b[j]);
    if (violated) return false;
  }
  std::int32_t violated = 0;
  for (; i < n; ++i) violated |= (a[i] < b[i]);
  return violated == 0;
}

std::int64_t total(std::span<const std::int32_t> f) noexcept {
  const std::size_t n = f.size();
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += f[i];
  return acc;
}

std::vector<TypeId> top_k_types(std::span<const std::int32_t> f,
                                std::size_t k) {
  std::size_t positive = 0;
  for (std::size_t i = 0; i < f.size(); ++i) positive += (f[i] > 0);
  std::vector<TypeId> ids;
  ids.reserve(positive);
  for (TypeId t = 0; t < f.size(); ++t) {
    if (f[t] > 0) ids.push_back(t);
  }
  const std::size_t keep = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(keep), ids.end(),
                    [&f](TypeId a, TypeId b) {
                      if (f[a] != f[b]) return f[a] > f[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

double jaccard(std::span<const TypeId> a, std::span<const TypeId> b) {
  // Sorted-merge set intersection: top-K id lists are tiny, so two sorts
  // of <= K elements beat the node-allocating std::set of the reference.
  std::vector<TypeId> sa(a.begin(), a.end());
  std::vector<TypeId> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (std::size_t i = 0, j = 0; i < sa.size() && j < sb.size();) {
    if (sa[i] < sb[j]) {
      ++i;
    } else if (sb[j] < sa[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double top_k_jaccard(std::span<const std::int32_t> original,
                     std::span<const std::int32_t> protected_vec,
                     std::size_t k) {
  const auto a = top_k_types(original, k);
  const auto b = top_k_types(protected_vec, k);
  return jaccard(a, b);
}

void FreqArena::reset(std::size_t rows, std::size_t row_len) {
  rows_ = rows;
  row_len_ = row_len;
  data_.assign(rows * row_len, 0);  // keeps capacity
}

FreqArena& scratch_arena() noexcept {
  static thread_local FreqArena arena;
  return arena;
}

// ---- Scalar reference oracle ----------------------------------------------
//
// The original element-at-a-time implementations, kept verbatim so the
// property tests can pit the kernels above against known-good semantics.

namespace scalar_ref {

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b) {
  assert(a.size() == b.size());
  FrequencyVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::int64_t l1_distance(const FrequencyVector& a, const FrequencyVector& b) {
  assert(a.size() == b.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(static_cast<std::int64_t>(a[i]) - b[i]);
  }
  return acc;
}

bool dominates(const FrequencyVector& a, const FrequencyVector& b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

std::int64_t total(const FrequencyVector& f) noexcept {
  std::int64_t acc = 0;
  for (const std::int32_t n : f) acc += n;
  return acc;
}

std::vector<TypeId> top_k_types(const FrequencyVector& f, std::size_t k) {
  std::vector<TypeId> ids;
  ids.reserve(f.size());
  for (TypeId t = 0; t < f.size(); ++t) {
    if (f[t] > 0) ids.push_back(t);
  }
  const std::size_t keep = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(keep), ids.end(),
                    [&f](TypeId a, TypeId b) {
                      if (f[a] != f[b]) return f[a] > f[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

double jaccard(std::span<const TypeId> a, std::span<const TypeId> b) {
  const std::set<TypeId> sa(a.begin(), a.end());
  const std::set<TypeId> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (const TypeId t : sa) inter += sb.count(t);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double top_k_jaccard(const FrequencyVector& original,
                     const FrequencyVector& protected_vec, std::size_t k) {
  const auto a = top_k_types(original, k);
  const auto b = top_k_types(protected_vec, k);
  return jaccard(a, b);
}

}  // namespace scalar_ref

}  // namespace poiprivacy::poi
