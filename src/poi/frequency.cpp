#include "poi/frequency.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <set>

#include "poi/kernel_ops.h"

namespace poiprivacy::poi {

// ---- Dispatched kernels ---------------------------------------------------
//
// The span shims live inline in frequency.h; only the allocating and
// composite helpers need a translation unit.

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b) {
  FrequencyVector out(a.size());
  diff_into(a, b, out);
  return out;
}

std::vector<TypeId> top_k_types(std::span<const std::int32_t> f,
                                std::size_t k) {
  // The survivor collection is the dispatched kernel (8 lanes fold into
  // one movemask on AVX2); the tiny partial sort below runs on whatever
  // it yields.
  std::vector<TypeId> ids(f.size());
  ids.resize(detail::active_kernel_ops().collect_positive(f.data(), f.size(),
                                                          ids.data()));
  const std::size_t keep = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(keep), ids.end(),
                    [&f](TypeId a, TypeId b) {
                      if (f[a] != f[b]) return f[a] > f[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

double jaccard(std::span<const TypeId> a, std::span<const TypeId> b) {
  // Sorted-merge set intersection: top-K id lists are tiny, so two sorts
  // of <= K elements beat the node-allocating std::set of the reference.
  std::vector<TypeId> sa(a.begin(), a.end());
  std::vector<TypeId> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (std::size_t i = 0, j = 0; i < sa.size() && j < sb.size();) {
    if (sa[i] < sb[j]) {
      ++i;
    } else if (sb[j] < sa[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double top_k_jaccard(std::span<const std::int32_t> original,
                     std::span<const std::int32_t> protected_vec,
                     std::size_t k) {
  const auto a = top_k_types(original, k);
  const auto b = top_k_types(protected_vec, k);
  return jaccard(a, b);
}

void FreqArena::reset(std::size_t rows, std::size_t row_len) {
  rows_ = rows;
  row_len_ = row_len;
  data_.assign(rows * row_len, 0);  // keeps capacity
  has_fingerprints_ = false;
}

void FreqArena::pack_fingerprints() {
  const std::size_t words = fingerprint_words(row_len_);
  fingerprints_.resize(rows_ * words);  // keeps capacity
  for (std::size_t i = 0; i < rows_; ++i) {
    pack_fingerprint(row(i), {fingerprints_.data() + i * words, words});
  }
  has_fingerprints_ = true;
}

FreqArena& scratch_arena() noexcept {
  static thread_local FreqArena arena;
  return arena;
}

// ---- Scalar reference oracle ----------------------------------------------
//
// The original element-at-a-time implementations, kept verbatim so the
// property tests can pit the kernels above against known-good semantics.

namespace scalar_ref {

FrequencyVector diff(const FrequencyVector& a, const FrequencyVector& b) {
  assert(a.size() == b.size());
  FrequencyVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::int64_t l1_distance(const FrequencyVector& a, const FrequencyVector& b) {
  assert(a.size() == b.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(static_cast<std::int64_t>(a[i]) - b[i]);
  }
  return acc;
}

bool dominates(const FrequencyVector& a, const FrequencyVector& b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

std::int64_t total(const FrequencyVector& f) noexcept {
  std::int64_t acc = 0;
  for (const std::int32_t n : f) acc += n;
  return acc;
}

std::vector<TypeId> top_k_types(const FrequencyVector& f, std::size_t k) {
  std::vector<TypeId> ids;
  ids.reserve(f.size());
  for (TypeId t = 0; t < f.size(); ++t) {
    if (f[t] > 0) ids.push_back(t);
  }
  const std::size_t keep = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(keep), ids.end(),
                    [&f](TypeId a, TypeId b) {
                      if (f[a] != f[b]) return f[a] > f[b];
                      return a < b;
                    });
  ids.resize(keep);
  return ids;
}

double jaccard(std::span<const TypeId> a, std::span<const TypeId> b) {
  const std::set<TypeId> sa(a.begin(), a.end());
  const std::set<TypeId> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (const TypeId t : sa) inter += sb.count(t);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double top_k_jaccard(const FrequencyVector& original,
                     const FrequencyVector& protected_vec, std::size_t k) {
  const auto a = top_k_types(original, k);
  const auto b = top_k_types(protected_vec, k);
  return jaccard(a, b);
}

std::vector<FingerprintWord> pack_fingerprint(const FrequencyVector& f) {
  std::vector<FingerprintWord> out(fingerprint_words(f.size()), 0);
  for (std::size_t t = 0; t < f.size(); ++t) {
    if (f[t] > 0) out[t / 64] |= FingerprintWord{1} << (t % 64);
  }
  return out;
}

bool presence_covers(const FrequencyVector& a,
                     const FrequencyVector& b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t t = 0; t < b.size(); ++t) {
    if (b[t] > 0 && a[t] <= 0) return false;
  }
  return true;
}

}  // namespace scalar_ref

}  // namespace poiprivacy::poi
