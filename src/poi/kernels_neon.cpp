// The NEON kernel tier: explicit 4-lane int32 intrinsics for the hot
// frequency kernels on ARM builds (NEON is baseline on AArch64, so no
// runtime feature check is needed — the tier is simply absent from x86
// binaries). The lane-free helpers (collect_positive, pack_fingerprint,
// fingerprint_covers) keep the portable word loops: NEON has no cheap
// movemask, and those paths are bit-scans over a handful of words.
// Bit-identical to the scalar tier; the per-tier oracle sweep in
// tests/kernel_property_test is the gate.
#include "poi/kernel_ops.h"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

namespace poiprivacy::poi::detail {

namespace {

bool dominates(const std::int32_t* a, const std::int32_t* b,
               std::size_t n) noexcept {
  uint32x4_t violated = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    violated = vorrq_u32(violated, vcltq_s32(vld1q_s32(a + i),
                                             vld1q_s32(b + i)));
  }
  std::int32_t tail = 0;
  for (; i < n; ++i) tail |= (a[i] < b[i]);
  return tail == 0 && vmaxvq_u32(violated) == 0;
}

bool dominates_early_exit(const std::int32_t* a, const std::int32_t* b,
                          std::size_t n) noexcept {
  // One branch per 64-lane block (16 vectors), like the scalar tier.
  constexpr std::size_t kBlock = 64;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    uint32x4_t violated = vdupq_n_u32(0);
    for (std::size_t j = i; j < i + kBlock; j += 4) {
      violated = vorrq_u32(violated, vcltq_s32(vld1q_s32(a + j),
                                               vld1q_s32(b + j)));
    }
    if (vmaxvq_u32(violated) != 0) return false;
  }
  uint32x4_t violated = vdupq_n_u32(0);
  for (; i + 4 <= n; i += 4) {
    violated = vorrq_u32(violated, vcltq_s32(vld1q_s32(a + i),
                                             vld1q_s32(b + i)));
  }
  std::int32_t tail = 0;
  for (; i < n; ++i) tail |= (a[i] < b[i]);
  return tail == 0 && vmaxvq_u32(violated) == 0;
}

std::int64_t l1_distance(const std::int32_t* a, const std::int32_t* b,
                         std::size_t n) noexcept {
  // |a - b| = max(a,b) - min(a,b) in uint32 (exact for the full int32
  // range), pairwise-widened into two uint64 accumulator lanes.
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t va = vld1q_s32(a + i);
    const int32x4_t vb = vld1q_s32(b + i);
    const uint32x4_t diff = vreinterpretq_u32_s32(
        vsubq_s32(vmaxq_s32(va, vb), vminq_s32(va, vb)));
    acc = vpadalq_u32(acc, diff);
  }
  std::uint64_t sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    const std::int32_t hi = a[i] > b[i] ? a[i] : b[i];
    const std::int32_t lo = a[i] > b[i] ? b[i] : a[i];
    sum += static_cast<std::uint32_t>(hi) - static_cast<std::uint32_t>(lo);
  }
  return static_cast<std::int64_t>(sum);
}

void diff_into(const std::int32_t* a, const std::int32_t* b, std::int32_t* out,
               std::size_t n) noexcept {
  std::size_t i = 0;
  // Loads precede the store within each iteration, so out == a / out == b
  // exact aliasing stays well-defined, as in the scalar tier.
  for (; i + 4 <= n; i += 4) {
    vst1q_s32(out + i, vsubq_s32(vld1q_s32(a + i), vld1q_s32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

std::int64_t total(const std::int32_t* f, std::size_t n) noexcept {
  int64x2_t acc = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = vpadalq_s32(acc, vld1q_s32(f + i));
  }
  std::int64_t sum = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) sum += f[i];
  return sum;
}

std::size_t collect_positive(const std::int32_t* f, std::size_t n,
                             std::uint32_t* out) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += (f[i] > 0);
  }
  return count;
}

void pack_fingerprint(const std::int32_t* f, std::size_t n,
                      std::uint64_t* out) noexcept {
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t end = base + 64 < n ? base + 64 : n;
    std::uint64_t word = 0;
    for (std::size_t i = base; i < end; ++i) {
      word |= static_cast<std::uint64_t>(f[i] > 0) << (i - base);
    }
    out[base / 64] = word;
  }
}

bool fingerprint_covers(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words) noexcept {
  std::uint64_t uncovered = 0;
  for (std::size_t w = 0; w < words; ++w) uncovered |= b[w] & ~a[w];
  return uncovered == 0;
}

}  // namespace

const KernelOps& neon_kernel_ops() noexcept {
  static constexpr KernelOps ops{
      dominates,        dominates_early_exit, l1_distance,
      diff_into,        total,                collect_positive,
      pack_fingerprint, fingerprint_covers,
  };
  return ops;
}

}  // namespace poiprivacy::poi::detail

#endif  // ARM
