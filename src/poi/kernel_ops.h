// Internal dispatch table of the frequency kernels — one row of function
// pointers per KernelTier. Raw-pointer signatures keep the table tiers
// trivially ABI-compatible across translation units compiled with
// different target options (kernels_avx2.cpp builds with -mavx2; only
// the dispatcher decides whether its functions may run).
//
// Semantics contract (enforced per tier by tests/kernel_property_test
// against poi::scalar_ref): every implementation of a slot computes the
// same bits as the scalar reference for every input, including n == 0,
// odd tails, and saturating INT32_MAX counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace poiprivacy::poi::detail {

struct KernelOps {
  /// a_i >= b_i for all i.
  bool (*dominates)(const std::int32_t* a, const std::int32_t* b,
                    std::size_t n) noexcept;
  /// Same result; may return at the first violating 64-lane block.
  bool (*dominates_early_exit)(const std::int32_t* a, const std::int32_t* b,
                               std::size_t n) noexcept;
  /// Sum of |a_i - b_i| (exact for the full int32 range).
  std::int64_t (*l1_distance)(const std::int32_t* a, const std::int32_t* b,
                              std::size_t n) noexcept;
  /// out_i = a_i - b_i; out may alias a or b exactly.
  void (*diff_into)(const std::int32_t* a, const std::int32_t* b,
                    std::int32_t* out, std::size_t n) noexcept;
  /// Sum of all entries.
  std::int64_t (*total)(const std::int32_t* f, std::size_t n) noexcept;
  /// Writes the indices i with f_i > 0 to out (ascending; out must have
  /// room for n entries); returns how many were written. Feeds the
  /// top-k / Jaccard pipeline, whose merge runs over these survivors.
  std::size_t (*collect_positive)(const std::int32_t* f, std::size_t n,
                                  std::uint32_t* out) noexcept;
  /// Bit-packs presence: bit t of out[t / 64] set iff f_t > 0; tail bits
  /// of the last word are zero. out must hold (n + 63) / 64 words.
  void (*pack_fingerprint)(const std::int32_t* f, std::size_t n,
                           std::uint64_t* out) noexcept;
  /// b's presence bits are a subset of a's: (~a & b) == 0 word-wise.
  bool (*fingerprint_covers)(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t words) noexcept;
};

/// The portable tier (always compiled).
const KernelOps& scalar_kernel_ops() noexcept;

#if defined(__x86_64__) || defined(_M_X64)
#define POIPRIVACY_HAVE_AVX2_TIER 1
/// The AVX2 tier (x86-64 builds; callable only when cpuid says so).
const KernelOps& avx2_kernel_ops() noexcept;
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
#define POIPRIVACY_HAVE_NEON_TIER 1
/// The NEON tier (ARM builds; NEON is baseline on AArch64).
const KernelOps& neon_kernel_ops() noexcept;
#endif

/// The live dispatch pointer (null until first use; kernel_dispatch.cpp
/// owns resolution and set_kernel_tier publication).
extern std::atomic<const KernelOps*> g_active_kernel_ops;

/// Slow path: runs tier resolution once, then returns the live table.
const KernelOps& resolve_active_kernel_ops() noexcept;

/// The table the public kernels currently dispatch through. Inline so a
/// kernel call from a hot loop costs one relaxed-ish load and one
/// indirect call — the resolved-pointer check is the only branch.
inline const KernelOps& active_kernel_ops() noexcept {
  const KernelOps* ops = g_active_kernel_ops.load(std::memory_order_acquire);
  if (ops != nullptr) [[likely]] {
    return *ops;
  }
  return resolve_active_kernel_ops();
}

}  // namespace poiprivacy::poi::detail
