// The AVX2 kernel tier: explicit 8-lane int32 intrinsics for the hot
// frequency kernels. This translation unit is compiled with -mavx2 on
// x86-64 builds only; the dispatcher guarantees these functions run only
// on machines whose cpuid reports AVX2 (nothing here executes before
// that check). Every function computes bit-identical results to the
// scalar tier — the per-tier oracle sweep in tests/kernel_property_test
// is the gate.
#include "poi/kernel_ops.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace poiprivacy::poi::detail {

namespace {

inline __m256i loadu(const std::int32_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

bool dominates(const std::int32_t* a, const std::int32_t* b,
               std::size_t n) noexcept {
  // 4x unrolled with two independent OR chains: the straight-line scan
  // is load-throughput bound, and a single accumulator serializes the
  // ORs while the unroll amortizes the loop bookkeeping across 32 lanes.
  __m256i v0 = _mm256_setzero_si256();
  __m256i v1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i c0 = _mm256_cmpgt_epi32(loadu(b + i), loadu(a + i));
    const __m256i c1 = _mm256_cmpgt_epi32(loadu(b + i + 8), loadu(a + i + 8));
    const __m256i c2 = _mm256_cmpgt_epi32(loadu(b + i + 16),
                                          loadu(a + i + 16));
    const __m256i c3 = _mm256_cmpgt_epi32(loadu(b + i + 24),
                                          loadu(a + i + 24));
    v0 = _mm256_or_si256(v0, _mm256_or_si256(c0, c1));
    v1 = _mm256_or_si256(v1, _mm256_or_si256(c2, c3));
  }
  for (; i + 8 <= n; i += 8) {
    v0 = _mm256_or_si256(v0, _mm256_cmpgt_epi32(loadu(b + i), loadu(a + i)));
  }
  std::int32_t tail = 0;
  for (; i < n; ++i) tail |= (a[i] < b[i]);
  const __m256i violated = _mm256_or_si256(v0, v1);
  return tail == 0 && _mm256_testz_si256(violated, violated) != 0;
}

bool dominates_early_exit(const std::int32_t* a, const std::int32_t* b,
                          std::size_t n) noexcept {
  // One branch per 64-lane block (8 vectors), like the scalar tier.
  constexpr std::size_t kBlock = 64;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    __m256i violated = _mm256_setzero_si256();
    for (std::size_t j = i; j < i + kBlock; j += 8) {
      violated = _mm256_or_si256(
          violated, _mm256_cmpgt_epi32(loadu(b + j), loadu(a + j)));
    }
    if (_mm256_testz_si256(violated, violated) == 0) return false;
  }
  __m256i violated = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    violated = _mm256_or_si256(violated,
                               _mm256_cmpgt_epi32(loadu(b + i), loadu(a + i)));
  }
  std::int32_t tail = 0;
  for (; i < n; ++i) tail |= (a[i] < b[i]);
  return tail == 0 && _mm256_testz_si256(violated, violated) != 0;
}

std::int64_t l1_distance(const std::int32_t* a, const std::int32_t* b,
                         std::size_t n) noexcept {
  // |a - b| = max(a,b) - min(a,b); the uint32 wraparound subtraction is
  // exact for the full int32 range, and each diff widens into one of
  // four uint64 accumulator lanes (a diff is < 2^32, so the lanes cannot
  // overflow for any realistic n). Two accumulators: the lo/hi widening
  // adds would otherwise form a two-deep latency chain per vector.
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc_lo = zero;
  __m256i acc_hi = zero;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = loadu(a + i);
    const __m256i vb = loadu(b + i);
    const __m256i diff =
        _mm256_sub_epi32(_mm256_max_epi32(va, vb), _mm256_min_epi32(va, vb));
    acc_lo = _mm256_add_epi64(acc_lo, _mm256_unpacklo_epi32(diff, zero));
    acc_hi = _mm256_add_epi64(acc_hi, _mm256_unpackhi_epi32(diff, zero));
  }
  const __m256i acc = _mm256_add_epi64(acc_lo, acc_hi);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    const std::int32_t hi = a[i] > b[i] ? a[i] : b[i];
    const std::int32_t lo = a[i] > b[i] ? b[i] : a[i];
    sum += static_cast<std::uint32_t>(hi) - static_cast<std::uint32_t>(lo);
  }
  return static_cast<std::int64_t>(sum);
}

void diff_into(const std::int32_t* a, const std::int32_t* b, std::int32_t* out,
               std::size_t n) noexcept {
  std::size_t i = 0;
  // Loads precede the stores within each iteration, so out == a / out == b
  // exact aliasing stays well-defined, as in the scalar tier. (Partial
  // overlaps are excluded by the span contract either way.) 4x unrolled:
  // one sub + store per 8 lanes leaves the loop bookkeeping as the
  // bottleneck otherwise.
  for (; i + 32 <= n; i += 32) {
    const __m256i d0 = _mm256_sub_epi32(loadu(a + i), loadu(b + i));
    const __m256i d1 = _mm256_sub_epi32(loadu(a + i + 8), loadu(b + i + 8));
    const __m256i d2 = _mm256_sub_epi32(loadu(a + i + 16), loadu(b + i + 16));
    const __m256i d3 = _mm256_sub_epi32(loadu(a + i + 24), loadu(b + i + 24));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8), d1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 16), d2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 24), d3);
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi32(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

std::int64_t total(const std::int32_t* f, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepi32_epi64(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(f + i))));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += f[i];
  return sum;
}

/// 8-bit positivity mask of one vector: bit j set iff f[i + j] > 0.
inline unsigned positive_mask8(const std::int32_t* f) noexcept {
  const __m256i pos = _mm256_cmpgt_epi32(loadu(f), _mm256_setzero_si256());
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(pos)));
}

std::size_t collect_positive(const std::int32_t* f, std::size_t n,
                             std::uint32_t* out) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (unsigned m = positive_mask8(f + i); m != 0; m &= m - 1) {
      out[count++] =
          static_cast<std::uint32_t>(i) + static_cast<unsigned>(
                                              __builtin_ctz(m));
    }
  }
  for (; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += (f[i] > 0);
  }
  return count;
}

void pack_fingerprint(const std::int32_t* f, std::size_t n,
                      std::uint64_t* out) noexcept {
  std::size_t i = 0;
  std::uint64_t word = 0;
  for (; i + 8 <= n; i += 8) {
    word |= static_cast<std::uint64_t>(positive_mask8(f + i)) << (i % 64);
    if ((i + 8) % 64 == 0) {
      out[i / 64] = word;
      word = 0;
    }
  }
  for (; i < n; ++i) {
    word |= static_cast<std::uint64_t>(f[i] > 0) << (i % 64);
  }
  // Full words were flushed inside the loop; only a partial final word
  // (n not a multiple of 64) is still pending.
  if (n % 64 != 0) out[n / 64] = word;
}

bool fingerprint_covers(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words) noexcept {
  // Already word-parallel — 64 types per op on a handful of words — so
  // the scalar word loop is the right shape on every tier.
  std::uint64_t uncovered = 0;
  for (std::size_t w = 0; w < words; ++w) uncovered |= b[w] & ~a[w];
  return uncovered == 0;
}

}  // namespace

const KernelOps& avx2_kernel_ops() noexcept {
  static constexpr KernelOps ops{
      dominates,        dominates_early_exit, l1_distance,
      diff_into,        total,                collect_positive,
      pack_fingerprint, fingerprint_covers,
  };
  return ops;
}

}  // namespace poiprivacy::poi::detail

#endif  // x86-64
