#include "poi/categories.h"

#include <cassert>
#include <string>

namespace poiprivacy::poi {

Category category_of(std::string_view type_name) {
  // Strip any "city/" prefix.
  if (const auto slash = type_name.rfind('/'); slash != std::string_view::npos) {
    type_name = type_name.substr(slash + 1);
  }
  for (std::size_t c = 0; c < kCategoryNames.size(); ++c) {
    const std::string_view name = kCategoryNames[c];
    if (type_name.size() > name.size() &&
        type_name.substr(0, name.size()) == name &&
        (type_name[name.size()] == '_' || type_name[name.size()] == '-')) {
      return static_cast<Category>(c);
    }
  }
  // Deterministic fallback: FNV-1a hash of the name.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : type_name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return static_cast<Category>(h % kNumCategories);
}

std::vector<Category> categorize(const PoiTypeRegistry& types) {
  std::vector<Category> out;
  out.reserve(types.size());
  for (TypeId t = 0; t < types.size(); ++t) {
    out.push_back(category_of(types.name(t)));
  }
  return out;
}

FrequencyVector collapse(const FrequencyVector& type_freq,
                         const std::vector<Category>& mapping) {
  assert(type_freq.size() == mapping.size());
  FrequencyVector out(kNumCategories, 0);
  for (std::size_t t = 0; t < type_freq.size(); ++t) {
    out[static_cast<std::size_t>(mapping[t])] += type_freq[t];
  }
  return out;
}

PoiDatabase category_view(const PoiDatabase& db) {
  const std::vector<Category> mapping = categorize(db.types());
  PoiTypeRegistry registry;
  for (const std::string_view name : kCategoryNames) {
    registry.intern(std::string(name));
  }
  std::vector<Poi> pois = db.pois();
  for (Poi& p : pois) {
    p.type = static_cast<TypeId>(mapping[p.type]);
  }
  return PoiDatabase(db.city_name() + "/categories", std::move(pois),
                     std::move(registry), db.bounds());
}

}  // namespace poiprivacy::poi
