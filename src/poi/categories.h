// Coarse POI category taxonomy over the fine-grained types.
//
// Real geo-information services organize POI types ("italian_restaurant",
// "noodle_shop") under coarse categories ("food"). Category-level
// aggregation is interesting for privacy: rare *types* drive location
// uniqueness, while *categories* are common everywhere — releasing the
// category histogram instead of the type histogram is a natural
// coarsening defense evaluated in bench/ext_category_defense.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "poi/database.h"

namespace poiprivacy::poi {

/// The canonical coarse categories; kCategoryNames is index-aligned.
enum class Category : std::uint8_t {
  kFood,
  kShopping,
  kHealth,
  kEducation,
  kTransport,
  kLeisure,
  kLodging,
  kServices,
  kCulture,
  kNature,
};

inline constexpr std::array<std::string_view, 10> kCategoryNames{
    "food",     "shopping",  "health",   "education", "transport",
    "leisure",  "lodging",   "services", "culture",   "nature",
};

constexpr std::size_t kNumCategories = kCategoryNames.size();

/// Category of a type name: the segment between the last '/' that is
/// followed by "<category>_..." — e.g. "beijing/food_12" -> kFood.
/// Names without a recognized category hash deterministically onto one,
/// so every type always has a category.
Category category_of(std::string_view type_name);

/// Category per TypeId for a whole registry.
std::vector<Category> categorize(const PoiTypeRegistry& types);

/// Collapses a type frequency vector to a category histogram (length
/// kNumCategories).
FrequencyVector collapse(const FrequencyVector& type_freq,
                         const std::vector<Category>& mapping);

/// A category-level view of a database: same POIs and positions, but the
/// type of every POI is its category. Useful for running the attacks
/// against category-level releases.
PoiDatabase category_view(const PoiDatabase& db);

}  // namespace poiprivacy::poi
