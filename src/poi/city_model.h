// Synthetic city generator — the stand-in for the paper's OpenStreetMap
// extracts of Beijing and New York City (see DESIGN.md, Substitutions).
//
// The generator reproduces the two properties that drive location
// uniqueness:
//   1. a heavy-tailed (Zipf-like) type frequency marginal, calibrated so
//      the number of "rare" types (citywide count <= 10) matches the
//      paper's sanitization counts (Beijing 90, NYC 138);
//   2. spatially clustered POI placement (commercial/residential clusters
//      over the city bounding box) with a uniform background.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "poi/database.h"

namespace poiprivacy::poi {

struct CityPreset {
  std::string name;
  double width_km = 30.0;
  double height_km = 30.0;
  std::size_t num_pois = 10000;
  std::size_t num_types = 150;
  /// Calibration target: number of types with citywide count <= 10.
  std::size_t target_rare_types = 80;
  /// Shape of the rare tail: the number of rare types with count k is
  /// proportional to k^(-rare_tail_exponent). 1.0 gives the many-
  /// singletons OSM shape; smaller values flatten the tail (fewer
  /// singletons), which matters in dense cities where singletons would
  /// otherwise make every large query range unique.
  double rare_tail_exponent = 1.0;
  std::size_t num_clusters = 60;
  /// Fraction of POIs placed uniformly instead of in a cluster.
  double background_fraction = 0.1;
  double min_cluster_sigma_km = 0.3;
  double max_cluster_sigma_km = 1.2;
  /// Same-type POIs are co-located around ceil(count / capacity) type
  /// centres — real cities put their embassies (say) in one district, and
  /// this spatial correlation is what limits the re-identification attack
  /// at large query ranges (two same-type POIs within r of the user make
  /// the candidate set ambiguous).
  double type_center_capacity = 5.0;
  /// Spread of a type's POIs around their type centre.
  double type_sigma_km = 0.5;
};

/// Beijing stand-in: 10,249 POIs / 177 types / 90 rare types, 30x30 km.
CityPreset beijing_preset();

/// New York City stand-in: 30,056 POIs / 272 types / 138 rare, 28x22 km.
CityPreset nyc_preset();

/// Scaled-down city for unit tests (hundreds of POIs).
CityPreset test_preset();

/// Zipf-like per-type counts: count_i ~ round(C / i^s) with s chosen by
/// bisection so that `target_rare` types end up with count <= rare_cutoff,
/// then adjusted so counts sum exactly to `total`. Every type gets >= 1.
std::vector<std::int32_t> calibrated_type_counts(std::size_t num_types,
                                                 std::size_t total,
                                                 std::size_t target_rare,
                                                 std::int32_t rare_cutoff = 10,
                                                 double tail_exponent = 1.0);

/// Cluster layout of a generated city (exposed for trajectory generation:
/// taxis and check-ins gravitate to the same hot spots as the POIs).
struct CityLayout {
  std::vector<geo::Point> cluster_centers;
  std::vector<double> cluster_weights;
  std::vector<double> cluster_sigmas_km;
};

/// A generated city: the POI database plus its layout.
struct City {
  PoiDatabase db;
  CityLayout layout;
};

/// Deterministically generates a city from the preset and seed.
City generate_city(const CityPreset& preset, std::uint64_t seed);

}  // namespace poiprivacy::poi
