#include "poi/city_model.h"

#include "poi/categories.h"

#include "poi/categories.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace poiprivacy::poi {

CityPreset beijing_preset() {
  CityPreset p;
  p.name = "beijing";
  p.width_km = 40.0;
  p.height_km = 40.0;
  p.num_pois = 10249;
  p.num_types = 177;
  p.target_rare_types = 90;
  p.num_clusters = 60;
  p.type_sigma_km = 1.1;
  return p;
}

CityPreset nyc_preset() {
  CityPreset p;
  p.name = "nyc";
  p.width_km = 48.0;
  p.height_km = 36.0;
  p.num_pois = 30056;
  p.num_types = 272;
  p.target_rare_types = 138;
  p.num_clusters = 80;
  p.rare_tail_exponent = 0.6;
  return p;
}

CityPreset test_preset() {
  CityPreset p;
  p.name = "testville";
  p.width_km = 8.0;
  p.height_km = 8.0;
  p.num_pois = 800;
  p.num_types = 40;
  p.target_rare_types = 18;
  p.num_clusters = 10;
  return p;
}

namespace {

/// Raw (real-valued) Zipf counts for exponent s, scaled to sum to total.
std::vector<double> zipf_profile(std::size_t num_types, std::size_t total,
                                 double s) {
  std::vector<double> raw(num_types);
  double norm = 0.0;
  for (std::size_t i = 0; i < num_types; ++i) {
    raw[i] = std::pow(static_cast<double>(i + 1), -s);
    norm += raw[i];
  }
  const double scale = static_cast<double>(total) / norm;
  for (double& v : raw) v *= scale;
  return raw;
}

std::size_t rare_count(const std::vector<double>& profile,
                       std::int32_t cutoff) {
  std::size_t n = 0;
  for (const double v : profile) {
    if (std::llround(v) <= cutoff) ++n;
  }
  return n;
}

}  // namespace

std::vector<std::int32_t> calibrated_type_counts(std::size_t num_types,
                                                 std::size_t total,
                                                 std::size_t target_rare,
                                                 std::int32_t rare_cutoff,
                                                 double tail_exponent) {
  assert(num_types > 0 && total >= num_types && target_rare <= num_types);

  // Rare tail: exactly `target_rare` types with counts in [1, rare_cutoff],
  // with the number of types at count k proportional to k^(-e) — e = 1
  // matches the many-singletons shape of real OSM extracts.
  std::vector<std::int32_t> counts;
  counts.reserve(num_types);
  double harmonic = 0.0;
  for (std::int32_t k = 1; k <= rare_cutoff; ++k) {
    harmonic += std::pow(k, -tail_exponent);
  }
  std::vector<std::size_t> types_at(static_cast<std::size_t>(rare_cutoff) + 1,
                                    0);
  std::size_t assigned = 0;
  for (std::int32_t k = rare_cutoff; k >= 2; --k) {
    const auto n = static_cast<std::size_t>(std::llround(
        static_cast<double>(target_rare) * std::pow(k, -tail_exponent) /
        harmonic));
    types_at[static_cast<std::size_t>(k)] = n;
    assigned += n;
  }
  types_at[1] = target_rare > assigned ? target_rare - assigned : 0;

  std::int64_t tail_sum = 0;
  std::vector<std::int32_t> tail;
  for (std::int32_t k = 1; k <= rare_cutoff; ++k) {
    for (std::size_t n = 0; n < types_at[static_cast<std::size_t>(k)]; ++n) {
      tail.push_back(k);
      tail_sum += k;
    }
  }

  // Head: the remaining types share the remaining POIs on a Zipf profile,
  // floored just above the rare cutoff so the rare set is exactly the tail.
  const std::size_t head_types = num_types - tail.size();
  const auto head_total = static_cast<std::int64_t>(total) - tail_sum;
  assert(head_types > 0 && head_total > 0);
  const auto profile = zipf_profile(head_types,
                                    static_cast<std::size_t>(head_total), 1.0);
  std::int64_t head_sum = 0;
  for (std::size_t i = 0; i < head_types; ++i) {
    counts.push_back(std::max<std::int32_t>(
        rare_cutoff + 1, static_cast<std::int32_t>(std::llround(profile[i]))));
    head_sum += counts.back();
  }
  // Absorb the rounding error into the most frequent types so the rare
  // tail (and thus the calibration) is untouched.
  std::int64_t delta = head_total - head_sum;
  std::size_t i = 0;
  while (delta != 0) {
    const auto step = static_cast<std::int32_t>(delta > 0 ? 1 : -1);
    if (counts[i] + step > rare_cutoff) {
      counts[i] += step;
      delta -= step;
    }
    i = (i + 1) % std::max<std::size_t>(std::size_t{1}, head_types / 4);
  }

  counts.insert(counts.end(), tail.begin(), tail.end());
  return counts;
}

City generate_city(const CityPreset& preset, std::uint64_t seed) {
  common::Rng rng(seed);
  const geo::BBox bounds{0.0, 0.0, preset.width_km, preset.height_km};

  // Cluster layout.
  CityLayout layout;
  for (std::size_t c = 0; c < preset.num_clusters; ++c) {
    layout.cluster_centers.push_back(
        {rng.uniform(bounds.min_x + 1.0, bounds.max_x - 1.0),
         rng.uniform(bounds.min_y + 1.0, bounds.max_y - 1.0)});
    layout.cluster_weights.push_back(rng.uniform(0.5, 1.5));
    layout.cluster_sigmas_km.push_back(
        rng.uniform(preset.min_cluster_sigma_km, preset.max_cluster_sigma_km));
  }

  // Type marginals calibrated to the paper's rare-type counts.
  const auto counts = calibrated_type_counts(
      preset.num_types, preset.num_pois, preset.target_rare_types, 10,
      preset.rare_tail_exponent);

  // Placement: each type owns ceil(count / capacity) "type centres" drawn
  // from the citywide cluster mixture, and its POIs scatter around those
  // centres. This gives both the citywide clustering (hot districts) and
  // the within-type spatial correlation of real cities. A small uniform
  // background keeps no area strictly empty.
  const auto draw_cluster_point = [&]() -> geo::Point {
    const std::size_t c = rng.categorical(layout.cluster_weights);
    const double sigma = layout.cluster_sigmas_km[c];
    return bounds.clamp(
        {layout.cluster_centers[c].x + rng.normal(0.0, sigma),
         layout.cluster_centers[c].y + rng.normal(0.0, sigma)});
  };

  // Type names carry a coarse category prefix (see poi/categories.h), so
  // category-level analyses work out of the box on generated cities.
  PoiTypeRegistry registry;
  for (std::size_t t = 0; t < preset.num_types; ++t) {
    registry.intern(preset.name + "/" +
                    std::string(kCategoryNames[t % kNumCategories]) + "_" +
                    std::to_string(t));
  }

  std::vector<Poi> pois;
  pois.reserve(preset.num_pois);
  PoiId next_id = 0;
  for (TypeId t = 0; t < counts.size(); ++t) {
    const auto num_centers = static_cast<std::size_t>(std::ceil(
        static_cast<double>(counts[t]) / preset.type_center_capacity));
    std::vector<geo::Point> centers(std::max<std::size_t>(1, num_centers));
    for (geo::Point& c : centers) c = draw_cluster_point();
    for (std::int32_t k = 0; k < counts[t]; ++k) {
      geo::Point pos;
      if (rng.bernoulli(preset.background_fraction)) {
        pos = {rng.uniform(bounds.min_x, bounds.max_x),
               rng.uniform(bounds.min_y, bounds.max_y)};
      } else {
        const geo::Point& center = centers[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(centers.size()) - 1))];
        pos = bounds.clamp(
            {center.x + rng.normal(0.0, preset.type_sigma_km),
             center.y + rng.normal(0.0, preset.type_sigma_km)});
      }
      pois.push_back({next_id++, t, pos});
    }
  }
  assert(pois.size() == preset.num_pois);

  return City{PoiDatabase(preset.name, std::move(pois), std::move(registry),
                          bounds),
              std::move(layout)};
}

}  // namespace poiprivacy::poi
