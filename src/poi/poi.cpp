#include "poi/poi.h"

#include <algorithm>

namespace poiprivacy::poi {

TypeId PoiTypeRegistry::intern(const std::string& name) {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it != names_.end()) {
    return static_cast<TypeId>(it - names_.begin());
  }
  names_.push_back(name);
  return static_cast<TypeId>(names_.size() - 1);
}

}  // namespace poiprivacy::poi
