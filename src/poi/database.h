// PoiDatabase — the geo-information service provider (GSP) of the paper's
// architecture. It owns the city's POI set and exposes exactly the two
// operations the paper assumes:
//
//   Query(l, r) -> set of POIs within r of l
//   Freq(l, r)  -> POI type frequency vector within r of l
//
// plus the citywide statistics (overall type frequency, infrequency ranks)
// that both the attacks and the defenses use as public prior knowledge.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "poi/frequency.h"
#include "poi/poi.h"
#include "poi/tile_aggregates.h"
#include "spatial/grid_index.h"

namespace poiprivacy::poi {

/// Counters of the anchor-vector cache (monotone over the database's
/// lifetime; hits + misses == total anchor_freq lookups).
struct AnchorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t lookups() const noexcept { return hits + misses; }
  friend bool operator==(const AnchorCacheStats&,
                         const AnchorCacheStats&) = default;
};

/// A cached anchor aggregate: the frequency vector plus its bit-packed
/// presence fingerprint, packed once at insertion so every dominance
/// scan that probes this anchor gets the word-parallel pre-check for
/// free (a candidate whose fingerprint fails to cover the released one
/// cannot dominate it).
struct AnchorAggregate {
  FrequencyVector freq;
  std::vector<FingerprintWord> fp;
};

class PoiDatabase {
 public:
  /// Takes ownership of the POI set. POI ids must equal their index.
  PoiDatabase(std::string city_name, std::vector<Poi> pois,
              PoiTypeRegistry types, geo::BBox bounds);
  ~PoiDatabase();
  PoiDatabase(PoiDatabase&&) noexcept;
  PoiDatabase& operator=(PoiDatabase&&) noexcept;

  /// Query(l, r): ids of POIs within `radius` km of `center`.
  std::vector<PoiId> query(geo::Point center, double radius) const;

  /// Freq(l, r): the type frequency vector within `radius` km of `center`.
  /// Convenience wrapper over freq_into() that allocates the result.
  FrequencyVector freq(geo::Point center, double radius) const;

  /// Freq(l, r) into a caller-owned vector: `out` is resized/zeroed and
  /// filled in place, so a reused buffer makes repeated aggregate queries
  /// allocation-free in steady state. This is the single implementation
  /// every frequency query bottoms out in.
  void freq_into(geo::Point center, double radius, FrequencyVector& out) const;

  /// Freq for a batch of centers at one radius, into an arena row per
  /// center (row i corresponds to centers[i]). The arena's buffer is
  /// reused across calls, so a long-lived per-thread arena makes whole
  /// scan loops allocation-free.
  void freq_batch(std::span<const geo::Point> centers, double radius,
                  FreqArena& arena) const;

  /// Per-type tile count upper bounds for candidate pruning (built lazily
  /// on first use, then cached for the database's lifetime; thread-safe).
  /// See poi/tile_aggregates.h for the envelope invariant.
  const TileAggregates& tile_aggregates() const;

  /// Freq(poi(id).pos, radius) plus its presence fingerprint, through a
  /// sharded, read-mostly cache. The attacks' dominance pruning probes
  /// the same anchor POIs at the same 2r radius for every evaluated
  /// location, so this is the hot path of the whole evaluation.
  /// Thread-safe; entries are never evicted, so the returned reference
  /// stays valid for the database's lifetime. A miss is counted only by
  /// the thread that actually inserts the entry, so misses == distinct
  /// (id, radius) keys regardless of thread count.
  const AnchorAggregate& anchor_aggregate(PoiId id, double radius) const;

  /// The frequency vector alone (anchor_aggregate's freq member).
  const FrequencyVector& anchor_freq(PoiId id, double radius) const {
    return anchor_aggregate(id, radius).freq;
  }

  /// Snapshot of the anchor cache counters.
  AnchorCacheStats anchor_cache_stats() const noexcept;

  /// Citywide type frequency F (computed once at construction).
  const FrequencyVector& city_freq() const noexcept { return city_freq_; }

  /// Infrequency rank per type: the citywide-rarest type has rank 1.
  /// Ties are broken by type id so ranks are a permutation of 1..M.
  const std::vector<int>& infrequency_rank() const noexcept { return rank_; }

  /// Types whose citywide frequency is <= threshold (the sanitization
  /// target set T_S of Section III-A).
  std::vector<TypeId> types_with_city_freq_at_most(std::int32_t threshold) const;

  /// All POIs of the given type.
  const std::vector<PoiId>& pois_of_type(TypeId type) const {
    return by_type_.at(type);
  }

  const Poi& poi(PoiId id) const { return pois_.at(id); }
  const std::vector<Poi>& pois() const noexcept { return pois_; }
  const PoiTypeRegistry& types() const noexcept { return types_; }
  std::size_t num_types() const noexcept { return types_.size(); }
  const geo::BBox& bounds() const noexcept { return bounds_; }
  const std::string& city_name() const noexcept { return city_name_; }

 private:
  struct AnchorCache;
  struct TileHolder;

  std::string city_name_;
  std::vector<Poi> pois_;
  PoiTypeRegistry types_;
  geo::BBox bounds_;
  spatial::GridIndex index_;
  FrequencyVector city_freq_;
  std::vector<int> rank_;
  std::vector<std::vector<PoiId>> by_type_;
  // Heap-allocated so the database stays movable despite the shard
  // mutexes; the pointee is mutated from const methods (it is a cache).
  std::unique_ptr<AnchorCache> anchor_cache_;
  // Same pattern for the lazily built tile aggregates (std::once_flag is
  // not movable either).
  std::unique_ptr<TileHolder> tile_holder_;
};

}  // namespace poiprivacy::poi
