#include "poi/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "spatial/kdtree.h"

namespace poiprivacy::poi {

TypeCountSummary summarize_type_counts(const PoiDatabase& db) {
  TypeCountSummary out;
  const FrequencyVector& counts = db.city_freq();
  if (counts.empty()) return out;
  out.min_count = *std::min_element(counts.begin(), counts.end());
  out.max_count = *std::max_element(counts.begin(), counts.end());
  const auto total = static_cast<double>(poi::total(counts));
  out.mean_count = total / static_cast<double>(counts.size());
  for (const std::int32_t c : counts) {
    out.singleton_types += c == 1;
    out.rare_types += c >= 1 && c <= 10;
  }
  FrequencyVector sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t decile = std::max<std::size_t>(1, sorted.size() / 10);
  std::int64_t mass = 0;
  for (std::size_t i = 0; i < decile; ++i) mass += sorted[i];
  out.top_decile_mass = static_cast<double>(mass) / total;
  return out;
}

namespace {

double mean_nn_of_points(const std::vector<geo::Point>& points) {
  if (points.size() < 2) return 0.0;
  const spatial::KdTree tree(points);
  double acc = 0.0;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    const auto two = tree.k_nearest(points[i], 2);  // self + neighbour
    acc += geo::distance(points[i], points[two[1]]);
  }
  return acc / static_cast<double>(points.size());
}

}  // namespace

double type_nn_distance(const PoiDatabase& db, TypeId type) {
  std::vector<geo::Point> points;
  for (const PoiId id : db.pois_of_type(type)) {
    points.push_back(db.poi(id).pos);
  }
  return mean_nn_of_points(points);
}

ClusteringSummary summarize_clustering(const PoiDatabase& db) {
  ClusteringSummary out;
  std::vector<geo::Point> all;
  all.reserve(db.pois().size());
  for (const Poi& p : db.pois()) all.push_back(p.pos);
  out.mean_nn_km = mean_nn_of_points(all);
  const double density =
      static_cast<double>(all.size()) / db.bounds().area();
  const double expected = density > 0.0 ? 0.5 / std::sqrt(density) : 0.0;
  out.clark_evans_ratio = expected > 0.0 ? out.mean_nn_km / expected : 0.0;

  double acc = 0.0;
  std::size_t eligible = 0;
  for (TypeId t = 0; t < db.num_types(); ++t) {
    if (db.pois_of_type(t).size() >= 2) {
      acc += type_nn_distance(db, t);
      ++eligible;
    }
  }
  out.mean_within_type_nn_km =
      eligible ? acc / static_cast<double>(eligible) : 0.0;
  return out;
}

DensityGrid density_grid(const PoiDatabase& db, double cell_km) {
  const geo::BBox& bounds = db.bounds();
  DensityGrid grid;
  grid.cell_km = cell_km;
  grid.nx = std::max(1, static_cast<int>(std::ceil(bounds.width() /
                                                   cell_km)));
  grid.ny = std::max(1, static_cast<int>(std::ceil(bounds.height() /
                                                   cell_km)));
  grid.counts.assign(static_cast<std::size_t>(grid.nx) * grid.ny, 0);
  for (const Poi& p : db.pois()) {
    const int ix = std::clamp(
        static_cast<int>((p.pos.x - bounds.min_x) / cell_km), 0,
        grid.nx - 1);
    const int iy = std::clamp(
        static_cast<int>((p.pos.y - bounds.min_y) / cell_km), 0,
        grid.ny - 1);
    ++grid.counts[static_cast<std::size_t>(iy) * grid.nx + ix];
  }
  return grid;
}

std::int32_t DensityGrid::max_count() const {
  return counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
}

std::string render_density(const DensityGrid& grid) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  const std::int32_t top = std::max(1, grid.max_count());
  std::string out;
  out.reserve(static_cast<std::size_t>(grid.ny) * (grid.nx + 1));
  for (int iy = grid.ny - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < grid.nx; ++ix) {
      const double frac =
          static_cast<double>(grid.at(ix, iy)) / static_cast<double>(top);
      const auto step = static_cast<std::size_t>(
          std::min(9.0, std::floor(frac * 10.0)));
      out += kRamp[step];
    }
    out += '\n';
  }
  return out;
}

}  // namespace poiprivacy::poi
