#include "poi/geojson.h"

#include <cmath>
#include <iomanip>
#include <ostream>

namespace poiprivacy::poi {

namespace {

void write_lonlat(std::ostream& out, const geo::LocalProjection& projection,
                  geo::Point p) {
  const geo::LatLon geo_pt = projection.to_geo(p);
  out << '[' << geo_pt.lon_deg << ',' << geo_pt.lat_deg << ']';
}

}  // namespace

void write_geojson(const PoiDatabase& db, geo::LatLon reference,
                   std::ostream& out) {
  const geo::LocalProjection projection(reference);
  out << std::setprecision(10);
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const Poi& p : db.pois()) {
    if (!first) out << ',';
    first = false;
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
           "\"coordinates\":";
    write_lonlat(out, projection, p.pos);
    out << "},\"properties\":{\"id\":" << p.id << ",\"type\":\""
        << db.types().name(p.type) << "\"}}";
  }
  out << "]}";
}

void write_geojson_circles(std::span<const geo::Circle> circles,
                           geo::LatLon reference, std::ostream& out,
                           int segments) {
  const geo::LocalProjection projection(reference);
  out << std::setprecision(10);
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t c = 0; c < circles.size(); ++c) {
    if (c > 0) out << ',';
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
           "\"coordinates\":[[";
    for (int s = 0; s <= segments; ++s) {
      if (s > 0) out << ',';
      const double theta =
          2.0 * M_PI * static_cast<double>(s % segments) / segments;
      write_lonlat(out, projection,
                   {circles[c].center.x + circles[c].radius * std::cos(theta),
                    circles[c].center.y +
                        circles[c].radius * std::sin(theta)});
    }
    out << "]]},\"properties\":{\"radius_km\":" << circles[c].radius
        << "}}";
  }
  out << "]}";
}

}  // namespace poiprivacy::poi
