// Core POI data model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"

namespace poiprivacy::poi {

using TypeId = std::uint32_t;
using PoiId = std::uint32_t;

/// A point of interest: a position plus a categorical type (OSM-style
/// amenity/shop/... category).
struct Poi {
  PoiId id = 0;
  TypeId type = 0;
  geo::Point pos;
};

/// Registry of POI type names. Type ids are dense indices [0, size).
class PoiTypeRegistry {
 public:
  PoiTypeRegistry() = default;
  explicit PoiTypeRegistry(std::vector<std::string> names)
      : names_(std::move(names)) {}

  /// Returns the id for `name`, interning it if new.
  TypeId intern(const std::string& name);

  const std::string& name(TypeId id) const { return names_.at(id); }
  std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

}  // namespace poiprivacy::poi
