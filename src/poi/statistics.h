// City statistics: the spatial-structure diagnostics used to validate the
// synthetic generator against the properties the paper's attacks depend
// on (heavy-tailed type counts, citywide clustering, within-type spatial
// correlation). See examples/city_stats.
#pragma once

#include <vector>

#include "poi/database.h"

namespace poiprivacy::poi {

struct TypeCountSummary {
  std::int32_t min_count = 0;
  std::int32_t max_count = 0;
  double mean_count = 0.0;
  std::size_t singleton_types = 0;       ///< citywide count == 1
  std::size_t rare_types = 0;            ///< citywide count <= 10
  /// Top-heaviness: fraction of all POIs held by the 10% most common types.
  double top_decile_mass = 0.0;
};

TypeCountSummary summarize_type_counts(const PoiDatabase& db);

/// Mean nearest-neighbour distance among POIs of one type (km); 0 for
/// types with fewer than 2 POIs. Low values = spatially co-located type.
double type_nn_distance(const PoiDatabase& db, TypeId type);

struct ClusteringSummary {
  /// Mean nearest-neighbour distance over all POIs (km).
  double mean_nn_km = 0.0;
  /// Expected NN distance for a uniform pattern of the same intensity:
  /// 0.5 / sqrt(density). ratio = mean / expected; << 1 means clustered
  /// (Clark-Evans index).
  double clark_evans_ratio = 0.0;
  /// Mean of type_nn_distance over types with >= 2 POIs (km).
  double mean_within_type_nn_km = 0.0;
};

ClusteringSummary summarize_clustering(const PoiDatabase& db);

/// POI counts on a regular grid (row-major, bottom row first) — a
/// density map for visual inspection.
struct DensityGrid {
  int nx = 0;
  int ny = 0;
  double cell_km = 0.0;
  std::vector<std::int32_t> counts;

  std::int32_t at(int ix, int iy) const {
    return counts[static_cast<std::size_t>(iy) * nx + ix];
  }
  std::int32_t max_count() const;
};

DensityGrid density_grid(const PoiDatabase& db, double cell_km = 1.0);

/// ASCII rendering of the density map with a 10-step ramp.
std::string render_density(const DensityGrid& grid);

}  // namespace poiprivacy::poi
