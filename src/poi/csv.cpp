#include "poi/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace poiprivacy::poi {

void save_csv(const PoiDatabase& db, std::ostream& out) {
  out << std::setprecision(12);
  const geo::BBox& b = db.bounds();
  out << "# city=" << db.city_name() << " min_x=" << b.min_x
      << " min_y=" << b.min_y << " max_x=" << b.max_x << " max_y=" << b.max_y
      << "\n";
  out << "id,type,x_km,y_km\n";
  for (const Poi& p : db.pois()) {
    out << p.id << ',' << db.types().name(p.type) << ',' << p.pos.x << ','
        << p.pos.y << "\n";
  }
}

void save_csv(const PoiDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_csv(db, out);
}

namespace {

double parse_kv(const std::string& header, const std::string& key) {
  const std::string token = key + "=";
  const auto pos = header.find(token);
  if (pos == std::string::npos) {
    throw std::runtime_error("csv header missing " + key);
  }
  return std::stod(header.substr(pos + token.size()));
}

std::string parse_city(const std::string& header) {
  const std::string token = "city=";
  const auto pos = header.find(token);
  if (pos == std::string::npos) throw std::runtime_error("csv missing city=");
  const auto start = pos + token.size();
  const auto end = header.find(' ', start);
  return header.substr(start, end - start);
}

}  // namespace

PoiDatabase load_csv(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) || header.empty() || header[0] != '#') {
    throw std::runtime_error("csv: missing '#' header line");
  }
  const std::string city = parse_city(header);
  const geo::BBox bounds{parse_kv(header, "min_x"), parse_kv(header, "min_y"),
                         parse_kv(header, "max_x"), parse_kv(header, "max_y")};
  std::string columns;
  if (!std::getline(in, columns) || columns != "id,type,x_km,y_km") {
    throw std::runtime_error("csv: unexpected column header: " + columns);
  }

  PoiTypeRegistry registry;
  std::vector<Poi> pois;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string id_str;
    std::string type_name;
    std::string x_str;
    std::string y_str;
    if (!std::getline(row, id_str, ',') || !std::getline(row, type_name, ',') ||
        !std::getline(row, x_str, ',') || !std::getline(row, y_str)) {
      throw std::runtime_error("csv: malformed row: " + line);
    }
    Poi p;
    p.id = static_cast<PoiId>(std::stoul(id_str));
    p.type = registry.intern(type_name);
    p.pos = {std::stod(x_str), std::stod(y_str)};
    if (p.id != pois.size()) {
      throw std::runtime_error("csv: ids must be dense and in order");
    }
    pois.push_back(p);
  }
  return PoiDatabase(city, std::move(pois), std::move(registry), bounds);
}

PoiDatabase load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_csv(in);
}

}  // namespace poiprivacy::poi
