// The portable kernel tier: straight-line index loops over raw pointers
// that GCC/Clang auto-vectorize at the baseline ISA (comparisons fold
// into 0/1 lanes combined with |, the wide accumulators use widening
// adds). These are the PR-4 span kernels verbatim, now one row of the
// dispatch table; poi::scalar_ref in frequency.cpp stays the separate,
// deliberately naive oracle.
#include "poi/kernel_ops.h"

namespace poiprivacy::poi::detail {

namespace {

bool dominates(const std::int32_t* a, const std::int32_t* b,
               std::size_t n) noexcept {
  std::int32_t violated = 0;
  for (std::size_t i = 0; i < n; ++i) violated |= (a[i] < b[i]);
  return violated == 0;
}

bool dominates_early_exit(const std::int32_t* a, const std::int32_t* b,
                          std::size_t n) noexcept {
  constexpr std::size_t kBlock = 64;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::int32_t violated = 0;
    for (std::size_t j = i; j < i + kBlock; ++j) violated |= (a[j] < b[j]);
    if (violated) return false;
  }
  std::int32_t violated = 0;
  for (; i < n; ++i) violated |= (a[i] < b[i]);
  return violated == 0;
}

std::int64_t l1_distance(const std::int32_t* a, const std::int32_t* b,
                         std::size_t n) noexcept {
  // |a - b| as max(a,b) - min(a,b) keeps the lanes 32-bit (min/max/sub
  // vectorize 4-8 wide; only the accumulate widens). The subtraction is
  // done in uint32: the true difference always fits, so the wraparound
  // arithmetic is exact even for INT32_MAX - INT32_MIN.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t hi = a[i] > b[i] ? a[i] : b[i];
    const std::int32_t lo = a[i] > b[i] ? b[i] : a[i];
    acc += static_cast<std::uint32_t>(hi) - static_cast<std::uint32_t>(lo);
  }
  return static_cast<std::int64_t>(acc);
}

void diff_into(const std::int32_t* a, const std::int32_t* b, std::int32_t* out,
               std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

std::int64_t total(const std::int32_t* f, std::size_t n) noexcept {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += f[i];
  return acc;
}

std::size_t collect_positive(const std::int32_t* f, std::size_t n,
                             std::uint32_t* out) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += (f[i] > 0);
  }
  return count;
}

void pack_fingerprint(const std::int32_t* f, std::size_t n,
                      std::uint64_t* out) noexcept {
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t end = base + 64 < n ? base + 64 : n;
    std::uint64_t word = 0;
    for (std::size_t i = base; i < end; ++i) {
      word |= static_cast<std::uint64_t>(f[i] > 0) << (i - base);
    }
    out[base / 64] = word;
  }
}

bool fingerprint_covers(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words) noexcept {
  std::uint64_t uncovered = 0;
  for (std::size_t w = 0; w < words; ++w) uncovered |= b[w] & ~a[w];
  return uncovered == 0;
}

}  // namespace

const KernelOps& scalar_kernel_ops() noexcept {
  static constexpr KernelOps ops{
      dominates,        dominates_early_exit, l1_distance,
      diff_into,        total,                collect_positive,
      pack_fingerprint, fingerprint_covers,
  };
  return ops;
}

}  // namespace poiprivacy::poi::detail
