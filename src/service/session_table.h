// Sharded per-user session/budget table — million-user admission state.
//
// The serving layer used to keep one defense::ReleaseSession per user in
// a std::map: a per-request log-time lookup, a PrivacyAccountant map copy
// per admission predicate, and no safe concurrent access. This table is
// the scale-out replacement: user ids hash onto N independent shards
// (like the 16-way ReleaseCache), each shard is a fixed-capacity
// open-addressed slot array, and a slot is three words —
//
//   { atomic user id, dp::AtomicBudgetMeter, atomic last-touch epoch }
//
// so the hot path (charge / remaining / spent of an existing
// session) is entirely lock-free: a linear probe over atomic
// user ids plus one CAS on the packed fixed-point budget word
// (dp/budget.h). A shard's mutex is taken only off the hot path — first
// contact of a new user (once per user per lifetime) and the TTL sweep.
//
// Eviction and renewal: the table has a logical epoch, advanced by its
// owner (the service ticks it from batch boundaries; the TCP front-end
// from its accept loop). Every admission touches the session's
// last-touch epoch; sweep() reclaims sessions idle for at least
// `ttl_epochs` — the evicted user's budget RENEWS on next contact
// (ttl_epochs = 0 disables eviction and restores the unbounded per-user
// guarantee). Reclaimed slots become tombstones so concurrent lock-free
// probes stay correct; tombstones are recycled by later inserts under
// the shard mutex. Orthogonally, renew_windows() implements dp::Ledger's
// kWindowedRenewal policy fleet-wide: epochs group into fixed-length
// accounting windows (renew_window_epochs each), and when the epoch
// clock crosses a window boundary every RESIDENT session's meter resets
// to a fresh budget — the w-event-style guarantee where the ceiling
// bounds any single window of releases, not the unbounded stream. The
// owner calls it right after advance_epoch, quiescing first (meter
// resets are not linearizable with concurrent charges, exactly like
// TTL sweeps).
//
// Capacity is a hard bound (fail-closed): when a shard has no free slot
// for a first-contact user the admission is refused as "table full"
// rather than silently untracked — an untracked user would be an
// unaccounted privacy leak. Memory is therefore bounded by
// capacity * sizeof(Slot) regardless of how many distinct user ids a
// million-user day produces; TTL sweeps recycle the slots.
//
// Determinism: driven single-threaded (the batch path's Phase A), every
// operation — including sweep order, which walks shards and slots in
// index order — is a pure function of the call sequence, so released
// vectors stay bit-identical at --threads 1/2/8. Driven concurrently
// (the socket front-end), admission is linearizable per user: the CAS
// ledger guarantees a user's charged budget can never exceed the
// ceiling under any interleaving.
//
// Known benign race, documented rather than locked away: a request that
// races the sweep of its own *already-TTL-expired* session may charge a
// meter in the instant it is being reclaimed; the charge is then
// discarded with the slot. The window exists only for a session that is
// simultaneously expired and active — inherently ambiguous — and only
// when sweep() runs concurrently with traffic.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "dp/budget.h"
#include "obs/metrics.h"

namespace poiprivacy::service {

using UserId = std::uint64_t;

struct SessionTableConfig {
  /// Maximum resident sessions, spread over `shards`.
  std::size_t capacity = 1 << 16;
  std::size_t shards = 64;
  /// Sessions idle for this many epochs are reclaimed by sweep();
  /// 0 disables eviction (sessions live for the table's lifetime).
  std::uint64_t ttl_epochs = 0;
  /// Epochs per budget-accounting window: renew_windows() resets every
  /// resident meter when the epoch clock crosses a window boundary
  /// (dp::Ledger kWindowedRenewal, fleet-wide); 0 disables renewal and
  /// the ceilings bound the session's lifetime.
  std::uint64_t renew_window_epochs = 0;
  /// Per-user budget ceilings (quantized via dp::FixedBudget).
  double epsilon_ceiling = 8.0;
  double delta_ceiling = 0.5;
};

enum class ChargeOutcome : std::uint8_t {
  kCharged = 0,    ///< admitted; the cost is committed to the ledger
  kWouldExceed,    ///< refused: the user's remaining budget is too small
  kTableFull,      ///< refused: no slot for a first-contact user
};

/// Aggregated counters. `sessions`/`sessions_created` are exact when read
/// quiescently; under concurrent traffic they are monotone snapshots.
struct SessionTableStats {
  std::uint64_t sessions = 0;          ///< resident (created - evicted)
  std::uint64_t sessions_created = 0;  ///< slots ever claimed
  std::uint64_t evictions_ttl = 0;
  std::uint64_t full_refusals = 0;
  std::uint64_t renewals = 0;  ///< meters reset at window boundaries

  friend bool operator==(const SessionTableStats&,
                         const SessionTableStats&) = default;
};

class SessionTable {
 public:
  /// Throws std::invalid_argument on zero capacity.
  explicit SessionTable(SessionTableConfig config);

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// The admission primitive: atomically charges `cost` against `user`'s
  /// ledger unless it would pass a ceiling. Creates the session on first
  /// contact (the only path that takes a lock). Touches the session's
  /// last-active epoch whatever the outcome.
  ChargeOutcome try_charge(UserId user, dp::FixedBudget cost);

  /// Composed (basic) budget charged so far; {0, 0} when untracked.
  dp::PrivacyParams spent(UserId user) const;
  /// Componentwise budget left before the ceiling; the full ceiling when
  /// untracked.
  dp::PrivacyParams remaining(UserId user) const;
  bool contains(UserId user) const;

  /// Epoch clock, owner-driven. advance_epoch does NOT sweep — pairing
  /// the tick with the reclaim pass is the owner's call ordering.
  void advance_epoch(std::uint64_t ticks = 1) noexcept;
  std::uint64_t epoch() const noexcept;

  /// Reclaims every session idle for >= ttl_epochs (no-op when TTL is 0),
  /// walking shards and slots in index order. Returns sessions evicted.
  std::size_t sweep();

  /// Windowed budget renewal: when the epoch clock has crossed into a
  /// new accounting window (epoch / renew_window_epochs), resets every
  /// resident session's meter to a fresh budget (no-op when
  /// renew_window_epochs is 0 or the window is unchanged). Owner-driven
  /// and quiesced, like sweep(). Returns sessions renewed.
  std::size_t renew_windows();

  SessionTableStats stats() const;
  std::size_t size() const;  ///< resident sessions

  const SessionTableConfig& config() const noexcept { return config_; }
  dp::FixedBudget ceiling() const noexcept { return ceiling_; }

  // Topology accessors for the reference-oracle property tests.
  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t shard_of(UserId user) const noexcept;
  std::size_t shard_capacity() const noexcept { return shard_capacity_; }

  /// User ids at the very top of the id space are reserved as slot
  /// sentinels and always refused with kTableFull.
  static constexpr UserId kMaxUserId = ~UserId{0} - 2;

 private:
  struct Slot {
    std::atomic<std::uint64_t> uid;
    dp::AtomicBudgetMeter meter;
    std::atomic<std::uint64_t> touch{0};

    Slot() noexcept;
  };
  struct Shard {
    mutable std::mutex mu;  ///< insert + sweep only; never on the hot path
    std::vector<Slot> slots;
    std::atomic<std::size_t> resident{0};
    std::uint64_t created = 0;        ///< under mu
    std::uint64_t evictions_ttl = 0;  ///< under mu
    std::uint64_t renewals = 0;       ///< under mu
    std::atomic<std::uint64_t> full_refusals{0};
  };

  const Slot* find(const Shard& shard, UserId user) const noexcept;
  Slot* find_or_claim_locked(Shard& shard, UserId user);

  SessionTableConfig config_;
  dp::FixedBudget ceiling_;
  std::size_t shard_capacity_;
  std::size_t slot_mask_;  ///< per-shard slot count - 1 (power of two)
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> epoch_{0};
  std::uint64_t last_renew_window_ = 0;  ///< owner-driven, like sweep()
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* renewals_counter_ = nullptr;
  obs::Counter* full_refusals_counter_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
};

}  // namespace poiprivacy::service
