#include "service/session_table.h"

#include <bit>
#include <stdexcept>

namespace poiprivacy::service {

namespace {

constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};
constexpr std::uint64_t kTombstoneSlot = ~std::uint64_t{0} - 1;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SessionTable::Slot::Slot() noexcept : uid(kEmptySlot) {}

SessionTable::SessionTable(SessionTableConfig config)
    : config_(config),
      ceiling_(dp::FixedBudget::ceiling_of(config.epsilon_ceiling,
                                           config.delta_ceiling)) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("session table: capacity must be positive");
  }
  if (config_.shards == 0) config_.shards = 1;
  const std::size_t n = std::min(config_.shards, config_.capacity);
  shard_capacity_ = (config_.capacity + n - 1) / n;
  // Slot arrays hold 2x the shard capacity (rounded up to a power of
  // two), so linear probing stays short even at the fail-closed limit.
  const std::size_t slots = std::bit_ceil(shard_capacity_ * 2);
  slot_mask_ = slots - 1;
  shards_ = std::vector<Shard>(n);
  for (Shard& shard : shards_) {
    shard.slots = std::vector<Slot>(slots);
  }
  obs::Registry& registry = obs::global_registry();
  evictions_counter_ = &registry.counter("session_table.evictions_ttl");
  renewals_counter_ = &registry.counter("session_table.renewals");
  full_refusals_counter_ = &registry.counter("session_table.full_refusals");
  sessions_gauge_ = &registry.gauge("session_table.sessions");
}

std::size_t SessionTable::shard_of(UserId user) const noexcept {
  return splitmix64(user) % shards_.size();
}

/// Lock-free probe: stop at the first empty slot (tombstones keep the
/// probe going — a live session may sit beyond a reclaimed slot).
const SessionTable::Slot* SessionTable::find(const Shard& shard,
                                             UserId user) const noexcept {
  const std::size_t start = splitmix64(splitmix64(user)) & slot_mask_;
  for (std::size_t i = 0; i <= slot_mask_; ++i) {
    const Slot& slot = shard.slots[(start + i) & slot_mask_];
    const std::uint64_t uid = slot.uid.load(std::memory_order_acquire);
    if (uid == user) return &slot;
    if (uid == kEmptySlot) return nullptr;
  }
  return nullptr;
}

/// Under the shard mutex: re-probe (a racing inserter may have won), then
/// claim the first reclaimable slot on the probe path. The meter and the
/// touch epoch are initialized BEFORE the uid is published with release
/// order, so a lock-free reader that matches the uid sees a fresh slot.
SessionTable::Slot* SessionTable::find_or_claim_locked(Shard& shard,
                                                       UserId user) {
  const std::size_t start = splitmix64(splitmix64(user)) & slot_mask_;
  Slot* claimable = nullptr;
  for (std::size_t i = 0; i <= slot_mask_; ++i) {
    Slot& slot = shard.slots[(start + i) & slot_mask_];
    const std::uint64_t uid = slot.uid.load(std::memory_order_acquire);
    if (uid == user) return &slot;
    if (uid == kTombstoneSlot) {
      if (claimable == nullptr) claimable = &slot;
      continue;
    }
    if (uid == kEmptySlot) {
      if (claimable == nullptr) claimable = &slot;
      break;
    }
  }
  if (claimable == nullptr ||
      shard.resident.load(std::memory_order_relaxed) >= shard_capacity_) {
    return nullptr;
  }
  claimable->meter.reset();
  claimable->touch.store(epoch_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  claimable->uid.store(user, std::memory_order_release);
  shard.resident.fetch_add(1, std::memory_order_relaxed);
  ++shard.created;
  sessions_gauge_->add(1);
  return claimable;
}

ChargeOutcome SessionTable::try_charge(UserId user, dp::FixedBudget cost) {
  if (user > kMaxUserId) return ChargeOutcome::kTableFull;
  Shard& shard = shards_[shard_of(user)];
  const Slot* found = find(shard, user);
  Slot* slot = const_cast<Slot*>(found);
  if (slot == nullptr) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    slot = find_or_claim_locked(shard, user);
    if (slot == nullptr) {
      shard.full_refusals.fetch_add(1, std::memory_order_relaxed);
      full_refusals_counter_->add(1);
      return ChargeOutcome::kTableFull;
    }
  }
  slot->touch.store(epoch_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return slot->meter.try_charge(cost, ceiling_) ? ChargeOutcome::kCharged
                                                : ChargeOutcome::kWouldExceed;
}

dp::PrivacyParams SessionTable::spent(UserId user) const {
  if (user > kMaxUserId) return {0.0, 0.0};
  const Shard& shard = shards_[shard_of(user)];
  if (const Slot* slot = find(shard, user)) {
    return slot->meter.spent().params();
  }
  return {0.0, 0.0};
}

dp::PrivacyParams SessionTable::remaining(UserId user) const {
  if (user <= kMaxUserId) {
    const Shard& shard = shards_[shard_of(user)];
    if (const Slot* slot = find(shard, user)) {
      return slot->meter.remaining(ceiling_).params();
    }
  }
  return ceiling_.params();
}

bool SessionTable::contains(UserId user) const {
  if (user > kMaxUserId) return false;
  return find(shards_[shard_of(user)], user) != nullptr;
}

void SessionTable::advance_epoch(std::uint64_t ticks) noexcept {
  epoch_.fetch_add(ticks, std::memory_order_relaxed);
}

std::uint64_t SessionTable::epoch() const noexcept {
  return epoch_.load(std::memory_order_relaxed);
}

std::size_t SessionTable::sweep() {
  if (config_.ttl_epochs == 0) return 0;
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (Slot& slot : shard.slots) {
      const std::uint64_t uid = slot.uid.load(std::memory_order_acquire);
      if (uid >= kTombstoneSlot) continue;
      const std::uint64_t touch = slot.touch.load(std::memory_order_relaxed);
      if (touch + config_.ttl_epochs > now) continue;
      // Tombstone first so lock-free probes stop matching, then drop the
      // budget with the slot (renewal-on-next-contact semantics).
      slot.uid.store(kTombstoneSlot, std::memory_order_release);
      slot.meter.reset();
      shard.resident.fetch_sub(1, std::memory_order_relaxed);
      ++shard.evictions_ttl;
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_counter_->add(evicted);
    sessions_gauge_->add(-static_cast<std::int64_t>(evicted));
  }
  return evicted;
}

std::size_t SessionTable::renew_windows() {
  if (config_.renew_window_epochs == 0) return 0;
  const std::uint64_t window =
      epoch_.load(std::memory_order_relaxed) / config_.renew_window_epochs;
  if (window <= last_renew_window_) return 0;
  last_renew_window_ = window;
  std::size_t renewed = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (Slot& slot : shard.slots) {
      if (slot.uid.load(std::memory_order_acquire) >= kTombstoneSlot) continue;
      slot.meter.reset();
      ++shard.renewals;
      ++renewed;
    }
  }
  if (renewed > 0) renewals_counter_->add(renewed);
  return renewed;
}

SessionTableStats SessionTable::stats() const {
  SessionTableStats out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    out.sessions += shard.resident.load(std::memory_order_relaxed);
    out.sessions_created += shard.created;
    out.evictions_ttl += shard.evictions_ttl;
    out.full_refusals += shard.full_refusals.load(std::memory_order_relaxed);
    out.renewals += shard.renewals;
  }
  return out;
}

std::size_t SessionTable::size() const {
  std::size_t resident = 0;
  for (const Shard& shard : shards_) {
    resident += shard.resident.load(std::memory_order_relaxed);
  }
  return resident;
}

}  // namespace poiprivacy::service
