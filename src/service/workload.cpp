#include "service/workload.h"

#include <algorithm>

#include "traj/generators.h"

namespace poiprivacy::service {

std::vector<TimedRequest> generate_workload(const poi::City& city,
                                            const WorkloadConfig& config) {
  const common::Rng base(config.seed);
  std::vector<double> radii = config.radii;
  if (radii.empty()) radii.push_back(1.0);
  std::vector<TimedRequest> trace;
  trace.reserve(config.num_users * config.requests_per_user);

  traj::TaxiConfig movement;
  movement.num_taxis = 1;
  movement.points_per_taxi = config.requests_per_user;
  movement.min_sample_gap = config.min_gap;
  movement.max_sample_gap = config.max_gap;
  movement.min_speed_kmh = config.min_speed_kmh;
  movement.max_speed_kmh = config.max_speed_kmh;

  for (std::size_t user = 0; user < config.num_users; ++user) {
    // The whole day of user u is a function of (seed, u) only, so traces
    // are stable under changes to num_users.
    common::Rng rng = base.substream(user);
    const std::vector<traj::Trajectory> day =
        traj::generate_taxi_trajectories(city, movement, rng);
    for (const traj::TrackPoint& fix : day.front().points) {
      TimedRequest entry;
      entry.time = fix.time;
      entry.request.user_id = user;
      entry.request.location = fix.pos;
      entry.request.radius = radii[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(radii.size()) - 1))];
      entry.request.policy = static_cast<PolicyId>(
          config.policy_weights.size() <= 1
              ? 0
              : rng.categorical(config.policy_weights));
      trace.push_back(std::move(entry));
    }
  }

  // Service arrival order: by time, ties broken by user id; stable_sort
  // keeps each user's own sequence (already chronological) intact.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TimedRequest& a, const TimedRequest& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.request.user_id < b.request.user_id;
                   });
  return trace;
}

std::vector<ReleaseRequest> requests_of(
    const std::vector<TimedRequest>& trace) {
  std::vector<ReleaseRequest> out;
  out.reserve(trace.size());
  for (const TimedRequest& entry : trace) out.push_back(entry.request);
  return out;
}

}  // namespace poiprivacy::service
