#include "service/release_service.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "dp/discrete.h"
#include "dp/mechanisms.h"
#include "obs/metrics.h"

namespace poiprivacy::service {

namespace {

/// Fixed chunk sizes (never derived from the thread count, per the
/// determinism conventions of DESIGN.md 4d).
constexpr std::size_t kCloakChunk = 8;
constexpr std::size_t kComputeChunk = 1;

constexpr std::size_t kNotMissing = static_cast<std::size_t>(-1);

struct KeyHash {
  std::size_t operator()(const ReleaseCacheKey& key) const noexcept {
    return static_cast<std::size_t>(ReleaseCache::hash(key));
  }
};

/// Registry mirrors of the deterministic ServiceStats counters plus the
/// per-phase wall-clock of the 6-phase batch pipeline. Observation only:
/// nothing here feeds back into admission, caching, or released vectors
/// (tests/obs_determinism_test.cpp), and POIPRIVACY_NO_METRICS compiles
/// every call into an empty stub.
struct ServiceMetrics {
  obs::Counter& requests;
  obs::Counter& granted;
  obs::Counter& degraded;
  obs::Counter& budget_exhausted;
  obs::Counter& invalid;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& batches;
  obs::Histogram& batch_seconds;
  obs::Histogram& admission_seconds;
  obs::Histogram& cloak_seconds;
  obs::Histogram& probe_seconds;
  obs::Histogram& compute_seconds;
  obs::Histogram& insert_seconds;
  obs::Histogram& noise_seconds;

  static ServiceMetrics& get() {
    obs::Registry& reg = obs::global_registry();
    static ServiceMetrics* metrics = new ServiceMetrics{
        reg.counter("service.requests"),
        reg.counter("service.granted"),
        reg.counter("service.degraded"),
        reg.counter("service.budget_exhausted"),
        reg.counter("service.invalid"),
        reg.counter("service.cache_hits"),
        reg.counter("service.cache_misses"),
        reg.counter("service.batches"),
        reg.histogram("service.batch_seconds"),
        reg.histogram("service.phase.admission_seconds"),
        reg.histogram("service.phase.cloak_seconds"),
        reg.histogram("service.phase.cache_probe_seconds"),
        reg.histogram("service.phase.compute_seconds"),
        reg.histogram("service.phase.cache_insert_seconds"),
        reg.histogram("service.phase.noise_seconds"),
    };
    return *metrics;
  }
};

}  // namespace

const char* status_name(ReleaseStatus status) noexcept {
  switch (status) {
    case ReleaseStatus::kGranted:
      return "granted";
    case ReleaseStatus::kDegraded:
      return "degraded";
    case ReleaseStatus::kBudgetExhausted:
      return "budget_exhausted";
    case ReleaseStatus::kInvalidRequest:
      return "invalid_request";
  }
  return "unknown";
}

std::uint64_t ServiceStats::count(ReleaseStatus status) const noexcept {
  switch (status) {
    case ReleaseStatus::kGranted:
      return granted;
    case ReleaseStatus::kDegraded:
      return degraded;
    case ReleaseStatus::kBudgetExhausted:
      return budget_exhausted;
    case ReleaseStatus::kInvalidRequest:
      return invalid;
  }
  return 0;
}

ReleaseService::ReleaseService(const poi::PoiDatabase& db,
                               const cloak::AdaptiveIntervalCloaker& cloaker,
                               ServiceConfig config)
    : db_(&db),
      cloaker_(&cloaker),
      config_(std::move(config)),
      cache_(ReleaseCacheConfig{config_.cache_capacity, config_.cache_shards,
                                config_.cache_ttl_epochs}),
      sessions_(SessionTableConfig{config_.session_capacity,
                                   config_.session_shards,
                                   config_.session_ttl_epochs,
                                   config_.session_renew_epochs,
                                   config_.epsilon_ceiling,
                                   config_.delta_ceiling}),
      noise_base_(common::Rng(config_.seed).substream(0)),
      aggregate_base_(common::Rng(config_.seed).substream(1)) {
  if (config_.policies.empty()) {
    throw std::invalid_argument("service: needs at least one policy");
  }
  for (const ReleasePolicy& policy : config_.policies) {
    const bool gaussian = policy.release.noise == defense::DpNoiseKind::kGaussian;
    if (policy.release.k == 0 || policy.release.epsilon <= 0.0 ||
        policy.release.delta >= 1.0 ||
        policy.release.delta < (gaussian ? 1e-12 : 0.0)) {
      throw std::invalid_argument("service: ill-formed policy '" +
                                  policy.name + "'");
    }
  }
  if (config_.degrade_policy &&
      *config_.degrade_policy >= config_.policies.size()) {
    throw std::invalid_argument("service: degrade_policy out of range");
  }
  if (config_.max_batch == 0) config_.max_batch = 1;
  policy_costs_.reserve(config_.policies.size());
  for (const ReleasePolicy& policy : config_.policies) {
    policy_costs_.push_back(dp::FixedBudget::cost_of(
        {policy.release.epsilon, policy.release.delta}));
  }
}

ReleaseStatus ReleaseService::admit(UserId user, PolicyId requested,
                                    PolicyId& served) {
  const ChargeOutcome primary =
      sessions_.try_charge(user, policy_costs_[requested]);
  if (primary == ChargeOutcome::kCharged) {
    served = requested;
    return ReleaseStatus::kGranted;
  }
  // A full table refuses outright: degrading would need the same slot.
  if (primary == ChargeOutcome::kWouldExceed && config_.degrade_policy &&
      *config_.degrade_policy != requested &&
      sessions_.try_charge(user, policy_costs_[*config_.degrade_policy]) ==
          ChargeOutcome::kCharged) {
    served = *config_.degrade_policy;
    return ReleaseStatus::kDegraded;
  }
  return ReleaseStatus::kBudgetExhausted;
}

dp::PrivacyParams ReleaseService::user_spent(UserId user) const {
  return sessions_.spent(user);
}

dp::PrivacyParams ReleaseService::user_remaining(UserId user) const {
  return sessions_.remaining(user);
}

void ReleaseService::advance_epoch(std::uint64_t ticks) {
  sessions_.advance_epoch(ticks);
  cache_.advance_epoch(ticks);
  sessions_.sweep();
  sessions_.renew_windows();
  cache_.evict_expired();
}

ServiceStats ReleaseService::concurrent_stats() const {
  ServiceStats out;
  out.requests = concurrent_.requests.load(std::memory_order_relaxed);
  out.granted = concurrent_.granted.load(std::memory_order_relaxed);
  out.degraded = concurrent_.degraded.load(std::memory_order_relaxed);
  out.budget_exhausted =
      concurrent_.budget_exhausted.load(std::memory_order_relaxed);
  out.invalid = concurrent_.invalid.load(std::memory_order_relaxed);
  out.cache_hits = concurrent_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = concurrent_.cache_misses.load(std::memory_order_relaxed);
  out.users = sessions_.stats().sessions_created;
  return out;
}

CloakAggregate ReleaseService::compute_aggregate(
    const ReleaseCacheKey& key) const {
  // The dummy draw seeds from the key hash, so the aggregate is a pure
  // function of the key: recomputing after an eviction (or on another
  // thread) reproduces it bit-for-bit.
  common::Rng rng = aggregate_base_.substream(ReleaseCache::hash(key));
  const defense::DpDefenseConfig& policy =
      config_.policies[key.policy].release;
  const std::vector<geo::Point> dummies =
      cloaker_->region_dummy_locations(key.region, policy.k, rng);
  const std::size_t m = db_->num_types();
  CloakAggregate aggregate;
  aggregate.k = dummies.size();
  aggregate.sum.assign(m, 0.0);
  aggregate.sensitivity.assign(m, 0.0);
  // Shared per-thread scratch (compute_aggregate runs on pool workers in
  // Phase D; see poi::scratch_arena for the lifetime contract): the k
  // dummy aggregates land in one reusable buffer, so steady-state batches
  // allocate nothing for the frequency queries. The per-type additions
  // keep their ascending-dummy order, so the sums match the old
  // vector-at-a-time loop bit-for-bit.
  poi::FreqArena& arena = poi::scratch_arena();
  db_->freq_batch(dummies, key.radius, arena);
  // A dummy that saw zero POIs contributes nothing to either fold (+0 to
  // every sum, max against 0 sensitivities), so an all-clear fingerprint
  // skips the row without changing a bit of the aggregate. Sparse regions
  // at small radii hit this constantly.
  arena.pack_fingerprints();
  for (std::size_t d = 0; d < arena.rows(); ++d) {
    if (poi::fingerprint_empty(arena.fingerprint(d))) continue;
    const std::span<const std::int32_t> row = arena.row(d);
    for (std::size_t i = 0; i < m; ++i) {
      aggregate.sum[i] += row[i];
      aggregate.sensitivity[i] =
          std::max(aggregate.sensitivity[i], static_cast<double>(row[i]));
    }
  }
  return aggregate;
}

poi::FrequencyVector ReleaseService::noised_release(
    const defense::DpDefenseConfig& policy, const CloakAggregate& aggregate,
    common::Rng& rng) const {
  const std::size_t m = db_->num_types();
  const double k = static_cast<double>(aggregate.k);
  std::vector<double> mean(m, 0.0);
  const dp::PrivacyParams params{policy.epsilon, policy.delta};
  for (std::size_t i = 0; i < m; ++i) {
    double noised = aggregate.sum[i];
    if (aggregate.sensitivity[i] > 0.0) {
      switch (policy.noise) {
        case defense::DpNoiseKind::kGaussian: {
          const double sigma = dp::GaussianMechanism::calibrated_sigma(
              params, aggregate.sensitivity[i]);
          noised += rng.normal(0.0, sigma);
          break;
        }
        case defense::DpNoiseKind::kGeometric: {
          const dp::GeometricMechanism mech(
              policy.epsilon,
              static_cast<std::int64_t>(aggregate.sensitivity[i]));
          noised = static_cast<double>(mech.perturb(
              static_cast<std::int64_t>(std::llround(noised)), rng));
          break;
        }
      }
    }
    mean[i] = noised / k;
  }
  return defense::postprocess_release(*db_, std::move(mean), policy.beta,
                                      policy.max_injection);
}

struct ReleaseService::Admitted {
  std::size_t index = 0;  ///< position in the batch
  PolicyId policy = 0;
  std::uint64_t noise_index = 0;
  ReleaseCacheKey key;
  std::shared_ptr<const CloakAggregate> aggregate;
  std::size_t missing_slot = kNotMissing;
  bool cache_hit = false;  ///< resident, or coalesced onto a batch peer
};

void ReleaseService::serve_batch(std::span<const ReleaseRequest> requests,
                                 std::vector<ReleaseResult>& results) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  const common::Stopwatch timer;
  const obs::Span batch_span(metrics.batch_seconds);
  const std::size_t base = results.size();
  results.resize(base + requests.size());
  std::vector<Admitted> admitted;
  admitted.reserve(requests.size());

  // Phase A — admission, serial in request order. Budget accounting is a
  // fold over each user's history; the served policy is charged here so
  // later same-user requests in this batch see the updated budget.
  obs::Span admission_span(metrics.admission_seconds);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ReleaseRequest& request = requests[i];
    ReleaseResult& out = results[base + i];
    const std::uint64_t noise_index =
        next_request_index_.fetch_add(1, std::memory_order_relaxed);
    ++stats_.requests;
    metrics.requests.add(1);
    if (request.policy >= config_.policies.size() ||
        !(request.radius > 0.0)) {
      out.status = ReleaseStatus::kInvalidRequest;
      out.spent = {0.0, 0.0};
      ++stats_.invalid;
      metrics.invalid.add(1);
      continue;
    }
    const bool known = sessions_.contains(request.user_id);
    PolicyId served = request.policy;
    const ReleaseStatus status = admit(request.user_id, request.policy, served);
    // try_charge claims the session even when it refuses on budget, so a
    // first contact counts as a user unless the table was full.
    if (!known && sessions_.contains(request.user_id)) ++stats_.users;
    out.spent = sessions_.spent(request.user_id);
    if (status == ReleaseStatus::kBudgetExhausted) {
      out.status = status;
      ++stats_.budget_exhausted;
      metrics.budget_exhausted.add(1);
      continue;
    }
    out.status = status;
    out.served_policy = served;
    if (status == ReleaseStatus::kGranted) {
      ++stats_.granted;
      metrics.granted.add(1);
    } else {
      ++stats_.degraded;
      metrics.degraded.add(1);
    }
    Admitted a;
    a.index = i;
    a.policy = served;
    a.noise_index = noise_index;
    admitted.push_back(std::move(a));
  }
  admission_span.stop();

  common::ThreadPool& pool = common::global_pool();

  // Phase B — cloak each admitted request (read-only, parallel).
  obs::Span cloak_span(metrics.cloak_seconds);
  common::parallel_for_each(pool, admitted.size(), kCloakChunk,
                            [&](std::size_t j) {
                              Admitted& a = admitted[j];
                              const ReleaseRequest& request =
                                  requests[a.index];
                              a.key.region =
                                  cloaker_
                                      ->cloak(request.location,
                                              config_.policies[a.policy]
                                                  .release.k)
                                      .region;
                              a.key.radius = request.radius;
                              a.key.policy = a.policy;
                            });
  cloak_span.stop();

  // Phase C — cache probe, serial in request order so LRU motion and the
  // counters are scheduling-independent. Requests sharing a cold key
  // within the batch coalesce onto one computation and count as hits.
  obs::Span probe_span(metrics.probe_seconds);
  std::vector<ReleaseCacheKey> missing;
  std::unordered_map<ReleaseCacheKey, std::size_t, KeyHash> pending;
  for (Admitted& a : admitted) {
    if (auto hit = cache_.get(a.key)) {
      a.aggregate = std::move(hit);
      a.cache_hit = true;
      ++stats_.cache_hits;
      metrics.cache_hits.add(1);
      continue;
    }
    if (const auto it = pending.find(a.key); it != pending.end()) {
      a.missing_slot = it->second;
      a.cache_hit = true;
      ++stats_.cache_hits;
      metrics.cache_hits.add(1);
      continue;
    }
    a.missing_slot = missing.size();
    pending.emplace(a.key, missing.size());
    missing.push_back(a.key);
    ++stats_.cache_misses;
    metrics.cache_misses.add(1);
  }
  probe_span.stop();

  // Phase D — compute the missing aggregates (parallel, the expensive
  // part: k range queries per key).
  obs::Span compute_span(metrics.compute_seconds);
  std::vector<std::shared_ptr<const CloakAggregate>> computed(missing.size());
  common::parallel_for_each(
      pool, missing.size(), kComputeChunk, [&](std::size_t j) {
        computed[j] =
            std::make_shared<const CloakAggregate>(compute_aggregate(missing[j]));
      });
  compute_span.stop();

  // Phase E — insert in first-miss order (deterministic evictions) and
  // resolve the coalesced requests.
  obs::Span insert_span(metrics.insert_seconds);
  for (std::size_t j = 0; j < missing.size(); ++j) {
    cache_.put(missing[j], computed[j]);
  }
  for (Admitted& a : admitted) {
    if (a.missing_slot != kNotMissing) a.aggregate = computed[a.missing_slot];
  }
  insert_span.stop();

  // Phase F — per-request noise + Eq. (9) post-processing (parallel;
  // request i draws from substream(i) regardless of thread or order).
  obs::Span noise_span(metrics.noise_seconds);
  common::parallel_for_each(
      pool, admitted.size(), kComputeChunk, [&](std::size_t j) {
        const Admitted& a = admitted[j];
        common::Rng rng = noise_base_.substream(a.noise_index);
        ReleaseResult& out = results[base + a.index];
        out.vector = noised_release(config_.policies[a.policy].release,
                                    *a.aggregate, rng);
        out.cache_hit = a.cache_hit;
      });
  noise_span.stop();

  ++stats_.batches;
  metrics.batches.add(1);
  batch_sizes_.push_back(requests.size());
  batch_seconds_.push_back(timer.seconds());
}

void ReleaseService::drain_queue() {
  const std::size_t n = std::min(queue_.size(), config_.max_batch);
  std::vector<ReleaseRequest> batch(queue_.begin(),
                                    queue_.begin() + static_cast<std::ptrdiff_t>(n));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  serve_batch(batch, collected_);
}

void ReleaseService::enqueue(const ReleaseRequest& request) {
  queue_.push_back(request);
  if (queue_.size() >= config_.max_batch) drain_queue();
}

std::vector<ReleaseResult> ReleaseService::flush() {
  while (!queue_.empty()) drain_queue();
  return std::exchange(collected_, {});
}

std::vector<ReleaseResult> ReleaseService::serve(
    std::span<const ReleaseRequest> requests) {
  if (!queue_.empty() || !collected_.empty()) {
    throw std::logic_error("service: serve() with requests pending");
  }
  for (const ReleaseRequest& request : requests) enqueue(request);
  return flush();
}

ReleaseResult ReleaseService::serve_one(const ReleaseRequest& request) {
  return std::move(serve({&request, 1}).front());
}

ReleaseResult ReleaseService::serve_stream(const StreamRequest& request) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  ReleaseResult out;
  // Arrival order assigns the noise substream, exactly like
  // serve_concurrent: a sequential caller is fully reproducible.
  const std::uint64_t noise_index =
      next_request_index_.fetch_add(1, std::memory_order_relaxed);
  concurrent_.requests.fetch_add(1, std::memory_order_relaxed);
  metrics.requests.add(1);
  const StreamSource* source = stream_source_;
  const std::size_t windows =
      source == nullptr ? 0
                        : source->num_windows(request.begin_epoch,
                                              request.end_epoch);
  if (source == nullptr || request.policy >= config_.policies.size() ||
      request.series >= source->num_series() ||
      request.end_epoch > source->epochs() ||
      request.begin_epoch >= request.end_epoch || windows == 0) {
    out.status = ReleaseStatus::kInvalidRequest;
    out.spent = {0.0, 0.0};
    concurrent_.invalid.fetch_add(1, std::memory_order_relaxed);
    metrics.invalid.add(1);
    return out;
  }
  // One admission charge covers the whole block: W windows, each a
  // policy-cost release. Saturating multiply — an overflowing block can
  // only be refused, never undercharged. No degrade path: a degraded
  // stream block would still cost W windows of *some* budget, and the
  // caller asked for this policy's noise scale.
  const auto scale = [](std::uint32_t units, std::uint64_t w) {
    const std::uint64_t total = units * w;
    return total > std::uint64_t{dp::FixedBudget::kMaxUnits}
               ? dp::FixedBudget::kMaxUnits
               : static_cast<std::uint32_t>(total);
  };
  dp::FixedBudget cost = policy_costs_[request.policy];
  cost.epsilon_units = scale(cost.epsilon_units, windows);
  cost.delta_units = scale(cost.delta_units, windows);
  const ChargeOutcome charged = sessions_.try_charge(request.user_id, cost);
  out.spent = sessions_.spent(request.user_id);
  if (charged != ChargeOutcome::kCharged) {
    // A full table refuses fail-closed, indistinguishable from an
    // exhausted budget on the wire.
    out.status = ReleaseStatus::kBudgetExhausted;
    concurrent_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
    metrics.budget_exhausted.add(1);
    return out;
  }
  out.status = ReleaseStatus::kGranted;
  out.served_policy = request.policy;
  concurrent_.granted.fetch_add(1, std::memory_order_relaxed);
  metrics.granted.add(1);
  // The raw block is policy-independent (noise is per-request), so all
  // policies share one kind-1 cache entry per window range.
  ReleaseCacheKey key;
  key.kind = 1;
  key.stream_begin = request.begin_epoch;
  key.stream_end = request.end_epoch;
  std::shared_ptr<const CloakAggregate> block = cache_.get(key);
  if (block) {
    out.cache_hit = true;
    concurrent_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    metrics.cache_hits.add(1);
  } else {
    auto computed = std::make_shared<CloakAggregate>();
    source->release_raw(request.begin_epoch, request.end_epoch,
                        computed->sum);
    computed->sensitivity.assign(1, source->sensitivity());
    computed->k = source->num_series();
    block = std::move(computed);
    cache_.put(key, block);
    concurrent_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    metrics.cache_misses.add(1);
  }
  // Per-request noise: one Laplace draw per window for the requested
  // series, window-ascending (mirrors mia/stream_release: rounded,
  // clamped at zero).
  const defense::DpDefenseConfig& policy =
      config_.policies[request.policy].release;
  const dp::LaplaceMechanism laplace(policy.epsilon, block->sensitivity[0]);
  common::Rng rng = noise_base_.substream(noise_index);
  const std::size_t stride = block->k;
  out.vector.resize(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    const double noised =
        laplace.perturb(block->sum[w * stride + request.series], rng);
    out.vector[w] =
        static_cast<std::int32_t>(std::max(0.0, std::round(noised)));
  }
  return out;
}

ReleaseResult ReleaseService::serve_concurrent(const ReleaseRequest& request) {
  ServiceMetrics& metrics = ServiceMetrics::get();
  ReleaseResult out;
  // The arrival order that wins this fetch_add IS the request's identity
  // for noise purposes — a sequential caller reproduces the batch path's
  // substream assignment exactly.
  const std::uint64_t noise_index =
      next_request_index_.fetch_add(1, std::memory_order_relaxed);
  concurrent_.requests.fetch_add(1, std::memory_order_relaxed);
  metrics.requests.add(1);
  if (request.policy >= config_.policies.size() || !(request.radius > 0.0)) {
    out.status = ReleaseStatus::kInvalidRequest;
    out.spent = {0.0, 0.0};
    concurrent_.invalid.fetch_add(1, std::memory_order_relaxed);
    metrics.invalid.add(1);
    return out;
  }
  PolicyId served = request.policy;
  const ReleaseStatus status = admit(request.user_id, request.policy, served);
  out.spent = sessions_.spent(request.user_id);
  out.status = status;
  if (status == ReleaseStatus::kBudgetExhausted) {
    concurrent_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
    metrics.budget_exhausted.add(1);
    return out;
  }
  out.served_policy = served;
  if (status == ReleaseStatus::kGranted) {
    concurrent_.granted.fetch_add(1, std::memory_order_relaxed);
    metrics.granted.add(1);
  } else {
    concurrent_.degraded.fetch_add(1, std::memory_order_relaxed);
    metrics.degraded.add(1);
  }
  ReleaseCacheKey key;
  key.region =
      cloaker_->cloak(request.location, config_.policies[served].release.k)
          .region;
  key.radius = request.radius;
  key.policy = served;
  std::shared_ptr<const CloakAggregate> aggregate = cache_.get(key);
  if (aggregate) {
    out.cache_hit = true;
    concurrent_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    metrics.cache_hits.add(1);
  } else {
    // No cross-thread coalescing here: two threads cold-probing one key
    // both compute, and the later put refreshes the (identical) entry.
    aggregate = std::make_shared<const CloakAggregate>(compute_aggregate(key));
    cache_.put(key, aggregate);
    concurrent_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    metrics.cache_misses.add(1);
  }
  common::Rng rng = noise_base_.substream(noise_index);
  out.vector =
      noised_release(config_.policies[served].release, *aggregate, rng);
  return out;
}

}  // namespace poiprivacy::service
