#include "service/release_cache.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>

namespace poiprivacy::service {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return splitmix64(h ^ v);
}

}  // namespace

std::uint64_t ReleaseCache::hash(const ReleaseCacheKey& key) noexcept {
  std::uint64_t h = 0x8f3a9c1d2e4b5a67ULL;
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.min_x));
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.min_y));
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.max_x));
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.max_y));
  h = mix(h, std::bit_cast<std::uint64_t>(key.radius));
  h = mix(h, key.policy);
  return h;
}

ReleaseCache::ReleaseCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity) {
  const std::size_t n = std::min(shards == 0 ? 1 : shards, capacity_);
  shard_capacity_ = (capacity_ + n - 1) / n;
  shards_ = std::vector<Shard>(n);
  // Per-shard registry counters; shardNN names are shared across cache
  // instances (and with POIPRIVACY_NO_METRICS all handles are the same
  // no-op stub).
  obs::Registry& registry = obs::global_registry();
  shard_metrics_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    char name[48];
    std::snprintf(name, sizeof name, "release_cache.shard%02zu", i);
    const std::string prefix(name);
    shard_metrics_[i].hits = &registry.counter(prefix + ".hits");
    shard_metrics_[i].misses = &registry.counter(prefix + ".misses");
    shard_metrics_[i].evictions = &registry.counter(prefix + ".evictions");
  }
  entries_gauge_ = &registry.gauge("release_cache.entries");
}

ReleaseCache::Shard& ReleaseCache::shard_for(
    const ReleaseCacheKey& key) const {
  return shards_[hash(key) % shards_.size()];
}

std::shared_ptr<const CloakAggregate> ReleaseCache::get(
    const ReleaseCacheKey& key) {
  const std::size_t idx = hash(key) % shards_.size();
  Shard& shard = shards_[idx];
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  shard_metrics_[idx].hits->add(1);
  return it->second->value;
}

void ReleaseCache::put(const ReleaseCacheKey& key,
                       std::shared_ptr<const CloakAggregate> value) {
  const std::size_t idx = hash(key) % shards_.size();
  Shard& shard = shards_[idx];
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  ++shard.misses;
  shard_metrics_[idx].misses->add(1);
  entries_gauge_->add(1);
  shard.lru.push_front({key, std::move(value)});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    shard_metrics_[idx].evictions->add(1);
    entries_gauge_->add(-1);
  }
}

ReleaseCacheStats ReleaseCache::stats() const {
  ReleaseCacheStats out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

}  // namespace poiprivacy::service
