#include "service/release_cache.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>

namespace poiprivacy::service {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return splitmix64(h ^ v);
}

}  // namespace

std::uint64_t ReleaseCache::hash(const ReleaseCacheKey& key) noexcept {
  std::uint64_t h = 0x8f3a9c1d2e4b5a67ULL;
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.min_x));
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.min_y));
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.max_x));
  h = mix(h, std::bit_cast<std::uint64_t>(key.region.max_y));
  h = mix(h, std::bit_cast<std::uint64_t>(key.radius));
  h = mix(h, key.policy);
  // Stream fields only for stream keys: a kind-0 key's hash seeds its
  // canonical dummy draw and must never change.
  if (key.kind != 0) {
    h = mix(h, key.kind);
    h = mix(h, key.stream_begin);
    h = mix(h, key.stream_end);
  }
  return h;
}

ReleaseCache::ReleaseCache(ReleaseCacheConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  const std::size_t n =
      std::min(config_.shards == 0 ? 1 : config_.shards, config_.capacity);
  config_.shards = n;
  shard_capacity_ = (config_.capacity + n - 1) / n;
  shards_ = std::vector<Shard>(n);
  // Per-shard registry counters; shardNN names are shared across cache
  // instances (and with POIPRIVACY_NO_METRICS all handles are the same
  // no-op stub).
  obs::Registry& registry = obs::global_registry();
  shard_metrics_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    char name[48];
    std::snprintf(name, sizeof name, "release_cache.shard%02zu", i);
    const std::string prefix(name);
    shard_metrics_[i].hits = &registry.counter(prefix + ".hits");
    shard_metrics_[i].misses = &registry.counter(prefix + ".misses");
    shard_metrics_[i].evictions_lru =
        &registry.counter(prefix + ".evictions_lru");
    shard_metrics_[i].evictions_ttl =
        &registry.counter(prefix + ".evictions_ttl");
  }
  entries_gauge_ = &registry.gauge("release_cache.entries");
}

ReleaseCache::Shard& ReleaseCache::shard_for(
    const ReleaseCacheKey& key) const {
  return shards_[hash(key) % shards_.size()];
}

std::shared_ptr<const CloakAggregate> ReleaseCache::get(
    const ReleaseCacheKey& key) {
  const std::size_t idx = hash(key) % shards_.size();
  Shard& shard = shards_[idx];
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second->touch_epoch = epoch_.load(std::memory_order_relaxed);
  ++shard.hits;
  shard_metrics_[idx].hits->add(1);
  return it->second->value;
}

void ReleaseCache::put(const ReleaseCacheKey& key,
                       std::shared_ptr<const CloakAggregate> value) {
  const std::size_t idx = hash(key) % shards_.size();
  Shard& shard = shards_[idx];
  const std::lock_guard<std::mutex> lock(shard.mu);
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->touch_epoch = now;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  ++shard.misses;
  shard_metrics_[idx].misses->add(1);
  entries_gauge_->add(1);
  shard.lru.push_front({key, std::move(value), now});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions_lru;
    shard_metrics_[idx].evictions_lru->add(1);
    entries_gauge_->add(-1);
  }
}

void ReleaseCache::advance_epoch(std::uint64_t ticks) noexcept {
  epoch_.fetch_add(ticks, std::memory_order_relaxed);
}

std::uint64_t ReleaseCache::epoch() const noexcept {
  return epoch_.load(std::memory_order_relaxed);
}

std::size_t ReleaseCache::evict_expired() {
  if (config_.ttl_epochs == 0) return 0;
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  for (std::size_t idx = 0; idx < shards_.size(); ++idx) {
    Shard& shard = shards_[idx];
    const std::lock_guard<std::mutex> lock(shard.mu);
    // Recency order implies stamp order, so the expired entries are
    // exactly a suffix of the LRU list: pop from the tail until fresh.
    while (!shard.lru.empty() &&
           shard.lru.back().touch_epoch + config_.ttl_epochs <= now) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions_ttl;
      shard_metrics_[idx].evictions_ttl->add(1);
      entries_gauge_->add(-1);
      ++evicted;
    }
  }
  return evicted;
}

ReleaseCacheStats ReleaseCache::stats() const {
  ReleaseCacheStats out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions_lru += shard.evictions_lru;
    out.evictions_ttl += shard.evictions_ttl;
    out.entries += shard.lru.size();
  }
  return out;
}

}  // namespace poiprivacy::service
