// Synthetic multi-user request workload for the serving layer.
//
// Each simulated user moves through the city for a day on the taxi
// trajectory machinery (waypoint movement between the city's hot
// clusters) and issues one release request per fix, with a radius and a
// policy drawn from configurable mixes. User u's whole day derives from
// Rng(seed).substream(u), so
//   * the same seed reproduces the exact trace, and
//   * user u's requests are identical no matter how many users the
//     workload contains (adding users never perturbs existing ones).
// The per-user streams are merged into one service-order trace sorted by
// (time, user, sequence) — the deterministic arrival order the service's
// determinism contract is stated against.
#pragma once

#include <cstdint>
#include <vector>

#include "poi/city_model.h"
#include "service/release_service.h"
#include "traj/trajectory.h"

namespace poiprivacy::service {

struct WorkloadConfig {
  std::size_t num_users = 100;
  std::size_t requests_per_user = 20;
  std::uint64_t seed = 42;
  /// Query radii (km), one drawn uniformly per request.
  std::vector<double> radii = {0.5, 1.0, 2.0};
  /// Categorical weights over ServiceConfig::policies, one draw per
  /// request (single-policy workloads use the default).
  std::vector<double> policy_weights = {1.0};
  /// Movement model: fix gaps chosen so requests_per_user fixes span a
  /// day (~40 min mean gap), speeds as the taxi generator's defaults.
  traj::TimeSec min_gap = 10 * 60;
  traj::TimeSec max_gap = 70 * 60;
  double min_speed_kmh = 15.0;
  double max_speed_kmh = 45.0;
};

/// One trace entry: the request plus its arrival time.
struct TimedRequest {
  ReleaseRequest request;
  traj::TimeSec time = 0;

  friend bool operator==(const TimedRequest&, const TimedRequest&) = default;
};

/// The merged day-long trace, sorted by (time, user, sequence).
std::vector<TimedRequest> generate_workload(const poi::City& city,
                                            const WorkloadConfig& config);

/// Strips arrival times into the span shape ReleaseService::serve takes.
std::vector<ReleaseRequest> requests_of(
    const std::vector<TimedRequest>& trace);

}  // namespace poiprivacy::service
