// Sharded LRU cache of cloak-region aggregates — the serving layer's
// memoization of the expensive, non-private part of a DP release.
//
// The DP defense pipeline factors into
//   (1) cloak the requester into a k-anonymous quadrant,
//   (2) average the frequency vectors of k dummy locations in it,
//   (3) add per-dimension noise and post-process (Eq. 8-9).
// Step (2) costs k range queries over the POI database; steps (3) are
// O(M). The cache keys step (2) on (cloaked region, radius, policy): the
// canonical dummy set is drawn from the region itself with an RNG derived
// from the key (see ReleaseService), so the aggregate is a pure function
// of the key and any two users cloaked into the same quadrant share it.
//
// Unlike the PoiDatabase anchor cache (unbounded, read-mostly), release
// traffic has an unbounded key space — every (region, radius, policy)
// combination a city's worth of users produces over a day — so entries
// are LRU-evicted per shard. Values are handed out as shared_ptr so an
// in-flight request survives the eviction of its entry.
//
// Two eviction policies run side by side, each with its own counter:
//   * capacity (LRU): a full shard drops its least-recently-used entry
//     on insert — `evictions_lru`;
//   * TTL: the cache has a logical epoch (advance_epoch, owner-driven);
//     every hit/insert stamps the entry, and evict_expired() drops
//     entries untouched for `ttl_epochs` — `evictions_ttl`. A TTL of 0
//     (the default) disables expiry. Because recency order implies
//     stamp order, expired entries are always a suffix of a shard's LRU
//     list, so a sweep pops from the tail and costs O(evicted).
// Either way an evicted aggregate is only ever *recomputed* — it is a
// pure function of its key, so eviction never changes a released vector.
//
// Thread safety: every operation locks its shard, so concurrent use is
// safe. Determinism of the hit/miss/eviction counters, however, is the
// caller's job: ReleaseService probes and inserts serially in request
// order (only the aggregate *computation* is parallel), which makes the
// counters and the eviction sequence bit-identical for any --threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "geo/geometry.h"
#include "obs/metrics.h"

namespace poiprivacy::service {

/// Index into ServiceConfig::policies.
using PolicyId = std::uint32_t;

/// Identity of a cacheable release computation. The region is the exact
/// cloak quadrant (halved doubles, so bitwise comparison is stable).
///
/// Two kinds share the cache: kind 0 is the classic cloak-region
/// aggregate (region/radius/policy); kind 1 is a continual-release
/// stream block (the raw per-tile window counts for [stream_begin,
/// stream_end), region/radius zeroed). The stream fields fold into
/// hash() only when kind != 0, so aggregate keys keep their historical
/// hash — it seeds the canonical dummy draws, and changing it would
/// change every released vector.
struct ReleaseCacheKey {
  geo::BBox region;
  double radius = 0.0;
  PolicyId policy = 0;
  std::uint32_t kind = 0;          ///< 0 = cloak aggregate, 1 = stream block
  std::uint32_t stream_begin = 0;  ///< window-range epochs (kind 1)
  std::uint32_t stream_end = 0;

  friend bool operator==(const ReleaseCacheKey&,
                         const ReleaseCacheKey&) = default;
};

/// The cached step-(2) result: per-type sums and sensitivities over the
/// region's k canonical dummy locations (sensitivity_i = max_d F_d[i],
/// the Gaussian mechanism's per-dimension calibration). Stream blocks
/// (key kind 1) reuse the container: `sum` holds the raw window-major
/// per-series counts, `sensitivity` the single stream sensitivity, and
/// `k` the series count.
struct CloakAggregate {
  std::vector<double> sum;
  std::vector<double> sensitivity;
  std::size_t k = 0;
};

/// Monotone counters; under ReleaseService's serial probe order they are
/// bit-identical for any thread count.
struct ReleaseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< insertions (== distinct keys computed)
  std::uint64_t evictions_lru = 0;  ///< capacity evictions at insert
  std::uint64_t evictions_ttl = 0;  ///< expiry evictions by evict_expired()
  std::uint64_t entries = 0;  ///< current resident entries

  std::uint64_t evictions() const noexcept {
    return evictions_lru + evictions_ttl;
  }
  std::uint64_t lookups() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
  friend bool operator==(const ReleaseCacheStats&,
                         const ReleaseCacheStats&) = default;
};

struct ReleaseCacheConfig {
  std::size_t capacity = 4096;  ///< total entries across all shards
  std::size_t shards = 16;
  std::uint64_t ttl_epochs = 0;  ///< 0 disables TTL expiry
};

class ReleaseCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRU lists
  /// (each holding ceil(capacity / shards)).
  explicit ReleaseCache(std::size_t capacity, std::size_t shards = 16)
      : ReleaseCache(ReleaseCacheConfig{capacity, shards, 0}) {}
  explicit ReleaseCache(ReleaseCacheConfig config);

  /// The aggregate for `key`, refreshing its LRU position and TTL stamp,
  /// or nullptr.
  std::shared_ptr<const CloakAggregate> get(const ReleaseCacheKey& key);

  /// Inserts (or refreshes) `key`, evicting the shard's LRU entry when
  /// the shard is full.
  void put(const ReleaseCacheKey& key,
           std::shared_ptr<const CloakAggregate> value);

  /// Owner-driven epoch clock for TTL expiry (no-op bookkeeping when
  /// ttl_epochs is 0). advance_epoch never evicts by itself.
  void advance_epoch(std::uint64_t ticks = 1) noexcept;
  std::uint64_t epoch() const noexcept;
  /// Drops every entry untouched for >= ttl_epochs, walking shards in
  /// index order; returns the number evicted.
  std::size_t evict_expired();

  ReleaseCacheStats stats() const;
  std::size_t capacity() const noexcept { return config_.capacity; }
  std::uint64_t ttl_epochs() const noexcept { return config_.ttl_epochs; }

  /// Stable 64-bit key hash — also the seed material for the key's
  /// canonical dummy draw in ReleaseService.
  static std::uint64_t hash(const ReleaseCacheKey& key) noexcept;

 private:
  struct Entry {
    ReleaseCacheKey key;
    std::shared_ptr<const CloakAggregate> value;
    std::uint64_t touch_epoch = 0;
  };
  struct KeyHash {
    std::size_t operator()(const ReleaseCacheKey& key) const noexcept {
      return static_cast<std::size_t>(hash(key));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<ReleaseCacheKey, std::list<Entry>::iterator, KeyHash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions_lru = 0;
    std::uint64_t evictions_ttl = 0;
  };

  /// Registry mirrors of one shard's counters ("release_cache.shardNN.*",
  /// shared across every cache instance with that shard index) plus the
  /// process-wide residency gauge. Observation only — the deterministic
  /// source of truth stays in Shard.
  struct ShardMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions_lru = nullptr;
    obs::Counter* evictions_ttl = nullptr;
  };

  Shard& shard_for(const ReleaseCacheKey& key) const;

  ReleaseCacheConfig config_;
  std::size_t shard_capacity_;
  mutable std::vector<Shard> shards_;
  std::vector<ShardMetrics> shard_metrics_;
  obs::Gauge* entries_gauge_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace poiprivacy::service
