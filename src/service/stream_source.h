// StreamSource — the serving layer's view of a continual-release
// aggregate stream.
//
// The GSP publishes per-tile count aggregates over sliding epoch windows
// (mia/stream_release builds them from mobility traces); the serving
// layer wants to serve exactly those streams through ReleaseService —
// budget-admitted per user, the raw window block cached under a kind-1
// ReleaseCacheKey, and per-request Laplace noise drawn from the
// request's own substream. This interface is the seam between the two:
// it exposes the stream's geometry (series count, epoch range, window
// schedule, sensitivity) and one pure function producing the RAW
// window-major counts for an epoch range. Purity is the caching
// contract — a block is recomputed bit-identically after an eviction.
#pragma once

#include <cstddef>
#include <vector>

namespace poiprivacy::service {

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Released series (e.g. ROI tiles), addressed 0..num_series().
  virtual std::size_t num_series() const = 0;

  /// Epochs covered by the underlying data; window ranges must satisfy
  /// end <= epochs().
  virtual std::size_t epochs() const = 0;

  /// Released windows for the epoch range [begin, end) under the
  /// stream's window/stride geometry (0 when the range is too short).
  virtual std::size_t num_windows(std::size_t begin,
                                  std::size_t end) const = 0;

  /// L1 sensitivity of one released window to one user's presence — the
  /// Laplace scale is sensitivity() / epsilon per window.
  virtual double sensitivity() const = 0;

  /// The raw (un-noised) counts for [begin, end), window-major:
  /// out[w * num_series() + s]. Must be a pure function of (begin, end).
  virtual void release_raw(std::size_t begin, std::size_t end,
                           std::vector<double>& out) const = 0;
};

}  // namespace poiprivacy::service
