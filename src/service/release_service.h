// ReleaseService — the GSP's multi-user aggregate-release serving layer.
//
// The paper's threat model has a geo-information service provider
// publishing protected POI frequency vectors to a large user population;
// the library pieces (DpDefense, ReleaseSession, PrivacyAccountant) are
// per-call, per-user. This subsystem is the long-lived in-process service
// that sits on top of them:
//
//   * one lazily created, budget-enforced ReleaseSession per user;
//   * admission control: a request whose composed (eps, delta) would
//     exceed the ceiling is degraded to a cheaper policy (if configured)
//     or refused with a typed ReleaseStatus — never an exception;
//   * a sharded LRU cache of cloak-region aggregates so users cloaked
//     into the same quadrant share the k range queries (release_cache.h);
//   * request batching: enqueue() fills a bounded queue that drains onto
//     the common/parallel thread pool.
//
// Determinism contract (the same one the eval runners honour): statuses,
// released vectors and every counter are bit-identical for any --threads.
// Four mechanisms make it hold:
//   1. admission runs serially in request order (budget math is a fold
//      over each user's history);
//   2. cache probes/inserts run serially in request order, so LRU motion
//      and hit/miss/eviction counters never depend on scheduling — only
//      the aggregate computation and the per-request noise fan out;
//   3. noise for request number i (a process-lifetime counter) draws from
//      Rng(seed).substream(i), a pure function of (seed, i);
//   4. a cached aggregate is a pure function of its key — its dummy draw
//      seeds from the key hash — so cache capacity (hence eviction) can
//      change which work is *recomputed* but never a released vector.
//
// Privacy note: the served aggregate is computed from the cloaked
// region's canonical dummies, not from the requester's exact location, so
// the pre-noise value is already k-anonymous (that is exactly what makes
// it shareable across users); the per-request Gaussian/geometric noise
// then provides the (eps, delta) guarantee that the accountant composes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloak/kcloak.h"
#include "defense/session.h"
#include "service/release_cache.h"

namespace poiprivacy::service {

using UserId = std::uint64_t;

/// A named release policy: the DP mechanism parameters one request class
/// is served under (k, epsilon, delta, noise kind, beta).
struct ReleasePolicy {
  std::string name;
  defense::DpDefenseConfig release;
};

struct ReleaseRequest {
  UserId user_id = 0;
  geo::Point location;
  double radius = 1.0;          ///< query range r in km
  PolicyId policy = 0;          ///< index into ServiceConfig::policies

  friend bool operator==(const ReleaseRequest&,
                         const ReleaseRequest&) = default;
};

enum class ReleaseStatus : std::uint8_t {
  kGranted = 0,          ///< served under the requested policy
  kDegraded,             ///< budget-limited; served under degrade_policy
  kBudgetExhausted,      ///< refused: no admissible policy fits the budget
  kInvalidRequest,       ///< unknown policy or nonpositive radius
};

inline constexpr ReleaseStatus kAllStatuses[] = {
    ReleaseStatus::kGranted,
    ReleaseStatus::kDegraded,
    ReleaseStatus::kBudgetExhausted,
    ReleaseStatus::kInvalidRequest,
};

const char* status_name(ReleaseStatus status) noexcept;

struct ReleaseResult {
  ReleaseStatus status = ReleaseStatus::kInvalidRequest;
  PolicyId served_policy = 0;    ///< meaningful when a vector was released
  bool cache_hit = false;        ///< aggregate came from the release cache
  poi::FrequencyVector vector;   ///< empty unless granted/degraded
  dp::PrivacyParams spent;       ///< user's composed budget after this call

  friend bool operator==(const ReleaseResult& a, const ReleaseResult& b) {
    return a.status == b.status && a.served_policy == b.served_policy &&
           a.cache_hit == b.cache_hit && a.vector == b.vector &&
           a.spent.epsilon == b.spent.epsilon && a.spent.delta == b.spent.delta;
  }
};

struct ServiceConfig {
  /// At least one policy; requests address them by index.
  std::vector<ReleasePolicy> policies;
  /// When set, a request that would blow the budget under its own policy
  /// is served under this (cheaper) policy instead of being refused.
  std::optional<PolicyId> degrade_policy;
  /// Per-user budget ceilings and composition slack (see SessionConfig).
  double epsilon_ceiling = 8.0;
  double delta_ceiling = 0.5;
  double advanced_slack = 1e-6;
  /// Total release-cache entries (sharded LRU).
  std::size_t cache_capacity = 4096;
  /// Bounded queue: enqueue() drains a batch once this many are pending.
  std::size_t max_batch = 256;
  /// Master seed for noise substreams and canonical dummy draws.
  std::uint64_t seed = 1234;
};

/// Deterministic service counters (every field bit-identical for any
/// thread count). Cache hits/misses are the *effective* ones — a request
/// whose key another request in the same batch is already computing
/// counts as a hit; misses therefore equal aggregates actually computed.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t granted = 0;
  std::uint64_t degraded = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t invalid = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t batches = 0;
  std::uint64_t users = 0;  ///< sessions created so far

  std::uint64_t count(ReleaseStatus status) const noexcept;
  double cache_hit_rate() const noexcept {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(lookups);
  }
  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

class ReleaseService {
 public:
  /// Throws std::invalid_argument on an empty/ill-formed policy list or a
  /// dangling degrade_policy index.
  ReleaseService(const poi::PoiDatabase& db,
                 const cloak::AdaptiveIntervalCloaker& cloaker,
                 ServiceConfig config);

  /// Queues one request; when max_batch are pending the queue drains onto
  /// the thread pool and the batch's results are collected for flush().
  void enqueue(const ReleaseRequest& request);

  /// Drains the remaining queue and returns every result collected since
  /// the last flush, in enqueue order.
  std::vector<ReleaseResult> flush();

  /// enqueue() + flush() over a whole trace. Requires no pending
  /// requests from a previous partial enqueue.
  std::vector<ReleaseResult> serve(std::span<const ReleaseRequest> requests);

  /// Convenience single-request path (a batch of one); same requirement.
  ReleaseResult serve_one(const ReleaseRequest& request);

  std::size_t pending() const noexcept { return queue_.size(); }

  const ServiceStats& stats() const noexcept { return stats_; }
  /// Raw cache counters (insertions/evictions/residency). The service
  /// stats' hits/misses are the effective per-request ones.
  ReleaseCacheStats cache_stats() const { return cache_.stats(); }
  /// Wall-clock seconds spent draining each batch, in drain order (for
  /// latency reporting; not part of the determinism contract).
  const std::vector<double>& batch_seconds() const noexcept {
    return batch_seconds_;
  }
  const std::vector<std::size_t>& batch_sizes() const noexcept {
    return batch_sizes_;
  }

  /// Budget state of one user; zero-spend if the user was never admitted.
  dp::PrivacyParams user_spent(UserId user) const;
  dp::PrivacyParams user_remaining(UserId user) const;
  std::size_t num_users() const noexcept { return sessions_.size(); }

  const ServiceConfig& config() const noexcept { return config_; }

 private:
  struct Admitted;

  void serve_batch(std::span<const ReleaseRequest> requests,
                   std::vector<ReleaseResult>& results);
  void drain_queue();
  defense::ReleaseSession& session_for(UserId user);
  CloakAggregate compute_aggregate(const ReleaseCacheKey& key) const;
  poi::FrequencyVector noised_release(const defense::DpDefenseConfig& policy,
                                      const CloakAggregate& aggregate,
                                      common::Rng& rng) const;

  const poi::PoiDatabase* db_;
  const cloak::AdaptiveIntervalCloaker* cloaker_;
  ServiceConfig config_;
  ReleaseCache cache_;
  std::map<UserId, defense::ReleaseSession> sessions_;
  std::deque<ReleaseRequest> queue_;
  std::vector<ReleaseResult> collected_;
  ServiceStats stats_;
  std::vector<double> batch_seconds_;
  std::vector<std::size_t> batch_sizes_;
  std::uint64_t next_request_index_ = 0;  ///< noise substream counter
  common::Rng noise_base_;
  common::Rng aggregate_base_;
};

}  // namespace poiprivacy::service
