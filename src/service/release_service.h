// ReleaseService — the GSP's multi-user aggregate-release serving layer.
//
// The paper's threat model has a geo-information service provider
// publishing protected POI frequency vectors to a large user population;
// the library pieces (DpDefense, dp::Ledger) are per-call, per-user. This subsystem is the long-lived in-process service that
// sits on top of them:
//
//   * a sharded, fixed-capacity session/budget table (session_table.h):
//     admission charges are lock-free on the hot path (one CAS on a
//     fixed-point budget word per request — dp::Ledger's fixed-point
//     backend, fleet-wide);
//   * admission control: a request whose composed (eps, delta) would
//     exceed the ceiling is degraded to a cheaper policy (if configured)
//     or refused with a typed ReleaseStatus — never an exception;
//   * a sharded LRU+TTL cache of cloak-region aggregates so users
//     cloaked into the same quadrant share the k range queries
//     (release_cache.h);
//   * two serving paths over the same state:
//       - the deterministic batch path: enqueue() fills a bounded queue
//         that drains onto the common/parallel thread pool in 6 phases;
//       - serve_concurrent(): a thread-safe per-request path for the
//         socket front-end (src/net), where many worker threads admit
//         and release concurrently.
//
// Determinism contract for the batch path (the same one the eval runners
// honour): statuses, released vectors and every counter are bit-identical
// for any --threads. Four mechanisms make it hold:
//   1. admission runs serially in request order (the session table is a
//      pure function of the charge sequence);
//   2. cache probes/inserts run serially in request order, so LRU motion
//      and hit/miss/eviction counters never depend on scheduling — only
//      the aggregate computation and the per-request noise fan out;
//   3. noise for request number i (a process-lifetime counter) draws from
//      Rng(seed).substream(i), a pure function of (seed, i);
//   4. a cached aggregate is a pure function of its key — its dummy draw
//      seeds from the key hash — so cache capacity (hence eviction) can
//      change which work is *recomputed* but never a released vector.
// serve_concurrent() keeps 3 and 4 (vectors depend only on the arrival
// order that assigns noise indices) but runs admission lock-free, so a
// single connection issuing requests sequentially reproduces the batch
// path bit-for-bit while concurrent connections remain merely
// linearizable. The two paths share the session table and cache but
// keep separate stats (stats() vs concurrent_stats()); interleaving
// them forfeits the batch path's replay determinism, nothing else.
//
// Eviction and renewal: advance_epoch() ticks the session table's and
// the cache's logical clocks, runs their sweeps, and renews windowed
// budgets. Cache expiry never changes a released vector (see 4);
// session expiry RENEWS the user's budget on next contact, and — when
// session_renew_epochs is set — every resident budget renews when the
// epoch clock crosses an accounting-window boundary (dp::Ledger's
// kWindowedRenewal policy, fleet-wide). The owner opts in and drives
// the clock explicitly, so eviction/renewal timing is part of the call
// sequence, never of thread scheduling.
//
// Continual releases: serve_stream() serves per-tile sliding-window
// aggregate streams (an attached StreamSource, e.g. the mia releaser)
// through the same machinery — one fixed-point admission charge of
// W x the policy cost for a W-window block, the raw block cached under
// a kind-1 ReleaseCacheKey, per-request Laplace noise from the
// request's own substream.
//
// Privacy note: the served aggregate is computed from the cloaked
// region's canonical dummies, not from the requester's exact location, so
// the pre-noise value is already k-anonymous (that is exactly what makes
// it shareable across users); the per-request Gaussian/geometric noise
// then provides the (eps, delta) guarantee that the ledger composes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloak/kcloak.h"
#include "defense/opt_defense.h"
#include "service/release_cache.h"
#include "service/session_table.h"
#include "service/stream_source.h"

namespace poiprivacy::service {

/// A named release policy: the DP mechanism parameters one request class
/// is served under (k, epsilon, delta, noise kind, beta).
struct ReleasePolicy {
  std::string name;
  defense::DpDefenseConfig release;
};

struct ReleaseRequest {
  UserId user_id = 0;
  geo::Point location;
  double radius = 1.0;          ///< query range r in km
  PolicyId policy = 0;          ///< index into ServiceConfig::policies

  friend bool operator==(const ReleaseRequest&,
                         const ReleaseRequest&) = default;
};

/// A continual-release request: one series of the attached StreamSource
/// over the window range [begin_epoch, end_epoch), noised under a
/// policy. Admission charges num_windows x the policy cost in one CAS.
struct StreamRequest {
  UserId user_id = 0;
  std::uint32_t series = 0;       ///< index into the source's series
  std::uint32_t begin_epoch = 0;  ///< released range [begin, end)
  std::uint32_t end_epoch = 0;
  PolicyId policy = 0;            ///< index into ServiceConfig::policies

  friend bool operator==(const StreamRequest&,
                         const StreamRequest&) = default;
};

enum class ReleaseStatus : std::uint8_t {
  kGranted = 0,          ///< served under the requested policy
  kDegraded,             ///< budget-limited; served under degrade_policy
  kBudgetExhausted,      ///< refused: no admissible policy fits the budget
  kInvalidRequest,       ///< unknown policy or nonpositive radius
};

inline constexpr ReleaseStatus kAllStatuses[] = {
    ReleaseStatus::kGranted,
    ReleaseStatus::kDegraded,
    ReleaseStatus::kBudgetExhausted,
    ReleaseStatus::kInvalidRequest,
};

const char* status_name(ReleaseStatus status) noexcept;

struct ReleaseResult {
  ReleaseStatus status = ReleaseStatus::kInvalidRequest;
  PolicyId served_policy = 0;    ///< meaningful when a vector was released
  bool cache_hit = false;        ///< aggregate came from the release cache
  poi::FrequencyVector vector;   ///< empty unless granted/degraded
  dp::PrivacyParams spent;       ///< user's composed budget after this call

  friend bool operator==(const ReleaseResult& a, const ReleaseResult& b) {
    return a.status == b.status && a.served_policy == b.served_policy &&
           a.cache_hit == b.cache_hit && a.vector == b.vector &&
           a.spent.epsilon == b.spent.epsilon && a.spent.delta == b.spent.delta;
  }
};

struct ServiceConfig {
  /// At least one policy; requests address them by index.
  std::vector<ReleasePolicy> policies;
  /// When set, a request that would blow the budget under its own policy
  /// is served under this (cheaper) policy instead of being refused.
  std::optional<PolicyId> degrade_policy;
  /// Per-user budget ceilings (fixed-point basic composition; see
  /// dp/budget.h for the quantization contract).
  double epsilon_ceiling = 8.0;
  double delta_ceiling = 0.5;
  /// Retained for config compatibility: the fixed-point ledger composes
  /// basically, which is never looser than tightest-of(basic, advanced);
  /// dp::Ledger's exact backend still offers the advanced bound offline.
  double advanced_slack = 1e-6;
  /// Session/budget table sizing (hard memory bound; fail-closed).
  std::size_t session_capacity = 1 << 16;
  std::size_t session_shards = 64;
  /// Sessions idle this many epochs are reclaimed (budget renewal) by
  /// advance_epoch(); 0 = sessions never expire.
  std::uint64_t session_ttl_epochs = 0;
  /// Total release-cache entries (sharded LRU) and expiry policy.
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 16;
  std::uint64_t cache_ttl_epochs = 0;  ///< 0 = entries never expire
  /// Epochs per budget-accounting window: advance_epoch() renews every
  /// resident session budget when the clock crosses a window boundary
  /// (0 = budgets never renew; ceilings bound the session lifetime).
  std::uint64_t session_renew_epochs = 0;
  /// Bounded queue: enqueue() drains a batch once this many are pending.
  std::size_t max_batch = 256;
  /// Master seed for noise substreams and canonical dummy draws.
  std::uint64_t seed = 1234;
};

/// Deterministic service counters (every batch-path field bit-identical
/// for any thread count). Cache hits/misses are the *effective* ones — a
/// request whose key another request in the same batch is already
/// computing counts as a hit; misses therefore equal aggregates actually
/// computed.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t granted = 0;
  std::uint64_t degraded = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t invalid = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t batches = 0;
  std::uint64_t users = 0;  ///< sessions created so far

  std::uint64_t count(ReleaseStatus status) const noexcept;
  double cache_hit_rate() const noexcept {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(lookups);
  }
  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

class ReleaseService {
 public:
  /// Throws std::invalid_argument on an empty/ill-formed policy list, a
  /// dangling degrade_policy index, or a zero session capacity.
  ReleaseService(const poi::PoiDatabase& db,
                 const cloak::AdaptiveIntervalCloaker& cloaker,
                 ServiceConfig config);

  /// Queues one request; when max_batch are pending the queue drains onto
  /// the thread pool and the batch's results are collected for flush().
  void enqueue(const ReleaseRequest& request);

  /// Drains the remaining queue and returns every result collected since
  /// the last flush, in enqueue order.
  std::vector<ReleaseResult> flush();

  /// enqueue() + flush() over a whole trace. Requires no pending
  /// requests from a previous partial enqueue.
  std::vector<ReleaseResult> serve(std::span<const ReleaseRequest> requests);

  /// Convenience single-request path (a batch of one); same requirement.
  ReleaseResult serve_one(const ReleaseRequest& request);

  /// Thread-safe per-request path for the socket front-end: lock-free
  /// admission, shared cache, per-arrival noise substreams. Safe to call
  /// from many threads at once; counts into concurrent_stats(). No batch
  /// coalescing — concurrent cold probes of one key may compute the
  /// (identical, key-pure) aggregate more than once.
  ReleaseResult serve_concurrent(const ReleaseRequest& request);

  /// Serves one continual-release stream request (thread-safe, counts
  /// into concurrent_stats()). Requires an attached StreamSource;
  /// without one every stream request is kInvalidRequest. The released
  /// vector holds num_windows noised counts for the requested series.
  ReleaseResult serve_stream(const StreamRequest& request);

  /// Attaches the continual-release source served by serve_stream().
  /// Not thread-safe against in-flight stream requests — attach before
  /// serving. The source must outlive the service.
  void attach_stream_source(const StreamSource* source) noexcept {
    stream_source_ = source;
  }
  const StreamSource* stream_source() const noexcept {
    return stream_source_;
  }

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Ticks the session-table and release-cache epoch clocks and runs
  /// both sweeps. Deterministic given the call sequence; the owner
  /// drives it (batch boundaries, a wall-clock ticker, ...).
  void advance_epoch(std::uint64_t ticks = 1);

  const ServiceStats& stats() const noexcept { return stats_; }
  /// Counters of the serve_concurrent path (atomic snapshot; `users`
  /// reports table sessions created, `batches` is always 0).
  ServiceStats concurrent_stats() const;
  /// Raw cache counters (insertions/evictions/residency). The service
  /// stats' hits/misses are the effective per-request ones.
  ReleaseCacheStats cache_stats() const { return cache_.stats(); }
  SessionTableStats session_stats() const { return sessions_.stats(); }
  /// Wall-clock seconds spent draining each batch, in drain order (for
  /// latency reporting; not part of the determinism contract).
  const std::vector<double>& batch_seconds() const noexcept {
    return batch_seconds_;
  }
  const std::vector<std::size_t>& batch_sizes() const noexcept {
    return batch_sizes_;
  }

  /// Budget state of one user; zero-spend if the user was never admitted
  /// (or the session TTL-expired — budget renewal).
  dp::PrivacyParams user_spent(UserId user) const;
  dp::PrivacyParams user_remaining(UserId user) const;
  std::size_t num_users() const noexcept { return sessions_.size(); }

  const ServiceConfig& config() const noexcept { return config_; }

 private:
  struct Admitted;
  struct ConcurrentCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> granted{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> budget_exhausted{0};
    std::atomic<std::uint64_t> invalid{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
  };

  /// The admission decision shared by both serving paths: try the
  /// requested policy, fall back to the degrade policy, else refuse.
  /// Returns the status and fills `served` on grant/degrade.
  ReleaseStatus admit(UserId user, PolicyId requested, PolicyId& served);

  void serve_batch(std::span<const ReleaseRequest> requests,
                   std::vector<ReleaseResult>& results);
  void drain_queue();
  CloakAggregate compute_aggregate(const ReleaseCacheKey& key) const;
  poi::FrequencyVector noised_release(const defense::DpDefenseConfig& policy,
                                      const CloakAggregate& aggregate,
                                      common::Rng& rng) const;

  const poi::PoiDatabase* db_;
  const cloak::AdaptiveIntervalCloaker* cloaker_;
  const StreamSource* stream_source_ = nullptr;
  ServiceConfig config_;
  std::vector<dp::FixedBudget> policy_costs_;  ///< quantized, by PolicyId
  ReleaseCache cache_;
  SessionTable sessions_;
  std::deque<ReleaseRequest> queue_;
  std::vector<ReleaseResult> collected_;
  ServiceStats stats_;
  ConcurrentCounters concurrent_;
  std::vector<double> batch_seconds_;
  std::vector<std::size_t> batch_sizes_;
  std::atomic<std::uint64_t> next_request_index_{0};  ///< noise substreams
  common::Rng noise_base_;
  common::Rng aggregate_base_;
};

}  // namespace poiprivacy::service
