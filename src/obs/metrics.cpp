#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "eval/json.h"

namespace poiprivacy::obs {

#ifndef POIPRIVACY_NO_METRICS

namespace {

/// Exact-percentile sample cap per histogram; see the header.
constexpr std::size_t kMaxExactSamples = 65536;

/// Per-thread sample buffer. Only the owning thread appends; scrapes lock
/// the buffer mutex, so the uncontended fast path stays one lock + one
/// push_back.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<std::pair<Histogram*, double>> samples;
};

/// All live buffers, in thread-registration order — the order scrapes
/// merge them in, which makes the merged sample sequence a deterministic
/// function of what each thread recorded.
struct BufferList {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferList& buffer_list() {
  static BufferList* list = new BufferList;  // leaked: usable at exit
  return *list;
}

ThreadBuffer& this_thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    BufferList& list = buffer_list();
    const std::lock_guard<std::mutex> lock(list.mu);
    list.buffers.push_back(fresh);
    return fresh;
  }();
  return *buf;
}

/// Relaxed-atomic add for doubles (fetch_add on atomic<double> is C++20
/// but not universally lock-free; the CAS loop is).
void atomic_add(std::atomic<double>& target, double d) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

std::size_t counter_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Linear interpolation at rank q*(n-1) over a sorted sample — the same
/// rule as common::percentiles (documented in common/stats.h).
double interpolate(const std::vector<double>& sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  cells_[counter_thread_slot() % kCells].v.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // nonpositive and NaN
  const double ratio = v / kBase;
  if (ratio <= 1.0) return 1;
  // Smallest i with kBase * 2^(i-1) >= v, i.e. i = 1 + ceil(log2(ratio)).
  const int e = std::ilogb(ratio);
  const double floor_pow = std::ldexp(1.0, e);
  const std::size_t i =
      2 + static_cast<std::size_t>(e) - (ratio <= floor_pow ? 1 : 0);
  return std::min(i, kBuckets - 1);
}

double Histogram::bucket_upper_bound(std::size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  return kBase * std::ldexp(1.0, static_cast<int>(bucket) - 1);
}

void Histogram::record(double v) noexcept {
  bucket_counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
  ThreadBuffer& buf = this_thread_buffer();
  const std::lock_guard<std::mutex> lock(buf.mu);
  buf.samples.emplace_back(this, v);
}

HistogramSnapshot Histogram::snapshot() { return owner_->snapshot_of(*this); }

Registry::~Registry() {
  // Pull this registry's samples out of the thread buffers so no buffer is
  // left holding a pointer into the entries we are about to free.
  const std::lock_guard<std::mutex> lock(mu_);
  scrape_locked();
}

Registry::Entry& Registry::entry_for(const std::string& name) {
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    return *it->second;
  }
  entries_.push_back(std::make_unique<Entry>());
  Entry& entry = *entries_.back();
  entry.name = name;
  by_name_.emplace(name, &entry);
  return entry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entry_for(name);
  if (!entry.counter) {
    if (entry.gauge || entry.histogram) {
      throw std::logic_error("obs: '" + name +
                             "' already registered as a different kind");
    }
    entry.counter.reset(new Counter());
  }
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entry_for(name);
  if (!entry.gauge) {
    if (entry.counter || entry.histogram) {
      throw std::logic_error("obs: '" + name +
                             "' already registered as a different kind");
    }
    entry.gauge.reset(new Gauge());
  }
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entry_for(name);
  if (!entry.histogram) {
    if (entry.counter || entry.gauge) {
      throw std::logic_error("obs: '" + name +
                             "' already registered as a different kind");
    }
    entry.histogram.reset(new Histogram(this));
  }
  return *entry.histogram;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Registry::scrape_locked() {
  BufferList& list = buffer_list();
  const std::lock_guard<std::mutex> list_lock(list.mu);
  for (auto it = list.buffers.begin(); it != list.buffers.end();) {
    ThreadBuffer& buf = **it;
    {
      const std::lock_guard<std::mutex> buf_lock(buf.mu);
      auto keep = buf.samples.begin();
      for (auto& [hist, v] : buf.samples) {
        if (hist->owner_ != this) {
          *keep++ = {hist, v};
          continue;
        }
        if (hist->samples_.size() < kMaxExactSamples) {
          hist->samples_.push_back(v);
        } else {
          ++hist->dropped_;
        }
      }
      buf.samples.erase(keep, buf.samples.end());
    }
    // A use count of 1 means the owning thread exited (only the owner
    // appends), so an empty buffer can be dropped safely.
    if (it->use_count() == 1 && (*it)->samples.empty()) {
      it = list.buffers.erase(it);
    } else {
      ++it;
    }
  }
}

HistogramSnapshot Registry::snapshot_of(Histogram& hist) {
  const std::lock_guard<std::mutex> lock(mu_);
  scrape_locked();
  HistogramSnapshot snap;
  snap.count = hist.count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.sum = hist.sum_.load(std::memory_order_relaxed);
  snap.min = hist.min_.load(std::memory_order_relaxed);
  snap.max = hist.max_.load(std::memory_order_relaxed);
  snap.dropped = hist.dropped_;
  std::vector<double> sorted = hist.samples_;
  std::sort(sorted.begin(), sorted.end());
  snap.p50 = interpolate(sorted, 0.50);
  snap.p95 = interpolate(sorted, 0.95);
  snap.p99 = interpolate(sorted, 0.99);
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t n =
        hist.bucket_counts_[b].load(std::memory_order_relaxed);
    if (n > 0) snap.buckets.emplace_back(Histogram::bucket_upper_bound(b), n);
  }
  return snap;
}

std::string Registry::table() {
  // Snapshots take mu_ themselves, so collect the entry list first.
  std::vector<Entry*> entries;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
  }
  std::string out;
  char buf[256];
  for (Entry* entry : entries) {
    if (entry->counter) {
      std::snprintf(buf, sizeof buf, "%-44s counter    %llu\n",
                    entry->name.c_str(),
                    static_cast<unsigned long long>(entry->counter->value()));
    } else if (entry->gauge) {
      std::snprintf(buf, sizeof buf, "%-44s gauge      %lld\n",
                    entry->name.c_str(),
                    static_cast<long long>(entry->gauge->value()));
    } else {
      const HistogramSnapshot snap = entry->histogram->snapshot();
      std::snprintf(buf, sizeof buf,
                    "%-44s histogram  count=%llu mean=%.3g p50=%.3g "
                    "p95=%.3g p99=%.3g max=%.3g\n",
                    entry->name.c_str(),
                    static_cast<unsigned long long>(snap.count), snap.mean(),
                    snap.p50, snap.p95, snap.p99, snap.max);
    }
    out += buf;
  }
  return out;
}

void Registry::render_json(eval::JsonWriter& json) {
  std::vector<Entry*> entries;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
  }
  json.begin_object();
  for (Entry* entry : entries) {
    if (entry->counter) {
      json.field(entry->name, entry->counter->value());
    } else if (entry->gauge) {
      json.field(entry->name,
                 static_cast<std::int64_t>(entry->gauge->value()));
    } else {
      const HistogramSnapshot snap = entry->histogram->snapshot();
      json.key(entry->name);
      json.begin_object();
      json.field("count", snap.count);
      json.field("mean", snap.mean());
      json.field("min", snap.min);
      json.field("max", snap.max);
      json.field("p50", snap.p50);
      json.field("p95", snap.p95);
      json.field("p99", snap.p99);
      if (snap.dropped > 0) json.field("dropped", snap.dropped);
      json.end_object();
    }
  }
  json.end_object();
}

std::string Registry::json() {
  eval::JsonWriter writer;
  render_json(writer);
  return writer.str();
}

Registry& global_registry() {
  static Registry* registry = new Registry;  // leaked: usable at exit
  return *registry;
}

namespace {
std::string* g_dump_path = nullptr;
}  // namespace

void dump_on_exit(const std::string& path) {
  if (g_dump_path != nullptr) {
    *g_dump_path = path;
    return;
  }
  g_dump_path = new std::string(path);
  global_registry();  // construct before registering, for exit ordering
  std::atexit([] {
    const std::string json = global_registry().json();
    if (g_dump_path->empty()) {
      std::cerr << json << "\n";
    } else {
      std::ofstream(*g_dump_path) << json << "\n";
    }
  });
}

#else  // POIPRIVACY_NO_METRICS

void Registry::render_json(eval::JsonWriter& json) {
  json.begin_object();
  json.end_object();
}

Registry& global_registry() {
  static Registry* registry = new Registry;
  return *registry;
}

#endif  // POIPRIVACY_NO_METRICS

}  // namespace poiprivacy::obs
