// Observability layer: process-wide metrics for the serving, evaluation
// and parallel subsystems.
//
// Three metric kinds, owned by a Registry and handed out as stable
// references (find-or-create by dotted name, e.g. "service.requests"):
//
//   * Counter — monotone; increments go to one of 16 cache-line-padded
//     relaxed-atomic cells selected by a per-thread slot, so hot-path
//     `add()` never contends; `value()` sums the cells.
//   * Gauge   — a last-write-wins relaxed-atomic level (queue depth,
//     resident cache entries).
//   * Histogram — log-bucketed (factor-2 buckets from 1 ns) distribution
//     with count/sum/min/max, plus *exact* p50/p95/p99: every recorded
//     value is also appended to a per-thread sample buffer, and at scrape
//     time the Registry merges the buffers in buffer-registration order
//     (append order within a buffer), so the merged sample sequence is a
//     deterministic function of what was recorded. Percentiles use the
//     same linear-interpolation rule as common::percentiles (rank
//     q*(n-1), NumPy "linear"). Exact samples are capped at 65536 per
//     histogram; beyond the cap values still land in the buckets and the
//     overflow is reported as Snapshot::dropped.
//
// `Span` is a scoped wall-clock timer recording into a Histogram on
// destruction.
//
// Determinism contract: instrumentation only observes — it never feeds a
// value back into released vectors, RNG streams, or evaluation stats.
// tests/obs_determinism_test.cpp enforces this by running the service and
// eval pipelines at --threads 1/2/8 with mid-run scrapes and asserting
// bit-identical results.
//
// Compiling with -DPOIPRIVACY_NO_METRICS (CMake option of the same name)
// replaces every type below with an empty-body stub, so all
// instrumentation — including Span's clock reads — is removed at compile
// time.
//
// Layering: this library sits *below* poi_common so that common/parallel
// can be instrumented; it links only poi_json (eval/json.h, which has no
// further dependencies).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace poiprivacy::eval {
class JsonWriter;
}  // namespace poiprivacy::eval

namespace poiprivacy::obs {

#ifndef POIPRIVACY_NO_METRICS
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

/// One histogram's scraped state. All fields are zero (never NaN) for a
/// histogram that recorded nothing.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Samples beyond the exact-percentile cap (bucket counts still include
  /// them; the percentiles cover the first 65536 samples only).
  std::uint64_t dropped = 0;
  /// (inclusive upper bound, count) per nonzero log bucket, ascending.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

#ifndef POIPRIVACY_NO_METRICS

class Registry;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  Counter() = default;

  static constexpr std::size_t kCells = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;

  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  /// Records one value: log bucket + count/sum/min/max (relaxed atomics)
  /// and the calling thread's sample buffer (for exact percentiles).
  void record(double v) noexcept;

  /// Scrapes the owning registry's thread buffers and summarizes.
  HistogramSnapshot snapshot();

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(Registry* owner) noexcept : owner_(owner) {}

  // Bucket 0 holds v <= 0; bucket i >= 1 holds (kBase*2^(i-2), kBase*2^(i-1)].
  static constexpr std::size_t kBuckets = 64;
  static constexpr double kBase = 1e-9;  ///< first bucket upper bound: 1 ns
  static std::size_t bucket_of(double v) noexcept;
  static double bucket_upper_bound(std::size_t bucket) noexcept;

  Registry* owner_;
  std::array<std::atomic<std::uint64_t>, kBuckets> bucket_counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  // Merged exact samples; guarded by the registry's mutex (scrape-time
  // only — the hot path touches per-thread buffers instead).
  std::vector<double> samples_;
  std::uint64_t dropped_ = 0;
};

/// Scoped wall-clock timer: records elapsed seconds into the histogram
/// when destroyed (or on an early stop()).
class Span {
 public:
  explicit Span(Histogram& hist) noexcept
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Records now instead of at scope exit; idempotent.
  void stop() noexcept {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->record(std::chrono::duration<double>(elapsed).count());
    hist_ = nullptr;
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Owns metrics by name. Handles are stable for the registry's lifetime;
/// rendering walks metrics in registration order.
class Registry {
 public:
  Registry() = default;
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Throws std::logic_error if `name` is already
  /// registered as a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::size_t size() const;

  /// Human-readable table, one metric per line, registration order.
  std::string table();

  /// Flat JSON object: counters/gauges as numbers, histograms as nested
  /// objects with count/mean/min/max/p50/p95/p99.
  void render_json(eval::JsonWriter& json);
  std::string json();

 private:
  friend class Histogram;

  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Drains every live thread buffer (in buffer-registration order) into
  /// the owned histograms' sample vectors. Called under mu_.
  void scrape_locked();
  HistogramSnapshot snapshot_of(Histogram& hist);
  Entry& entry_for(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  std::unordered_map<std::string, Entry*> by_name_;
};

/// The process-wide registry every built-in instrumentation point uses.
/// Never destroyed, so exit-time dump handlers can safely render it.
Registry& global_registry();

/// Installs (once) an exit handler that renders the global registry as
/// JSON — to stderr when `path` is empty, else to the file at `path`.
/// Subsequent calls just update the path.
void dump_on_exit(const std::string& path);

#else  // POIPRIVACY_NO_METRICS — same API, empty bodies, zero overhead.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void record(double) noexcept {}
  HistogramSnapshot snapshot() { return {}; }
  std::uint64_t count() const noexcept { return 0; }
};

class Span {
 public:
  explicit Span(Histogram&) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void stop() noexcept {}
};

class Registry {
 public:
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&) { return histogram_; }
  std::size_t size() const { return 0; }
  std::string table() { return "(metrics compiled out)\n"; }
  void render_json(eval::JsonWriter& json);
  std::string json() { return "{}"; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

Registry& global_registry();
inline void dump_on_exit(const std::string&) {}

#endif  // POIPRIVACY_NO_METRICS

}  // namespace poiprivacy::obs
