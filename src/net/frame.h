// Length-prefixed binary wire format for the release service.
//
// The socket front-end (server.h) speaks the simplest protocol that can
// carry a ReleaseRequest/ReleaseResult pair: every message is one frame,
//
//   [u32 little-endian body length][body bytes]
//
// with the body length capped (kMaxFrameBytes) so a hostile or corrupt
// peer cannot make the server allocate unboundedly. Integers are
// little-endian, doubles are their IEEE-754 bit patterns as u64 —
// serialization is byte-exact, so a vector released over the wire
// compares bit-identical to one released in process.
//
//   request body (kRequestBodyBytes, fixed):
//     u64 user_id | f64 x | f64 y | f64 radius | u32 policy
//   stream request body (kStreamRequestBodyBytes, fixed):
//     u8 kind (= 1) | u64 user_id | u32 series | u32 begin_epoch |
//     u32 end_epoch | u32 policy
//   response body (variable; shared by both request kinds):
//     u8 status | u32 served_policy | u8 cache_hit |
//     f64 spent_epsilon | f64 spent_delta | u32 count | count x i32
//
// The two request kinds are disambiguated by body length (36 vs 25
// bytes — the lengths can never collide), so the classic request needs
// no version byte and stays byte-identical on the wire.
//
// The codec layer (encode_/decode_) is pure — bytes in, structs out — so
// tests exercise truncation/oversize/round-trip without a socket. The
// frame I/O layer (read_frame/write_frame) handles short reads/writes
// and EINTR on a blocking fd; a clean EOF *between* frames is kClosed,
// an EOF inside a frame is kError.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "service/release_service.h"

namespace poiprivacy::net {

/// Hard cap on a frame body. A response is dominated by the released
/// vector (num_types i32s); 1 MiB allows ~260k POI types.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;
inline constexpr std::size_t kRequestBodyBytes = 8 + 8 + 8 + 8 + 4;
inline constexpr std::size_t kStreamRequestBodyBytes = 1 + 8 + 4 + 4 + 4 + 4;
/// The kind byte opening a stream-request body.
inline constexpr std::uint8_t kStreamRequestKind = 1;

// -- codec (pure; nullopt on malformed bytes) --

void encode_request(const service::ReleaseRequest& request,
                    std::vector<std::uint8_t>& out);
std::optional<service::ReleaseRequest> decode_request(
    std::span<const std::uint8_t> body);

void encode_stream_request(const service::StreamRequest& request,
                           std::vector<std::uint8_t>& out);
std::optional<service::StreamRequest> decode_stream_request(
    std::span<const std::uint8_t> body);

void encode_response(const service::ReleaseResult& result,
                     std::vector<std::uint8_t>& out);
std::optional<service::ReleaseResult> decode_response(
    std::span<const std::uint8_t> body);

// -- frame I/O on a blocking fd --

enum class FrameIo : std::uint8_t {
  kOk = 0,     ///< one whole frame read
  kClosed,     ///< clean EOF on a frame boundary
  kTooLarge,   ///< header announced more than max_bytes; nothing consumed after it
  kError,      ///< truncated frame or I/O error
};

/// Reads exactly one frame body into `body` (replaced, not appended).
FrameIo read_frame(int fd, std::vector<std::uint8_t>& body,
                   std::size_t max_bytes = kMaxFrameBytes);

/// Writes one frame (header + body), looping over short writes.
bool write_frame(int fd, std::span<const std::uint8_t> body);

}  // namespace poiprivacy::net
