// Minimal blocking client for the release-service wire protocol — the
// counterpart of server.h used by the loopback bench driver
// (bench/scenarios/service_throughput) and the framing tests.
//
// One TCP connection, synchronous call() or split send()/recv() for
// pipelining (the server answers frames strictly in arrival order per
// connection, so k sends followed by k recvs match up 1:1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.h"

namespace poiprivacy::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to address:port; a default-constructed (disconnected)
  /// client on failure.
  static Client connect(const std::string& address, std::uint16_t port);

  bool connected() const noexcept { return fd_ >= 0; }

  bool send(const service::ReleaseRequest& request);
  bool send(const service::StreamRequest& request);
  std::optional<service::ReleaseResult> recv();
  /// send() + recv(); nullopt on any transport or decode failure.
  std::optional<service::ReleaseResult> call(
      const service::ReleaseRequest& request);
  std::optional<service::ReleaseResult> call(
      const service::StreamRequest& request);

  void close();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace poiprivacy::net
