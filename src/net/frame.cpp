#include "net/frame.h"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace poiprivacy::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-unchecked little-endian reads; callers check sizes up front.
std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

double get_f64(const std::uint8_t* p) noexcept {
  return std::bit_cast<double>(get_u64(p));
}

bool valid_status(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(service::ReleaseStatus::kInvalidRequest);
}

/// Reads exactly n bytes. 0 = done, 1 = clean EOF before any byte,
/// -1 = error or EOF mid-read.
int read_exact(int fd, std::uint8_t* buf, std::size_t n) noexcept {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got == 0 ? 1 : -1;
    if (errno == EINTR) continue;
    return -1;
  }
  return 0;
}

bool write_exact(int fd, const std::uint8_t* buf, std::size_t n) noexcept {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, buf + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

void encode_request(const service::ReleaseRequest& request,
                    std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(kRequestBodyBytes);
  put_u64(out, request.user_id);
  put_f64(out, request.location.x);
  put_f64(out, request.location.y);
  put_f64(out, request.radius);
  put_u32(out, request.policy);
}

std::optional<service::ReleaseRequest> decode_request(
    std::span<const std::uint8_t> body) {
  if (body.size() != kRequestBodyBytes) return std::nullopt;
  service::ReleaseRequest request;
  const std::uint8_t* p = body.data();
  request.user_id = get_u64(p);
  request.location.x = get_f64(p + 8);
  request.location.y = get_f64(p + 16);
  request.radius = get_f64(p + 24);
  request.policy = get_u32(p + 32);
  return request;
}

void encode_stream_request(const service::StreamRequest& request,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(kStreamRequestBodyBytes);
  out.push_back(kStreamRequestKind);
  put_u64(out, request.user_id);
  put_u32(out, request.series);
  put_u32(out, request.begin_epoch);
  put_u32(out, request.end_epoch);
  put_u32(out, request.policy);
}

std::optional<service::StreamRequest> decode_stream_request(
    std::span<const std::uint8_t> body) {
  if (body.size() != kStreamRequestBodyBytes) return std::nullopt;
  const std::uint8_t* p = body.data();
  if (p[0] != kStreamRequestKind) return std::nullopt;
  service::StreamRequest request;
  request.user_id = get_u64(p + 1);
  request.series = get_u32(p + 9);
  request.begin_epoch = get_u32(p + 13);
  request.end_epoch = get_u32(p + 17);
  request.policy = get_u32(p + 21);
  return request;
}

void encode_response(const service::ReleaseResult& result,
                     std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(1 + 4 + 1 + 8 + 8 + 4 + result.vector.size() * 4);
  out.push_back(static_cast<std::uint8_t>(result.status));
  put_u32(out, result.served_policy);
  out.push_back(result.cache_hit ? 1 : 0);
  put_f64(out, result.spent.epsilon);
  put_f64(out, result.spent.delta);
  put_u32(out, static_cast<std::uint32_t>(result.vector.size()));
  for (const std::int32_t v : result.vector) {
    put_u32(out, static_cast<std::uint32_t>(v));
  }
}

std::optional<service::ReleaseResult> decode_response(
    std::span<const std::uint8_t> body) {
  constexpr std::size_t kHeader = 1 + 4 + 1 + 8 + 8 + 4;
  if (body.size() < kHeader) return std::nullopt;
  const std::uint8_t* p = body.data();
  if (!valid_status(p[0]) || p[5] > 1) return std::nullopt;
  service::ReleaseResult result;
  result.status = static_cast<service::ReleaseStatus>(p[0]);
  result.served_policy = get_u32(p + 1);
  result.cache_hit = p[5] != 0;
  result.spent.epsilon = get_f64(p + 6);
  result.spent.delta = get_f64(p + 14);
  const std::uint32_t count = get_u32(p + 22);
  if (body.size() != kHeader + std::size_t{count} * 4) return std::nullopt;
  result.vector.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    result.vector[i] = static_cast<std::int32_t>(get_u32(p + kHeader + i * 4));
  }
  return result;
}

FrameIo read_frame(int fd, std::vector<std::uint8_t>& body,
                   std::size_t max_bytes) {
  std::uint8_t header[4];
  switch (read_exact(fd, header, sizeof header)) {
    case 1:
      return FrameIo::kClosed;
    case -1:
      return FrameIo::kError;
    default:
      break;
  }
  const std::uint32_t length = get_u32(header);
  if (length > max_bytes) return FrameIo::kTooLarge;
  body.resize(length);
  if (length > 0 && read_exact(fd, body.data(), length) != 0) {
    return FrameIo::kError;
  }
  return FrameIo::kOk;
}

bool write_frame(int fd, std::span<const std::uint8_t> body) {
  if (body.size() > kMaxFrameBytes) return false;
  std::uint8_t header[4];
  const auto length = static_cast<std::uint32_t>(body.size());
  header[0] = static_cast<std::uint8_t>(length);
  header[1] = static_cast<std::uint8_t>(length >> 8);
  header[2] = static_cast<std::uint8_t>(length >> 16);
  header[3] = static_cast<std::uint8_t>(length >> 24);
  if (!write_exact(fd, header, sizeof header)) return false;
  return body.empty() || write_exact(fd, body.data(), body.size());
}

}  // namespace poiprivacy::net
