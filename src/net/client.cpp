#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace poiprivacy::net {

Client Client::connect(const std::string& address, std::uint16_t port) {
  Client client;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return client;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
          0) {
    ::close(fd);
    return client;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  client.fd_ = fd;
  return client;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::send(const service::ReleaseRequest& request) {
  if (fd_ < 0) return false;
  encode_request(request, scratch_);
  return write_frame(fd_, scratch_);
}

bool Client::send(const service::StreamRequest& request) {
  if (fd_ < 0) return false;
  encode_stream_request(request, scratch_);
  return write_frame(fd_, scratch_);
}

std::optional<service::ReleaseResult> Client::recv() {
  if (fd_ < 0) return std::nullopt;
  if (read_frame(fd_, scratch_) != FrameIo::kOk) return std::nullopt;
  return decode_response(scratch_);
}

std::optional<service::ReleaseResult> Client::call(
    const service::ReleaseRequest& request) {
  if (!send(request)) return std::nullopt;
  return recv();
}

std::optional<service::ReleaseResult> Client::call(
    const service::StreamRequest& request) {
  if (!send(request)) return std::nullopt;
  return recv();
}

}  // namespace poiprivacy::net
