#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/frame.h"
#include "obs/metrics.h"

namespace poiprivacy::net {

namespace {

struct NetMetrics {
  obs::Counter& connections;
  obs::Counter& frames;
  obs::Counter& protocol_errors;

  static NetMetrics& get() {
    obs::Registry& reg = obs::global_registry();
    static NetMetrics* metrics = new NetMetrics{
        reg.counter("net.connections_accepted"),
        reg.counter("net.frames_served"),
        reg.counter("net.protocol_errors"),
    };
    return *metrics;
  }
};

}  // namespace

ReleaseServer::ReleaseServer(service::ReleaseService& service,
                             ServerConfig config)
    : service_(&service), config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
}

ReleaseServer::~ReleaseServer() { stop(); }

void ReleaseServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("net: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net: bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, config_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net: cannot bind " + config_.bind_address + ":" +
                             std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  closed_ = false;
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<common::ThreadPool>(config_.workers);
  // run_tasks turns the fork-join pool into a plain worker group: each of
  // the `workers` tasks is one long-lived connection loop.
  dispatch_thread_ = std::thread([this] {
    pool_->run_tasks(config_.workers,
                     [this](std::size_t) { connection_loop(); });
  });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ReleaseServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept(), then the queue, then any worker mid-read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  pool_.reset();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ReleaseServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken): stop accepting
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().connections.add(1);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        ::close(fd);
        return;
      }
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

bool ReleaseServer::pop_connection(int& fd) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return false;
  fd = pending_.front();
  pending_.pop_front();
  active_.push_back(fd);
  return true;
}

void ReleaseServer::connection_loop() {
  int fd = -1;
  while (pop_connection(fd)) {
    serve_connection(fd);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      active_.erase(std::find(active_.begin(), active_.end(), fd));
    }
    ::close(fd);
  }
}

void ReleaseServer::serve_connection(int fd) {
  NetMetrics& metrics = NetMetrics::get();
  std::vector<std::uint8_t> body;
  std::vector<std::uint8_t> reply;
  for (;;) {
    switch (read_frame(fd, body, config_.max_frame_bytes)) {
      case FrameIo::kOk:
        break;
      case FrameIo::kClosed:
        return;
      case FrameIo::kTooLarge:
      case FrameIo::kError:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.protocol_errors.add(1);
        return;
    }
    // Request kinds are disambiguated by body length (36 vs 25 bytes).
    service::ReleaseResult result;
    if (body.size() == kStreamRequestBodyBytes) {
      const std::optional<service::StreamRequest> request =
          decode_stream_request(body);
      if (!request) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.protocol_errors.add(1);
        return;
      }
      result = service_->serve_stream(*request);
    } else {
      const std::optional<service::ReleaseRequest> request =
          decode_request(body);
      if (!request) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.protocol_errors.add(1);
        return;
      }
      result = service_->serve_concurrent(*request);
    }
    encode_response(result, reply);
    if (!write_frame(fd, reply)) return;
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    metrics.frames.add(1);
  }
}

ServerStats ReleaseServer::stats() const {
  ServerStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.frames_served = frames_served_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace poiprivacy::net
