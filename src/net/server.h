// Blocking TCP front-end for the release service.
//
// The serving layer's process boundary: a listener accepts loopback/LAN
// connections, each speaking the length-prefixed frame protocol of
// frame.h (one request frame in, one response frame out, pipelining
// allowed), and every decoded request is answered through
// ReleaseService::serve_concurrent() — the lock-free admission path —
// so the socket tier adds no locking of its own around the service.
//
// Threading model (deliberately boring): one accept thread pushes
// connected fds onto a bounded-by-backlog queue; `workers` long-lived
// connection loops pop fds and own one connection each until it closes.
// The loops run on a private common::ThreadPool (the pool's fork-join
// run_tasks is driven from a dispatcher thread, making it a plain
// worker group), so the server composes with --threads conventions
// without touching the global pool. A worker holding a connection
// serves it to completion — with W workers, at most W concurrent
// connections make progress and further ones wait in the queue; this is
// a deliberate fit for the loopback bench/test use (bounded, simple),
// not a C10K design.
//
// Protocol errors fail the connection, not the server: a malformed or
// oversized frame closes that connection (counted in stats) and the
// worker moves on. stop() shuts down the listener and every live
// connection, then joins; it is idempotent and run by the destructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "service/release_service.h"

namespace poiprivacy::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;   ///< 0 = ephemeral; see ReleaseServer::port()
  std::size_t workers = 4;  ///< concurrent connection loops
  int backlog = 64;
  std::size_t max_frame_bytes = 1 << 20;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t protocol_errors = 0;  ///< connections dropped on bad frames

  friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

class ReleaseServer {
 public:
  /// The service must outlive the server; serve_concurrent is the only
  /// member the server calls, so the owner may keep using the batch path
  /// (at the cost of batch-path replay determinism, as documented there).
  ReleaseServer(service::ReleaseService& service, ServerConfig config);
  ~ReleaseServer();

  ReleaseServer(const ReleaseServer&) = delete;
  ReleaseServer& operator=(const ReleaseServer&) = delete;

  /// Binds + listens + spawns the accept thread and worker group.
  /// Throws std::runtime_error if the socket cannot be bound.
  void start();

  /// Stops accepting, shuts down live connections, joins everything.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (the kernel's pick when config.port == 0).
  std::uint16_t port() const noexcept { return port_; }
  ServerStats stats() const;
  const ServerConfig& config() const noexcept { return config_; }

 private:
  void accept_loop();
  void connection_loop();
  void serve_connection(int fd);
  bool pop_connection(int& fd);

  service::ReleaseService* service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread accept_thread_;
  std::thread dispatch_thread_;  ///< drives pool_.run_tasks(workers, ...)
  std::unique_ptr<common::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker
  std::vector<int> active_;  ///< fds currently owned by workers
  bool closed_ = false;      ///< queue closed; workers drain and exit

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace poiprivacy::net
