// Trajectory-uniqueness attack walkthrough: generate taxi traces, train
// the SVR distance regressor on historical release pairs, then attack a
// fresh pair of successive aggregate releases step by step.
//
//   ./examples/trajectory_attack_demo [--seed N] [--r KM]
#include <iostream>

#include "attack/trajectory_attack.h"
#include "common/flags.h"
#include "common/stats.h"
#include "poi/city_model.h"
#include "traj/generators.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"seed", "r"});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const double r = flags.get("r", 1.0);

  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  const poi::PoiDatabase& db = city.db;

  std::cout << "generating taxi trajectories (T-drive stand-in)...\n";
  common::Rng rng(seed + 3);
  traj::TaxiConfig taxi_config;
  taxi_config.num_taxis = 150;
  taxi_config.points_per_taxi = 60;
  const auto trajectories =
      traj::generate_taxi_trajectories(city, taxi_config, rng);

  const auto pairs =
      traj::extract_release_pairs(trajectories, db, r, 10 * 60);
  std::cout << "qualifying successive-release pairs (changed vector, gap "
               "<= 10 min): "
            << pairs.size() << "\n";
  if (pairs.size() < 40) {
    std::cout << "not enough pairs; increase --seed variety or taxi count\n";
    return 1;
  }

  const std::size_t half = pairs.size() / 2;
  const attack::TrajectoryAttackConfig config;
  const attack::TrajectoryAttack attack(
      db, std::span(pairs.data(), half), r, config, rng);
  std::cout << "SVR distance regressor trained on " << half
            << " historical pairs; validation MAE = "
            << common::fmt(attack.validation_mae_km(), 2)
            << " km, filter tolerance = "
            << common::fmt(attack.tolerance_km(), 2) << " km\n\n";

  // Walk through the first few ambiguous cases the pair filter resolves.
  std::size_t shown = 0;
  std::size_t single = 0;
  std::size_t enhanced = 0;
  std::size_t attempts = 0;
  for (std::size_t i = half; i < pairs.size(); ++i) {
    const traj::ReleasePair& pair = pairs[i];
    const attack::PairInferenceResult result =
        attack.infer(db.freq(pair.first, r), db.freq(pair.second, r),
                     pair.first_time, pair.second_time);
    ++attempts;
    single += result.baseline_unique();
    enhanced += result.enhanced_unique();
    if (!result.baseline_unique() && result.enhanced_unique() && shown < 3) {
      ++shown;
      std::cout << "pair #" << i << ": single-release attack ambiguous ("
                << result.first.candidates.size()
                << " candidates); travelled distance estimated at "
                << common::fmt(result.estimated_distance_km, 2)
                << " km (actual " << common::fmt(pair.distance_km(), 2)
                << " km) -> unique candidate after pair filtering, "
                << common::fmt(
                       geo::distance(
                           db.poi(result.filtered_first_candidates.front())
                               .pos,
                           pair.first),
                       2)
                << " km from the true location\n";
    }
  }
  std::cout << "\nsummary over " << attempts << " attacked pairs (r = " << r
            << " km):\n";
  std::cout << "  single-release success: "
            << common::fmt(static_cast<double>(single) / attempts) << "\n";
  std::cout << "  two-release success:    "
            << common::fmt(static_cast<double>(enhanced) / attempts) << "\n";
  return 0;
}
