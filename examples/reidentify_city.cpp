// City-wide re-identification sweep: measures how much of a city is
// re-identifiable from POI aggregates at different query ranges, for both
// cities and all four location datasets.
//
//   ./examples/reidentify_city [--seed N] [--locations N] [--threads N]
//                              [--metrics[=F]]
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "eval/datasets.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv,
                            {"seed", "locations", common::Flags::kThreadsFlag,
                             common::Flags::kMetricsFlag});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  eval::WorkbenchConfig config;
  config.seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  config.locations_per_dataset =
      static_cast<std::size_t>(flags.get("locations",
                                         static_cast<std::int64_t>(250)));
  const std::size_t threads = flags.apply_threads_flag();
  flags.apply_metrics_flag();

  std::cout << "building cities and datasets (seed " << config.seed
            << ", " << config.locations_per_dataset
            << " locations per dataset, " << threads << " threads)...\n";
  const eval::Workbench bench(config);

  eval::print_section(std::cout,
                      "baseline region re-identification success rate");
  eval::Table table({"dataset", "r=0.5km", "r=1.0km", "r=2.0km", "r=4.0km"});
  for (const eval::DatasetKind kind : eval::kAllDatasets) {
    const poi::PoiDatabase& db = bench.city_of(kind).db;
    std::vector<std::string> row{eval::dataset_name(kind)};
    for (const double r : {0.5, 1.0, 2.0, 4.0}) {
      const eval::AttackStats stats = eval::evaluate_attack(
          db, bench.locations(kind), r, eval::identity_release(db));
      row.push_back(common::fmt(stats.success_rate()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
