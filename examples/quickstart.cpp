// Quickstart: generate a city, release one POI aggregate, re-identify the
// user from it, then protect the release with the DP defense.
//
//   ./examples/quickstart [--seed N]
#include <iostream>

#include "attack/fine_grained.h"
#include "attack/region_reid.h"
#include "cloak/kcloak.h"
#include "common/flags.h"
#include "defense/opt_defense.h"
#include "eval/runner.h"
#include "poi/city_model.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"seed"});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));

  // 1. A synthetic Beijing: ~10k POIs, 177 types, clustered like a city.
  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  const poi::PoiDatabase& db = city.db;
  std::cout << "city: " << db.city_name() << ", " << db.pois().size()
            << " POIs, " << db.num_types() << " types\n";

  // 2. A user at the city centre releases F(l, r): the counts of each POI
  //    type within r = 1 km. No coordinates leave the device.
  common::Rng rng(seed);
  const geo::Point user{rng.uniform(10.0, 20.0), rng.uniform(10.0, 20.0)};
  const double r = 1.0;
  const poi::FrequencyVector released = db.freq(user, r);
  std::cout << "released aggregate: " << poi::total(released)
            << " POIs across " << db.num_types() << " type bins\n";

  // 3. The attacker re-identifies the user from the aggregate alone.
  const attack::RegionReidentifier reid(db);
  const attack::ReidResult result = reid.infer(released, r);
  std::cout << "baseline attack: " << result.candidates.size()
            << " candidate region(s)\n";
  if (result.unique()) {
    const geo::Point anchor = db.poi(result.candidates.front()).pos;
    std::cout << "  -> re-identified to within " << r << " km of ("
              << anchor.x << ", " << anchor.y << "); true user at ("
              << user.x << ", " << user.y << "), distance "
              << geo::distance(anchor, user) << " km\n";

    // 4. The fine-grained attack shrinks the search area below pi r^2.
    const attack::FineGrainedAttack fine(db);
    const attack::FineGrainedResult fg = fine.infer(released, r);
    std::cout << "fine-grained attack: " << fg.aux_anchors.size()
              << " auxiliary anchors, search area " << fg.area_km2
              << " km^2 (baseline " << M_PI * r * r << " km^2)\n";
  }

  // 5. The DP defense: k-cloaked dummies + Gaussian noise + optimization.
  common::Rng pop_rng(seed + 7);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(db.bounds(), 10000, pop_rng), db.bounds());
  defense::DpDefenseConfig dp_config;
  dp_config.epsilon = 1.0;
  const defense::DpDefense dp(db, cloaker, dp_config);
  const poi::FrequencyVector private_release = dp.release(user, r, rng);
  const attack::ReidResult attacked = reid.infer(private_release, r);
  std::cout << "after DP defense: attack finds " << attacked.candidates.size()
            << " candidate(s), success="
            << (attack::attack_success(attacked, db, user, r) ? "yes" : "no")
            << ", top-10 Jaccard utility="
            << poi::top_k_jaccard(released, private_release, 10) << "\n";
  return 0;
}
