// Defense pipeline walkthrough: a user's aggregate release protected by
// each mechanism in turn, with the attack's view and the utility of every
// variant side by side.
//
//   ./examples/private_release [--seed N] [--r KM]
#include <iostream>

#include "attack/region_reid.h"
#include "cloak/kcloak.h"
#include "common/flags.h"
#include "common/stats.h"
#include "defense/location_defenses.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "eval/table.h"
#include "poi/city_model.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"seed", "r"});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const double r = flags.get("r", 2.0);

  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  const poi::PoiDatabase& db = city.db;
  common::Rng rng(seed + 1);
  const geo::Point user{rng.uniform(8.0, 32.0), rng.uniform(8.0, 32.0)};
  const poi::FrequencyVector truth = db.freq(user, r);
  const attack::RegionReidentifier reid(db);

  common::Rng pop_rng(seed + 2);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(db.bounds(), 10000, pop_rng), db.bounds());

  struct Variant {
    std::string name;
    poi::FrequencyVector release;
  };
  std::vector<Variant> variants;
  variants.push_back({"unprotected", truth});

  const defense::Sanitizer sanitizer(db, 10);
  variants.push_back({"sanitized (<=10)", sanitizer.sanitize(truth)});

  const defense::GeoIndDefense geoind(db, 0.1, 0.1);
  variants.push_back({"geo-ind eps=0.1", geoind.release(user, r, rng)});

  const defense::KCloakDefense kcloak(db, cloaker, 20);
  variants.push_back({"k-cloak k=20", kcloak.release(user, r)});

  const defense::OptimizationDefense optimization(db, 0.03);
  variants.push_back({"optimization b=0.03", optimization.release(truth)});

  defense::DpDefenseConfig dp_config;
  dp_config.epsilon = 1.0;
  dp_config.beta = 0.03;
  const defense::DpDefense dp(db, cloaker, dp_config);
  variants.push_back({"DP eps=1.0 b=0.03", dp.release(user, r, rng)});

  std::cout << "user at (" << user.x << ", " << user.y << "), r = " << r
            << " km, |F| = " << poi::total(truth) << " POIs\n";
  eval::Table table({"release", "candidates", "re-identified",
                     "top-10 jaccard"});
  for (const Variant& variant : variants) {
    const attack::ReidResult result = reid.infer(variant.release, r);
    table.add_row(
        {variant.name, std::to_string(result.candidates.size()),
         attack::attack_success(result, db, user, r) ? "YES" : "no",
         common::fmt(poi::top_k_jaccard(truth, variant.release, 10))});
  }
  table.print(std::cout);
  return 0;
}
