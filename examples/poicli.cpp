// poicli — command-line front end for the library, the way a downstream
// user would drive it on their own POI data (any CSV in the documented
// schema works; `generate` produces synthetic cities in that schema).
//
//   poicli generate   --city beijing|nyc --seed N --out FILE
//   poicli attack     --db FILE --x KM --y KM --r KM
//   poicli protect    --db FILE --x KM --y KM --r KM
//                     --mechanism sanitize|geoind|kcloak|opt|dp
//                     [--beta B] [--epsilon E] [--k K]
//   poicli uniqueness --db FILE --r KM [--cell KM]
#include <iostream>
#include <optional>

#include "attack/fine_grained.h"
#include "attack/region_reid.h"
#include "cloak/kcloak.h"
#include "common/flags.h"
#include "common/stats.h"
#include "defense/location_defenses.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "eval/uniqueness.h"
#include "poi/city_model.h"
#include "poi/csv.h"

using namespace poiprivacy;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  poicli generate   --city beijing|nyc [--seed N] --out FILE\n"
            << "  poicli attack     --db FILE --x KM --y KM --r KM\n"
            << "  poicli protect    --db FILE --x KM --y KM --r KM\n"
            << "                    --mechanism sanitize|geoind|kcloak|opt|dp\n"
            << "                    [--beta B] [--epsilon E] [--k K]\n"
            << "  poicli uniqueness --db FILE --r KM [--cell KM]\n";
  return 2;
}

int cmd_generate(const common::Flags& flags) {
  const std::string which = flags.get("city", std::string("beijing"));
  const std::string out = flags.get("out", std::string());
  if (out.empty()) return usage();
  const poi::CityPreset preset =
      which == "nyc" ? poi::nyc_preset() : poi::beijing_preset();
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const poi::City city = poi::generate_city(preset, seed);
  poi::save_csv(city.db, out);
  std::cout << "wrote " << city.db.pois().size() << " POIs ("
            << city.db.num_types() << " types) to " << out << "\n";
  return 0;
}

std::optional<geo::Point> parse_location(const common::Flags& flags) {
  if (!flags.has("x") || !flags.has("y")) return std::nullopt;
  return geo::Point{flags.get("x", 0.0), flags.get("y", 0.0)};
}

int cmd_attack(const common::Flags& flags) {
  const std::string path = flags.get("db", std::string());
  const auto location = parse_location(flags);
  const double r = flags.get("r", 0.0);
  if (path.empty() || !location || r <= 0.0) return usage();
  const poi::PoiDatabase db = poi::load_csv(path);

  const poi::FrequencyVector released = db.freq(*location, r);
  std::cout << "release F(l, r): " << poi::total(released)
            << " POIs across " << db.num_types() << " types\n";

  const attack::RegionReidentifier reid(db);
  const attack::ReidResult result = reid.infer(released, r);
  std::cout << "baseline attack: " << result.candidates.size()
            << " candidate(s)";
  if (result.pivot_type) {
    std::cout << ", pivot type " << db.types().name(*result.pivot_type);
  }
  std::cout << "\n";
  if (!result.unique()) return 0;

  const geo::Point anchor = db.poi(result.candidates.front()).pos;
  std::cout << "  -> user within " << r << " km of (" << anchor.x << ", "
            << anchor.y << ")\n";
  const attack::FineGrainedAttack fine(db);
  const attack::FineGrainedResult fg = fine.infer(released, r);
  std::cout << "fine-grained: " << fg.aux_anchors.size()
            << " auxiliary anchors -> search area "
            << common::fmt(fg.area_km2, 3) << " km^2 (baseline "
            << common::fmt(M_PI * r * r, 3) << " km^2)\n";
  return 0;
}

int cmd_protect(const common::Flags& flags) {
  const std::string path = flags.get("db", std::string());
  const auto location = parse_location(flags);
  const double r = flags.get("r", 0.0);
  const std::string mechanism =
      flags.get("mechanism", std::string("dp"));
  if (path.empty() || !location || r <= 0.0) return usage();
  const poi::PoiDatabase db = poi::load_csv(path);
  const double beta = flags.get("beta", 0.02);
  const double epsilon = flags.get("epsilon", 1.0);
  const auto k = static_cast<std::size_t>(
      flags.get("k", static_cast<std::int64_t>(20)));
  common::Rng rng(static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42))));

  const poi::FrequencyVector truth = db.freq(*location, r);
  poi::FrequencyVector released;
  if (mechanism == "sanitize") {
    released = defense::Sanitizer(db, 10).sanitize(truth);
  } else if (mechanism == "geoind") {
    released = defense::GeoIndDefense(db, epsilon, 0.1)
                   .release(*location, r, rng);
  } else if (mechanism == "kcloak" || mechanism == "dp") {
    common::Rng pop_rng(7);
    const cloak::AdaptiveIntervalCloaker cloaker(
        cloak::uniform_population(db.bounds(), 10000, pop_rng), db.bounds());
    if (mechanism == "kcloak") {
      released = defense::KCloakDefense(db, cloaker, k).release(*location, r);
    } else {
      defense::DpDefenseConfig config;
      config.epsilon = epsilon;
      config.beta = beta;
      config.k = k;
      released = defense::DpDefense(db, cloaker, config)
                     .release(*location, r, rng);
    }
  } else if (mechanism == "opt") {
    released = defense::OptimizationDefense(db, beta).release(truth);
  } else {
    return usage();
  }

  std::cout << "mechanism: " << mechanism << "\n";
  std::cout << "released " << poi::total(released)
            << " POI counts; L1 distortion vs truth = "
            << poi::l1_distance(truth, released) << "\n";
  std::cout << "top-10 Jaccard utility: "
            << common::fmt(poi::top_k_jaccard(truth, released, 10)) << "\n";
  const attack::RegionReidentifier reid(db);
  const attack::ReidResult result = reid.infer(released, r);
  std::cout << "attack on the protected release: "
            << result.candidates.size() << " candidate(s), re-identified: "
            << (attack::attack_success(result, db, *location, r) ? "YES"
                                                                 : "no")
            << "\n";
  return 0;
}

int cmd_uniqueness(const common::Flags& flags) {
  const std::string path = flags.get("db", std::string());
  const double r = flags.get("r", 0.0);
  if (path.empty() || r <= 0.0) return usage();
  const double cell = flags.get("cell", 1.0);
  const poi::PoiDatabase db = poi::load_csv(path);
  const eval::UniquenessMap map = eval::analyze_uniqueness(db, r, cell);
  std::cout << eval::render_ascii(map);
  std::cout << "uniqueness ratio at r = " << r << " km: "
            << common::fmt(map.uniqueness_ratio()) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  if (flags.help_requested()) {
    usage();
    return 0;
  }
  if (flags.positional().size() != 1) return usage();
  const std::string& command = flags.positional().front();
  try {
    if (command == "generate") return cmd_generate(flags);
    if (command == "attack") return cmd_attack(flags);
    if (command == "protect") return cmd_protect(flags);
    if (command == "uniqueness") return cmd_uniqueness(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
