// TCP release daemon: the GSP serving layer behind a socket.
//
// Builds a synthetic city, stands a ReleaseService on the sharded
// session table, and serves the length-prefixed binary protocol of
// src/net until SIGINT/SIGTERM (or after --max-frames frames, for
// scripted smoke runs). Point any src/net Client at the printed port:
//
//   ./examples/serve_tcp [--port P] [--workers N] [--users N]
//                        [--ceiling E] [--session-ttl N] [--cache-ttl N]
//                        [--renew-window N] [--stream-users N]
//                        [--stream-window N] [--max-frames N] [--seed N]
//                        [--threads N] [--metrics[=F]] [--help]
//
// With a session/cache TTL the daemon ticks the service's epoch clock
// once per second, so idle sessions age out and stale cache entries
// expire — the bounded-memory serving configuration. --renew-window N
// additionally renews every resident session's budget each N epochs
// (w-event accounting at the serving layer): a budget_exhausted user is
// granted again after the next window boundary tick.
//
// The daemon also serves continual releases: a mia per-tile
// sliding-window aggregate stream (--stream-users synthetic traces,
// --stream-window epochs per window) is attached as the service's
// StreamSource, so 25-byte stream requests on the same socket get the
// very streams the membership-inference suite attacks — raw blocks
// cached under kind-1 keys, Laplace noise drawn per request, the whole
// block charged to the user's session budget.
#include <csignal>
#include <iostream>
#include <numeric>
#include <thread>

#include "attack/attack_context.h"
#include "common/flags.h"
#include "mia/mobility.h"
#include "mia/stream_serving.h"
#include "net/server.h"
#include "poi/city_model.h"
#include "service/workload.h"

using namespace poiprivacy;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(
      argc, argv,
      {"port", "workers", "users", "ceiling", "session-ttl", "cache-ttl",
       "renew-window", "stream-users", "stream-window", "max-frames", "seed",
       common::Flags::kThreadsFlag, common::Flags::kMetricsFlag});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const auto max_frames =
      static_cast<std::uint64_t>(flags.get("max-frames", std::int64_t{0}));
  flags.apply_threads_flag();
  flags.apply_metrics_flag();

  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  common::Rng pop_rng(seed + 1);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(city.db.bounds(), 10000, pop_rng),
      city.db.bounds());

  service::ServiceConfig config;
  config.policies.push_back(
      {"interactive", {.k = 16, .epsilon = 0.5, .delta = 0.01}});
  config.policies.push_back(
      {"coarse", {.k = 32, .epsilon = 0.1, .delta = 0.001}});
  config.degrade_policy = 1;
  config.epsilon_ceiling = flags.get("ceiling", 6.0);
  config.session_ttl_epochs =
      static_cast<std::uint64_t>(flags.get("session-ttl", std::int64_t{0}));
  config.cache_ttl_epochs =
      static_cast<std::uint64_t>(flags.get("cache-ttl", std::int64_t{0}));
  config.session_renew_epochs =
      static_cast<std::uint64_t>(flags.get("renew-window", std::int64_t{0}));
  config.seed = seed;
  service::ReleaseService gsp(city.db, cloaker, config);

  // The continual-release source: the same per-tile sliding-window
  // streams the mia suite attacks, released raw — the serving layer
  // draws the per-request noise and meters the session budget.
  mia::MobilityConfig mobility;
  mobility.num_users = static_cast<std::size_t>(
      flags.get("stream-users", std::int64_t{64}));
  mobility.epochs = 16;
  mobility.visits_per_epoch = 3;
  mobility.profile_tiles = 3;
  const attack::AttackContext ctx(city.db);
  const mia::UserTraces traces = mia::generate_traces(ctx, mobility, seed + 2);
  mia::StreamConfig stream_config;
  stream_config.window_epochs = static_cast<std::size_t>(
      flags.get("stream-window", std::int64_t{2}));
  stream_config.stride = 1;
  stream_config.epsilon = 0.0;  // raw: noise belongs to the serving layer
  const mia::AggregateStreamReleaser releaser(traces, stream_config,
                                              /*roi_tiles=*/64,
                                              mobility.epochs / 2);
  std::vector<std::uint32_t> stream_group(mobility.num_users);
  std::iota(stream_group.begin(), stream_group.end(), 0u);
  const mia::TileStreamSource stream_source(releaser, std::move(stream_group));
  gsp.attach_stream_source(&stream_source);

  net::ServerConfig server_config;
  server_config.port =
      static_cast<std::uint16_t>(flags.get("port", std::int64_t{0}));
  server_config.workers =
      static_cast<std::size_t>(flags.get("workers", std::int64_t{4}));
  net::ReleaseServer server(gsp, server_config);
  server.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "serve_tcp: listening on 127.0.0.1:" << server.port() << " ("
            << server_config.workers << " workers, "
            << config.policies.size() << " policies, eps ceiling "
            << config.epsilon_ceiling << ", stream "
            << stream_source.num_series() << " series x "
            << stream_source.epochs() << " epochs)" << std::endl;

  const bool ticking = config.session_ttl_epochs > 0 ||
                       config.cache_ttl_epochs > 0 ||
                       config.session_renew_epochs > 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    static int ticks = 0;
    if (ticking && ++ticks % 5 == 0) gsp.advance_epoch();
    if (max_frames > 0 && server.stats().frames_served >= max_frames) break;
  }
  server.stop();

  const net::ServerStats net_stats = server.stats();
  const service::ServiceStats stats = gsp.concurrent_stats();
  const service::SessionTableStats sessions = gsp.session_stats();
  std::cout << "served " << net_stats.frames_served << " frames over "
            << net_stats.connections_accepted << " connections ("
            << net_stats.protocol_errors << " protocol errors)\n"
            << "admission: " << stats.granted << " granted, "
            << stats.degraded << " degraded, " << stats.budget_exhausted
            << " refused, " << stats.invalid << " invalid\n"
            << "sessions: " << sessions.sessions << " resident, "
            << sessions.sessions_created << " created, "
            << sessions.evictions_ttl << " ttl-evicted, "
            << sessions.renewals << " budget renewals, "
            << sessions.full_refusals << " full-table refusals\n";
  return 0;
}
