// TCP release daemon: the GSP serving layer behind a socket.
//
// Builds a synthetic city, stands a ReleaseService on the sharded
// session table, and serves the length-prefixed binary protocol of
// src/net until SIGINT/SIGTERM (or after --max-frames frames, for
// scripted smoke runs). Point any src/net Client at the printed port:
//
//   ./examples/serve_tcp [--port P] [--workers N] [--users N]
//                        [--ceiling E] [--session-ttl N] [--cache-ttl N]
//                        [--max-frames N] [--seed N] [--threads N]
//                        [--metrics[=F]] [--help]
//
// With a session/cache TTL the daemon ticks the service's epoch clock
// once per second, so idle sessions renew their budget and stale cache
// entries age out — the bounded-memory serving configuration.
#include <csignal>
#include <iostream>
#include <thread>

#include "common/flags.h"
#include "net/server.h"
#include "poi/city_model.h"
#include "service/workload.h"

using namespace poiprivacy;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(
      argc, argv,
      {"port", "workers", "users", "ceiling", "session-ttl", "cache-ttl",
       "max-frames", "seed", common::Flags::kThreadsFlag,
       common::Flags::kMetricsFlag});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const auto max_frames =
      static_cast<std::uint64_t>(flags.get("max-frames", std::int64_t{0}));
  flags.apply_threads_flag();
  flags.apply_metrics_flag();

  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  common::Rng pop_rng(seed + 1);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(city.db.bounds(), 10000, pop_rng),
      city.db.bounds());

  service::ServiceConfig config;
  config.policies.push_back(
      {"interactive", {.k = 16, .epsilon = 0.5, .delta = 0.01}});
  config.policies.push_back(
      {"coarse", {.k = 32, .epsilon = 0.1, .delta = 0.001}});
  config.degrade_policy = 1;
  config.epsilon_ceiling = flags.get("ceiling", 6.0);
  config.session_ttl_epochs =
      static_cast<std::uint64_t>(flags.get("session-ttl", std::int64_t{0}));
  config.cache_ttl_epochs =
      static_cast<std::uint64_t>(flags.get("cache-ttl", std::int64_t{0}));
  config.seed = seed;
  service::ReleaseService gsp(city.db, cloaker, config);

  net::ServerConfig server_config;
  server_config.port =
      static_cast<std::uint16_t>(flags.get("port", std::int64_t{0}));
  server_config.workers =
      static_cast<std::size_t>(flags.get("workers", std::int64_t{4}));
  net::ReleaseServer server(gsp, server_config);
  server.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "serve_tcp: listening on 127.0.0.1:" << server.port() << " ("
            << server_config.workers << " workers, "
            << config.policies.size() << " policies, eps ceiling "
            << config.epsilon_ceiling << ")" << std::endl;

  const bool ticking =
      config.session_ttl_epochs > 0 || config.cache_ttl_epochs > 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    static int ticks = 0;
    if (ticking && ++ticks % 5 == 0) gsp.advance_epoch();
    if (max_frames > 0 && server.stats().frames_served >= max_frames) break;
  }
  server.stop();

  const net::ServerStats net_stats = server.stats();
  const service::ServiceStats stats = gsp.concurrent_stats();
  const service::SessionTableStats sessions = gsp.session_stats();
  std::cout << "served " << net_stats.frames_served << " frames over "
            << net_stats.connections_accepted << " connections ("
            << net_stats.protocol_errors << " protocol errors)\n"
            << "admission: " << stats.granted << " granted, "
            << stats.degraded << " degraded, " << stats.budget_exhausted
            << " refused, " << stats.invalid << " invalid\n"
            << "sessions: " << sessions.sessions << " resident, "
            << sessions.sessions_created << " created, "
            << sessions.evictions_ttl << " ttl-evicted, "
            << sessions.full_refusals << " full-table refusals\n";
  return 0;
}
