// Visualize location uniqueness: ASCII heatmap of which parts of the city
// can be re-identified from an honest aggregate release.
//
//   ./examples/uniqueness_map [--seed N] [--r KM] [--cell KM] [--city beijing|nyc]
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "eval/uniqueness.h"
#include "poi/city_model.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"seed", "r", "cell", "city"});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const double r = flags.get("r", 1.0);
  const double cell = flags.get("cell", 0.8);
  const std::string which = flags.get("city", std::string("beijing"));

  const poi::CityPreset preset =
      which == "nyc" ? poi::nyc_preset() : poi::beijing_preset();
  const poi::City city = poi::generate_city(preset, seed);

  std::cout << "city: " << city.db.city_name() << ", r = " << r
            << " km, grid pitch = " << cell << " km\n";
  const eval::UniquenessMap map = eval::analyze_uniqueness(city.db, r, cell);
  std::cout << "'#' = re-identifiable, '.' = ambiguous, ' ' = no POI in "
               "range\n\n";
  std::cout << eval::render_ascii(map);
  std::cout << "\nuniqueness ratio: "
            << common::fmt(map.uniqueness_ratio()) << " ("
            << map.count(eval::CellOutcome::kUnique) << " of "
            << map.cells.size() - map.count(eval::CellOutcome::kEmpty)
            << " populated cells)\n";
  return 0;
}
