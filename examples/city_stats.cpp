// Generator diagnostics: verify that the synthetic cities exhibit the
// spatial structure the paper's attacks depend on — heavy-tailed type
// counts, citywide clustering (Clark-Evans << 1), and strong within-type
// co-location — and render the density map.
//
//   ./examples/city_stats [--seed N] [--city beijing|nyc] [--map]
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "eval/table.h"
#include "poi/city_model.h"
#include "poi/statistics.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"seed", "city", "map"});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const std::string which = flags.get("city", std::string("beijing"));
  const poi::CityPreset preset =
      which == "nyc" ? poi::nyc_preset() : poi::beijing_preset();
  const poi::City city = poi::generate_city(preset, seed);
  const poi::PoiDatabase& db = city.db;

  eval::print_section(std::cout, db.city_name() + " — type counts");
  const poi::TypeCountSummary types = poi::summarize_type_counts(db);
  eval::Table count_table({"metric", "value"});
  count_table.add_row({"POIs", std::to_string(db.pois().size())});
  count_table.add_row({"types", std::to_string(db.num_types())});
  count_table.add_row({"min / mean / max count",
                       std::to_string(types.min_count) + " / " +
                           common::fmt(types.mean_count, 1) + " / " +
                           std::to_string(types.max_count)});
  count_table.add_row(
      {"singleton types", std::to_string(types.singleton_types)});
  count_table.add_row({"rare types (<=10)",
                       std::to_string(types.rare_types) +
                           "  (paper: " +
                           std::to_string(preset.target_rare_types) + ")"});
  count_table.add_row({"top-decile mass",
                       common::fmt(types.top_decile_mass)});
  count_table.print(std::cout);

  eval::print_section(std::cout, db.city_name() + " — spatial structure");
  const poi::ClusteringSummary clustering = poi::summarize_clustering(db);
  eval::Table cluster_table({"metric", "value"});
  cluster_table.add_row(
      {"mean NN distance", common::fmt(clustering.mean_nn_km, 3) + " km"});
  cluster_table.add_row(
      {"Clark-Evans ratio (1 = uniform, <1 = clustered)",
       common::fmt(clustering.clark_evans_ratio)});
  cluster_table.add_row({"mean within-type NN distance",
                         common::fmt(clustering.mean_within_type_nn_km, 3) +
                             " km"});
  cluster_table.print(std::cout);

  if (flags.get("map", false)) {
    eval::print_section(std::cout, db.city_name() + " — density map");
    std::cout << poi::render_density(poi::density_grid(db, 1.0));
  }
  return 0;
}
