// Budget-managed release session: a user keeps querying through the DP
// defense while a privacy accountant tracks composed (eps, delta); the
// session refuses to release once the ceiling would be crossed.
//
//   ./examples/budget_session [--seed N] [--eps E] [--ceiling C]
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "defense/session.h"
#include "poi/city_model.h"
#include "traj/generators.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"seed", "eps", "ceiling"});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  common::Rng pop_rng(seed + 1);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(city.db.bounds(), 10000, pop_rng),
      city.db.bounds());

  defense::SessionConfig config;
  config.release.epsilon = flags.get("eps", 0.5);
  config.release.delta = 0.01;
  config.epsilon_ceiling = flags.get("ceiling", 4.0);
  defense::ReleaseSession session(city.db, cloaker, config);

  // A taxi ride across town, querying every few minutes.
  common::Rng rng(seed + 2);
  traj::TaxiConfig taxi_config;
  taxi_config.num_taxis = 1;
  taxi_config.points_per_taxi = 25;
  const auto rides = traj::generate_taxi_trajectories(city, taxi_config, rng);

  std::cout << "per release: eps=" << config.release.epsilon
            << " delta=" << config.release.delta
            << "; session ceiling eps=" << config.epsilon_ceiling << "\n\n";
  for (const traj::TrackPoint& fix : rides.front().points) {
    const auto released = session.release(fix.pos, 1.0, rng);
    const dp::PrivacyParams spent = session.spent();
    std::cout << "t+" << fix.time % (24 * 3600) / 60 << "min  ";
    if (released) {
      std::cout << "released " << poi::total(*released)
                << " counts; spent eps=" << common::fmt(spent.epsilon, 2)
                << " delta=" << common::fmt(spent.delta, 3) << "\n";
    } else {
      std::cout << "REFUSED — privacy budget exhausted after "
                << session.releases() << " releases (eps="
                << common::fmt(spent.epsilon, 2) << ")\n";
      break;
    }
  }
  return 0;
}
