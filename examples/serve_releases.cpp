// Multi-user aggregate-release service demo: run a synthetic day-long
// request trace through the GSP serving layer and report admission
// outcomes, the budget-exhaustion curve and release-cache behaviour.
//
//   ./examples/serve_releases [--users N] [--requests N] [--seed N]
//                             [--ceiling E] [--threads N] [--metrics[=F]]
//                             [--help]
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "eval/table.h"
#include "poi/city_model.h"
#include "service/workload.h"

using namespace poiprivacy;

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv,
                            {"users", "requests", "seed", "ceiling",
                             common::Flags::kThreadsFlag,
                             common::Flags::kMetricsFlag});
  if (flags.help_requested()) {
    std::cout << flags.usage(argv[0]);
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(
      flags.get("seed", static_cast<std::int64_t>(42)));
  const auto users = static_cast<std::size_t>(
      flags.get("users", static_cast<std::int64_t>(200)));
  const auto requests_per_user = static_cast<std::size_t>(
      flags.get("requests", static_cast<std::int64_t>(18)));
  flags.apply_threads_flag();
  flags.apply_metrics_flag();

  const poi::City city = poi::generate_city(poi::beijing_preset(), seed);
  common::Rng pop_rng(seed + 1);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(city.db.bounds(), 10000, pop_rng),
      city.db.bounds());

  // Two policies: a precise interactive one and a cheap coarse one the
  // admission controller degrades to once the precise budget runs dry.
  service::ServiceConfig config;
  config.policies.push_back(
      {"interactive", {.k = 16, .epsilon = 0.5, .delta = 0.01}});
  config.policies.push_back(
      {"coarse", {.k = 32, .epsilon = 0.1, .delta = 0.001}});
  config.degrade_policy = 1;
  config.epsilon_ceiling = flags.get("ceiling", 4.0);
  config.seed = seed;
  service::ReleaseService gsp(city.db, cloaker, config);

  service::WorkloadConfig workload;
  workload.num_users = users;
  workload.requests_per_user = requests_per_user;
  workload.seed = seed + 2;
  workload.policy_weights = {0.8, 0.2};
  const std::vector<service::TimedRequest> trace =
      service::generate_workload(city, workload);

  std::cout << "serving " << trace.size() << " requests from " << users
            << " users (eps ceiling " << config.epsilon_ceiling << ")\n";
  const std::vector<service::ReleaseResult> results =
      gsp.serve(service::requests_of(trace));

  const service::ServiceStats& stats = gsp.stats();
  eval::print_section(std::cout, "admission outcomes");
  eval::Table outcomes({"status", "count", "fraction"});
  for (const service::ReleaseStatus status : service::kAllStatuses) {
    outcomes.add_row({service::status_name(status),
                      std::to_string(stats.count(status)),
                      common::fmt(static_cast<double>(stats.count(status)) /
                                  static_cast<double>(stats.requests))});
  }
  outcomes.print(std::cout);

  // Budget-exhaustion curve: how admission degrades as the day goes on.
  eval::print_section(std::cout, "budget exhaustion over the day");
  eval::Table curve({"trace decile", "granted", "degraded", "refused"});
  const std::size_t buckets = 10;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = trace.size() * b / buckets;
    const std::size_t hi = trace.size() * (b + 1) / buckets;
    std::size_t granted = 0, degraded = 0, refused = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      switch (results[i].status) {
        case service::ReleaseStatus::kGranted: ++granted; break;
        case service::ReleaseStatus::kDegraded: ++degraded; break;
        case service::ReleaseStatus::kBudgetExhausted: ++refused; break;
        case service::ReleaseStatus::kInvalidRequest: break;
      }
    }
    curve.add_row({std::to_string(b + 1), std::to_string(granted),
                   std::to_string(degraded), std::to_string(refused)});
  }
  curve.print(std::cout);

  const service::ReleaseCacheStats cache = gsp.cache_stats();
  eval::print_section(std::cout, "release cache");
  eval::print_note(std::cout,
                   "effective hit rate: " +
                       common::fmt(stats.cache_hit_rate()) + " (" +
                       std::to_string(stats.cache_hits) + " hits / " +
                       std::to_string(stats.cache_misses) + " computes)");
  eval::print_note(std::cout,
                   "resident entries: " + std::to_string(cache.entries) +
                       " of " + std::to_string(gsp.config().cache_capacity) +
                       ", evictions: " + std::to_string(cache.evictions()));
  eval::print_note(std::cout,
                   "users seen: " + std::to_string(gsp.num_users()) +
                       ", batches: " + std::to_string(stats.batches));
  return 0;
}
