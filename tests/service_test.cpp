// The serving layer's contracts: typed admission (grant -> degrade ->
// refuse, never an exception), deterministic release-cache counters,
// bit-identical output for any --threads / batch size / cache capacity,
// and the workload generator's per-user substream stability.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/parallel.h"
#include "service/workload.h"

namespace poiprivacy {
namespace {

poi::City make_city() { return poi::generate_city(poi::test_preset(), 7); }

cloak::AdaptiveIntervalCloaker make_cloaker(const poi::PoiDatabase& db) {
  common::Rng rng(3);
  return cloak::AdaptiveIntervalCloaker(
      cloak::uniform_population(db.bounds(), 500, rng), db.bounds());
}

/// Two policies under a tight ceiling with basic composition, so the
/// admission sequence is exactly predictable: three 1.0-releases, two
/// 0.25-degrades, then refusal (3.0 + 2 * 0.25 = 3.5 = ceiling).
service::ServiceConfig two_policy_config() {
  service::ServiceConfig config;
  config.policies.push_back(
      {"precise", {.k = 8, .epsilon = 1.0, .delta = 0.05}});
  config.policies.push_back(
      {"coarse", {.k = 8, .epsilon = 0.25, .delta = 0.01}});
  config.degrade_policy = 1;
  config.epsilon_ceiling = 3.5;
  config.delta_ceiling = 1.0;
  config.advanced_slack = 0.0;
  config.seed = 99;
  return config;
}

std::vector<service::ReleaseRequest> repeat_request(service::UserId user,
                                                    std::size_t n) {
  std::vector<service::ReleaseRequest> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({user, {4.0, 4.0}, 1.0, 0});
  }
  return out;
}

service::WorkloadConfig small_workload() {
  service::WorkloadConfig workload;
  workload.num_users = 6;
  workload.requests_per_user = 5;
  workload.seed = 11;
  workload.radii = {0.8, 1.5};
  workload.policy_weights = {0.7, 0.3};
  return workload;
}


/// Deterministic stream stub (window = 2 epochs, stride 1): series s in
/// window starting at epoch b counts 10 * b + s.
class FakeStreamSource final : public service::StreamSource {
 public:
  std::size_t num_series() const override { return 3; }
  std::size_t epochs() const override { return 8; }
  std::size_t num_windows(std::size_t begin, std::size_t end) const override {
    return end - begin >= 2 ? end - begin - 1 : 0;
  }
  double sensitivity() const override { return 2.0; }
  void release_raw(std::size_t begin, std::size_t end,
                   std::vector<double>& out) const override {
    const std::size_t windows = num_windows(begin, end);
    out.resize(windows * num_series());
    for (std::size_t w = 0; w < windows; ++w) {
      for (std::size_t s = 0; s < num_series(); ++s) {
        out[w * num_series() + s] = static_cast<double>(10 * (begin + w) + s);
      }
    }
  }
};

TEST(ReleaseService, CtorValidatesConfig) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ServiceConfig config;
  EXPECT_THROW(service::ReleaseService(city.db, cloaker, config),
               std::invalid_argument);  // no policies

  config = two_policy_config();
  config.degrade_policy = 7;
  EXPECT_THROW(service::ReleaseService(city.db, cloaker, config),
               std::invalid_argument);  // dangling degrade index

  config = two_policy_config();
  config.policies[0].release.delta = 0.0;  // Gaussian needs delta > 0
  EXPECT_THROW(service::ReleaseService(city.db, cloaker, config),
               std::invalid_argument);

  // ... but a pure-epsilon geometric policy is fine with delta = 0.
  config.policies[0].release.noise = defense::DpNoiseKind::kGeometric;
  EXPECT_NO_THROW(service::ReleaseService(city.db, cloaker, config));

  config = two_policy_config();
  config.policies[1].release.k = 0;
  EXPECT_THROW(service::ReleaseService(city.db, cloaker, config),
               std::invalid_argument);
}

TEST(ReleaseService, BudgetExhaustionOrdering) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ReleaseService gsp(city.db, cloaker, two_policy_config());

  const auto results = gsp.serve(repeat_request(42, 7));
  ASSERT_EQ(results.size(), 7u);
  const service::ReleaseStatus expected[] = {
      service::ReleaseStatus::kGranted,
      service::ReleaseStatus::kGranted,
      service::ReleaseStatus::kGranted,
      service::ReleaseStatus::kDegraded,
      service::ReleaseStatus::kDegraded,
      service::ReleaseStatus::kBudgetExhausted,
      service::ReleaseStatus::kBudgetExhausted,
  };
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(results[i].status, expected[i]) << "request " << i;
  }
  // Degraded releases are served under the degrade policy and still
  // produce a vector; refusals do not.
  EXPECT_EQ(results[3].served_policy, 1u);
  EXPECT_EQ(results[3].vector.size(), city.db.num_types());
  EXPECT_TRUE(results[5].vector.empty());

  // Spent budget is monotone and frozen once refused.
  EXPECT_NEAR(results[2].spent.epsilon, 3.0, 1e-12);
  EXPECT_NEAR(results[4].spent.epsilon, 3.5, 1e-12);
  EXPECT_NEAR(results[6].spent.epsilon, 3.5, 1e-12);
  EXPECT_NEAR(gsp.user_spent(42).epsilon, 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(gsp.user_remaining(42).epsilon, 0.0);

  const service::ServiceStats& stats = gsp.stats();
  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.granted, 3u);
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.budget_exhausted, 2u);
  EXPECT_EQ(stats.invalid, 0u);
  EXPECT_EQ(stats.users, 1u);
  EXPECT_EQ(gsp.num_users(), 1u);
}

TEST(ReleaseService, BudgetsArePerUser) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ReleaseService gsp(city.db, cloaker, two_policy_config());

  auto trace = repeat_request(1, 6);
  const auto other = repeat_request(2, 1);
  trace.insert(trace.end(), other.begin(), other.end());
  const auto results = gsp.serve(trace);
  // User 1 exhausts; user 2's first request is untouched by that.
  EXPECT_EQ(results[5].status, service::ReleaseStatus::kBudgetExhausted);
  EXPECT_EQ(results[6].status, service::ReleaseStatus::kGranted);
  EXPECT_NEAR(gsp.user_spent(2).epsilon, 1.0, 1e-12);
  EXPECT_EQ(gsp.num_users(), 2u);
  // A never-seen user has the full ceiling remaining.
  EXPECT_DOUBLE_EQ(gsp.user_remaining(777).epsilon, 3.5);
  EXPECT_DOUBLE_EQ(gsp.user_spent(777).epsilon, 0.0);
}

TEST(ReleaseService, InvalidRequestsAreTypedNotThrown) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ReleaseService gsp(city.db, cloaker, two_policy_config());

  const service::ReleaseResult bad_policy =
      gsp.serve_one({1, {4.0, 4.0}, 1.0, 9});
  EXPECT_EQ(bad_policy.status, service::ReleaseStatus::kInvalidRequest);
  EXPECT_TRUE(bad_policy.vector.empty());
  EXPECT_DOUBLE_EQ(bad_policy.spent.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(bad_policy.spent.delta, 0.0);

  const service::ReleaseResult bad_radius =
      gsp.serve_one({1, {4.0, 4.0}, 0.0, 0});
  EXPECT_EQ(bad_radius.status, service::ReleaseStatus::kInvalidRequest);

  // Invalid requests never create a session or spend budget.
  EXPECT_EQ(gsp.num_users(), 0u);
  EXPECT_EQ(gsp.stats().invalid, 2u);
}

TEST(ReleaseService, CacheHitsAreDeterministic) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);

  const auto run = [&] {
    service::ReleaseService gsp(city.db, cloaker, two_policy_config());
    // Two users at the same location under the same policy/radius cloak
    // into the same quadrant and share one aggregate computation.
    std::vector<service::ReleaseRequest> trace = {
        {1, {4.0, 4.0}, 1.0, 0},
        {2, {4.0, 4.0}, 1.0, 0},
    };
    return std::make_pair(gsp.serve(trace), gsp.stats());
  };

  const auto [results, stats] = run();
  EXPECT_FALSE(results[0].cache_hit);
  EXPECT_TRUE(results[1].cache_hit);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  // Same aggregate, but per-request noise substreams keep the released
  // vectors independent.
  EXPECT_NE(results[0].vector, results[1].vector);

  // The whole run (vectors, flags, counters) reproduces exactly.
  const auto [again, stats_again] = run();
  EXPECT_EQ(again, results);
  EXPECT_EQ(stats_again, stats);
}

TEST(ReleaseService, CacheCapacityNeverChangesReleases) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  const auto trace = service::requests_of(
      service::generate_workload(city, small_workload()));

  const auto run = [&](std::size_t capacity) {
    service::ServiceConfig config = two_policy_config();
    config.epsilon_ceiling = 100.0;  // admission out of the picture
    config.cache_capacity = capacity;
    service::ReleaseService gsp(city.db, cloaker, config);
    return gsp.serve(trace);
  };

  // A cached aggregate is a pure function of its key, so shrinking the
  // cache to almost nothing changes recomputation counts only — every
  // released vector must stay bit-identical.
  const auto roomy = run(4096);
  const auto tiny = run(1);
  EXPECT_EQ(tiny, roomy);
}

TEST(ReleaseService, EvictionCountersSplitLruFromTtl) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);

  // Capacity pressure: a 1-entry cache serving two distinct keys evicts
  // exactly once, attributed to the LRU policy.
  {
    service::ServiceConfig config = two_policy_config();
    config.epsilon_ceiling = 100.0;
    config.cache_capacity = 1;
    service::ReleaseService gsp(city.db, cloaker, config);
    gsp.serve_one({1, {4.0, 4.0}, 1.0, 0});
    gsp.serve_one({1, {4.0, 4.0}, 2.0, 0});  // same region, new radius
    const service::ReleaseCacheStats cache = gsp.cache_stats();
    EXPECT_EQ(cache.misses, 2u);
    EXPECT_EQ(cache.evictions_lru, 1u);
    EXPECT_EQ(cache.evictions_ttl, 0u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.entries, 1u);
  }

  // Expiry: an untouched entry dies on the first epoch tick once the
  // cache TTL is 1, attributed to the TTL policy, and the key is then
  // recomputed (never a changed vector — pinned elsewhere).
  {
    service::ServiceConfig config = two_policy_config();
    config.epsilon_ceiling = 100.0;
    config.cache_ttl_epochs = 1;
    service::ReleaseService gsp(city.db, cloaker, config);
    const auto first = gsp.serve_one({1, {4.0, 4.0}, 1.0, 0});
    EXPECT_FALSE(first.cache_hit);
    gsp.advance_epoch();
    const service::ReleaseCacheStats cache = gsp.cache_stats();
    EXPECT_EQ(cache.evictions_ttl, 1u);
    EXPECT_EQ(cache.evictions_lru, 0u);
    EXPECT_EQ(cache.entries, 0u);
    const auto again = gsp.serve_one({1, {4.0, 4.0}, 1.0, 0});
    EXPECT_FALSE(again.cache_hit);
    EXPECT_EQ(gsp.cache_stats().misses, 2u);
  }
}

TEST(ReleaseService, SessionTtlRenewsBudget) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ServiceConfig config = two_policy_config();
  config.session_ttl_epochs = 1;
  service::ReleaseService gsp(city.db, cloaker, config);

  // Spend most of the 3.5 ceiling...
  const auto spent_down = gsp.serve(repeat_request(7, 3));
  EXPECT_EQ(spent_down.back().status, service::ReleaseStatus::kGranted);
  EXPECT_DOUBLE_EQ(gsp.user_spent(7).epsilon, 3.0);
  EXPECT_EQ(gsp.num_users(), 1u);

  // ...then let the session idle past its TTL: the sweep reclaims the
  // slot (visible in the eviction counter) and the budget renews.
  gsp.advance_epoch();
  EXPECT_EQ(gsp.session_stats().evictions_ttl, 1u);
  EXPECT_EQ(gsp.num_users(), 0u);
  EXPECT_DOUBLE_EQ(gsp.user_spent(7).epsilon, 0.0);

  const auto renewed = gsp.serve_one({7, {4.0, 4.0}, 1.0, 0});
  EXPECT_EQ(renewed.status, service::ReleaseStatus::kGranted);
  EXPECT_DOUBLE_EQ(gsp.user_spent(7).epsilon, 1.0);
  // The renewal re-created the session: the user is counted twice in
  // the lifetime counter, once in residency.
  EXPECT_EQ(gsp.stats().users, 2u);
  EXPECT_EQ(gsp.session_stats().sessions_created, 2u);
  EXPECT_EQ(gsp.num_users(), 1u);
}


TEST(ReleaseService, ServeStreamValidatesAdmitsAndCaches) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ReleaseService gsp(city.db, cloaker, two_policy_config());
  const FakeStreamSource source;

  // No source attached: typed invalid, never a throw.
  EXPECT_EQ(gsp.serve_stream({1, 0, 0, 4, 0}).status,
            service::ReleaseStatus::kInvalidRequest);
  gsp.attach_stream_source(&source);
  EXPECT_EQ(gsp.stream_source(), &source);

  // Validation: bad policy, series, epoch range, empty window set.
  EXPECT_EQ(gsp.serve_stream({1, 0, 0, 4, 9}).status,
            service::ReleaseStatus::kInvalidRequest);
  EXPECT_EQ(gsp.serve_stream({1, 3, 0, 4, 0}).status,
            service::ReleaseStatus::kInvalidRequest);
  EXPECT_EQ(gsp.serve_stream({1, 0, 0, 9, 0}).status,
            service::ReleaseStatus::kInvalidRequest);
  EXPECT_EQ(gsp.serve_stream({1, 0, 4, 4, 0}).status,
            service::ReleaseStatus::kInvalidRequest);
  EXPECT_EQ(gsp.serve_stream({1, 0, 3, 4, 0}).status,
            service::ReleaseStatus::kInvalidRequest);  // 1 epoch < window

  // A granted block: one noised i32 per window, one admission charge of
  // windows * policy cost (3 * {1.0, 0.05} here).
  const auto granted = gsp.serve_stream({1, 0, 0, 4, 0});
  ASSERT_EQ(granted.status, service::ReleaseStatus::kGranted);
  EXPECT_EQ(granted.vector.size(), 3u);
  EXPECT_FALSE(granted.cache_hit);
  EXPECT_DOUBLE_EQ(granted.spent.epsilon, 3.0);
  EXPECT_DOUBLE_EQ(granted.spent.delta, 0.15);
  for (const std::int32_t count : granted.vector) EXPECT_GE(count, 0);

  // Same range, different user and series: the raw block is shared —
  // a cache hit even though the noise (and series) differ.
  const auto shared = gsp.serve_stream({2, 1, 0, 4, 0});
  ASSERT_EQ(shared.status, service::ReleaseStatus::kGranted);
  EXPECT_TRUE(shared.cache_hit);

  // There is no degrade path for streams: the next 3-window block for
  // user 1 would cost 3.0 on top of 3.0 against the 3.5 ceiling.
  const auto refused = gsp.serve_stream({1, 0, 0, 4, 0});
  EXPECT_EQ(refused.status, service::ReleaseStatus::kBudgetExhausted);
  EXPECT_TRUE(refused.vector.empty());
  EXPECT_DOUBLE_EQ(refused.spent.epsilon, 3.0);  // unchanged
}

TEST(ReleaseService, ServeStreamIsDeterministicAcrossInstances) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  const FakeStreamSource source;
  const std::vector<service::StreamRequest> trace = {
      {1, 0, 0, 4, 0}, {2, 1, 2, 6, 1}, {1, 2, 0, 8, 1}, {3, 0, 2, 6, 1}};

  const auto run = [&] {
    service::ReleaseService gsp(city.db, cloaker, two_policy_config());
    gsp.attach_stream_source(&source);
    std::vector<service::ReleaseResult> out;
    for (const auto& request : trace) out.push_back(gsp.serve_stream(request));
    return out;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "request " << i;
  }
  EXPECT_EQ(a[0].status, service::ReleaseStatus::kGranted);
}

TEST(ReleaseService, RenewWindowRestoresBudgetWithoutEviction) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::ServiceConfig config = two_policy_config();
  config.session_renew_epochs = 2;  // w-event renewal, no TTL eviction
  service::ReleaseService gsp(city.db, cloaker, config);
  const FakeStreamSource source;
  gsp.attach_stream_source(&source);

  // Exhaust user 7: a 3-window block costs 3.0 of the 3.5 ceiling.
  ASSERT_EQ(gsp.serve_stream({7, 0, 0, 4, 0}).status,
            service::ReleaseStatus::kGranted);
  ASSERT_EQ(gsp.serve_stream({7, 0, 0, 4, 0}).status,
            service::ReleaseStatus::kBudgetExhausted);

  // Epoch 1 is inside renewal window 0: still exhausted.
  gsp.advance_epoch();
  EXPECT_EQ(gsp.serve_stream({7, 0, 0, 4, 0}).status,
            service::ReleaseStatus::kBudgetExhausted);
  EXPECT_EQ(gsp.session_stats().renewals, 0u);

  // Epoch 2 opens renewal window 1: every resident budget renews in
  // place — same session (no eviction, no re-create), fresh budget.
  gsp.advance_epoch();
  EXPECT_EQ(gsp.session_stats().renewals, 1u);
  const auto renewed = gsp.serve_stream({7, 0, 0, 4, 0});
  EXPECT_EQ(renewed.status, service::ReleaseStatus::kGranted);
  EXPECT_DOUBLE_EQ(renewed.spent.epsilon, 3.0);
  EXPECT_EQ(gsp.session_stats().sessions_created, 1u);
  EXPECT_EQ(gsp.session_stats().evictions_ttl, 0u);
  EXPECT_EQ(gsp.num_users(), 1u);
}

TEST(ReleaseService, BatchSizeNeverChangesReleases) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  const auto trace = service::requests_of(
      service::generate_workload(city, small_workload()));

  const auto run = [&](std::size_t max_batch) {
    service::ServiceConfig config = two_policy_config();
    config.max_batch = max_batch;
    service::ReleaseService gsp(city.db, cloaker, config);
    const auto results = gsp.serve(trace);
    return std::make_pair(results, gsp.stats());
  };

  const auto [one_by_one, stats_1] = run(1);
  const auto [big_batch, stats_256] = run(256);
  EXPECT_EQ(big_batch, one_by_one);
  // Effective cache counters agree too: a batch-coalesced request counts
  // as the hit it would have been served one-by-one.
  EXPECT_EQ(stats_256.cache_hits, stats_1.cache_hits);
  EXPECT_EQ(stats_256.cache_misses, stats_1.cache_misses);
  EXPECT_GT(stats_1.batches, stats_256.batches);
}

TEST(ReleaseService, EnqueueFlushMatchesServe) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  const auto trace = repeat_request(5, 4);

  service::ReleaseService served(city.db, cloaker, two_policy_config());
  const auto direct = served.serve(trace);

  service::ReleaseService queued(city.db, cloaker, two_policy_config());
  for (const auto& request : trace) queued.enqueue(request);
  EXPECT_EQ(queued.pending(), trace.size());  // below max_batch, no drain
  const auto flushed = queued.flush();
  EXPECT_EQ(queued.pending(), 0u);
  EXPECT_EQ(flushed, direct);

  // serve() refuses to interleave with a partially enqueued batch.
  queued.enqueue(trace.front());
  EXPECT_THROW(queued.serve(trace), std::logic_error);
}

TEST(ReleaseService, BitIdenticalAcrossThreadCounts) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  service::WorkloadConfig workload = small_workload();
  workload.num_users = 10;
  const auto trace =
      service::requests_of(service::generate_workload(city, workload));
  ASSERT_EQ(trace.size(), 50u);

  struct Pass {
    std::vector<service::ReleaseResult> results;
    service::ServiceStats stats;
    service::ReleaseCacheStats cache;
  };
  const auto run = [&](std::size_t threads) {
    common::set_default_thread_count(threads);
    service::ReleaseService gsp(city.db, cloaker, two_policy_config());
    Pass pass;
    pass.results = gsp.serve(trace);
    pass.stats = gsp.stats();
    pass.cache = gsp.cache_stats();
    return pass;
  };

  const Pass baseline = run(1);
  // Guard against vacuous comparisons: the trace must exercise every
  // interesting path (cache hits and at least one degraded admission).
  EXPECT_GT(baseline.stats.cache_hits, 0u);
  EXPECT_GT(baseline.stats.cache_misses, 0u);
  EXPECT_GT(baseline.stats.degraded + baseline.stats.budget_exhausted, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const Pass pass = run(threads);
    EXPECT_EQ(pass.results, baseline.results) << "threads=" << threads;
    EXPECT_EQ(pass.stats, baseline.stats) << "threads=" << threads;
    EXPECT_EQ(pass.cache, baseline.cache) << "threads=" << threads;
  }
  common::set_default_thread_count(0);
}

TEST(Workload, TraceShapeAndDeterminism) {
  const poi::City city = make_city();
  const service::WorkloadConfig config = small_workload();
  const auto trace = service::generate_workload(city, config);
  ASSERT_EQ(trace.size(), config.num_users * config.requests_per_user);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time, trace[i].time);  // sorted by arrival
  }
  for (const auto& timed : trace) {
    EXPECT_LT(timed.request.user_id, config.num_users);
    EXPECT_GT(timed.request.radius, 0.0);
    EXPECT_LT(timed.request.policy, config.policy_weights.size());
  }
  EXPECT_EQ(service::generate_workload(city, config), trace);
}

TEST(Workload, UserStreamsStableUnderPopulationGrowth) {
  const poi::City city = make_city();
  service::WorkloadConfig small = small_workload();
  small.num_users = 4;
  service::WorkloadConfig large = small;
  large.num_users = 8;

  const auto per_user = [](const std::vector<service::TimedRequest>& trace,
                           service::UserId user) {
    std::vector<service::TimedRequest> out;
    for (const auto& timed : trace) {
      if (timed.request.user_id == user) out.push_back(timed);
    }
    return out;
  };

  const auto few = service::generate_workload(city, small);
  const auto many = service::generate_workload(city, large);
  // User u's whole day derives from substream(u): adding users must not
  // perturb the requests of the users already present.
  for (service::UserId user = 0; user < 4; ++user) {
    EXPECT_EQ(per_user(few, user), per_user(many, user)) << "user " << user;
  }
}

}  // namespace
}  // namespace poiprivacy
