// Thread-pool unit tests: the engine beneath the parallel eval runners.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"

namespace poiprivacy::common {
namespace {

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.run_tasks(0, [&](std::size_t) { ++calls; });
  parallel_for_each(pool, 0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const int folded = ordered_reduce(
      pool, 0, 8, 7, [](std::size_t) { return 1; },
      [](int acc, int v) { return acc + v; });
  EXPECT_EQ(folded, 7);  // init passes through untouched
}

TEST(ThreadPool, RangeSmallerThanChunkRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(3);
  parallel_for_each(pool, counts.size(), 100,
                    [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, AllIndicesVisitedExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> counts(kN);
    parallel_for_each(pool, kN, 7, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "index " << i << " with "
                                     << threads << " threads";
    }
  }
}

TEST(ThreadPool, ExceptionPropagatesOutOfATask) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.run_tasks(64,
                       [](std::size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
        std::runtime_error);
    // The pool survives a throwing batch and runs the next one normally.
    std::atomic<int> calls{0};
    pool.run_tasks(16, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 16);
  }
}

TEST(ThreadPool, OrderedReduceMatchesSerialAccumulateOn10kDoubles) {
  // Values spread over wildly different magnitudes so that any change in
  // the floating-point summation order changes the rounded result.
  Rng rng(2024);
  std::vector<double> values(10'000);
  for (double& v : values) {
    v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform_int(-12, 12));
  }
  const double serial =
      std::accumulate(values.begin(), values.end(), 0.0);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const double parallel = ordered_reduce(
        pool, values.size(), 16, 0.0,
        [&](std::size_t i) { return values[i]; },
        [](double acc, double v) { return acc + v; });
    // Bit-identical, not just close: the fold order is the serial order.
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ThreadPool, NestedSubmissionRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.run_tasks(8, [&](std::size_t) {
    // A task fanning out again must not deadlock on the shared pool; the
    // nested batch runs inline on the submitting thread.
    pool.run_tasks(4, [&](std::size_t) { ++inner_calls; });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 4);
}

TEST(ThreadPool, GlobalPoolTracksDefaultThreadCount) {
  const std::size_t before = default_thread_count();
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3u);
  EXPECT_EQ(global_pool().concurrency(), 3u);
  set_default_thread_count(1);
  EXPECT_EQ(global_pool().concurrency(), 1u);
  set_default_thread_count(0);  // restore the hardware default
  EXPECT_GE(default_thread_count(), 1u);
  (void)before;
}

}  // namespace
}  // namespace poiprivacy::common
