// End-to-end integration tests: miniature versions of the paper's
// experiments asserting the qualitative shapes that the full bench
// binaries reproduce at scale. These run on reduced sample sizes so the
// whole suite stays fast; the assertions are deliberately loose envelopes
// around the paper's claims, not exact numbers.
#include <gtest/gtest.h>

#include "attack/recovery.h"
#include "attack/trajectory_attack.h"
#include "cloak/kcloak.h"
#include "defense/location_defenses.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "eval/datasets.h"
#include "eval/runner.h"

namespace poiprivacy {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorkbenchConfig config;
    config.locations_per_dataset = 120;
    config.num_taxis = 60;
    config.points_per_taxi = 40;
    config.num_checkin_users = 60;
    config.checkins_per_user = 20;
    workbench_ = new eval::Workbench(config);
  }
  static void TearDownTestSuite() {
    delete workbench_;
    workbench_ = nullptr;
  }

  static const eval::Workbench& workbench() { return *workbench_; }

 private:
  static const eval::Workbench* workbench_;
};

const eval::Workbench* IntegrationTest::workbench_ = nullptr;

double baseline_success(const poi::PoiDatabase& db,
                        std::span<const geo::Point> locations, double r) {
  return eval::evaluate_attack(db, locations, r,
                               eval::identity_release(db))
      .success_rate();
}

// Figure 3/4 baseline: success grows with the query range on the random
// datasets, from below ~0.35 at 0.5 km to above ~0.45 at 4 km.
TEST_F(IntegrationTest, BaselineSuccessGrowsWithQueryRange) {
  for (const eval::DatasetKind kind : {eval::DatasetKind::kBeijingRandom,
                                       eval::DatasetKind::kNycRandom}) {
    const poi::PoiDatabase& db = workbench().city_of(kind).db;
    const double at_half = baseline_success(db, workbench().locations(kind),
                                            0.5);
    const double at_four = baseline_success(db, workbench().locations(kind),
                                            4.0);
    EXPECT_LT(at_half, 0.40) << eval::dataset_name(kind);
    EXPECT_GT(at_four, 0.45) << eval::dataset_name(kind);
    EXPECT_GT(at_four, at_half) << eval::dataset_name(kind);
  }
}

// Section III-B / Figure 4: geo-ind at eps=0.1 (100 m unit) mitigates far
// more of the attack at r=0.5 than at r=4; eps=1.0 helps much less.
TEST_F(IntegrationTest, GeoIndMitigationFadesWithRange) {
  const eval::DatasetKind kind = eval::DatasetKind::kBeijingRandom;
  const poi::PoiDatabase& db = workbench().city_of(kind).db;
  const auto protected_rate = [&](double eps, double r) {
    const defense::GeoIndDefense defense(db, eps, 0.1);
    return eval::evaluate_attack(
               db, workbench().locations(kind), r,
               [&](geo::Point l, double radius, common::Rng& rng) {
                 return defense.release(l, radius, rng);
               },
               /*release_seed=*/99)
        .success_rate();
  };
  const double base_half = baseline_success(db, workbench().locations(kind),
                                            0.5);
  const double base_four = baseline_success(db, workbench().locations(kind),
                                            4.0);
  const double strong_half = protected_rate(0.1, 0.5);
  const double strong_four = protected_rate(0.1, 4.0);
  // Mitigation fraction shrinks with r.
  const double mitigation_half =
      base_half > 0 ? 1.0 - strong_half / base_half : 1.0;
  const double mitigation_four =
      base_four > 0 ? 1.0 - strong_four / base_four : 1.0;
  EXPECT_GT(mitigation_half, mitigation_four);
  EXPECT_GT(mitigation_half, 0.5);
  // eps=1.0 barely reduces the attack at r=4.
  EXPECT_GT(protected_rate(1.0, 4.0), 0.7 * base_four);
}

// Section III-C / Figure 5: k-cloaking success decreases in k but remains
// substantial at k=50 for large query ranges.
TEST_F(IntegrationTest, KCloakingDecreasesButDoesNotEliminate) {
  const eval::DatasetKind kind = eval::DatasetKind::kBeijingRandom;
  const poi::PoiDatabase& db = workbench().city_of(kind).db;
  common::Rng pop_rng(7);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(db.bounds(), 10000, pop_rng), db.bounds());
  const auto rate = [&](std::size_t k, double r) {
    const defense::KCloakDefense defense(db, cloaker, k);
    return eval::evaluate_attack(db, workbench().locations(kind), r,
                                 [&defense](geo::Point l, double radius) {
                                   return defense.release(l, radius);
                                 })
        .success_rate();
  };
  const double base = baseline_success(db, workbench().locations(kind), 4.0);
  const double k2 = rate(2, 4.0);
  const double k50 = rate(50, 4.0);
  EXPECT_LE(k50, k2 + 0.02);
  EXPECT_GT(k50, 0.25 * base);  // still not satisfactory protection
}

// Section III-A / Figures 2-3: sanitization suppresses the attack at
// r=4 km and the SVM recovery restores a substantial part of it.
TEST_F(IntegrationTest, SanitizationSuppressedThenRecovered) {
  const eval::DatasetKind kind = eval::DatasetKind::kBeijingRandom;
  const poi::PoiDatabase& db = workbench().city_of(kind).db;
  const defense::Sanitizer sanitizer(db, 10);
  const double r = 4.0;
  const double base = baseline_success(db, workbench().locations(kind), r);
  const double sanitized =
      eval::evaluate_attack(db, workbench().locations(kind), r,
                            [&](geo::Point l, double radius) {
                              return sanitizer.sanitize(db.freq(l, radius));
                            })
          .success_rate();
  attack::RecoveryConfig config;
  config.train_samples = 250;
  config.validation_samples = 60;
  common::Rng rng(11);
  const attack::SanitizationRecovery recovery(
      db, sanitizer.sanitized_types(), r, config, rng);
  const double recovered =
      eval::evaluate_attack(db, workbench().locations(kind), r,
                            [&](geo::Point l, double radius) {
                              return recovery.recover(
                                  sanitizer.sanitize(db.freq(l, radius)));
                            })
          .success_rate();
  EXPECT_LT(sanitized, 0.5 * base);
  EXPECT_GT(recovered, sanitized + 0.1);
  EXPECT_GT(recovery.mean_validation_accuracy(), 0.9);
}

// Section IV-A / Figures 6-7: the fine-grained attack shrinks the search
// area to a fraction of pi r^2, and more anchors shrink it further.
TEST_F(IntegrationTest, FineGrainedShrinksSearchArea) {
  const eval::DatasetKind kind = eval::DatasetKind::kBeijingTdrive;
  const poi::PoiDatabase& db = workbench().city_of(kind).db;
  const double r = 2.0;
  attack::FineGrainedConfig few;
  few.max_aux = 5;
  attack::FineGrainedConfig many;
  many.max_aux = 40;
  const eval::FineGrainedStats stats_few = eval::evaluate_fine_grained(
      db, workbench().locations(kind), r, few);
  const eval::FineGrainedStats stats_many = eval::evaluate_fine_grained(
      db, workbench().locations(kind), r, many);
  ASSERT_GT(stats_few.successes, 10u);
  EXPECT_LT(stats_few.mean_area(), M_PI * r * r / 4.0);
  EXPECT_LE(stats_many.mean_area(), stats_few.mean_area() + 1e-9);
}

// Section IV-B / Figure 8: two successive releases never hurt and help at
// small ranges.
TEST_F(IntegrationTest, TwoReleasesImproveSuccess) {
  const poi::PoiDatabase& db = workbench().beijing().db;
  const double r = 1.0;
  const auto pairs = traj::extract_release_pairs(
      workbench().taxi_trajectories(), db, r, 10 * 60);
  ASSERT_GT(pairs.size(), 60u);
  const std::size_t half = pairs.size() / 2;
  common::Rng rng(5);
  const attack::TrajectoryAttackConfig config;
  const attack::TrajectoryAttack attack(
      db, std::span(pairs.data(), half), r, config, rng);
  std::size_t single = 0;
  std::size_t enhanced = 0;
  for (std::size_t i = half; i < pairs.size(); ++i) {
    const attack::PairInferenceResult result = attack.infer(
        db.freq(pairs[i].first, r), db.freq(pairs[i].second, r),
        pairs[i].first_time, pairs[i].second_time);
    single += result.baseline_unique();
    enhanced += result.enhanced_unique();
  }
  EXPECT_GE(enhanced, single);
}

// Section V / Figures 9-12: both defenses mitigate the attack while
// keeping Top-10 utility high; the DP variant's protection weakens and
// utility grows with the privacy budget.
TEST_F(IntegrationTest, OptimizationDefenseTradesOffGracefully) {
  const eval::DatasetKind kind = eval::DatasetKind::kBeijingTdrive;
  const poi::PoiDatabase& db = workbench().city_of(kind).db;
  const double r = 4.0;
  const double base = baseline_success(db, workbench().locations(kind), r);
  double prev_success = base;
  for (const double beta : {0.01, 0.03, 0.05}) {
    const defense::OptimizationDefense defense(db, beta);
    const eval::ReleaseFn release = [&](geo::Point l, double radius) {
      return defense.release(db.freq(l, radius));
    };
    const double success =
        eval::evaluate_attack(db, workbench().locations(kind), r, release)
            .success_rate();
    const double jaccard =
        eval::evaluate_utility(db, workbench().locations(kind), r, release)
            .mean_jaccard;
    EXPECT_LE(success, prev_success + 0.05) << "beta " << beta;
    EXPECT_GT(jaccard, 0.9) << "beta " << beta;
    prev_success = success;
  }
  EXPECT_LT(prev_success, 0.6 * base);
}

TEST_F(IntegrationTest, DpDefenseBudgetControlsTradeOff) {
  const eval::DatasetKind kind = eval::DatasetKind::kBeijingTdrive;
  const poi::PoiDatabase& db = workbench().city_of(kind).db;
  const double r = 2.0;
  common::Rng pop_rng(13);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(db.bounds(), 10000, pop_rng), db.bounds());
  const double base = baseline_success(db, workbench().locations(kind), r);
  const auto run = [&](double eps) {
    defense::DpDefenseConfig config;
    config.epsilon = eps;
    config.beta = 0.02;
    const defense::DpDefense defense(db, cloaker, config);
    common::Rng rng(17);
    const eval::ReleaseFn release = [&](geo::Point l, double radius) {
      return defense.release(l, radius, rng);
    };
    return std::pair{
        eval::evaluate_attack(db, workbench().locations(kind), r, release)
            .success_rate(),
        eval::evaluate_utility(db, workbench().locations(kind), r, release)
            .mean_jaccard};
  };
  const auto [success_tight, jaccard_tight] = run(0.2);
  const auto [success_loose, jaccard_loose] = run(2.0);
  // Both settings mitigate the attack substantially.
  EXPECT_LT(success_tight, 0.6 * base);
  EXPECT_LT(success_loose, 0.8 * base);
  // Less privacy -> better utility.
  EXPECT_GT(jaccard_loose, jaccard_tight);
}

}  // namespace
}  // namespace poiprivacy
