// Pins the bench-option flag contract: an unknown `--flag` is rejected
// with exit code 2 and a stderr message naming the offending flag (it
// used to abort with an uncaught std::invalid_argument), while declared
// extra flags and the common set keep parsing. The underlying
// common::Flags throwing behavior is pinned by common_test; this suite
// covers the eval::BenchOptions exit-code layer every scenario and shim
// binary goes through.
#include <gtest/gtest.h>

#include "eval/bench_options.h"

namespace poiprivacy::eval {
namespace {

TEST(BenchOptionsDeathTest, UnknownFlagExitsWithCode2NamingTheFlag) {
  const char* argv[] = {"prog", "--bogus", "7"};
  EXPECT_EXIT(BenchOptions(3, argv), testing::ExitedWithCode(2),
              "unknown flag: --bogus");
}

TEST(BenchOptionsDeathTest, UndeclaredExtraFlagExitsWithCode2) {
  // `--r` is only legal for scenarios that declare it as an extra flag.
  const char* argv[] = {"prog", "--r", "2.5"};
  EXPECT_EXIT(BenchOptions(3, argv), testing::ExitedWithCode(2),
              "unknown flag: --r");
}

TEST(BenchOptionsDeathTest, UnknownFlagErrorIncludesUsage) {
  const char* argv[] = {"prog", "--typo"};
  EXPECT_EXIT(BenchOptions(2, argv), testing::ExitedWithCode(2),
              "usage: prog");
}

TEST(BenchOptions, DeclaredExtraFlagParses) {
  const char* argv[] = {"prog", "--r", "2.5", "--seed", "7"};
  const BenchOptions options(5, argv, {"r"});
  EXPECT_EQ(options.flags.get("r", 0.0), 2.5);
  EXPECT_EQ(options.seed, 7u);
}

TEST(BenchOptions, CommonFlagsKeepTheirDefaults) {
  const char* argv[] = {"prog"};
  const BenchOptions options(1, argv);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.locations, 250u);
  EXPECT_FALSE(options.full);
}

}  // namespace
}  // namespace poiprivacy::eval
