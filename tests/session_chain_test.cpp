#include <gtest/gtest.h>

#include "attack/chain_attack.h"
#include "defense/session.h"
#include "poi/city_model.h"
#include "traj/generators.h"

namespace poiprivacy {
namespace {

poi::City make_city() { return poi::generate_city(poi::test_preset(), 7); }

cloak::AdaptiveIntervalCloaker make_cloaker(const poi::PoiDatabase& db) {
  common::Rng rng(3);
  return cloak::AdaptiveIntervalCloaker(
      cloak::uniform_population(db.bounds(), 500, rng), db.bounds());
}

TEST(ReleaseSession, SpendsBudgetPerRelease) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  defense::SessionConfig config;
  config.release.epsilon = 1.0;
  config.release.delta = 0.05;
  config.epsilon_ceiling = 3.5;
  config.delta_ceiling = 1.0;
  config.advanced_slack = 0.0;  // basic composition only
  defense::ReleaseSession session(city.db, cloaker, config);
  common::Rng rng(5);

  EXPECT_EQ(session.releases(), 0u);
  EXPECT_DOUBLE_EQ(session.spent().epsilon, 0.0);
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    granted += session.release({4.0, 4.0}, 1.0, rng).has_value();
  }
  // eps ceiling 3.5 with 1.0 per release -> exactly 3 releases.
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(session.releases(), 3u);
  EXPECT_TRUE(session.exhausted());
  EXPECT_NEAR(session.spent().epsilon, 3.0, 1e-9);
  EXPECT_NEAR(session.spent().delta, 0.15, 1e-9);
}

TEST(ReleaseSession, DeltaCeilingAlsoStops) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  defense::SessionConfig config;
  config.release.epsilon = 0.1;
  config.release.delta = 0.2;
  config.epsilon_ceiling = 100.0;
  config.delta_ceiling = 0.5;
  config.advanced_slack = 0.0;
  defense::ReleaseSession session(city.db, cloaker, config);
  common::Rng rng(7);
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    granted += session.release({4.0, 4.0}, 1.0, rng).has_value();
  }
  EXPECT_EQ(granted, 2);  // 3 * 0.2 > 0.5
}

TEST(ReleaseSession, AdvancedCompositionGrantsMoreSmallReleases) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  defense::SessionConfig basic;
  basic.release.epsilon = 0.01;
  basic.release.delta = 1e-5;
  basic.epsilon_ceiling = 2.0;
  basic.delta_ceiling = 1.0;
  basic.advanced_slack = 0.0;
  defense::SessionConfig advanced = basic;
  advanced.advanced_slack = 1e-6;

  const auto grants = [&](defense::SessionConfig config) {
    defense::ReleaseSession session(city.db, cloaker, config);
    common::Rng rng(9);
    int granted = 0;
    for (int i = 0; i < 1600; ++i) {
      if (!session.release({4.0, 4.0}, 1.0, rng)) break;
      ++granted;
    }
    return granted;
  };
  const int basic_grants = grants(basic);
  const int advanced_grants = grants(advanced);
  // Basic composition caps out around ceiling / eps = 200 releases
  // (floating-point summation may shave one off); sqrt-scaling advanced
  // composition grants several times more.
  EXPECT_GE(basic_grants, 199);
  EXPECT_LE(basic_grants, 200);
  EXPECT_GT(advanced_grants, 2 * basic_grants);
}

TEST(ReleaseSession, RemainingShrinksWithSpendAndClampsAtZero) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  defense::SessionConfig config;
  config.release.epsilon = 1.0;
  config.release.delta = 0.05;
  config.epsilon_ceiling = 2.5;
  config.delta_ceiling = 1.0;
  config.advanced_slack = 0.0;
  defense::ReleaseSession session(city.db, cloaker, config);

  EXPECT_DOUBLE_EQ(session.remaining().epsilon, 2.5);
  EXPECT_DOUBLE_EQ(session.remaining().delta, 1.0);
  session.ledger().record({1.0, 0.05});
  EXPECT_NEAR(session.remaining().epsilon, 1.5, 1e-12);
  EXPECT_NEAR(session.remaining().delta, 0.95, 1e-12);
  session.ledger().record({1.0, 0.05});
  session.ledger().record({1.0, 0.05});
  // Spent (3.0) exceeds the 2.5 ceiling; remaining clamps at zero.
  EXPECT_DOUBLE_EQ(session.remaining().epsilon, 0.0);
}

TEST(ReleaseSession, WouldExceedGatesWithoutThrowing) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  defense::SessionConfig config;
  config.release.epsilon = 1.0;
  config.release.delta = 0.0;
  config.epsilon_ceiling = 2.0;
  config.delta_ceiling = 1.0;
  config.advanced_slack = 0.0;
  defense::ReleaseSession session(city.db, cloaker, config);

  EXPECT_FALSE(session.ledger().would_exceed({1.0, 0.0}));
  EXPECT_TRUE(session.ledger().would_exceed({2.5, 0.0}));
  // A cheaper policy can still fit after the nominal one no longer does.
  session.ledger().record({1.0, 0.0});
  session.ledger().record({0.5, 0.0});
  EXPECT_TRUE(session.ledger().would_exceed({1.0, 0.0}));
  EXPECT_FALSE(session.ledger().would_exceed({0.5, 0.0}));
  // Spent 1.5 + nominal 1.0 = 2.5 > 2.0, so the session counts as
  // exhausted even though a 0.5-policy request is still admissible.
  EXPECT_TRUE(session.exhausted());

  // Invalid parameters are never admissible but must not throw.
  EXPECT_TRUE(session.ledger().would_exceed({0.0, 0.0}));
  EXPECT_TRUE(session.ledger().would_exceed({-1.0, 0.0}));
  EXPECT_TRUE(session.ledger().would_exceed({0.5, 1.0}));
}

TEST(ReleaseSession, ReleasesAreValidVectors) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db);
  defense::SessionConfig config;
  defense::ReleaseSession session(city.db, cloaker, config);
  common::Rng rng(11);
  const auto released = session.release({4.0, 4.0}, 1.0, rng);
  ASSERT_TRUE(released.has_value());
  ASSERT_EQ(released->size(), city.db.num_types());
  for (const auto v : *released) EXPECT_GE(v, 0);
}

class ChainAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    city_ = std::make_unique<poi::City>(make_city());
    common::Rng rng(13);
    traj::TaxiConfig config;
    config.num_taxis = 40;
    config.points_per_taxi = 50;
    trajectories_ =
        traj::generate_taxi_trajectories(*city_, config, rng);
    pairs_ = traj::extract_release_pairs(trajectories_, city_->db, r_, 600);
    ASSERT_GT(pairs_.size(), 60u);
    pairwise_ = std::make_unique<attack::TrajectoryAttack>(
        city_->db, std::span(pairs_.data(), pairs_.size() / 2), r_,
        attack::TrajectoryAttackConfig{}, rng);
  }

  std::vector<attack::TimedRelease> releases_for(const traj::Trajectory& t,
                                                 std::size_t start,
                                                 std::size_t n) const {
    std::vector<attack::TimedRelease> out;
    for (std::size_t i = start; i < start + n && i < t.points.size(); ++i) {
      out.push_back(
          {city_->db.freq(t.points[i].pos, r_), t.points[i].time});
    }
    return out;
  }

  const double r_ = 0.8;
  std::unique_ptr<poi::City> city_;
  std::vector<traj::Trajectory> trajectories_;
  std::vector<traj::ReleasePair> pairs_;
  std::unique_ptr<attack::TrajectoryAttack> pairwise_;
};

TEST_F(ChainAttackTest, EmptyChainIsUndecided) {
  const attack::ChainAttack chain(city_->db, *pairwise_, r_);
  const attack::ChainInferenceResult result = chain.infer({});
  EXPECT_FALSE(result.unique());
  EXPECT_TRUE(result.layers.empty());
}

TEST_F(ChainAttackTest, SingleReleaseMatchesBaseline) {
  const attack::ChainAttack chain(city_->db, *pairwise_, r_);
  const attack::RegionReidentifier reid(city_->db);
  for (std::size_t k = 0; k < 10; ++k) {
    const auto& t = trajectories_[k];
    const auto releases = releases_for(t, 0, 1);
    const attack::ChainInferenceResult result = chain.infer(releases);
    const attack::ReidResult baseline = reid.infer(releases[0].freq, r_);
    EXPECT_EQ(result.surviving_first_candidates, baseline.candidates);
  }
}

TEST_F(ChainAttackTest, SurvivorsAreSubsetOfBaselineCandidates) {
  const attack::ChainAttack chain(city_->db, *pairwise_, r_);
  for (std::size_t k = 0; k < 15; ++k) {
    const auto releases = releases_for(trajectories_[k], 5, 4);
    if (releases.size() < 4) continue;
    const attack::ChainInferenceResult result = chain.infer(releases);
    for (const poi::PoiId id : result.surviving_first_candidates) {
      EXPECT_NE(std::find(result.layers[0].begin(), result.layers[0].end(),
                          id),
                result.layers[0].end());
    }
    EXPECT_EQ(result.estimated_step_km.size(), releases.size() - 1);
  }
}

TEST_F(ChainAttackTest, LongerChainsNeverReduceAggregateSuccess) {
  const attack::ChainAttack chain(city_->db, *pairwise_, r_);
  std::size_t successes_1 = 0;
  std::size_t successes_3 = 0;
  std::size_t attempts = 0;
  for (const auto& t : trajectories_) {
    const auto chain3 = releases_for(t, 10, 3);
    if (chain3.size() < 3) continue;
    ++attempts;
    const auto chain1 = releases_for(t, 10, 1);
    successes_1 += chain.success(chain.infer(chain1), t.points[10].pos);
    successes_3 += chain.success(chain.infer(chain3), t.points[10].pos);
  }
  ASSERT_GT(attempts, 20u);
  // Longer chains add evidence; allow tiny regression from regressor noise.
  EXPECT_GE(successes_3 + 2, successes_1);
}

}  // namespace
}  // namespace poiprivacy
