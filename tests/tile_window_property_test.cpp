// TileAggregates windows against brute force, and the batched-envelope
// contract (poi/tile_aggregates.h, attack/attack_context.h):
//
//   * the prefix-sum window bounds are EXACT counts over the tile-aligned
//     covering rectangle — verified against a direct scan of the POI set
//     on 200 seeded probes, including out-of-bounds probes that clamp
//     into edge tiles;
//   * the coarse tile_window(ix, iy, r) dominates the per-candidate
//     window bounds of every probe binned into that tile, so one coarse
//     rare-type shortfall soundly rejects the whole tile;
//   * BatchedEnvelope returns exactly the survivor set (and per-candidate
//     verdict sequence) of the unbatched per-candidate exact_prune loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "attack/attack_context.h"
#include "common/rng.h"
#include "poi/city_model.h"
#include "poi/frequency.h"
#include "poi/tile_aggregates.h"

namespace poiprivacy {
namespace {

using poi::FrequencyVector;
using poi::TileAggregates;

class SeededTileCity : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  poi::City city() const {
    return poi::generate_city(poi::test_preset(), GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTileCity,
                         ::testing::Values(1u, 7u, 21u, 42u));

// Window bounds vs brute force: the covering rectangle of disk(p, r)
// spans [tile_of(p - r), tile_of(p + r)] per axis (the same clamped
// binning formula the constructor uses), so counting POIs whose home
// tile falls inside that rectangle must reproduce the prefix-sum reads
// exactly. 50 probes x 4 seeds = 200 seeded cases.
TEST_P(SeededTileCity, WindowBoundsEqualBruteForceRectangleCounts) {
  const poi::City c = city();
  const TileAggregates& tiles = c.db.tile_aggregates();
  common::Rng rng(GetParam() * 409 + 11);
  for (int trial = 0; trial < 50; ++trial) {
    const geo::Point p{rng.uniform(-2.0, 10.0), rng.uniform(-2.0, 10.0)};
    const double r = rng.uniform(0.05, 3.0);
    const TileAggregates::Tile lo = tiles.tile_of({p.x - r, p.y - r});
    const TileAggregates::Tile hi = tiles.tile_of({p.x + r, p.y + r});

    FrequencyVector expect(c.db.num_types(), 0);
    std::int64_t expect_total = 0;
    for (const poi::Poi& poi : c.db.pois()) {
      const TileAggregates::Tile home = tiles.tile_of(poi.pos);
      if (home.ix >= lo.ix && home.ix <= hi.ix && home.iy >= lo.iy &&
          home.iy <= hi.iy) {
        ++expect[poi.type];
        ++expect_total;
      }
    }

    const TileAggregates::Window win = tiles.window(p, r);
    ASSERT_EQ(win.total_bound(), expect_total)
        << "probe (" << p.x << ", " << p.y << ") r=" << r;
    for (poi::TypeId t = 0; t < expect.size(); ++t) {
      ASSERT_EQ(win.type_bound(t), expect[t])
          << "probe (" << p.x << ", " << p.y << ") r=" << r << " type=" << t;
    }
  }
}

// The batched-envelope contract: tile_window's bounds dominate the
// per-candidate window bounds of every member probe — including members
// near tile edges and out-of-bounds probes clamped into edge tiles.
TEST_P(SeededTileCity, CoarseTileWindowDominatesMemberWindows) {
  const poi::City c = city();
  const TileAggregates& tiles = c.db.tile_aggregates();
  common::Rng rng(GetParam() * 601 + 23);
  for (int trial = 0; trial < 50; ++trial) {
    const geo::Point p{rng.uniform(-2.0, 10.0), rng.uniform(-2.0, 10.0)};
    const double r = rng.uniform(0.05, 3.0);
    const TileAggregates::Tile tile = tiles.tile_of(p);
    const TileAggregates::Window coarse =
        tiles.tile_window(tile.ix, tile.iy, r);
    const TileAggregates::Window fine = tiles.window(p, r);
    ASSERT_GE(coarse.total_bound(), fine.total_bound())
        << "probe (" << p.x << ", " << p.y << ") r=" << r;
    for (poi::TypeId t = 0; t < c.db.num_types(); ++t) {
      ASSERT_GE(coarse.type_bound(t), fine.type_bound(t))
          << "probe (" << p.x << ", " << p.y << ") r=" << r << " type=" << t;
    }
  }
}

// BatchedEnvelope vs the unbatched loop: identical per-candidate verdicts
// (the fired sequence the AdaptiveGate records) and identical survivor
// sets through prune_batch.
TEST_P(SeededTileCity, BatchedEnvelopeMatchesPerCandidatePruning) {
  const poi::City c = city();
  const attack::AttackContext ctx(c.db);
  common::Rng rng(GetParam() * 733 + 31);
  for (int trial = 0; trial < 10; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.4, 1.6);
    const FrequencyVector released = c.db.freq(l, r);
    const auto pivot = ctx.pivot_type(released);
    if (!pivot) continue;
    const std::vector<poi::TypeId> rare =
        ctx.rare_present_types(released, 4, pivot);
    const std::span<const poi::PoiId> candidates =
        ctx.candidates_of_type(*pivot);

    attack::AttackContext::BatchedEnvelope envelope(ctx, 2.0 * r, released,
                                                    rare);
    std::vector<poi::PoiId> unbatched;
    for (const poi::PoiId id : candidates) {
      const geo::Point pos = c.db.poi(id).pos;
      const bool fired = attack::AttackContext::exact_prune(
          ctx.window(pos, 2.0 * r), released, rare);
      EXPECT_EQ(envelope.pruned(pos), fired) << "candidate " << id;
      if (!fired) unbatched.push_back(id);
    }

    // A fresh envelope (its memo cold) must yield the same survivors via
    // the batch entry point.
    attack::AttackContext::BatchedEnvelope fresh(ctx, 2.0 * r, released,
                                                 rare);
    std::vector<poi::PoiId> survivors;
    fresh.prune_batch(candidates, survivors);
    EXPECT_EQ(survivors, unbatched);
  }
}

// Soundness end to end: no candidate the full dominance test accepts is
// ever envelope-pruned (batched or not).
TEST_P(SeededTileCity, EnvelopeNeverPrunesATrueCandidate) {
  const poi::City c = city();
  const attack::AttackContext ctx(c.db);
  common::Rng rng(GetParam() * 887 + 41);
  for (int trial = 0; trial < 10; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.4, 1.6);
    const FrequencyVector released = c.db.freq(l, r);
    const auto pivot = ctx.pivot_type(released);
    if (!pivot) continue;
    const std::vector<poi::TypeId> rare =
        ctx.rare_present_types(released, 4, pivot);
    attack::AttackContext::BatchedEnvelope envelope(ctx, 2.0 * r, released,
                                                    rare);
    for (const poi::PoiId id : ctx.candidates_of_type(*pivot)) {
      const geo::Point pos = c.db.poi(id).pos;
      if (poi::scalar_ref::dominates(c.db.freq(pos, 2.0 * r), released)) {
        EXPECT_FALSE(envelope.pruned(pos)) << "candidate " << id;
      }
    }
  }
}

}  // namespace
}  // namespace poiprivacy
