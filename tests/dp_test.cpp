#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "dp/mechanisms.h"

namespace poiprivacy::dp {
namespace {

TEST(Laplace, RejectsInvalidParameters) {
  EXPECT_THROW(LaplaceMechanism(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LaplaceMechanism(1.0, 0.0), std::invalid_argument);
}

TEST(Laplace, ScaleIsSensitivityOverEpsilon) {
  const LaplaceMechanism mech(0.5, 2.0);
  EXPECT_DOUBLE_EQ(mech.scale(), 4.0);
}

TEST(Laplace, NoiseIsCenteredWithCorrectVariance) {
  const LaplaceMechanism mech(1.0, 1.0);
  common::Rng rng(7);
  common::RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.add(mech.perturb(10.0, rng));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.variance(), 2.0, 0.1);  // Var Laplace(1) = 2
}

TEST(Gaussian, CalibratedSigmaMatchesDefinitionTwo) {
  // sigma = sqrt(2 ln(1.25/delta)) * Delta / eps.
  const PrivacyParams params{1.0, 0.2};
  const double expected = std::sqrt(2.0 * std::log(1.25 / 0.2)) * 3.0 / 1.0;
  EXPECT_NEAR(GaussianMechanism::calibrated_sigma(params, 3.0), expected,
              1e-12);
}

TEST(Gaussian, SigmaShrinksWithEpsilon) {
  const double loose =
      GaussianMechanism::calibrated_sigma({2.0, 0.2}, 1.0);
  const double tight =
      GaussianMechanism::calibrated_sigma({0.2, 0.2}, 1.0);
  EXPECT_LT(loose, tight);
  EXPECT_NEAR(tight / loose, 10.0, 1e-9);
}

TEST(Gaussian, ZeroSensitivityAddsNoNoise) {
  const GaussianMechanism mech({1.0, 0.2}, 0.0);
  common::Rng rng(9);
  EXPECT_DOUBLE_EQ(mech.perturb(5.0, rng), 5.0);
}

TEST(Gaussian, RejectsInvalidParameters) {
  EXPECT_THROW(GaussianMechanism({0.0, 0.2}, 1.0), std::invalid_argument);
  EXPECT_THROW(GaussianMechanism({1.0, 0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(GaussianMechanism({1.0, 1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(GaussianMechanism({1.0, 0.2}, -1.0), std::invalid_argument);
}

TEST(Gaussian, EmpiricalSigmaMatchesCalibration) {
  const GaussianMechanism mech({1.0, 0.2}, 2.0);
  common::Rng rng(11);
  common::RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.add(mech.perturb(0.0, rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), mech.sigma(), mech.sigma() * 0.02);
}

TEST(PlanarLaplace, RejectsInvalidEpsilon) {
  EXPECT_THROW(PlanarLaplaceMechanism(0.0), std::invalid_argument);
  EXPECT_THROW(PlanarLaplaceMechanism::with_unit(1.0, 0.0),
               std::invalid_argument);
}

TEST(PlanarLaplace, MeanDisplacementIsTwoOverEpsilon) {
  // E[radius] for Gamma(2, eps) is 2/eps.
  const PlanarLaplaceMechanism mech(2.0);
  common::Rng rng(13);
  common::RunningStats radius;
  const geo::Point origin{0.0, 0.0};
  for (int i = 0; i < 40000; ++i) {
    radius.add(geo::distance(origin, mech.perturb(origin, rng)));
  }
  EXPECT_NEAR(radius.mean(), 1.0, 0.02);
}

TEST(PlanarLaplace, AngleIsUniform) {
  const PlanarLaplaceMechanism mech(1.0);
  common::Rng rng(17);
  int quadrant_counts[4] = {0, 0, 0, 0};
  const geo::Point origin{0.0, 0.0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const geo::Point p = mech.perturb(origin, rng);
    const int q = (p.x >= 0.0 ? 0 : 1) + (p.y >= 0.0 ? 0 : 2);
    ++quadrant_counts[q];
  }
  for (const int c : quadrant_counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.01);
  }
}

TEST(PlanarLaplace, WithUnitRescalesEpsilon) {
  // eps=0.1 with a 100 m unit equals eps_per_km = 1: mean displacement 2 km.
  const PlanarLaplaceMechanism mech =
      PlanarLaplaceMechanism::with_unit(0.1, 0.1);
  common::Rng rng(19);
  common::RunningStats radius;
  const geo::Point origin{0.0, 0.0};
  for (int i = 0; i < 40000; ++i) {
    radius.add(geo::distance(origin, mech.perturb(origin, rng)));
  }
  EXPECT_NEAR(radius.mean(), 2.0, 0.04);
}

TEST(PlanarLaplace, PerturbationIsTranslationInvariant) {
  const PlanarLaplaceMechanism mech(1.0);
  common::Rng rng_a(21);
  common::Rng rng_b(21);
  const geo::Point a = mech.perturb({0.0, 0.0}, rng_a);
  const geo::Point b = mech.perturb({5.0, -3.0}, rng_b);
  EXPECT_NEAR(b.x - a.x, 5.0, 1e-12);
  EXPECT_NEAR(b.y - a.y, -3.0, 1e-12);
}

// The defining geo-indistinguishability property, checked empirically on
// the radial density: P[radius <= t] = 1 - e^{-eps t}(1 + eps t).
TEST(PlanarLaplace, RadialCdfMatchesTheory) {
  const double eps = 1.5;
  const PlanarLaplaceMechanism mech(eps);
  common::Rng rng(23);
  const geo::Point origin{0.0, 0.0};
  const int n = 50000;
  std::vector<double> radii;
  radii.reserve(n);
  for (int i = 0; i < n; ++i) {
    radii.push_back(geo::distance(origin, mech.perturb(origin, rng)));
  }
  for (const double t : {0.5, 1.0, 2.0, 4.0}) {
    std::size_t below = 0;
    for (const double r : radii) below += r <= t;
    const double expected = 1.0 - std::exp(-eps * t) * (1.0 + eps * t);
    EXPECT_NEAR(static_cast<double>(below) / n, expected, 0.01)
        << "threshold " << t;
  }
}

}  // namespace
}  // namespace poiprivacy::dp
