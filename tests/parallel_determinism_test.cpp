// The headline contract of the parallel evaluation engine: identical
// results for ANY thread count. Every runner is re-run on a fresh synthetic
// workbench at --threads 1, 2 and 8 and the resulting stats must be
// bit-identical — counters, cache traffic, float accumulations, and the
// order of per-location vectors like areas_km2.
#include <gtest/gtest.h>

#include <map>

#include "common/parallel.h"
#include "defense/location_defenses.h"
#include "eval/datasets.h"
#include "eval/runner.h"
#include "eval/uniqueness.h"

namespace poiprivacy {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

eval::WorkbenchConfig small_config() {
  eval::WorkbenchConfig config;
  config.seed = 4242;
  config.locations_per_dataset = 60;
  config.num_taxis = 10;
  config.points_per_taxi = 20;
  config.num_checkin_users = 10;
  config.checkins_per_user = 10;
  return config;
}

/// Everything one full evaluation pass produces, for one thread count.
/// A fresh Workbench per pass keeps the anchor-cache deltas comparable.
struct PassResult {
  eval::AttackStats attack;
  eval::AttackStats attack_seeded;
  eval::FineGrainedStats fine;
  eval::UtilityStats utility;
  eval::UtilityStats utility_seeded;
};

PassResult run_pass(std::size_t threads) {
  common::set_default_thread_count(threads);
  const eval::Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const auto& locations = bench.locations(eval::DatasetKind::kBeijingRandom);
  const double r = 2.0;

  PassResult result;
  result.attack =
      eval::evaluate_attack(db, locations, r, eval::identity_release(db));

  const defense::GeoIndDefense defense(db, 0.1, 0.1);
  const eval::SeededReleaseFn noisy =
      [&](geo::Point l, double radius, common::Rng& rng) {
        return defense.release(l, radius, rng);
      };
  result.attack_seeded = eval::evaluate_attack(db, locations, r, noisy, 99);

  attack::FineGrainedConfig fine_config;
  fine_config.area_resolution = 96;
  result.fine = eval::evaluate_fine_grained(db, locations, r, fine_config);

  result.utility =
      eval::evaluate_utility(db, locations, r, eval::identity_release(db));
  result.utility_seeded = eval::evaluate_utility(db, locations, r, noisy, 99);
  return result;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  /// One full pass per thread count, computed once and shared by every
  /// test in this suite (each pass builds its own fresh Workbench).
  static const PassResult& pass_for(std::size_t threads) {
    static std::map<std::size_t, PassResult>* cache =
        new std::map<std::size_t, PassResult>();
    const auto it = cache->find(threads);
    if (it != cache->end()) return it->second;
    return cache->emplace(threads, run_pass(threads)).first->second;
  }
  static const PassResult& baseline() { return pass_for(1); }
};

TEST_F(ParallelDeterminismTest, BaselineIsNontrivial) {
  // Guard against the comparisons below passing vacuously.
  EXPECT_EQ(baseline().attack.attempts, 60u);
  EXPECT_GT(baseline().attack.unique, 0u);
  EXPECT_GT(baseline().attack.cache_misses, 0u);
  EXPECT_GT(baseline().fine.successes, 0u);
  EXPECT_FALSE(baseline().fine.areas_km2.empty());
  EXPECT_GT(baseline().utility_seeded.samples, 0u);
  EXPECT_LT(baseline().utility_seeded.mean_jaccard, 1.0);
  EXPECT_TRUE(baseline().attack.counters_consistent());
  EXPECT_TRUE(baseline().attack_seeded.counters_consistent());
}

TEST_F(ParallelDeterminismTest, AttackStatsBitIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : kThreadCounts) {
    const PassResult& pass = pass_for(threads);
    EXPECT_EQ(pass.attack, baseline().attack) << "threads=" << threads;
    EXPECT_EQ(pass.attack_seeded, baseline().attack_seeded)
        << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest,
       FineGrainedStatsBitIdenticalIncludingAreaOrder) {
  for (const std::size_t threads : kThreadCounts) {
    const PassResult& pass = pass_for(threads);
    // operator== compares areas_km2 / aux_counts element-wise in order, so
    // any scheduling-dependent reordering or float divergence fails here.
    EXPECT_EQ(pass.fine, baseline().fine) << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, UtilityStatsBitIdenticalAcrossThreadCounts) {
  for (const std::size_t threads : kThreadCounts) {
    const PassResult& pass = pass_for(threads);
    EXPECT_EQ(pass.utility, baseline().utility) << "threads=" << threads;
    EXPECT_EQ(pass.utility_seeded, baseline().utility_seeded)
        << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, UniquenessMapBitIdenticalAcrossThreadCounts) {
  const poi::City city = poi::generate_city(poi::test_preset(), 7);
  common::set_default_thread_count(1);
  const eval::UniquenessMap serial = eval::analyze_uniqueness(city.db, 0.8);
  for (const std::size_t threads : kThreadCounts) {
    common::set_default_thread_count(threads);
    const eval::UniquenessMap parallel = eval::analyze_uniqueness(city.db, 0.8);
    EXPECT_EQ(parallel.cells, serial.cells) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(parallel.uniqueness_ratio(), serial.uniqueness_ratio());
  }
  common::set_default_thread_count(0);
}

}  // namespace
}  // namespace poiprivacy
