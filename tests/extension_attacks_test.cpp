#include <algorithm>

#include <gtest/gtest.h>

#include "attack/fingerprint.h"
#include "attack/robust_reid.h"
#include "common/rng.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "poi/city_model.h"

namespace poiprivacy::attack {
namespace {

poi::City make_city(std::uint64_t seed = 7) {
  return poi::generate_city(poi::test_preset(), seed);
}

TEST(DominatesTolerant, ExactDominationAlwaysPasses) {
  const poi::FrequencyVector a{3, 2, 1};
  const poi::FrequencyVector b{2, 2, 0};
  EXPECT_TRUE(dominates_tolerant(a, b, 0, 0));
}

TEST(DominatesTolerant, CountsViolationsAndDeficit) {
  const poi::FrequencyVector a{0, 2, 0};
  const poi::FrequencyVector b{1, 2, 2};
  // Two violated dimensions with total deficit 3.
  EXPECT_FALSE(dominates_tolerant(a, b, 1, 3));
  EXPECT_FALSE(dominates_tolerant(a, b, 2, 2));
  EXPECT_TRUE(dominates_tolerant(a, b, 2, 3));
}

TEST(DominatesTolerant, ZeroToleranceEqualsStrictDomination) {
  common::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    poi::FrequencyVector a(10);
    poi::FrequencyVector b(10);
    for (int i = 0; i < 10; ++i) {
      a[i] = static_cast<std::int32_t>(rng.uniform_int(0, 4));
      b[i] = static_cast<std::int32_t>(rng.uniform_int(0, 4));
    }
    EXPECT_EQ(dominates_tolerant(a, b, 0, 0), poi::dominates(a, b));
  }
}

TEST(Fingerprint, FeasibleRegionNeverExcludesTruth) {
  const poi::City city = make_city();
  const double r = 0.8;
  const FingerprintAttack attack(city.db, r, {0.5});
  common::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const FingerprintResult result = attack.infer(city.db.freq(l, r));
    // No false negatives: the releaser's cell always survives.
    EXPECT_TRUE(attack.covers(result, l)) << "trial " << trial;
    EXPECT_GT(result.feasible_area_km2, 0.0);
  }
}

TEST(Fingerprint, EmptyReleaseMatchesWholeCity) {
  const poi::City city = make_city();
  const FingerprintAttack attack(city.db, 0.8, {0.5});
  const poi::FrequencyVector empty(city.db.num_types(), 0);
  const FingerprintResult result = attack.infer(empty);
  EXPECT_EQ(result.feasible_cells.size(), attack.num_cells());
}

TEST(Fingerprint, RicherVectorShrinksRegion) {
  const poi::City city = make_city();
  const double r = 0.8;
  const FingerprintAttack attack(city.db, r, {0.5});
  common::Rng rng(7);
  double sparse_area = 0.0;
  double rich_area = 0.0;
  int n = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const geo::Point l{rng.uniform(1.0, 7.0), rng.uniform(1.0, 7.0)};
    const poi::FrequencyVector rich = city.db.freq(l, r);
    if (poi::total(rich) < 5) continue;
    // Keep only the two most common present types -> sparser evidence.
    poi::FrequencyVector sparse(rich.size(), 0);
    const auto top = poi::top_k_types(rich, 2);
    for (const poi::TypeId t : top) sparse[t] = rich[t];
    sparse_area += attack.infer(sparse).feasible_area_km2;
    rich_area += attack.infer(rich).feasible_area_km2;
    ++n;
  }
  ASSERT_GT(n, 10);
  EXPECT_LT(rich_area, sparse_area);
}

TEST(Fingerprint, SurvivesSanitization) {
  // Zeroing entries can only enlarge the feasible region, never lose the
  // true cell: the fingerprint attack is structurally immune to
  // suppression-style defenses.
  const poi::City city = make_city();
  const defense::Sanitizer sanitizer(city.db, 10);
  const double r = 0.8;
  const FingerprintAttack attack(city.db, r, {0.5});
  common::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector truth = city.db.freq(l, r);
    const FingerprintResult on_truth = attack.infer(truth);
    const FingerprintResult on_sanitized =
        attack.infer(sanitizer.sanitize(truth));
    EXPECT_TRUE(attack.covers(on_sanitized, l));
    EXPECT_GE(on_sanitized.feasible_area_km2, on_truth.feasible_area_km2);
  }
}

TEST(Fingerprint, FinerGridGivesSmallerOrEqualRegions) {
  const poi::City city = make_city();
  const double r = 0.8;
  const FingerprintAttack coarse(city.db, r, {1.0});
  const FingerprintAttack fine(city.db, r, {0.25});
  common::Rng rng(11);
  double coarse_total = 0.0;
  double fine_total = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector f = city.db.freq(l, r);
    coarse_total += coarse.infer(f).feasible_area_km2;
    fine_total += fine.infer(f).feasible_area_km2;
  }
  EXPECT_LE(fine_total, coarse_total * 1.1);
}

TEST(RobustReid, MatchesBaselineOnHonestReleases) {
  const poi::City city = make_city();
  const RegionReidentifier baseline(city.db);
  const RobustReidentifier robust(city.db);
  common::Rng rng(13);
  const double r = 0.8;
  int baseline_successes = 0;
  int robust_successes = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector f = city.db.freq(l, r);
    baseline_successes += attack_success(baseline.infer(f, r), city.db, l, r);
    robust_successes += robust.success(robust.infer(f, r), l, r);
  }
  // Voting over several pivots should do at least comparably well.
  EXPECT_GE(robust_successes, baseline_successes / 2);
}

TEST(RobustReid, BeatsBaselineAgainstSuppression) {
  const poi::City city = make_city();
  const defense::OptimizationDefense defense(city.db, 0.05);
  const RegionReidentifier baseline(city.db);
  const RobustReidentifier robust(city.db);
  common::Rng rng(17);
  const double r = 0.8;
  int baseline_successes = 0;
  int robust_successes = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector released =
        defense.release(city.db.freq(l, r));
    baseline_successes +=
        attack_success(baseline.infer(released, r), city.db, l, r);
    robust_successes += robust.success(robust.infer(released, r), l, r);
  }
  EXPECT_GE(robust_successes, baseline_successes);
}

TEST(RobustReid, EmptyReleaseIsUndecided) {
  const poi::City city = make_city();
  const RobustReidentifier robust(city.db);
  const poi::FrequencyVector empty(city.db.num_types(), 0);
  const RobustReidResult result = robust.infer(empty, 0.8);
  EXPECT_FALSE(result.decided);
  EXPECT_TRUE(result.clusters.empty());
}

}  // namespace
}  // namespace poiprivacy::attack
