// The observability layer's core contract: instrumentation only observes.
// Running the serving and evaluation pipelines with metrics enabled — and
// scraping the global registry mid-run, which merges thread sample
// buffers — must leave every released vector, status, and evaluation stat
// bit-identical across --threads 1/2/8. Labelled `tsan` so the same
// scenario runs under ThreadSanitizer (concurrent record() vs scrape).
//
// The counter-mirror checks additionally pin the obs counters to the
// deterministic ServiceStats they shadow; they are gated on
// obs::kMetricsEnabled so a -DPOIPRIVACY_NO_METRICS tree still passes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "defense/location_defenses.h"
#include "eval/datasets.h"
#include "eval/runner.h"
#include "obs/metrics.h"
#include "service/workload.h"

namespace poiprivacy {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

std::uint64_t counter_value(const std::string& name) {
  return obs::global_registry().counter(name).value();
}

/// Scrapes the global registry the way an exit dump would: renders both
/// formats, which drains every thread's sample buffer mid-run.
void scrape_global_registry() {
  const std::string json = obs::global_registry().json();
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(obs::global_registry().table().empty());
}

service::ServiceConfig service_config() {
  service::ServiceConfig config;
  config.policies.push_back(
      {"precise", {.k = 8, .epsilon = 1.0, .delta = 0.05}});
  config.policies.push_back(
      {"coarse", {.k = 8, .epsilon = 0.25, .delta = 0.01}});
  config.degrade_policy = 1;
  config.epsilon_ceiling = 3.5;
  config.delta_ceiling = 1.0;
  config.advanced_slack = 0.0;
  config.seed = 99;
  return config;
}

eval::WorkbenchConfig eval_config() {
  eval::WorkbenchConfig config;
  config.seed = 4242;
  config.locations_per_dataset = 40;
  config.num_taxis = 8;
  config.points_per_taxi = 15;
  config.num_checkin_users = 8;
  config.checkins_per_user = 8;
  return config;
}

struct ServicePass {
  std::vector<service::ReleaseResult> results;
  service::ServiceStats stats;
  service::ReleaseCacheStats cache;
};

ServicePass run_service_pass(std::size_t threads) {
  common::set_default_thread_count(threads);
  const poi::City city = poi::generate_city(poi::test_preset(), 7);
  common::Rng pop_rng(3);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(city.db.bounds(), 500, pop_rng),
      city.db.bounds());
  service::WorkloadConfig workload;
  workload.num_users = 10;
  workload.requests_per_user = 5;
  workload.seed = 11;
  workload.radii = {0.8, 1.5};
  workload.policy_weights = {0.7, 0.3};
  const auto trace =
      service::requests_of(service::generate_workload(city, workload));

  service::ReleaseService gsp(city.db, cloaker, service_config());
  ServicePass pass;
  // Serve in two halves with a registry scrape in between, so the scrape
  // provably cannot perturb in-flight serving state.
  const std::size_t half = trace.size() / 2;
  const std::vector<service::ReleaseRequest> first(trace.begin(),
                                                   trace.begin() + half);
  const std::vector<service::ReleaseRequest> second(trace.begin() + half,
                                                    trace.end());
  pass.results = gsp.serve(first);
  scrape_global_registry();
  const auto rest = gsp.serve(second);
  pass.results.insert(pass.results.end(), rest.begin(), rest.end());
  scrape_global_registry();
  pass.stats = gsp.stats();
  pass.cache = gsp.cache_stats();
  return pass;
}

struct EvalPass {
  eval::AttackStats attack;
  eval::AttackStats attack_seeded;
  eval::FineGrainedStats fine;
  eval::UtilityStats utility_seeded;
};

EvalPass run_eval_pass(std::size_t threads) {
  common::set_default_thread_count(threads);
  const eval::Workbench bench(eval_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const auto& locations = bench.locations(eval::DatasetKind::kBeijingRandom);
  const double r = 2.0;

  EvalPass pass;
  pass.attack =
      eval::evaluate_attack(db, locations, r, eval::identity_release(db));
  scrape_global_registry();

  const defense::GeoIndDefense defense(db, 0.1, 0.1);
  const eval::SeededReleaseFn noisy =
      [&](geo::Point l, double radius, common::Rng& rng) {
        return defense.release(l, radius, rng);
      };
  pass.attack_seeded = eval::evaluate_attack(db, locations, r, noisy, 99);
  scrape_global_registry();

  attack::FineGrainedConfig fine_config;
  fine_config.area_resolution = 96;
  pass.fine = eval::evaluate_fine_grained(db, locations, r, fine_config);
  scrape_global_registry();

  pass.utility_seeded = eval::evaluate_utility(db, locations, r, noisy, 99);
  scrape_global_registry();
  return pass;
}

TEST(ObsDeterminism, ServiceResultsIdenticalWithMidRunScrapes) {
  const ServicePass baseline = run_service_pass(1);
  // Guard against vacuous comparisons.
  EXPECT_EQ(baseline.stats.requests, 50u);
  EXPECT_GT(baseline.stats.cache_hits, 0u);
  EXPECT_GT(baseline.stats.cache_misses, 0u);

  for (const std::size_t threads : kThreadCounts) {
    const ServicePass pass = run_service_pass(threads);
    EXPECT_EQ(pass.results, baseline.results) << "threads=" << threads;
    EXPECT_EQ(pass.stats, baseline.stats) << "threads=" << threads;
    EXPECT_EQ(pass.cache, baseline.cache) << "threads=" << threads;
  }
  common::set_default_thread_count(0);
}

TEST(ObsDeterminism, EvalResultsIdenticalWithMidRunScrapes) {
  const EvalPass baseline = run_eval_pass(1);
  EXPECT_EQ(baseline.attack.attempts, 40u);
  EXPECT_GT(baseline.attack.unique, 0u);
  EXPECT_GT(baseline.fine.successes, 0u);

  for (const std::size_t threads : kThreadCounts) {
    const EvalPass pass = run_eval_pass(threads);
    EXPECT_EQ(pass.attack, baseline.attack) << "threads=" << threads;
    EXPECT_EQ(pass.attack_seeded, baseline.attack_seeded)
        << "threads=" << threads;
    EXPECT_EQ(pass.fine, baseline.fine) << "threads=" << threads;
    EXPECT_EQ(pass.utility_seeded, baseline.utility_seeded)
        << "threads=" << threads;
  }
  common::set_default_thread_count(0);
}

TEST(ObsDeterminism, ServiceCounterMirrorsTrackServiceStats) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // Process-wide counters only accumulate, so compare deltas across one
  // pass against the pass's own deterministic ServiceStats.
  const std::uint64_t requests_before = counter_value("service.requests");
  const std::uint64_t granted_before = counter_value("service.granted");
  const std::uint64_t hits_before = counter_value("service.cache_hits");
  const std::uint64_t misses_before = counter_value("service.cache_misses");

  const ServicePass pass = run_service_pass(4);
  common::set_default_thread_count(0);

  EXPECT_EQ(counter_value("service.requests") - requests_before,
            pass.stats.requests);
  EXPECT_EQ(counter_value("service.granted") - granted_before,
            pass.stats.granted);
  EXPECT_EQ(counter_value("service.cache_hits") - hits_before,
            pass.stats.cache_hits);
  EXPECT_EQ(counter_value("service.cache_misses") - misses_before,
            pass.stats.cache_misses);
  // The parallel pool saw work, and no batch is left mid-flight.
  EXPECT_GT(counter_value("parallel.tasks"), 0u);
  EXPECT_EQ(obs::global_registry().gauge("parallel.queue_depth").value(), 0);
}

TEST(ObsDeterminism, AnchorCacheMirrorsTrackDatabaseStats) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const std::uint64_t hits_before = counter_value("poi.anchor_cache.hits");
  const std::uint64_t misses_before =
      counter_value("poi.anchor_cache.misses");

  common::set_default_thread_count(2);
  const eval::Workbench bench(eval_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const auto& locations = bench.locations(eval::DatasetKind::kBeijingRandom);
  const eval::AttackStats stats =
      eval::evaluate_attack(db, locations, 2.0, eval::identity_release(db));
  common::set_default_thread_count(0);

  const poi::AnchorCacheStats cache = db.anchor_cache_stats();
  EXPECT_EQ(counter_value("poi.anchor_cache.hits") - hits_before, cache.hits);
  EXPECT_EQ(counter_value("poi.anchor_cache.misses") - misses_before,
            cache.misses);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, cache.hits + cache.misses);
}

}  // namespace
}  // namespace poiprivacy
