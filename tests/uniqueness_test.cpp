#include <gtest/gtest.h>
#include "defense/opt_defense.h"
#include "cloak/kcloak.h"

#include "eval/uniqueness.h"
#include "poi/city_model.h"

namespace poiprivacy::eval {
namespace {

poi::City make_city() { return poi::generate_city(poi::test_preset(), 7); }

TEST(Uniqueness, MapCoversTheCity) {
  const poi::City city = make_city();
  const UniquenessMap map = analyze_uniqueness(city.db, 0.8, 1.0);
  EXPECT_EQ(map.nx, 8);
  EXPECT_EQ(map.ny, 8);
  EXPECT_EQ(map.cells.size(), 64u);
  EXPECT_EQ(map.count(CellOutcome::kEmpty) + map.count(CellOutcome::kUnique) +
                map.count(CellOutcome::kAmbiguous),
            map.cells.size());
}

TEST(Uniqueness, RatioIsBetweenZeroAndOne) {
  const poi::City city = make_city();
  for (const double r : {0.4, 0.8, 1.6}) {
    const UniquenessMap map = analyze_uniqueness(city.db, r, 0.8);
    EXPECT_GE(map.uniqueness_ratio(), 0.0);
    EXPECT_LE(map.uniqueness_ratio(), 1.0);
  }
}

TEST(Uniqueness, DenseCityHasFewEmptyCellsAtLargeRange) {
  const poi::City city = make_city();
  const UniquenessMap map = analyze_uniqueness(city.db, 2.0, 1.0);
  // At r=2 km in an 8x8 km city with 800 POIs, essentially every probe
  // sees at least one POI.
  EXPECT_LE(map.count(CellOutcome::kEmpty), 3u);
}

TEST(Uniqueness, EmptyDatabaseIsAllEmpty) {
  poi::PoiTypeRegistry registry;
  registry.intern("lonely");
  const poi::PoiDatabase db("empty", {}, std::move(registry),
                            {0.0, 0.0, 4.0, 4.0});
  const UniquenessMap map = analyze_uniqueness(db, 1.0, 1.0);
  EXPECT_EQ(map.count(CellOutcome::kEmpty), map.cells.size());
  EXPECT_DOUBLE_EQ(map.uniqueness_ratio(), 0.0);
}

TEST(Uniqueness, SingletonCityIsUniqueNearThePoi) {
  poi::PoiTypeRegistry registry;
  const poi::TypeId t = registry.intern("beacon");
  std::vector<poi::Poi> pois{{0, t, {2.0, 2.0}}};
  const poi::PoiDatabase db("beacon", std::move(pois), std::move(registry),
                            {0.0, 0.0, 4.0, 4.0});
  const UniquenessMap map = analyze_uniqueness(db, 1.0, 1.0);
  EXPECT_GE(map.count(CellOutcome::kUnique), 1u);
  EXPECT_EQ(map.count(CellOutcome::kAmbiguous), 0u);
  EXPECT_DOUBLE_EQ(map.uniqueness_ratio(), 1.0);
}

TEST(Uniqueness, AsciiRenderingHasOneRowPerCellRow) {
  const poi::City city = make_city();
  const UniquenessMap map = analyze_uniqueness(city.db, 0.8, 1.0);
  const std::string art = render_ascii(map);
  std::size_t newlines = 0;
  for (const char c : art) newlines += c == '\n';
  EXPECT_EQ(newlines, static_cast<std::size_t>(map.ny));
  EXPECT_EQ(art.size(), static_cast<std::size_t>(map.ny) * (map.nx + 1));
  // Only the three legend characters are allowed.
  for (const char c : art) {
    EXPECT_TRUE(c == '#' || c == '.' || c == ' ' || c == '\n');
  }
}

TEST(Uniqueness, FinerGridRefinesTheRatioSmoothly) {
  const poi::City city = make_city();
  const UniquenessMap coarse = analyze_uniqueness(city.db, 0.8, 2.0);
  const UniquenessMap fine = analyze_uniqueness(city.db, 0.8, 0.5);
  // Sampling noise aside, both resolutions estimate the same quantity.
  EXPECT_NEAR(coarse.uniqueness_ratio(), fine.uniqueness_ratio(), 0.3);
}

TEST(DpNoiseKind, GeometricVariantReleasesValidVectors) {
  const poi::City city = make_city();
  common::Rng pop_rng(3);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(city.db.bounds(), 500, pop_rng),
      city.db.bounds());
  defense::DpDefenseConfig config;
  config.noise = defense::DpNoiseKind::kGeometric;
  config.epsilon = 1.0;
  const defense::DpDefense defense(city.db, cloaker, config);
  common::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const poi::FrequencyVector released =
        defense.release({rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)}, 1.0,
                        rng);
    ASSERT_EQ(released.size(), city.db.num_types());
    for (const auto v : released) EXPECT_GE(v, 0);
  }
}

}  // namespace
}  // namespace poiprivacy::eval
