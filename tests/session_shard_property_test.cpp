// Property test: the sharded, lock-free SessionTable against a
// single-mutex-style reference oracle.
//
// The oracle is the obviously-correct implementation — one map of
// user -> fixed-point ledger guarded by nothing (the test drives both
// serially), mirroring the real table's topology (shard_of /
// shard_capacity) so fail-closed capacity refusals and TTL sweeps are
// predicted exactly. 200 seeded random schedules of charges, epoch
// ticks and sweeps must agree on
//
//   * every admission outcome (charged / would-exceed / table-full),
//   * every user's spent and remaining budget afterwards,
//   * the exact eviction set of every sweep — in particular a session
//     is never dropped before sitting idle for a full TTL, no matter
//     how much budget it has charged,
//   * the resident/created/evicted/refused counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "service/session_table.h"

namespace poiprivacy {
namespace {

using service::ChargeOutcome;
using service::SessionTable;
using service::UserId;

/// The reference implementation: exact integer-unit ledgers in a map,
/// per-shard occupancy mirrored from the real table's topology.
class OracleTable {
 public:
  OracleTable(const SessionTable& table, dp::FixedBudget ceiling)
      : table_(&table),
        ceiling_(ceiling),
        resident_per_shard_(table.num_shards(), 0) {}

  ChargeOutcome try_charge(UserId user, dp::FixedBudget cost) {
    auto it = sessions_.find(user);
    if (it == sessions_.end()) {
      const std::size_t shard = table_->shard_of(user);
      if (resident_per_shard_[shard] >= table_->shard_capacity()) {
        ++full_refusals_;
        return ChargeOutcome::kTableFull;
      }
      it = sessions_.emplace(user, Session{}).first;
      ++resident_per_shard_[shard];
      ++created_;
    }
    it->second.touch = epoch_;
    const std::uint64_t eps =
        std::uint64_t{it->second.eps_units} + cost.epsilon_units;
    const std::uint64_t del =
        std::uint64_t{it->second.delta_units} + cost.delta_units;
    if (eps > ceiling_.epsilon_units || del > ceiling_.delta_units) {
      return ChargeOutcome::kWouldExceed;
    }
    it->second.eps_units = static_cast<std::uint32_t>(eps);
    it->second.delta_units = static_cast<std::uint32_t>(del);
    return ChargeOutcome::kCharged;
  }

  void advance_epoch() { ++epoch_; }

  std::size_t sweep(std::uint64_t ttl_epochs) {
    if (ttl_epochs == 0) return 0;
    std::size_t evicted = 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second.touch + ttl_epochs <= epoch_) {
        --resident_per_shard_[table_->shard_of(it->first)];
        it = sessions_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    evictions_ += evicted;
    return evicted;
  }

  bool contains(UserId user) const { return sessions_.count(user) > 0; }

  dp::PrivacyParams spent(UserId user) const {
    const auto it = sessions_.find(user);
    if (it == sessions_.end()) return {0.0, 0.0};
    return dp::FixedBudget{it->second.eps_units, it->second.delta_units}
        .params();
  }

  std::size_t size() const { return sessions_.size(); }
  std::uint64_t created() const { return created_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t full_refusals() const { return full_refusals_; }

 private:
  struct Session {
    std::uint32_t eps_units = 0;
    std::uint32_t delta_units = 0;
    std::uint64_t touch = 0;
  };

  const SessionTable* table_;
  dp::FixedBudget ceiling_;
  std::unordered_map<UserId, Session> sessions_;
  std::vector<std::size_t> resident_per_shard_;
  std::uint64_t epoch_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t full_refusals_ = 0;
};

/// One randomized schedule: charges over a small user pool (so capacity
/// and budget limits are both hit), interleaved with ticks and sweeps.
void run_case(std::uint64_t seed) {
  common::Rng rng(seed);

  service::SessionTableConfig config;
  config.capacity = 8 + static_cast<std::size_t>(rng.uniform() * 25.0);
  config.shards = 1 + static_cast<std::size_t>(rng.uniform() * 4.0);
  config.ttl_epochs = rng.uniform() < 0.3
                          ? 0
                          : 1 + static_cast<std::uint64_t>(rng.uniform() * 3.0);
  config.epsilon_ceiling = rng.uniform() < 0.5 ? 3.5 : 1.0;
  config.delta_ceiling = 0.5;
  SessionTable table(config);
  OracleTable oracle(table, table.ceiling());

  const std::vector<dp::FixedBudget> costs = {
      dp::FixedBudget::cost_of({1.0, 0.05}),
      dp::FixedBudget::cost_of({0.25, 0.01}),
      dp::FixedBudget::cost_of({0.5, 0.0}),
      dp::FixedBudget::cost_of({0.1, 0.001}),
  };
  const UserId user_pool =
      8 + static_cast<UserId>(rng.uniform() * 56.0);  // 8..64 users

  for (std::size_t step = 0; step < 400; ++step) {
    const double op = rng.uniform();
    if (op < 0.8) {
      const UserId user = static_cast<UserId>(rng.uniform() *
                                              static_cast<double>(user_pool));
      const dp::FixedBudget cost =
          costs[static_cast<std::size_t>(rng.uniform() * 4.0) % 4];
      ASSERT_EQ(table.try_charge(user, cost), oracle.try_charge(user, cost))
          << "seed " << seed << " step " << step << " user " << user;
    } else if (op < 0.9) {
      table.advance_epoch();
      oracle.advance_epoch();
    } else {
      const std::size_t evicted = table.sweep();
      ASSERT_EQ(evicted, oracle.sweep(config.ttl_epochs))
          << "seed " << seed << " step " << step;
    }
  }

  // Full-state audit: membership, ledgers and counters all agree.
  for (UserId user = 0; user < user_pool; ++user) {
    ASSERT_EQ(table.contains(user), oracle.contains(user))
        << "seed " << seed << " user " << user;
    const dp::PrivacyParams expect = oracle.spent(user);
    const dp::PrivacyParams got = table.spent(user);
    ASSERT_DOUBLE_EQ(got.epsilon, expect.epsilon)
        << "seed " << seed << " user " << user;
    ASSERT_DOUBLE_EQ(got.delta, expect.delta)
        << "seed " << seed << " user " << user;
  }
  const service::SessionTableStats stats = table.stats();
  ASSERT_EQ(table.size(), oracle.size()) << "seed " << seed;
  ASSERT_EQ(stats.sessions, oracle.size()) << "seed " << seed;
  ASSERT_EQ(stats.sessions_created, oracle.created()) << "seed " << seed;
  ASSERT_EQ(stats.evictions_ttl, oracle.evictions()) << "seed " << seed;
  ASSERT_EQ(stats.full_refusals, oracle.full_refusals()) << "seed " << seed;
}

TEST(SessionShardProperty, MatchesReferenceOracleAcross200Seeds) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    run_case(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// The TTL-safety property in isolation: a session that keeps charging
/// (even unsuccessfully) is never evicted, however many sweeps run, and
/// an idle one survives exactly until its TTL elapses.
TEST(SessionShardProperty, SweepNeverDropsActiveSessions) {
  service::SessionTableConfig config;
  config.capacity = 16;
  config.shards = 4;
  config.ttl_epochs = 2;
  config.epsilon_ceiling = 1.0;
  SessionTable table(config);
  const dp::FixedBudget cost = dp::FixedBudget::cost_of({0.4, 0.0});

  EXPECT_EQ(table.try_charge(1, cost), ChargeOutcome::kCharged);
  EXPECT_EQ(table.try_charge(2, cost), ChargeOutcome::kCharged);
  for (int tick = 0; tick < 6; ++tick) {
    table.advance_epoch();
    // User 1 stays active — a refused charge still counts as contact.
    table.try_charge(1, cost);
    table.try_charge(1, cost);
    const std::size_t evicted = table.sweep();
    if (tick < 1) {
      EXPECT_EQ(evicted, 0u) << "idle session evicted before its TTL";
    }
    EXPECT_TRUE(table.contains(1));
  }
  // User 2 went idle at epoch 0 and must be long gone...
  EXPECT_FALSE(table.contains(2));
  EXPECT_EQ(table.stats().evictions_ttl, 1u);
  // ...and renews with a fresh budget on recontact.
  EXPECT_EQ(table.try_charge(2, cost), ChargeOutcome::kCharged);
  EXPECT_DOUBLE_EQ(table.spent(2).epsilon, 0.4);
}

}  // namespace
}  // namespace poiprivacy
