// Property suite for dp::Ledger — the unification contract.
//
// The Ledger replaced three disjoint accounting stacks (the historical
// PrivacyAccountant, the WindowedAccountant, and the serving layer's
// bespoke meter admission). This suite replays 200 seeded random charge
// schedules against verbatim in-test ports of the legacy accountants as
// oracles and asserts:
//
//   1. the exact backend makes the SAME admit/deny decision and
//      composes to the SAME (bit-identical) totals as the legacy code;
//   2. the fixed-point backend is never LOOSER than the exact one — it
//      never admits a charge the exact basic accountant denies — and
//      its remaining budget tracks the exact one within the documented
//      quantization bound;
//   3. concurrent charges against one fixed-point ledger conserve
//      budget (run under TSan via the `tsan` ctest label).
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dp/ledger.h"

namespace poiprivacy::dp {
namespace {

// ---------------------------------------------------------------------------
// Legacy oracles: line-for-line ports of the deleted accountants
// (src/dp/accountant.{h,cpp} before the dp::Ledger refactor). Keep these
// in sync with nothing — they are frozen history.
// ---------------------------------------------------------------------------

double legacy_advanced_epsilon(double eps, double k, double delta_prime) {
  return eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
         k * eps * (std::exp(eps) - 1.0);
}

/// The historical PrivacyAccountant: unbounded exact sums plus the
/// heterogeneous advanced bound (slack split across epsilon groups).
class LegacyAccountant {
 public:
  void spend(PrivacyParams params) {
    if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
      throw std::invalid_argument("legacy: invalid spend");
    }
    ++releases_;
    epsilon_sum_ += params.epsilon;
    delta_sum_ += params.delta;
    ++by_epsilon_[params.epsilon];
  }

  std::size_t releases() const { return releases_; }

  PrivacyParams basic_composition() const { return {epsilon_sum_, delta_sum_}; }

  PrivacyParams advanced_composition(double delta_prime) const {
    if (delta_prime <= 0.0 || delta_prime >= 1.0) {
      throw std::invalid_argument("legacy: bad slack");
    }
    if (releases_ == 0) return {0.0, delta_prime};
    const double group_slack =
        delta_prime / static_cast<double>(by_epsilon_.size());
    double advanced = 0.0;
    for (const auto& [eps, count] : by_epsilon_) {
      advanced +=
          legacy_advanced_epsilon(eps, static_cast<double>(count), group_slack);
    }
    return {advanced, delta_sum_ + delta_prime};
  }

 private:
  std::size_t releases_ = 0;
  double epsilon_sum_ = 0.0;
  double delta_sum_ = 0.0;
  std::map<double, std::size_t> by_epsilon_;
};

/// The historical WindowedAccountant: per-window budget renewal.
class LegacyWindowedAccountant {
 public:
  explicit LegacyWindowedAccountant(WindowPolicy policy) : policy_(policy) {
    if (policy_.window_epochs == 0) {
      throw std::invalid_argument("legacy: window_epochs must be positive");
    }
    if (policy_.epsilon_budget < 0.0) {
      throw std::invalid_argument("legacy: negative budget");
    }
  }

  std::size_t window_of(std::size_t epoch) const {
    return epoch / policy_.window_epochs;
  }

  bool would_exceed(std::size_t epoch, double epsilon) const {
    if (policy_.epsilon_budget <= 0.0) return false;
    const auto it = windows_.find(window_of(epoch));
    const double spent = it == windows_.end() ? 0.0 : it->second.epsilon_sum;
    return spent + epsilon > policy_.epsilon_budget;
  }

  void spend(std::size_t epoch, PrivacyParams params) {
    if (params.epsilon <= 0.0 || params.delta < 0.0 || params.delta >= 1.0) {
      throw std::invalid_argument("legacy: invalid spend");
    }
    if (would_exceed(epoch, params.epsilon)) {
      throw std::runtime_error("legacy: window budget exhausted");
    }
    auto& window = windows_[window_of(epoch)];
    ++window.releases;
    window.epsilon_sum += params.epsilon;
    window.delta_sum += params.delta;
    ++releases_;
  }

  std::size_t releases() const { return releases_; }
  std::size_t windows_touched() const { return windows_.size(); }

  PrivacyParams window_composition(std::size_t window) const {
    const auto it = windows_.find(window);
    if (it == windows_.end()) return {0.0, 0.0};
    return {it->second.epsilon_sum, it->second.delta_sum};
  }

  PrivacyParams peak_window_composition() const {
    PrivacyParams peak{0.0, 0.0};
    for (const auto& [window, group] : windows_) {
      if (group.epsilon_sum > peak.epsilon) {
        peak = {group.epsilon_sum, group.delta_sum};
      }
    }
    return peak;
  }

  PrivacyParams lifetime_composition() const {
    PrivacyParams total{0.0, 0.0};
    for (const auto& [window, group] : windows_) {
      total.epsilon += group.epsilon_sum;
      total.delta += group.delta_sum;
    }
    return total;
  }

 private:
  struct Window {
    std::size_t releases = 0;
    double epsilon_sum = 0.0;
    double delta_sum = 0.0;
  };
  WindowPolicy policy_;
  std::map<std::size_t, Window> windows_;
  std::size_t releases_ = 0;
};

// ---------------------------------------------------------------------------
// Schedule generation. The palette mixes unit-exact values (the shipped
// policies — exercising the snap path) with irrational-ish ones
// (exercising strict ceil/floor).
// ---------------------------------------------------------------------------

constexpr int kSeeds = 200;

PrivacyParams random_params(common::Rng& rng) {
  static const double kEpsilons[] = {0.05,  0.1,  0.25,          0.5,
                                     1.0,   2.0,  1.0 / 3.0,     0.123456789,
                                     7e-7, 1e-6, 0.2718281828};
  static const double kDeltas[] = {0.0, 0.001, 0.01, 1e-12, 0.05, 1.0 / 3e3};
  return {kEpsilons[rng.uniform_int(0, 10)], kDeltas[rng.uniform_int(0, 5)]};
}

// ---------------------------------------------------------------------------
// 1. Exact backend vs the legacy accountants: bit-identical.
// ---------------------------------------------------------------------------

TEST(LedgerOracle, ExactBasicMatchesLegacyAccountantBitForBit) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    common::Rng rng(1000 + seed);
    Ledger ledger(LedgerConfig{});  // unbounded exact basic
    LegacyAccountant oracle;
    const int charges = static_cast<int>(rng.uniform_int(1, 64));
    for (int i = 0; i < charges; ++i) {
      const PrivacyParams params = random_params(rng);
      ledger.charge(params);
      oracle.spend(params);
    }
    ASSERT_EQ(ledger.releases(), oracle.releases());
    ASSERT_EQ(ledger.basic_composition().epsilon,
              oracle.basic_composition().epsilon);
    ASSERT_EQ(ledger.basic_composition().delta,
              oracle.basic_composition().delta);
    ASSERT_EQ(ledger.epsilon_groups() > 0, true);
    const double slack = 1e-6;
    ASSERT_EQ(ledger.advanced_composition(slack).epsilon,
              oracle.advanced_composition(slack).epsilon);
    ASSERT_EQ(ledger.advanced_composition(slack).delta,
              oracle.advanced_composition(slack).delta);
  }
}

TEST(LedgerOracle, WindowedRenewalMatchesLegacyWindowedAccountant) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    common::Rng rng(2000 + seed);
    const WindowPolicy policy{
        static_cast<std::size_t>(rng.uniform_int(1, 6)),
        rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.5, 4.0)};
    Ledger ledger(LedgerConfig{LedgerPolicy::kWindowedRenewal,
                               LedgerBackend::kExact, 0.0, 0.0, 0.0, policy});
    LegacyWindowedAccountant oracle(policy);
    const int charges = static_cast<int>(rng.uniform_int(1, 64));
    for (int i = 0; i < charges; ++i) {
      const PrivacyParams params = random_params(rng);
      const auto epoch = static_cast<std::size_t>(rng.uniform_int(0, 31));
      // Same admit/deny decision...
      const bool oracle_deny = oracle.would_exceed(epoch, params.epsilon);
      ASSERT_EQ(ledger.would_exceed(params, epoch), oracle_deny)
          << "seed " << seed << " charge " << i;
      // ...and the same effect on the same state.
      if (oracle_deny) {
        ASSERT_THROW(ledger.charge(params, epoch), std::runtime_error);
        ASSERT_THROW(oracle.spend(epoch, params), std::runtime_error);
      } else {
        ledger.charge(params, epoch);
        oracle.spend(epoch, params);
      }
    }
    ASSERT_EQ(ledger.releases(), oracle.releases());
    ASSERT_EQ(ledger.windows_touched(), oracle.windows_touched());
    for (std::size_t w = 0; w < 32; ++w) {
      ASSERT_EQ(ledger.window_composition(w).epsilon,
                oracle.window_composition(w).epsilon);
      ASSERT_EQ(ledger.window_composition(w).delta,
                oracle.window_composition(w).delta);
    }
    ASSERT_EQ(ledger.peak_window_composition().epsilon,
              oracle.peak_window_composition().epsilon);
    ASSERT_EQ(ledger.lifetime_composition().epsilon,
              oracle.lifetime_composition().epsilon);
    ASSERT_EQ(ledger.lifetime_composition().delta,
              oracle.lifetime_composition().delta);
  }
}

// ---------------------------------------------------------------------------
// 2. Fixed-point backend tightness: never looser than exact basic.
// ---------------------------------------------------------------------------

TEST(LedgerTightness, FixedNeverAdmitsWhatExactDenies) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    common::Rng rng(3000 + seed);
    // Continuous (never unit-exact) costs and ceilings: the strict
    // ceil/floor regime, where the directional guarantee is exact.
    const double eps_ceiling = rng.uniform(0.2, 6.0);
    const double delta_ceiling = rng.uniform(0.01, 0.4);
    const LedgerConfig base{LedgerPolicy::kBasic, LedgerBackend::kExact,
                            eps_ceiling, delta_ceiling, 0.0, WindowPolicy{}};
    LedgerConfig fixed_config = base;
    fixed_config.backend = LedgerBackend::kFixedPoint;
    Ledger exact(base);
    Ledger fixed(fixed_config);
    std::size_t admitted = 0;
    for (int i = 0; i < 96; ++i) {
      const PrivacyParams params{rng.uniform(1e-4, 1.0),
                                 rng.uniform(0.0, 0.02)};
      // The serving layer admits on the fixed meter; the exact ledger is
      // the bookkeeping shadow. Tightness: whatever the meter lets
      // through, the exact accountant would have let through too.
      const bool fixed_denies = fixed.would_exceed(params);
      ASSERT_EQ(fixed.try_charge(params), !fixed_denies)
          << "single-threaded peek must agree with the charge";
      if (!fixed_denies) {
        ASSERT_FALSE(exact.would_exceed(params))
            << "seed " << seed << " charge " << i
            << ": fixed admitted a charge the exact backend denies";
        exact.charge(params);
        ++admitted;
      }
    }
    ASSERT_EQ(exact.releases(), admitted);
    ASSERT_EQ(fixed.releases(), admitted);
    // Remaining budgets agree within the quantization bound: each
    // admitted charge over-charges by < 1 unit per component, the
    // ceiling under-allows by < 1 unit.
    const double eps_bound = 1e-6 * static_cast<double>(admitted + 2);
    const double delta_bound = 1e-9 * static_cast<double>(admitted + 2);
    ASSERT_NEAR(fixed.remaining().epsilon, exact.remaining().epsilon,
                eps_bound);
    ASSERT_NEAR(fixed.remaining().delta, exact.remaining().delta, delta_bound);
    ASSERT_GE(exact.remaining().epsilon + 1e-12, fixed.remaining().epsilon)
        << "the fixed backend may never report MORE remaining budget";
  }
}

TEST(LedgerTightness, UnitExactSchedulesComposeIdentically) {
  // The shipped policies are exact in 1e-6/1e-9 units; the snap rule
  // must keep their fixed-point sums equal to llround of the double
  // sums (the historical golden-compatible behavior).
  Ledger fixed(LedgerConfig{LedgerPolicy::kBasic, LedgerBackend::kFixedPoint,
                            6.0, 0.5, 0.0, WindowPolicy{}});
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(fixed.try_charge({0.5, 0.01}));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(fixed.try_charge({0.1, 0.001}));
  ASSERT_EQ(fixed.fixed_spent().epsilon_units, 7u * 500000u + 5u * 100000u);
  ASSERT_EQ(fixed.fixed_spent().delta_units, 7u * 10000000u + 5u * 1000000u);
  // Sub-unit components never quantize to free.
  const FixedBudget tiny = FixedBudget::cost_of({1e-9, 1e-12});
  ASSERT_EQ(tiny.epsilon_units, 1u);
  ASSERT_EQ(tiny.delta_units, 1u);
}

TEST(LedgerTightness, WindowedFixedRenewsAtBoundary) {
  Ledger ledger(LedgerConfig{LedgerPolicy::kWindowedRenewal,
                             LedgerBackend::kFixedPoint, 0.0, 0.0, 0.0,
                             WindowPolicy{4, 1.0}});
  ASSERT_TRUE(ledger.try_charge({1.0, 0.0}, 0));
  ASSERT_FALSE(ledger.try_charge({0.001, 0.0}, 3));
  // Epoch 4 opens window 1: the peek sees a fresh meter before any
  // mutator rolls the window, and the charge succeeds.
  ASSERT_FALSE(ledger.would_exceed({1.0, 0.0}, 4));
  ASSERT_TRUE(ledger.try_charge({1.0, 0.0}, 4));
  ASSERT_FALSE(ledger.try_charge({0.001, 0.0}, 7));
}

// ---------------------------------------------------------------------------
// 3. Concurrent conservation (TSan target).
// ---------------------------------------------------------------------------

TEST(LedgerConcurrency, ConcurrentChargesConserveBudget) {
  // 8 threads race 1000 charges of eps 0.001 each against a 4.0 epsilon
  // ceiling: exactly 4000 of the 8000 can be admitted, no interleaving
  // may overshoot, and the meter must end exactly at the ceiling.
  Ledger ledger(LedgerConfig{LedgerPolicy::kBasic, LedgerBackend::kFixedPoint,
                             4.0, 0.0, 0.0, WindowPolicy{}});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::atomic<std::size_t> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, &admitted] {
      for (int i = 0; i < kPerThread; ++i) {
        if (ledger.try_charge({0.001, 0.0})) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(admitted.load(), 4000u);
  EXPECT_EQ(ledger.releases(), 4000u);
  EXPECT_EQ(ledger.fixed_spent().epsilon_units, 4000000u);
  EXPECT_TRUE(ledger.would_exceed({0.001, 0.0}));
}

}  // namespace
}  // namespace poiprivacy::dp
