// Cross-module randomized property tests: the key invariants of the
// pipeline checked over many seeds and parameter draws (TEST_P sweeps).
#include <gtest/gtest.h>

#include "attack/fine_grained.h"
#include "attack/region_reid.h"
#include "cloak/kcloak.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "geo/hull.h"
#include "opt/distortion.h"
#include "poi/city_model.h"

namespace poiprivacy {
namespace {

class SeededCity : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  poi::City city() const {
    return poi::generate_city(poi::test_preset(), GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededCity,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// Invariant: the generator hits the preset's scale exactly, regardless
// of seed.
TEST_P(SeededCity, GeneratorScaleInvariants) {
  const poi::City c = city();
  const poi::CityPreset preset = poi::test_preset();
  EXPECT_EQ(c.db.pois().size(), preset.num_pois);
  EXPECT_EQ(c.db.num_types(), preset.num_types);
  EXPECT_EQ(c.db.types_with_city_freq_at_most(10).size(),
            preset.target_rare_types);
  EXPECT_EQ(poi::total(c.db.city_freq()),
            static_cast<std::int64_t>(preset.num_pois));
}

// Invariant: Freq is additive over a partition of the disk's POIs and
// consistent with Query, for arbitrary probes.
TEST_P(SeededCity, FreqQueryConsistency) {
  const poi::City c = city();
  common::Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.2, 2.5);
    const auto ids = c.db.query(l, r);
    const poi::FrequencyVector f = c.db.freq(l, r);
    EXPECT_EQ(poi::total(f), static_cast<std::int64_t>(ids.size()));
  }
}

// Invariant: the covering lemma — the attack's entire soundness argument.
TEST_P(SeededCity, CoveringLemma) {
  const poi::City c = city();
  common::Rng rng(GetParam() * 37 + 11);
  for (int trial = 0; trial < 8; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.3, 1.5);
    const poi::FrequencyVector f = c.db.freq(l, r);
    for (const poi::PoiId id : c.db.query(l, r)) {
      EXPECT_TRUE(
          poi::dominates(c.db.freq(c.db.poi(id).pos, 2.0 * r), f));
    }
  }
}

// Invariant: on honest releases the baseline attack never frames an
// innocent location — a unique candidate is always a true anchor.
TEST_P(SeededCity, UniqueImpliesCorrectOnHonestReleases) {
  const poi::City c = city();
  const attack::RegionReidentifier reid(c.db);
  common::Rng rng(GetParam() * 41 + 13);
  for (int trial = 0; trial < 25; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.4, 1.6);
    const attack::ReidResult result = reid.infer(c.db.freq(l, r), r);
    if (result.unique()) {
      EXPECT_TRUE(attack::attack_success(result, c.db, l, r));
    }
  }
}

// Invariant: sanitization is idempotent and only ever lowers entries.
TEST_P(SeededCity, SanitizerIdempotentAndMonotone) {
  const poi::City c = city();
  const defense::Sanitizer sanitizer(c.db, 10);
  common::Rng rng(GetParam() * 43 + 17);
  for (int trial = 0; trial < 10; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector f = c.db.freq(l, 1.0);
    const poi::FrequencyVector once = sanitizer.sanitize(f);
    EXPECT_EQ(sanitizer.sanitize(once), once);
    EXPECT_TRUE(poi::dominates(f, once));
  }
}

// Invariant: the optimization defense always emits a feasible nonnegative
// integer vector whose rare-capped perturbation respects the budget.
TEST_P(SeededCity, OptimizationDefenseFeasibility) {
  const poi::City c = city();
  common::Rng rng(GetParam() * 47 + 19);
  for (const double beta : {0.0, 0.01, 0.05}) {
    const defense::OptimizationDefense defense(c.db, beta);
    for (int trial = 0; trial < 5; ++trial) {
      const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
      const poi::FrequencyVector f = c.db.freq(l, 1.2);
      const poi::FrequencyVector released = defense.release(f);
      ASSERT_EQ(released.size(), f.size());
      std::vector<double> base(f.begin(), f.end());
      EXPECT_LE(opt::mean_relative_distortion(base, released),
                beta + 1e-9);
      for (const auto v : released) EXPECT_GE(v, 0);
    }
  }
}

// Invariant: cloaked regions nest — the region for a larger k always
// contains the region for a smaller k at the same target.
TEST_P(SeededCity, CloakRegionsNest) {
  const poi::City c = city();
  common::Rng pop_rng(GetParam() * 53 + 23);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(c.db.bounds(), 600, pop_rng), c.db.bounds());
  common::Rng rng(GetParam() * 59 + 29);
  for (int trial = 0; trial < 15; ++trial) {
    const geo::Point target{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const geo::BBox small = cloaker.cloak(target, 3).region;
    const geo::BBox large = cloaker.cloak(target, 40).region;
    EXPECT_LE(large.min_x, small.min_x);
    EXPECT_LE(large.min_y, small.min_y);
    EXPECT_GE(large.max_x, small.max_x);
    EXPECT_GE(large.max_y, small.max_y);
  }
}

// Invariant: the fine-grained feasible region is contained in the major
// anchor's disk — its area never exceeds the baseline's, and its anchor
// hull is inside 2r of the anchor.
TEST_P(SeededCity, FineGrainedRegionContainment) {
  const poi::City c = city();
  const attack::FineGrainedAttack fine(c.db);
  common::Rng rng(GetParam() * 61 + 31);
  for (int trial = 0; trial < 20; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const attack::FineGrainedResult result = fine.infer(c.db.freq(l, r), r);
    if (!result.baseline_unique) continue;
    EXPECT_GT(result.area_km2, 0.0);
    EXPECT_LE(result.area_km2, M_PI * r * r * 1.05);
    std::vector<geo::Point> anchors;
    for (const geo::Circle& disk : result.feasible_disks) {
      anchors.push_back(disk.center);
    }
    const auto hull = geo::convex_hull(anchors);
    const geo::Point major = c.db.poi(result.major_anchor).pos;
    for (const geo::Point p : hull) {
      EXPECT_LE(geo::distance(p, major), 2.0 * r + 1e-9);
    }
  }
}

// Invariant: DP releases are valid frequency vectors at any epsilon.
TEST_P(SeededCity, DpReleaseValidity) {
  const poi::City c = city();
  common::Rng pop_rng(GetParam() * 67 + 37);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(c.db.bounds(), 600, pop_rng), c.db.bounds());
  common::Rng rng(GetParam() * 71 + 41);
  for (const double eps : {0.2, 2.0}) {
    defense::DpDefenseConfig config;
    config.epsilon = eps;
    const defense::DpDefense defense(c.db, cloaker, config);
    const poi::FrequencyVector released =
        defense.release({rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)}, 1.0,
                        rng);
    ASSERT_EQ(released.size(), c.db.num_types());
    for (const auto v : released) EXPECT_GE(v, 0);
  }
}

}  // namespace
}  // namespace poiprivacy
