// Smoke-regression goldens for the three figure pipelines (fig02
// sanitization recovery, fig05 k-cloaking, fig11 DP defense) on a tiny
// fixed synthetic city. The exact numbers below were captured from a
// trusted run at seed 4242; any behavioural drift in the attack, defense,
// cloaking, sanitization or evaluation layers shows up here as a diff of
// a handful of integers, not a silent accuracy regression.
//
// Integer counters must match exactly; accumulated doubles use
// EXPECT_NEAR with 1e-9 (bit-identical in practice — the tolerance only
// hides long-double vs double platform noise).
//
// Every test builds a fresh Workbench so the anchor-cache deltas in
// AttackStats are independent of test ordering.
#include <gtest/gtest.h>

#include <vector>

#include "attack/recovery.h"
#include "cloak/kcloak.h"
#include "common/parallel.h"
#include "defense/location_defenses.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "eval/datasets.h"
#include "eval/runner.h"

namespace poiprivacy {
namespace {

constexpr std::uint64_t kSeed = 4242;
constexpr double kRangeKm = 2.0;

eval::WorkbenchConfig tiny_config() {
  eval::WorkbenchConfig config;
  config.seed = kSeed;
  config.locations_per_dataset = 40;
  config.num_taxis = 8;
  config.points_per_taxi = 15;
  config.num_checkin_users = 8;
  config.checkins_per_user = 8;
  return config;
}

TEST(GoldenRegression, Fig02SanitizationRecoveryAccuracy) {
  const eval::Workbench bench(tiny_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const defense::Sanitizer sanitizer(db, 10);
  ASSERT_GE(sanitizer.sanitized_types().size(), 3u);
  const std::vector<poi::TypeId> types(sanitizer.sanitized_types().begin(),
                                       sanitizer.sanitized_types().begin() + 3);

  attack::RecoveryConfig config;
  config.train_samples = 60;
  config.validation_samples = 30;
  config.samples_per_rare_poi = 1;
  common::Rng rng(kSeed + 5);
  const attack::SanitizationRecovery recovery(db, types, kRangeKm, config,
                                              rng);
  const std::vector<double>& acc = recovery.validation_accuracies();
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_NEAR(recovery.mean_validation_accuracy(), 0.9888888888888889, 1e-9);
  EXPECT_NEAR(acc[0], 0.9666666666666667, 1e-9);
  EXPECT_NEAR(acc[1], 1.0, 1e-9);
  EXPECT_NEAR(acc[2], 1.0, 1e-9);
}

TEST(GoldenRegression, Fig05BaselineAndKCloakAttack) {
  const eval::Workbench bench(tiny_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const auto& locations = bench.locations(eval::DatasetKind::kBeijingRandom);

  const eval::AttackStats base = eval::evaluate_attack(
      db, locations, kRangeKm, eval::identity_release(db));
  EXPECT_EQ(base.attempts, 40u);
  EXPECT_EQ(base.empty_releases, 0u);
  EXPECT_EQ(base.unique, 23u);
  EXPECT_EQ(base.correct, 23u);
  // Rare-type tile-envelope pruning rejects most candidates before they
  // reach the anchor cache, so far fewer lookups happen than under the
  // pre-pruning pinned values (84 hits / 412 misses). The attack outcomes
  // above are unchanged — pruning is exact, and the adaptive gate is a
  // deterministic function of the candidate sequence.
  EXPECT_EQ(base.cache_hits, 16u);
  EXPECT_EQ(base.cache_misses, 203u);
  EXPECT_TRUE(base.counters_consistent());

  common::Rng pop_rng(kSeed + 101);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(db.bounds(), 300, pop_rng), db.bounds());
  const defense::KCloakDefense defense(db, cloaker, 10);
  const eval::AttackStats cloaked = eval::evaluate_attack(
      db, locations, kRangeKm, [&defense](geo::Point l, double radius) {
        return defense.release(l, radius);
      });
  EXPECT_EQ(cloaked.attempts, 40u);
  EXPECT_EQ(cloaked.empty_releases, 0u);
  EXPECT_EQ(cloaked.unique, 27u);
  EXPECT_EQ(cloaked.correct, 5u);
  EXPECT_TRUE(cloaked.counters_consistent());
  // Cloaking must strictly weaken the attack on this workload.
  EXPECT_LT(cloaked.correct, base.correct);
}

TEST(GoldenRegression, Fig11DpDefenseAttackAndUtility) {
  const eval::Workbench bench(tiny_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const auto& locations = bench.locations(eval::DatasetKind::kBeijingRandom);

  common::Rng pop_rng(kSeed + 31);
  const cloak::AdaptiveIntervalCloaker cloaker(
      cloak::uniform_population(db.bounds(), 300, pop_rng), db.bounds());
  defense::DpDefenseConfig config;
  config.k = 12;
  config.epsilon = 1.0;
  config.delta = 0.2;
  config.beta = 0.02;
  const defense::DpDefense defense(db, cloaker, config);
  const std::uint64_t release_seed = kSeed + 1234;
  const eval::SeededReleaseFn release =
      [&](geo::Point l, double radius, common::Rng& rng) {
        return defense.release(l, radius, rng);
      };

  const eval::AttackStats attack =
      eval::evaluate_attack(db, locations, kRangeKm, release, release_seed);
  EXPECT_EQ(attack.attempts, 40u);
  EXPECT_EQ(attack.empty_releases, 0u);
  EXPECT_EQ(attack.unique, 2u);
  EXPECT_EQ(attack.correct, 0u);
  EXPECT_TRUE(attack.counters_consistent());

  const eval::UtilityStats utility =
      eval::evaluate_utility(db, locations, kRangeKm, release, release_seed);
  EXPECT_EQ(utility.samples, 40u);
  EXPECT_NEAR(utility.mean_jaccard, 0.4475048480930832, 1e-9);
}

}  // namespace
}  // namespace poiprivacy
