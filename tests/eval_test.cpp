#include <sstream>

#include <gtest/gtest.h>

#include "eval/datasets.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace poiprivacy::eval {
namespace {

WorkbenchConfig small_config() {
  WorkbenchConfig config;
  config.locations_per_dataset = 40;
  config.num_taxis = 10;
  config.points_per_taxi = 20;
  config.num_checkin_users = 10;
  config.checkins_per_user = 10;
  return config;
}

TEST(Workbench, BuildsAllFourDatasets) {
  const Workbench bench(small_config());
  for (const DatasetKind kind : kAllDatasets) {
    EXPECT_EQ(bench.locations(kind).size(), 40u) << dataset_name(kind);
    const poi::City& city = bench.city_of(kind);
    for (const geo::Point l : bench.locations(kind)) {
      EXPECT_TRUE(city.db.bounds().contains(l));
    }
  }
  EXPECT_EQ(bench.beijing().db.city_name(), "beijing");
  EXPECT_EQ(bench.nyc().db.city_name(), "nyc");
  EXPECT_EQ(&bench.city_of(DatasetKind::kBeijingTdrive), &bench.beijing());
  EXPECT_EQ(&bench.city_of(DatasetKind::kNycRandom), &bench.nyc());
}

TEST(Workbench, DeterministicForSeed) {
  const Workbench a(small_config());
  const Workbench b(small_config());
  for (const DatasetKind kind : kAllDatasets) {
    EXPECT_EQ(a.locations(kind), b.locations(kind));
  }
}

TEST(Workbench, DatasetNamesAreDistinct) {
  std::set<std::string> names;
  for (const DatasetKind kind : kAllDatasets) {
    names.insert(dataset_name(kind));
  }
  EXPECT_EQ(names.size(), 4u);
}

TEST(Runner, IdentityReleaseMatchesDbFreq) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const ReleaseFn release = identity_release(db);
  const geo::Point l{10.0, 10.0};
  EXPECT_EQ(release(l, 1.0), db.freq(l, 1.0));
}

TEST(Runner, AttackStatsInvariants) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const AttackStats stats = evaluate_attack(
      db, bench.locations(DatasetKind::kBeijingRandom), 2.0,
      identity_release(db));
  EXPECT_EQ(stats.attempts, 40u);
  EXPECT_LE(stats.correct, stats.unique);
  EXPECT_LE(stats.unique, stats.attempts);
  EXPECT_GE(stats.success_rate(), 0.0);
  EXPECT_LE(stats.success_rate(), 1.0);
  // On honest releases a unique candidate is always correct.
  EXPECT_EQ(stats.correct, stats.unique);
  // Section II-D accounting: the counters form a monotone chain.
  EXPECT_TRUE(stats.counters_consistent());
  EXPECT_EQ(stats.empty_releases, 0u);  // identity releases are never empty
  EXPECT_DOUBLE_EQ(stats.unique_rate(),
                   static_cast<double>(stats.unique) / 40.0);
}

TEST(Runner, EmptyReleasesAreCountedAndNeverUnique) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  // A release that suppresses everything: the attack cannot start, so every
  // attempt must land in empty_releases and none in unique/correct.
  const ReleaseFn suppress_all = [&db](geo::Point, double) {
    return poi::FrequencyVector(db.num_types(), 0);
  };
  const AttackStats stats = evaluate_attack(
      db, bench.locations(DatasetKind::kBeijingRandom), 2.0, suppress_all);
  EXPECT_EQ(stats.attempts, 40u);
  EXPECT_EQ(stats.empty_releases, 40u);
  EXPECT_EQ(stats.unique, 0u);
  EXPECT_EQ(stats.correct, 0u);
  EXPECT_TRUE(stats.counters_consistent());
  EXPECT_DOUBLE_EQ(stats.success_rate(), 0.0);
}

TEST(Runner, AttackStatsExposeAnchorCacheTraffic) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const auto locations = bench.locations(DatasetKind::kBeijingRandom);
  const AttackStats first =
      evaluate_attack(db, locations, 2.0, identity_release(db));
  // The attack performs anchor lookups, and on a fresh workbench at least
  // some of them are first-time misses.
  EXPECT_GT(first.cache_hits + first.cache_misses, 0u);
  EXPECT_GT(first.cache_misses, 0u);
  // Re-running the identical evaluation touches only warm entries: the
  // second pass is all hits, and its total traffic matches the first.
  const AttackStats second =
      evaluate_attack(db, locations, 2.0, identity_release(db));
  EXPECT_EQ(second.cache_misses, 0u);
  EXPECT_EQ(second.cache_hits, first.cache_hits + first.cache_misses);
}

TEST(Runner, EmptyLocationsGiveZeroStats) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const AttackStats stats =
      evaluate_attack(db, {}, 2.0, identity_release(db));
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 0.0);
}

TEST(Runner, FineGrainedAreasBoundedByBaselineDisk) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  attack::FineGrainedConfig config;
  config.area_resolution = 128;
  const FineGrainedStats stats = evaluate_fine_grained(
      db, bench.locations(DatasetKind::kBeijingRandom), 2.0, config);
  EXPECT_EQ(stats.attempts, 40u);
  EXPECT_EQ(stats.areas_km2.size(), stats.successes);
  for (const double area : stats.areas_km2) {
    EXPECT_LE(area, M_PI * 4.0 * 1.05);
    EXPECT_GE(area, 0.0);
  }
  EXPECT_LE(stats.contains_truth, stats.successes);
}

TEST(Runner, UtilityOfIdentityIsOne) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const UtilityStats stats = evaluate_utility(
      db, bench.locations(DatasetKind::kBeijingRandom), 2.0,
      identity_release(db));
  EXPECT_DOUBLE_EQ(stats.mean_jaccard, 1.0);
  EXPECT_EQ(stats.samples, 40u);
}

TEST(Runner, UtilityOfEmptyReleaseIsLow) {
  const Workbench bench(small_config());
  const poi::PoiDatabase& db = bench.beijing().db;
  const ReleaseFn empty_release = [&db](geo::Point, double) {
    return poi::FrequencyVector(db.num_types(), 0);
  };
  const UtilityStats stats = evaluate_utility(
      db, bench.locations(DatasetKind::kBeijingRandom), 2.0, empty_release);
  EXPECT_LT(stats.mean_jaccard, 0.05);
}

TEST(Table, AlignsColumnsAndPadsRows) {
  Table table({"name", "value"});
  table.add_row({"a", "1.000"});
  table.add_row({"long-name"});  // short row gets padded
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, SectionAndNoteFormat) {
  std::ostringstream out;
  print_section(out, "hello");
  print_note(out, "world");
  EXPECT_NE(out.str().find("== hello =="), std::string::npos);
  EXPECT_NE(out.str().find("world"), std::string::npos);
}

}  // namespace
}  // namespace poiprivacy::eval
