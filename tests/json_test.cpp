// eval::JsonWriter emission contracts: RFC 8259 string escaping (including
// embedded NULs and the \b/\f shorthands), comma placement across nested
// containers, non-finite doubles as null, and round-trippable numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "eval/json.h"

namespace poiprivacy {
namespace {

TEST(JsonWriter, EmptyContainers) {
  eval::JsonWriter object;
  object.begin_object();
  object.end_object();
  EXPECT_EQ(object.str(), "{}");

  eval::JsonWriter array;
  array.begin_array();
  array.end_array();
  EXPECT_EQ(array.str(), "[]");
}

TEST(JsonWriter, NestedContainersAndCommas) {
  eval::JsonWriter json;
  json.begin_object();
  json.field("a", std::int64_t{1});
  json.key("list");
  json.begin_array();
  json.value(std::int64_t{1});
  json.begin_object();
  json.field("b", true);
  json.end_object();
  json.begin_array();
  json.end_array();
  json.end_array();
  json.field("c", "x");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"a\":1,\"list\":[1,{\"b\":true},[]],\"c\":\"x\"}");
}

TEST(JsonWriter, StringEscapes) {
  eval::JsonWriter json;
  json.value(std::string("q\" b\\ n\n t\t r\r b\b f\f"));
  EXPECT_EQ(json.str(), "\"q\\\" b\\\\ n\\n t\\t r\\r b\\b f\\f\"");
}

TEST(JsonWriter, ControlCharactersUseUnicodeEscapes) {
  eval::JsonWriter json;
  json.value(std::string("\x01\x1f"));
  EXPECT_EQ(json.str(), "\"\\u0001\\u001f\"");
}

TEST(JsonWriter, EmbeddedNulSurvivesAsUnicodeEscape) {
  eval::JsonWriter json;
  const std::string with_nul("a\0b", 3);
  json.value(with_nul);
  EXPECT_EQ(json.str(), "\"a\\u0000b\"");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  eval::JsonWriter json;
  json.begin_object();
  json.field("we\"ird\n", std::int64_t{1});
  json.end_object();
  EXPECT_EQ(json.str(), "{\"we\\\"ird\\n\":1}");
}

TEST(JsonWriter, NonFiniteDoublesRenderAsNull) {
  eval::JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.value(-std::numeric_limits<double>::infinity());
  json.value(1.5);
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  // No denormals: std::stod reports them as out_of_range (ERANGE).
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, -2.5e17,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max()};
  for (const double x : values) {
    eval::JsonWriter json;
    json.value(x);
    EXPECT_EQ(std::stod(json.str()), x) << json.str();
  }
}

TEST(JsonWriter, IntegerExtremes) {
  eval::JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<std::int64_t>::min());
  json.value(std::numeric_limits<std::int64_t>::max());
  json.value(std::numeric_limits<std::uint64_t>::max());
  json.end_array();
  EXPECT_EQ(json.str(),
            "[-9223372036854775808,9223372036854775807,"
            "18446744073709551615]");
}

TEST(JsonWriter, BoolValues) {
  eval::JsonWriter json;
  json.begin_array();
  json.value(true);
  json.value(false);
  json.end_array();
  EXPECT_EQ(json.str(), "[true,false]");
}

}  // namespace
}  // namespace poiprivacy
