#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "dp/ledger.h"
#include "dp/discrete.h"

namespace poiprivacy::dp {
namespace {

TEST(ExponentialMechanism, RejectsBadParameters) {
  EXPECT_THROW(ExponentialMechanism(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ExponentialMechanism(1.0, 0.0), std::invalid_argument);
  const ExponentialMechanism mech(1.0, 1.0);
  EXPECT_THROW(mech.probabilities({}), std::invalid_argument);
}

TEST(ExponentialMechanism, ProbabilitiesFollowUtilities) {
  const ExponentialMechanism mech(2.0, 1.0);
  const std::vector<double> utilities{0.0, 1.0, 2.0};
  const auto probs = mech.probabilities(utilities);
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
  // Ratio between adjacent utilities is exp(eps * du / (2 * sens)) = e.
  EXPECT_NEAR(probs[2] / probs[1], std::exp(1.0), 1e-9);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
}

TEST(ExponentialMechanism, LargeUtilitiesAreNumericallyStable) {
  const ExponentialMechanism mech(1.0, 1.0);
  const std::vector<double> utilities{1e6, 1e6 + 1.0};
  const auto probs = mech.probabilities(utilities);
  EXPECT_TRUE(std::isfinite(probs[0]));
  EXPECT_GT(probs[1], probs[0]);
}

TEST(ExponentialMechanism, EmpiricalSelectionMatchesProbabilities) {
  const ExponentialMechanism mech(1.0, 1.0);
  const std::vector<double> utilities{0.0, 2.0};
  const auto probs = mech.probabilities(utilities);
  common::Rng rng(3);
  int second = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) second += mech.select(utilities, rng) == 1;
  EXPECT_NEAR(static_cast<double>(second) / n, probs[1], 0.01);
}

TEST(RandomizedResponse, TruthRateMatchesEpsilon) {
  common::Rng rng(5);
  const double eps = 1.0;
  const double expected = std::exp(eps) / (std::exp(eps) + 1.0);
  int truthful = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) truthful += randomized_response(true, eps, rng);
  EXPECT_NEAR(static_cast<double>(truthful) / n, expected, 0.01);
}

TEST(RandomizedResponse, EstimatorIsUnbiased) {
  common::Rng rng(7);
  const double eps = 0.8;
  const double true_fraction = 0.3;
  const int n = 60000;
  int positives = 0;
  for (int i = 0; i < n; ++i) {
    positives += randomized_response(rng.bernoulli(true_fraction), eps, rng);
  }
  const double estimate = randomized_response_estimate(
      static_cast<double>(positives) / n, eps);
  EXPECT_NEAR(estimate, true_fraction, 0.02);
}

TEST(RandomizedResponse, RejectsBadEpsilon) {
  common::Rng rng(9);
  EXPECT_THROW(randomized_response(true, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(randomized_response_estimate(0.5, -1.0),
               std::invalid_argument);
}

TEST(GeometricMechanism, RejectsBadParameters) {
  EXPECT_THROW(GeometricMechanism(0.0, 1), std::invalid_argument);
  EXPECT_THROW(GeometricMechanism(1.0, 0), std::invalid_argument);
}

TEST(GeometricMechanism, NoiseIsCenteredIntegerValued) {
  const GeometricMechanism mech(1.0, 1);
  common::Rng rng(11);
  common::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(mech.perturb(100, rng)));
  }
  EXPECT_NEAR(stats.mean(), 100.0, 0.05);
  // Var of two-sided geometric with alpha: 2 alpha / (1-alpha)^2.
  const double alpha = mech.alpha();
  const double expected_var = 2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha));
  EXPECT_NEAR(stats.variance(), expected_var, expected_var * 0.1);
}

TEST(GeometricMechanism, SmallerEpsilonMeansMoreNoise) {
  common::Rng rng_a(13);
  common::Rng rng_b(13);
  const GeometricMechanism tight(0.1, 1);
  const GeometricMechanism loose(2.0, 1);
  double tight_abs = 0.0;
  double loose_abs = 0.0;
  for (int i = 0; i < 20000; ++i) {
    tight_abs += std::abs(tight.perturb(0, rng_a));
    loose_abs += std::abs(loose.perturb(0, rng_b));
  }
  EXPECT_GT(tight_abs, 4.0 * loose_abs);
}

namespace {

// The historical PrivacyAccountant had no ceiling; an unbounded basic
// exact ledger is its drop-in replacement.
Ledger basic_ledger() { return Ledger(LedgerConfig{}); }

Ledger windowed_ledger(WindowPolicy window) {
  return Ledger(LedgerConfig{LedgerPolicy::kWindowedRenewal,
                             LedgerBackend::kExact, 0.0, 0.0, 0.0, window});
}

}  // namespace

TEST(Ledger, BasicCompositionSums) {
  Ledger ledger = basic_ledger();
  ledger.charge({1.0, 0.1});
  ledger.charge({0.5, 0.05});
  EXPECT_EQ(ledger.releases(), 2u);
  const PrivacyParams total = ledger.basic_composition();
  EXPECT_DOUBLE_EQ(total.epsilon, 1.5);
  EXPECT_DOUBLE_EQ(total.delta, 0.15000000000000002);
}

TEST(Ledger, RejectsInvalidCharge) {
  Ledger ledger = basic_ledger();
  EXPECT_THROW(ledger.charge({0.0, 0.1}), std::invalid_argument);
  EXPECT_THROW(ledger.charge({1.0, 1.0}), std::invalid_argument);
}

TEST(Ledger, AdvancedBeatsBasicForManySmallReleases) {
  Ledger ledger = basic_ledger();
  const double eps = 0.1;
  for (int i = 0; i < 100; ++i) ledger.charge({eps, 0.0});
  const PrivacyParams basic = ledger.basic_composition();
  const PrivacyParams advanced = ledger.advanced_composition(1e-5);
  EXPECT_NEAR(basic.epsilon, 10.0, 1e-9);
  EXPECT_LT(advanced.epsilon, basic.epsilon);
}

TEST(Ledger, AdvancedMatchesClosedForm) {
  Ledger ledger = basic_ledger();
  const double eps = 0.2;
  const int k = 50;
  for (int i = 0; i < k; ++i) ledger.charge({eps, 0.01});
  const double delta_prime = 1e-6;
  const PrivacyParams advanced = ledger.advanced_composition(delta_prime);
  const double expected =
      eps * std::sqrt(2.0 * k * std::log(1.0 / delta_prime)) +
      k * eps * (std::exp(eps) - 1.0);
  EXPECT_NEAR(advanced.epsilon, expected, 1e-12);
  EXPECT_NEAR(advanced.delta, 0.5 + delta_prime, 1e-12);
}

TEST(Ledger, AdvancedHeterogeneousComposesPerEpsilonGroup) {
  Ledger ledger = basic_ledger();
  for (int i = 0; i < 30; ++i) ledger.charge({0.5, 0.01});
  for (int i = 0; i < 20; ++i) ledger.charge({0.1, 0.0});
  EXPECT_EQ(ledger.epsilon_groups(), 2u);
  const double delta_prime = 1e-6;
  // Each epsilon group gets Thm 3.20 under half the slack; the group
  // bounds then sum.
  const auto group = [](double eps, double k, double slack) {
    return eps * std::sqrt(2.0 * k * std::log(1.0 / slack)) +
           k * eps * (std::exp(eps) - 1.0);
  };
  const double slack = delta_prime / 2.0;
  const PrivacyParams advanced = ledger.advanced_composition(delta_prime);
  EXPECT_NEAR(advanced.epsilon,
              group(0.5, 30.0, slack) + group(0.1, 20.0, slack), 1e-12);
  EXPECT_NEAR(advanced.delta, 30 * 0.01 + delta_prime, 1e-12);
}

TEST(Ledger, AdvancedHeterogeneousStillBeatsBasic) {
  Ledger ledger = basic_ledger();
  for (int i = 0; i < 120; ++i) ledger.charge({0.05, 0.0});
  for (int i = 0; i < 80; ++i) ledger.charge({0.02, 0.0});
  const PrivacyParams basic = ledger.basic_composition();
  const PrivacyParams advanced = ledger.advanced_composition(1e-6);
  EXPECT_NEAR(basic.epsilon, 120 * 0.05 + 80 * 0.02, 1e-9);
  EXPECT_LT(advanced.epsilon, basic.epsilon);
}

TEST(Ledger, SingleEpsilonGroupMatchesHomogeneousFormula) {
  // A homogeneous history must be unaffected by the grouping machinery:
  // one group gets the whole slack, i.e. plain Thm 3.20.
  Ledger grouped = basic_ledger();
  for (int i = 0; i < 40; ++i) grouped.charge({0.3, 0.001});
  EXPECT_EQ(grouped.epsilon_groups(), 1u);
  const double delta_prime = 1e-5;
  const double expected =
      0.3 * std::sqrt(2.0 * 40 * std::log(1.0 / delta_prime)) +
      40 * 0.3 * (std::exp(0.3) - 1.0);
  EXPECT_NEAR(grouped.advanced_composition(delta_prime).epsilon, expected,
              1e-12);
}

TEST(Ledger, AdvancedRejectsBadSlack) {
  Ledger ledger = basic_ledger();
  ledger.charge({1.0, 0.0});
  EXPECT_THROW(ledger.advanced_composition(0.0), std::invalid_argument);
  EXPECT_THROW(ledger.advanced_composition(1.0), std::invalid_argument);
}

TEST(Ledger, EmptyLedgerIsFree) {
  Ledger ledger = basic_ledger();
  EXPECT_DOUBLE_EQ(ledger.basic_composition().epsilon, 0.0);
  EXPECT_DOUBLE_EQ(ledger.advanced_composition(0.5).epsilon, 0.0);
}

TEST(WindowedLedger, RejectsBadPolicy) {
  EXPECT_THROW(windowed_ledger({0, 1.0}), std::invalid_argument);
  EXPECT_THROW(windowed_ledger({4, -1.0}), std::invalid_argument);
}

TEST(WindowedLedger, RejectsHeterogeneousOverFixedPoint) {
  EXPECT_THROW(Ledger(LedgerConfig{LedgerPolicy::kAdvancedHeterogeneous,
                                   LedgerBackend::kFixedPoint, 1.0, 0.1, 1e-6,
                                   WindowPolicy{}}),
               std::invalid_argument);
}

TEST(WindowedLedger, EpochsMapOntoFixedWindows) {
  const Ledger ledger = windowed_ledger({4, 0.0});
  EXPECT_EQ(ledger.window_of(0), 0u);
  EXPECT_EQ(ledger.window_of(3), 0u);
  EXPECT_EQ(ledger.window_of(4), 1u);  // boundary epoch opens window 1
  EXPECT_EQ(ledger.window_of(7), 1u);
  EXPECT_EQ(ledger.window_of(8), 2u);
}

TEST(WindowedLedger, ComposesPerWindowAndAcrossLifetime) {
  Ledger ledger = windowed_ledger({2, 0.0});
  ledger.charge({0.5, 0.0}, 0);
  ledger.charge({0.5, 0.0}, 1);
  ledger.charge({1.0, 0.01}, 2);
  EXPECT_EQ(ledger.releases(), 3u);
  EXPECT_EQ(ledger.windows_touched(), 2u);
  EXPECT_DOUBLE_EQ(ledger.window_composition(0).epsilon, 1.0);
  EXPECT_DOUBLE_EQ(ledger.window_composition(1).epsilon, 1.0);
  EXPECT_DOUBLE_EQ(ledger.window_composition(1).delta, 0.01);
  EXPECT_DOUBLE_EQ(ledger.window_composition(7).epsilon, 0.0);
  EXPECT_DOUBLE_EQ(ledger.lifetime_composition().epsilon, 2.0);
  EXPECT_DOUBLE_EQ(ledger.lifetime_composition().delta, 0.01);
  EXPECT_DOUBLE_EQ(ledger.peak_window_composition().epsilon, 1.0);
}

TEST(WindowedLedger, BudgetRenewsExactlyAtWindowBoundary) {
  Ledger ledger = windowed_ledger({4, 1.0});
  // Fill window 0's budget exactly: charging to the budget is allowed,
  // one more infinitesimal release is not.
  ledger.charge({0.5, 0.0}, 0);
  EXPECT_FALSE(ledger.would_exceed({0.5, 0.0}, 3));
  ledger.charge({0.5, 0.0}, 3);
  EXPECT_TRUE(ledger.would_exceed({0.001, 0.0}, 3));
  EXPECT_THROW(ledger.charge({0.001, 0.0}, 2), std::runtime_error);
  // Epoch 4 is the first epoch of window 1: full budget again.
  EXPECT_FALSE(ledger.would_exceed({1.0, 0.0}, 4));
  ledger.charge({1.0, 0.0}, 4);
  EXPECT_TRUE(ledger.would_exceed({0.001, 0.0}, 4));
  // The failed charge must not have charged anything anywhere.
  EXPECT_DOUBLE_EQ(ledger.window_composition(0).epsilon, 1.0);
  EXPECT_DOUBLE_EQ(ledger.window_composition(1).epsilon, 1.0);
  EXPECT_EQ(ledger.releases(), 3u);
}

TEST(WindowedLedger, TryChargeRefusesInsteadOfThrowing) {
  Ledger ledger = windowed_ledger({4, 1.0});
  EXPECT_TRUE(ledger.try_charge({1.0, 0.0}, 0));
  EXPECT_FALSE(ledger.try_charge({0.001, 0.0}, 0));
  EXPECT_FALSE(ledger.try_charge({-1.0, 0.0}, 0));
  EXPECT_EQ(ledger.releases(), 1u);
  // record() bypasses the budget check (out-of-band bookkeeping)...
  ledger.record({0.5, 0.0}, 0);
  EXPECT_EQ(ledger.releases(), 2u);
  EXPECT_DOUBLE_EQ(ledger.window_composition(0).epsilon, 1.5);
  // ...but still validates.
  EXPECT_THROW(ledger.record({0.0, 0.0}, 0), std::invalid_argument);
}

TEST(WindowedLedger, UnboundedBudgetNeverExceeds) {
  Ledger ledger = windowed_ledger({1, 0.0});
  for (std::size_t epoch = 0; epoch < 16; ++epoch) {
    EXPECT_FALSE(ledger.would_exceed({100.0, 0.0}, epoch));
    ledger.charge({100.0, 0.0}, epoch);
  }
  EXPECT_EQ(ledger.windows_touched(), 16u);
  EXPECT_DOUBLE_EQ(ledger.peak_window_composition().epsilon, 100.0);
  EXPECT_DOUBLE_EQ(ledger.lifetime_composition().epsilon, 1600.0);
}

TEST(WindowedLedger, WindowAdvancedCompositionUsesEpsilonGroups) {
  Ledger ledger = windowed_ledger({8, 0.0});
  Ledger reference = basic_ledger();
  for (int i = 0; i < 6; ++i) {
    ledger.charge({0.1, 0.0}, 0);
    reference.charge({0.1, 0.0});
  }
  const PrivacyParams windowed = ledger.window_advanced_composition(0, 1e-6);
  const PrivacyParams expected = reference.advanced_composition(1e-6);
  EXPECT_DOUBLE_EQ(windowed.epsilon, expected.epsilon);
  EXPECT_DOUBLE_EQ(windowed.delta, expected.delta);
  // An untouched window only pays the slack.
  EXPECT_DOUBLE_EQ(ledger.window_advanced_composition(3, 1e-6).epsilon, 0.0);
}

TEST(WindowedLedger, InvalidChargeDoesNotTouchWindow) {
  Ledger ledger = windowed_ledger({2, 0.0});
  EXPECT_THROW(ledger.charge({0.0, 0.0}, 0), std::invalid_argument);
  EXPECT_EQ(ledger.releases(), 0u);
  EXPECT_EQ(ledger.windows_touched(), 0u);
}

}  // namespace
}  // namespace poiprivacy::dp
