#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geometry.h"
#include "geo/latlon.h"

namespace poiprivacy::geo {
namespace {

TEST(Point, ArithmeticAndDistance) {
  const Point a{1.0, 2.0};
  const Point b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_EQ((a + b), (Point{5.0, 8.0}));
  EXPECT_EQ((b - a), (Point{3.0, 4.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
}

TEST(BBox, ContainsAndClamp) {
  const BBox box{0.0, 0.0, 10.0, 5.0};
  EXPECT_TRUE(box.contains({5.0, 2.5}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));   // inclusive boundary
  EXPECT_TRUE(box.contains({10.0, 5.0}));
  EXPECT_FALSE(box.contains({10.1, 2.0}));
  EXPECT_EQ(box.clamp({-1.0, 7.0}), (Point{0.0, 5.0}));
  EXPECT_EQ(box.clamp({3.0, 3.0}), (Point{3.0, 3.0}));
  EXPECT_DOUBLE_EQ(box.area(), 50.0);
  EXPECT_EQ(box.center(), (Point{5.0, 2.5}));
}

TEST(BBox, IntersectsDisk) {
  const BBox box{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(box.intersects_disk({5.0, 5.0}, 0.1));   // inside
  EXPECT_TRUE(box.intersects_disk({-1.0, 5.0}, 1.5));  // overlaps edge
  EXPECT_FALSE(box.intersects_disk({-5.0, 5.0}, 1.0));
  // Corner case: disk near a corner reaches only diagonally.
  EXPECT_TRUE(box.intersects_disk({11.0, 11.0}, 1.5));
  EXPECT_FALSE(box.intersects_disk({11.0, 11.0}, 1.0));
}

TEST(Circle, ContainsAndArea) {
  const Circle c{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(c.contains({1.9, 0.0}));
  EXPECT_TRUE(c.contains({0.0, 2.0}));  // boundary inclusive
  EXPECT_FALSE(c.contains({1.5, 1.5}));
  EXPECT_DOUBLE_EQ(c.area(), M_PI * 4.0);
  EXPECT_DOUBLE_EQ(c.bbox().area(), 16.0);
}

TEST(DiskIntersection, DisjointIsZero) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{3.0, 0.0}, 1.0};
  EXPECT_DOUBLE_EQ(disk_intersection_area(a, b), 0.0);
}

TEST(DiskIntersection, ContainedIsSmallerDisk) {
  const Circle big{{0.0, 0.0}, 5.0};
  const Circle small{{1.0, 0.0}, 1.0};
  EXPECT_DOUBLE_EQ(disk_intersection_area(big, small), M_PI);
  EXPECT_DOUBLE_EQ(disk_intersection_area(small, big), M_PI);
}

TEST(DiskIntersection, IdenticalDisks) {
  const Circle a{{2.0, 3.0}, 1.5};
  EXPECT_DOUBLE_EQ(disk_intersection_area(a, a), M_PI * 2.25);
}

TEST(DiskIntersection, HalfOverlapKnownValue) {
  // Two unit disks at distance 1: lens area = 2 pi/3 - sqrt(3)/2.
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{1.0, 0.0}, 1.0};
  const double expected = 2.0 * M_PI / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(disk_intersection_area(a, b), expected, 1e-12);
}

TEST(DisksIntersection, EmptySpanIsZero) {
  EXPECT_DOUBLE_EQ(disks_intersection_area({}), 0.0);
}

TEST(DisksIntersection, SingleDiskApproximatesItsArea) {
  const Circle c{{0.0, 0.0}, 2.0};
  const std::vector<Circle> disks{c};
  EXPECT_NEAR(disks_intersection_area(disks, 512), c.area(),
              c.area() * 0.01);
}

TEST(DisksIntersection, GridMatchesAnalyticTwoDiskFormula) {
  common::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const Circle a{{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)},
                   rng.uniform(0.5, 2.0)};
    const Circle b{{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)},
                   rng.uniform(0.5, 2.0)};
    const double exact = disk_intersection_area(a, b);
    const std::vector<Circle> disks{a, b};
    const double grid = disks_intersection_area(disks, 512);
    EXPECT_NEAR(grid, exact, std::max(0.02, exact * 0.03))
        << "trial " << trial;
  }
}

TEST(DisksIntersection, MonotoneUnderAddingDisks) {
  common::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Circle> disks;
    double prev = 1e18;
    for (int n = 0; n < 5; ++n) {
      disks.push_back({{rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)},
                       rng.uniform(0.8, 1.5)});
      const double area = disks_intersection_area(disks, 256);
      EXPECT_LE(area, prev + 0.02);
      prev = area;
    }
  }
}

TEST(DisksIntersection, InAllDisksConsistent) {
  const std::vector<Circle> disks{{{0.0, 0.0}, 1.0}, {{1.0, 0.0}, 1.0}};
  EXPECT_TRUE(in_all_disks({0.5, 0.0}, disks));
  EXPECT_FALSE(in_all_disks({-0.5, 0.0}, disks));
  EXPECT_FALSE(in_all_disks({1.5, 0.0}, disks));
}

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{40.0, 116.0};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, KnownCityPairDistance) {
  // Beijing <-> Shanghai is roughly 1067 km.
  const LatLon beijing{39.9042, 116.4074};
  const LatLon shanghai{31.2304, 121.4737};
  EXPECT_NEAR(haversine_km(beijing, shanghai), 1067.0, 10.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const LatLon a{40.0, 116.0};
  const LatLon b{41.0, 116.0};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 0.5);
}

TEST(Projection, RoundTripsNearReference) {
  const LocalProjection proj({40.0, 116.3});
  common::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const LatLon geo{40.0 + rng.uniform(-0.2, 0.2),
                     116.3 + rng.uniform(-0.2, 0.2)};
    const LatLon back = proj.to_geo(proj.to_plane(geo));
    EXPECT_NEAR(back.lat_deg, geo.lat_deg, 1e-9);
    EXPECT_NEAR(back.lon_deg, geo.lon_deg, 1e-9);
  }
}

TEST(Projection, PlanarDistanceTracksHaversine) {
  const LocalProjection proj({40.0, 116.3});
  common::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const LatLon a{40.0 + rng.uniform(-0.15, 0.15),
                   116.3 + rng.uniform(-0.15, 0.15)};
    const LatLon b{40.0 + rng.uniform(-0.15, 0.15),
                   116.3 + rng.uniform(-0.15, 0.15)};
    const double planar = distance(proj.to_plane(a), proj.to_plane(b));
    const double sphere = haversine_km(a, b);
    EXPECT_NEAR(planar, sphere, std::max(0.005, sphere * 0.002));
  }
}

TEST(Projection, ReferenceMapsToOrigin) {
  const LatLon ref{40.0, 116.3};
  const LocalProjection proj(ref);
  const Point origin = proj.to_plane(ref);
  EXPECT_NEAR(origin.x, 0.0, 1e-12);
  EXPECT_NEAR(origin.y, 0.0, 1e-12);
}

}  // namespace
}  // namespace poiprivacy::geo
