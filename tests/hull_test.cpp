#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/hull.h"

namespace poiprivacy::geo {
namespace {

TEST(ConvexHull, SquareWithInteriorPoints) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1},
                               {0.5, 0.5}, {0.2, 0.7}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 1.0, 1e-12);
}

TEST(ConvexHull, FewerThanThreePoints) {
  EXPECT_TRUE(convex_hull({}).empty());
  const std::vector<Point> one{{1, 2}};
  EXPECT_EQ(convex_hull(one).size(), 1u);
  const std::vector<Point> dup{{1, 2}, {1, 2}};
  EXPECT_EQ(convex_hull(dup).size(), 1u);
  const std::vector<Point> two{{0, 0}, {3, 3}};
  EXPECT_EQ(convex_hull(two).size(), 2u);
}

TEST(ConvexHull, CollinearDegeneratesToExtremes) {
  const std::vector<Point> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(polygon_area(hull), 0.0);
}

TEST(ConvexHull, OutputIsCounterClockwise) {
  common::Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)});
  }
  const auto hull = convex_hull(pts);
  ASSERT_GE(hull.size(), 3u);
  EXPECT_GT(polygon_signed_area(hull), 0.0);
}

TEST(ConvexHull, ContainsAllInputPoints) {
  common::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> pts;
    for (int i = 0; i < 40; ++i) {
      pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    }
    const auto hull = convex_hull(pts);
    for (const Point p : pts) {
      EXPECT_TRUE(polygon_contains(hull, p)) << "trial " << trial;
    }
  }
}

TEST(ConvexHull, HullOfHullIsIdempotent) {
  common::Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)});
  }
  const auto hull = convex_hull(pts);
  const auto hull2 = convex_hull(hull);
  EXPECT_EQ(hull.size(), hull2.size());
  EXPECT_NEAR(polygon_area(hull), polygon_area(hull2), 1e-12);
}

TEST(Polygon, TriangleAreaAndOrientation) {
  const std::vector<Point> ccw{{0, 0}, {2, 0}, {0, 2}};
  EXPECT_DOUBLE_EQ(polygon_signed_area(ccw), 2.0);
  const std::vector<Point> cw{{0, 0}, {0, 2}, {2, 0}};
  EXPECT_DOUBLE_EQ(polygon_signed_area(cw), -2.0);
  EXPECT_DOUBLE_EQ(polygon_area(cw), 2.0);
}

TEST(Polygon, DegenerateAreaIsZero) {
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Point>{}), 0.0);
  EXPECT_DOUBLE_EQ(polygon_area(std::vector<Point>{{1, 1}, {2, 2}}), 0.0);
}

TEST(Polygon, ContainsInteriorExcludesExterior) {
  const std::vector<Point> square{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_TRUE(polygon_contains(square, {2, 2}));
  EXPECT_TRUE(polygon_contains(square, {0, 0}));    // vertex
  EXPECT_TRUE(polygon_contains(square, {2, 0}));    // edge
  EXPECT_FALSE(polygon_contains(square, {5, 2}));
  EXPECT_FALSE(polygon_contains(square, {-0.1, 2}));
  EXPECT_FALSE(polygon_contains(square, {2, 4.1}));
}

TEST(Polygon, ConcavePolygonContainment) {
  // An L-shape: the notch is outside.
  const std::vector<Point> ell{{0, 0}, {4, 0}, {4, 2}, {2, 2},
                               {2, 4}, {0, 4}};
  EXPECT_TRUE(polygon_contains(ell, {1, 3}));
  EXPECT_TRUE(polygon_contains(ell, {3, 1}));
  EXPECT_FALSE(polygon_contains(ell, {3, 3}));
}

TEST(Polygon, HullAreaMatchesDiskSampling) {
  // Hull of many points on a circle approximates the circle's area.
  std::vector<Point> pts;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double theta = 2.0 * M_PI * i / n;
    pts.push_back({3.0 * std::cos(theta), 3.0 * std::sin(theta)});
  }
  const auto hull = convex_hull(pts);
  EXPECT_NEAR(polygon_area(hull), M_PI * 9.0, 0.05);
}

}  // namespace
}  // namespace poiprivacy::geo
