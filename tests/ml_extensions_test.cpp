#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/kernel_ridge.h"
#include "ml/svm.h"
#include "ml/validation.h"

namespace poiprivacy::ml {
namespace {

TEST(KernelRidge, RejectsBadLambda) {
  KernelRidgeConfig config;
  config.lambda = 0.0;
  KernelRidge model(config);
  Matrix x(2, 1);
  EXPECT_THROW(model.train(x, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(KernelRidge, FitsLinearFunction) {
  common::Rng rng(5);
  Matrix x(120, 1);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    x.at(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = 2.0 * x.at(i, 0) - 1.0;
  }
  KernelRidgeConfig config;
  config.kernel.kind = KernelKind::kLinear;
  config.lambda = 1e-4;
  KernelRidge model(config);
  model.train(x, y);
  EXPECT_LT(mean_absolute_error(y, model.predict(x)), 0.05);
}

TEST(KernelRidge, RbfFitsSine) {
  common::Rng rng(7);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = rng.uniform(-3.0, 3.0);
    y[i] = std::sin(x.at(i, 0));
  }
  KernelRidgeConfig config;
  config.kernel.gamma = 1.0;
  config.lambda = 1e-3;
  KernelRidge model(config);
  model.train(x, y);
  EXPECT_LT(mean_absolute_error(y, model.predict(x)), 0.05);
}

TEST(KernelRidge, HeavyRegularizationShrinksTowardMeanishPrediction) {
  common::Rng rng(9);
  Matrix x(80, 1);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x.at(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = 10.0 * x.at(i, 0);
  }
  KernelRidgeConfig light;
  light.lambda = 1e-4;
  KernelRidgeConfig heavy;
  heavy.lambda = 1e4;
  KernelRidge light_model(light);
  KernelRidge heavy_model(heavy);
  light_model.train(x, y);
  heavy_model.train(x, y);
  // The heavily regularized model predicts much smaller magnitudes.
  const std::vector<double> probe{0.9};
  EXPECT_LT(std::abs(heavy_model.predict(probe)),
            std::abs(light_model.predict(probe)));
}

TEST(KernelRidge, EmptyTrainingPredictsZero) {
  KernelRidge model;
  model.train(Matrix(0, 0), std::vector<double>{});
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1.0}), 0.0);
}

TEST(KFold, PartitionsExactlyOnce) {
  common::Rng rng(11);
  const auto folds = k_fold_indices(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_GE(fold.size(), 4u);
    EXPECT_LE(fold.size(), 5u);
    for (const std::size_t i : fold) {
      EXPECT_TRUE(seen.insert(i).second) << "index appears twice";
    }
  }
  EXPECT_EQ(seen.size(), 23u);
}

TEST(CrossValidate, AveragesFoldScores) {
  common::Rng rng(13);
  int calls = 0;
  const double mean_score = cross_validate(
      30, 3, rng,
      [&calls](std::span<const std::size_t> train,
               std::span<const std::size_t> test) {
        ++calls;
        EXPECT_EQ(train.size() + test.size(), 30u);
        return static_cast<double>(calls);  // 1, 2, 3
      });
  EXPECT_EQ(calls, 3);
  EXPECT_DOUBLE_EQ(mean_score, 2.0);
}

TEST(CrossValidate, SvmOnBlobsScoresHigh) {
  common::Rng rng(17);
  Matrix x(150, 2);
  std::vector<int> labels(150);
  for (std::size_t i = 0; i < 150; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : -1;
    labels[i] = label;
    x.at(i, 0) = label * 2.0 + rng.normal(0.0, 0.5);
    x.at(i, 1) = rng.normal(0.0, 0.5);
  }
  const double score = cross_validate(
      x.rows(), 4, rng,
      [&](std::span<const std::size_t> train_idx,
          std::span<const std::size_t> test_idx) {
        SvmClassifier model;
        common::Rng fold_rng(99);
        const Matrix x_train = take_rows(x, train_idx);
        const std::vector<int> y_train = take(std::span(labels), train_idx);
        model.train(x_train, y_train, fold_rng);
        const Matrix x_test = take_rows(x, test_idx);
        const std::vector<int> y_test = take(std::span(labels), test_idx);
        return accuracy(y_test, model.predict(x_test));
      });
  EXPECT_GT(score, 0.9);
}

TEST(ConfusionMatrix, CountsAndMetrics) {
  ConfusionMatrix cm;
  // truth=1 predicted=1 twice; truth=1 predicted=0 once;
  // truth=0 predicted=0 three times; truth=0 predicted=1 once.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 0);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  EXPECT_EQ(cm.total(), 7u);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_NEAR(cm.accuracy(), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.precision(0), 3.0 / 4.0, 1e-12);
  EXPECT_EQ(cm.labels(), (std::vector<int>{0, 1}));
}

TEST(ConfusionMatrix, UndefinedMetricsAreZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(5), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(5), 0.0);
}

}  // namespace
}  // namespace poiprivacy::ml
