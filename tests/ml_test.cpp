#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/kernel.h"
#include "ml/svm.h"
#include "ml/svr.h"

namespace poiprivacy::ml {
namespace {

TEST(Matrix, PushRowDefinesShape) {
  Matrix m;
  m.push_row(std::vector<double>{1.0, 2.0, 3.0});
  m.push_row(std::vector<double>{4.0, 5.0, 6.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
  EXPECT_THROW(m.push_row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Scaler, StandardizesToZeroMeanUnitVariance) {
  common::Rng rng(3);
  Matrix x(200, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = rng.normal(5.0, 2.0);
    x.at(i, 1) = rng.normal(-1.0, 0.1);
    x.at(i, 2) = 7.0;  // constant feature
  }
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 200; ++i) mean += z.at(i, j);
    mean /= 200.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    double var = 0.0;
    for (std::size_t i = 0; i < 200; ++i) {
      var += (z.at(i, j) - mean) * (z.at(i, j) - mean);
    }
    EXPECT_NEAR(var / 200.0, 1.0, 1e-9);
  }
  // The constant feature must not blow up.
  for (std::size_t i = 0; i < 200; ++i) EXPECT_DOUBLE_EQ(z.at(i, 2), 0.0);
}

TEST(Scaler, TransformRowMatchesTransform) {
  Matrix x(3, 2);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 2.0;
  x.at(2, 0) = 3.0;
  x.at(0, 1) = 10.0;
  x.at(1, 1) = 20.0;
  x.at(2, 1) = 30.0;
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  std::vector<double> row{2.0, 20.0};
  scaler.transform_row(row);
  EXPECT_NEAR(row[0], z.at(1, 0), 1e-12);
  EXPECT_NEAR(row[1], z.at(1, 1), 1e-12);
}

TEST(Split, PartitionsAllIndices) {
  common::Rng rng(5);
  const auto [train, test] = train_test_split(100, 0.25, rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
  std::vector<bool> seen(100, false);
  for (const auto i : train) seen[i] = true;
  for (const auto i : test) seen[i] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Metrics, AccuracyAndErrors) {
  const std::vector<int> truth{1, 0, 1, 1};
  const std::vector<int> pred{1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(accuracy(truth, pred), 0.5);
  const std::vector<double> y{1.0, 2.0, 3.0};
  const std::vector<double> yhat{1.5, 2.0, 2.0};
  EXPECT_NEAR(mean_absolute_error(y, yhat), 0.5, 1e-12);
  EXPECT_NEAR(root_mean_squared_error(y, yhat),
              std::sqrt((0.25 + 0.0 + 1.0) / 3.0), 1e-12);
}

TEST(Metrics, OneHotEncoding) {
  std::vector<double> out;
  one_hot(2, 4, out);
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.0, 1.0, 0.0}));
  one_hot(0, 2, out);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_DOUBLE_EQ(out[4], 1.0);
}

TEST(Kernel, LinearAndRbfValues) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  KernelParams linear{KernelKind::kLinear, -1.0};
  EXPECT_DOUBLE_EQ(kernel_value(linear, 1.0, a, a), 1.0);
  EXPECT_DOUBLE_EQ(kernel_value(linear, 1.0, a, b), 0.0);
  KernelParams rbf{KernelKind::kRbf, 0.5};
  EXPECT_DOUBLE_EQ(kernel_value(rbf, 0.5, a, a), 1.0);
  EXPECT_NEAR(kernel_value(rbf, 0.5, a, b), std::exp(-1.0), 1e-12);
}

TEST(Kernel, GammaScaleDefaultsToOneOverFeatures) {
  KernelParams params;  // gamma < 0 means scale
  EXPECT_DOUBLE_EQ(effective_gamma(params, 4), 0.25);
  params.gamma = 2.0;
  EXPECT_DOUBLE_EQ(effective_gamma(params, 4), 2.0);
}

Matrix blob_data(common::Rng& rng, std::vector<int>& labels, std::size_t n,
                 double separation) {
  Matrix x(n, 2);
  labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : -1;
    labels[i] = label;
    x.at(i, 0) = label * separation + rng.normal(0.0, 0.5);
    x.at(i, 1) = rng.normal(0.0, 0.5);
  }
  return x;
}

TEST(BinarySvm, SeparatesGaussianBlobs) {
  common::Rng rng(11);
  std::vector<int> labels;
  const Matrix x = blob_data(rng, labels, 200, 2.0);
  BinarySvm svm;
  SvmConfig config;
  svm.train(x, labels, config, rng);
  EXPECT_GT(svm.num_support_vectors(), 0u);
  std::size_t hits = 0;
  std::vector<int> test_labels;
  const Matrix x_test = blob_data(rng, test_labels, 200, 2.0);
  for (std::size_t i = 0; i < 200; ++i) {
    const int pred = svm.decision(x_test.row(i)) >= 0.0 ? 1 : -1;
    hits += pred == test_labels[i];
  }
  EXPECT_GT(hits, 190u);
}

TEST(BinarySvm, RbfSolvesXor) {
  // XOR is not linearly separable; RBF must handle it.
  common::Rng rng(13);
  Matrix x(200, 2);
  std::vector<int> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : -1.0;
    x.at(i, 0) = a + rng.normal(0.0, 0.2);
    x.at(i, 1) = b + rng.normal(0.0, 0.2);
    labels[i] = a * b > 0 ? 1 : -1;
  }
  BinarySvm svm;
  SvmConfig config;
  config.kernel.gamma = 1.0;
  config.c = 10.0;
  svm.train(x, labels, config, rng);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    hits += (svm.decision(x.row(i)) >= 0.0 ? 1 : -1) == labels[i];
  }
  EXPECT_GT(hits, 190u);
}

TEST(BinarySvm, LinearKernelSolvesLinearProblem) {
  common::Rng rng(15);
  std::vector<int> labels;
  const Matrix x = blob_data(rng, labels, 150, 3.0);
  BinarySvm svm;
  SvmConfig config;
  config.kernel.kind = KernelKind::kLinear;
  svm.train(x, labels, config, rng);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 150; ++i) {
    hits += (svm.decision(x.row(i)) >= 0.0 ? 1 : -1) == labels[i];
  }
  EXPECT_GT(hits, 145u);
}

TEST(SvmClassifier, SingleClassPredictsThatClass) {
  common::Rng rng(17);
  Matrix x(10, 2);
  const std::vector<int> labels(10, 3);
  SvmClassifier clf;
  clf.train(x, labels, rng);
  EXPECT_EQ(clf.predict(x.row(0)), 3);
}

TEST(SvmClassifier, MultiClassBlobs) {
  common::Rng rng(19);
  const int k = 4;
  Matrix x(400, 2);
  std::vector<int> labels(400);
  for (std::size_t i = 0; i < 400; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, k - 1));
    labels[i] = label * 10;  // arbitrary label values
    const double angle = 2.0 * M_PI * label / k;
    x.at(i, 0) = 3.0 * std::cos(angle) + rng.normal(0.0, 0.4);
    x.at(i, 1) = 3.0 * std::sin(angle) + rng.normal(0.0, 0.4);
  }
  SvmClassifier clf;
  clf.train(x, labels, rng);
  EXPECT_EQ(clf.classes().size(), 4u);
  const std::vector<int> pred = clf.predict(x);
  EXPECT_GT(accuracy(labels, pred), 0.95);
}

TEST(SvmClassifier, DeterministicGivenSeed) {
  std::vector<int> labels;
  common::Rng data_rng(23);
  const Matrix x = blob_data(data_rng, labels, 100, 2.0);
  common::Rng rng_a(5);
  common::Rng rng_b(5);
  SvmClassifier a;
  SvmClassifier b;
  a.train(x, labels, rng_a);
  b.train(x, labels, rng_b);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(a.predict(x.row(i)), b.predict(x.row(i)));
  }
}

TEST(Svr, FitsLinearFunction) {
  common::Rng rng(29);
  Matrix x(150, 1);
  std::vector<double> y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    x.at(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = 3.0 * x.at(i, 0) + 1.0 + rng.normal(0.0, 0.05);
  }
  SvrConfig config;
  config.kernel.kind = KernelKind::kLinear;
  config.epsilon = 0.1;
  Svr svr(config);
  svr.train(x, y, rng);
  std::vector<double> pred = svr.predict(x);
  EXPECT_LT(mean_absolute_error(y, pred), 0.2);
}

TEST(Svr, FitsSmoothNonlinearFunction) {
  common::Rng rng(31);
  Matrix x(250, 1);
  std::vector<double> y(250);
  for (std::size_t i = 0; i < 250; ++i) {
    x.at(i, 0) = rng.uniform(-3.0, 3.0);
    y[i] = std::sin(x.at(i, 0));
  }
  SvrConfig config;
  config.kernel.gamma = 1.0;
  config.c = 50.0;
  config.epsilon = 0.02;
  Svr svr(config);
  svr.train(x, y, rng);
  const std::vector<double> pred = svr.predict(x);
  EXPECT_LT(mean_absolute_error(y, pred), 0.1);
}

TEST(Svr, EmptyTrainingSetPredictsZero) {
  common::Rng rng(37);
  Svr svr;
  svr.train(Matrix(0, 0), std::vector<double>{}, rng);
  const std::vector<double> row{1.0, 2.0};
  EXPECT_DOUBLE_EQ(svr.predict(row), 0.0);
}

TEST(Svr, InsensitiveTubeLeavesFewSupportVectors) {
  // Constant target within the epsilon tube -> no support vectors needed.
  common::Rng rng(41);
  Matrix x(50, 1);
  std::vector<double> y(50, 0.0);
  for (std::size_t i = 0; i < 50; ++i) x.at(i, 0) = rng.uniform(-1.0, 1.0);
  SvrConfig config;
  config.epsilon = 0.5;
  Svr svr(config);
  svr.train(x, y, rng);
  EXPECT_EQ(svr.num_support_vectors(), 0u);
}

}  // namespace
}  // namespace poiprivacy::ml
