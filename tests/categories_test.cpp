#include <gtest/gtest.h>

#include "attack/region_reid.h"
#include "poi/categories.h"
#include "poi/city_model.h"

namespace poiprivacy::poi {
namespace {

City make_city() { return generate_city(test_preset(), 7); }

TEST(Categories, NamesResolveToTheirCategory) {
  EXPECT_EQ(category_of("beijing/food_3"), Category::kFood);
  EXPECT_EQ(category_of("nyc/transport_120"), Category::kTransport);
  EXPECT_EQ(category_of("nature_9"), Category::kNature);
  EXPECT_EQ(category_of("leisure-2"), Category::kLeisure);
}

TEST(Categories, UnknownNamesFallBackDeterministically) {
  const Category a = category_of("mystery_place");
  const Category b = category_of("mystery_place");
  EXPECT_EQ(a, b);
  EXPECT_LT(static_cast<std::size_t>(a), kNumCategories);
}

TEST(Categories, PrefixMustBeDelimited) {
  // "foodie_1" must not be classified as kFood by accident; whatever the
  // hash fallback picks, it must be stable.
  EXPECT_EQ(category_of("foodie_1"), category_of("foodie_1"));
}

TEST(Categories, GeneratedCityCoversAllCategories) {
  const City city = make_city();
  const std::vector<Category> mapping = categorize(city.db.types());
  EXPECT_EQ(mapping.size(), city.db.num_types());
  std::vector<bool> seen(kNumCategories, false);
  for (const Category c : mapping) {
    seen[static_cast<std::size_t>(c)] = true;
  }
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    EXPECT_TRUE(seen[c]) << kCategoryNames[c];
  }
}

TEST(Categories, CollapsePreservesTotal) {
  const City city = make_city();
  const std::vector<Category> mapping = categorize(city.db.types());
  const FrequencyVector f = city.db.freq({4.0, 4.0}, 1.5);
  const FrequencyVector collapsed = collapse(f, mapping);
  EXPECT_EQ(collapsed.size(), kNumCategories);
  EXPECT_EQ(total(collapsed), total(f));
}

TEST(Categories, CategoryViewPreservesGeometry) {
  const City city = make_city();
  const PoiDatabase view = category_view(city.db);
  EXPECT_EQ(view.pois().size(), city.db.pois().size());
  EXPECT_EQ(view.num_types(), kNumCategories);
  for (std::size_t i = 0; i < view.pois().size(); ++i) {
    EXPECT_EQ(view.pois()[i].pos, city.db.pois()[i].pos);
  }
  EXPECT_EQ(total(view.city_freq()),
            static_cast<std::int64_t>(city.db.pois().size()));
}

TEST(Categories, ViewFreqEqualsCollapsedFreq) {
  const City city = make_city();
  const PoiDatabase view = category_view(city.db);
  const std::vector<Category> mapping = categorize(city.db.types());
  common::Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.3, 2.0);
    EXPECT_EQ(view.freq(l, r), collapse(city.db.freq(l, r), mapping));
  }
}

TEST(Categories, CategoryReleaseDefeatsTheBaselineAttack) {
  // With only 10 ubiquitous categories there is no rare pivot left; the
  // attack should essentially never isolate a unique candidate.
  const City city = make_city();
  const PoiDatabase view = category_view(city.db);
  const attack::RegionReidentifier reid(view);
  common::Rng rng(5);
  int successes = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    successes += attack::attack_success(reid.infer(view.freq(l, r), r),
                                        view, l, r);
  }
  EXPECT_LE(successes, trials / 10);
}

}  // namespace
}  // namespace poiprivacy::poi
