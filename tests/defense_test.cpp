#include <gtest/gtest.h>

#include "attack/region_reid.h"
#include "cloak/kcloak.h"
#include "common/rng.h"
#include "defense/location_defenses.h"
#include "defense/opt_defense.h"
#include "defense/sanitizer.h"
#include "poi/city_model.h"

namespace poiprivacy::defense {
namespace {

poi::City make_city(std::uint64_t seed = 7) {
  return poi::generate_city(poi::test_preset(), seed);
}

cloak::AdaptiveIntervalCloaker make_cloaker(const poi::PoiDatabase& db,
                                            std::size_t users,
                                            std::uint64_t seed) {
  common::Rng rng(seed);
  return cloak::AdaptiveIntervalCloaker(
      cloak::uniform_population(db.bounds(), users, rng), db.bounds());
}

TEST(Sanitizer, SelectsExactlyTheRareTypes) {
  const poi::City city = make_city();
  const Sanitizer sanitizer(city.db, 10);
  for (const poi::TypeId t : sanitizer.sanitized_types()) {
    EXPECT_LE(city.db.city_freq()[t], 10);
  }
  for (poi::TypeId t = 0; t < city.db.num_types(); ++t) {
    EXPECT_EQ(sanitizer.is_sanitized(t),
              city.db.city_freq()[t] > 0 && city.db.city_freq()[t] <= 10);
  }
}

TEST(Sanitizer, ZeroesOnlySanitizedEntries) {
  const poi::City city = make_city();
  const Sanitizer sanitizer(city.db, 10);
  const poi::FrequencyVector truth = city.db.freq({4.0, 4.0}, 1.0);
  const poi::FrequencyVector sanitized = sanitizer.sanitize(truth);
  for (poi::TypeId t = 0; t < truth.size(); ++t) {
    if (sanitizer.is_sanitized(t)) {
      EXPECT_EQ(sanitized[t], 0);
    } else {
      EXPECT_EQ(sanitized[t], truth[t]);
    }
  }
}

TEST(Sanitizer, ThresholdZeroSanitizesNothing) {
  const poi::City city = make_city();
  const Sanitizer sanitizer(city.db, 0);
  EXPECT_TRUE(sanitizer.sanitized_types().empty());
  const poi::FrequencyVector truth = city.db.freq({4.0, 4.0}, 1.0);
  EXPECT_EQ(sanitizer.sanitize(truth), truth);
}

TEST(GeoInd, ReleaseIsFreqAtPerturbedLocation) {
  const poi::City city = make_city();
  const GeoIndDefense defense(city.db, 0.5, 0.1);
  common::Rng rng_a(3);
  common::Rng rng_b(3);
  const geo::Point l{4.0, 4.0};
  const geo::Point perturbed = defense.perturb(l, rng_a);
  EXPECT_EQ(defense.release(l, 1.0, rng_b), city.db.freq(perturbed, 1.0));
}

TEST(GeoInd, SmallerEpsilonDisplacesFurther) {
  const poi::City city = make_city();
  const GeoIndDefense strong(city.db, 0.1, 0.1);   // eps_per_km = 1
  const GeoIndDefense weak(city.db, 1.0, 0.1);     // eps_per_km = 10
  common::Rng rng(5);
  double strong_mean = 0.0;
  double weak_mean = 0.0;
  const geo::Point l{4.0, 4.0};
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    strong_mean += geo::distance(l, strong.perturb(l, rng));
    weak_mean += geo::distance(l, weak.perturb(l, rng));
  }
  EXPECT_GT(strong_mean / n, 5.0 * (weak_mean / n));
}

TEST(KCloak, ReleaseUsesCloakedRegionCenter) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db, 500, 7);
  const KCloakDefense defense(city.db, cloaker, 10);
  const geo::Point l{3.0, 5.0};
  const cloak::CloakResult cloaked = cloaker.cloak(l, 10);
  EXPECT_EQ(defense.release(l, 1.0),
            city.db.freq(cloaked.region.center(), 1.0));
}

TEST(OptimizationDefense, PerturbsRareTypesUnderBudget) {
  const poi::City city = make_city();
  const OptimizationDefense defense(city.db, 0.05);
  const poi::FrequencyVector truth = city.db.freq({4.0, 4.0}, 1.5);
  const poi::FrequencyVector released = defense.release(truth);
  ASSERT_EQ(released.size(), truth.size());
  // Budget respected.
  std::vector<double> base(truth.begin(), truth.end());
  EXPECT_LE(opt::mean_relative_distortion(base, released), 0.05 + 1e-9);
  for (const auto v : released) EXPECT_GE(v, 0);
}

TEST(OptimizationDefense, BetaZeroIsIdentity) {
  const poi::City city = make_city();
  const OptimizationDefense defense(city.db, 0.0);
  const poi::FrequencyVector truth = city.db.freq({4.0, 4.0}, 1.5);
  EXPECT_EQ(defense.release(truth), truth);
}

TEST(OptimizationDefense, UtilityDegradesGracefully) {
  const poi::City city = make_city();
  common::Rng rng(11);
  for (const double beta : {0.01, 0.03, 0.05}) {
    const OptimizationDefense defense(city.db, beta);
    double jaccard = 0.0;
    const int n = 30;
    for (int i = 0; i < n; ++i) {
      const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
      const poi::FrequencyVector truth = city.db.freq(l, 1.5);
      jaccard += poi::top_k_jaccard(truth, defense.release(truth), 10);
    }
    // The optimizer spends its budget on rare types, which are seldom in
    // the top 10, so utility stays high.
    EXPECT_GT(jaccard / n, 0.6) << "beta " << beta;
  }
}

TEST(DpDefense, NoisedMeanTracksDummyMean) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db, 800, 13);
  DpDefenseConfig config;
  config.epsilon = 50.0;  // nearly noiseless: mean must dominate
  config.k = 10;
  const DpDefense defense(city.db, cloaker, config);
  common::Rng rng(17);
  const geo::Point l{4.0, 4.0};
  const std::vector<double> mean = defense.noised_mean(l, 1.0, rng);
  ASSERT_EQ(mean.size(), city.db.num_types());
  // With eps=50 the noise is tiny; the mean of k vectors of nonnegative
  // counts stays in a plausible envelope.
  for (const double v : mean) {
    EXPECT_GT(v, -1.0);
    EXPECT_LT(v, 1e4);
  }
}

TEST(DpDefense, ReleaseIsNonNegativeIntegerVector) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db, 800, 19);
  DpDefenseConfig config;
  config.epsilon = 1.0;
  const DpDefense defense(city.db, cloaker, config);
  common::Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector released = defense.release(l, 1.0, rng);
    ASSERT_EQ(released.size(), city.db.num_types());
    for (const auto v : released) EXPECT_GE(v, 0);
  }
}

TEST(DpDefense, MoreBudgetMeansLessNoise) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db, 800, 29);
  common::Rng rng(31);
  const geo::Point l{4.0, 4.0};
  // Compare the distance between the noised mean and the true dummy mean
  // under small and large epsilon (same dummy draw via forked rngs).
  DpDefenseConfig tight;
  tight.epsilon = 0.2;
  DpDefenseConfig loose;
  loose.epsilon = 5.0;
  const DpDefense defense_tight(city.db, cloaker, tight);
  const DpDefense defense_loose(city.db, cloaker, loose);
  double tight_disp = 0.0;
  double loose_disp = 0.0;
  for (int i = 0; i < 15; ++i) {
    common::Rng rng_a(1000 + i);
    common::Rng rng_b(1000 + i);
    const auto mean_tight = defense_tight.noised_mean(l, 1.0, rng_a);
    const auto mean_loose = defense_loose.noised_mean(l, 1.0, rng_b);
    for (std::size_t t = 0; t < mean_tight.size(); ++t) {
      tight_disp += std::abs(mean_tight[t]);
      loose_disp += std::abs(mean_loose[t]);
    }
  }
  // More noise adds absolute mass to the (mostly zero) mean vector.
  EXPECT_GT(tight_disp, loose_disp);
}

TEST(DpDefense, MitigatesAttackRelativeToNoDefense) {
  const poi::City city = make_city();
  const auto cloaker = make_cloaker(city.db, 800, 37);
  DpDefenseConfig config;
  config.epsilon = 0.5;
  config.beta = 0.03;
  const DpDefense defense(city.db, cloaker, config);
  const attack::RegionReidentifier reid(city.db);
  common::Rng rng(41);
  int base_success = 0;
  int protected_success = 0;
  const int trials = 120;
  const double r = 0.8;
  for (int i = 0; i < trials; ++i) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    base_success +=
        attack::attack_success(reid.infer(city.db.freq(l, r), r), city.db, l, r);
    protected_success += attack::attack_success(
        reid.infer(defense.release(l, r, rng), r), city.db, l, r);
  }
  EXPECT_LT(protected_success, base_success);
}

}  // namespace
}  // namespace poiprivacy::defense
