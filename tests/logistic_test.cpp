#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/logistic.h"

namespace poiprivacy::ml {
namespace {

Matrix blobs(common::Rng& rng, std::vector<int>& labels, std::size_t n,
             double separation) {
  Matrix x(n, 2);
  labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : -1;
    labels[i] = label;
    x.at(i, 0) = label * separation + rng.normal(0.0, 0.5);
    x.at(i, 1) = rng.normal(0.0, 0.5);
  }
  return x;
}

TEST(BinaryLogistic, SeparatesBlobs) {
  common::Rng rng(3);
  std::vector<int> labels;
  const Matrix x = blobs(rng, labels, 300, 2.0);
  BinaryLogistic model;
  model.train(x, labels, {}, rng);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    hits += (model.decision(x.row(i)) >= 0.0 ? 1 : -1) == labels[i];
  }
  EXPECT_GT(hits, 290u);
}

TEST(BinaryLogistic, ProbabilitiesAreCalibratedAtTheBoundary) {
  common::Rng rng(5);
  std::vector<int> labels;
  const Matrix x = blobs(rng, labels, 400, 2.0);
  BinaryLogistic model;
  model.train(x, labels, {}, rng);
  // At the midpoint between the blobs, p should be near 0.5; deep inside
  // a blob it should be near 0 or 1.
  const std::vector<double> mid{0.0, 0.0};
  const std::vector<double> pos{3.0, 0.0};
  const std::vector<double> neg{-3.0, 0.0};
  EXPECT_NEAR(model.probability(mid), 0.5, 0.2);
  EXPECT_GT(model.probability(pos), 0.9);
  EXPECT_LT(model.probability(neg), 0.1);
}

TEST(BinaryLogistic, ProbabilityIsSigmoidOfDecision) {
  common::Rng rng(7);
  std::vector<int> labels;
  const Matrix x = blobs(rng, labels, 100, 1.5);
  BinaryLogistic model;
  model.train(x, labels, {}, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    const double z = model.decision(x.row(i));
    EXPECT_NEAR(model.probability(x.row(i)), 1.0 / (1.0 + std::exp(-z)),
                1e-12);
  }
}

TEST(BinaryLogistic, L2ShrinksWeights) {
  common::Rng rng(9);
  std::vector<int> labels;
  const Matrix x = blobs(rng, labels, 200, 2.0);
  LogisticConfig weak;
  weak.l2 = 1e-6;
  LogisticConfig strong;
  strong.l2 = 1.0;
  BinaryLogistic weak_model;
  BinaryLogistic strong_model;
  common::Rng rng_a(11);
  common::Rng rng_b(11);
  weak_model.train(x, labels, weak, rng_a);
  strong_model.train(x, labels, strong, rng_b);
  double weak_norm = 0.0;
  double strong_norm = 0.0;
  for (std::size_t j = 0; j < 2; ++j) {
    weak_norm += weak_model.weights()[j] * weak_model.weights()[j];
    strong_norm += strong_model.weights()[j] * strong_model.weights()[j];
  }
  EXPECT_LT(strong_norm, weak_norm);
}

TEST(LogisticClassifier, SingleClassIsConstant) {
  common::Rng rng(13);
  Matrix x(5, 2);
  const std::vector<int> labels(5, 7);
  LogisticClassifier clf;
  clf.train(x, labels, rng);
  EXPECT_EQ(clf.predict(x.row(0)), 7);
}

TEST(LogisticClassifier, MultiClassRings) {
  common::Rng rng(17);
  const int k = 3;
  Matrix x(300, 2);
  std::vector<int> labels(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, k - 1));
    labels[i] = label;
    const double angle = 2.0 * M_PI * label / k;
    x.at(i, 0) = 3.0 * std::cos(angle) + rng.normal(0.0, 0.5);
    x.at(i, 1) = 3.0 * std::sin(angle) + rng.normal(0.0, 0.5);
  }
  LogisticClassifier clf;
  clf.train(x, labels, rng);
  EXPECT_GT(accuracy(labels, clf.predict(x)), 0.93);
}

TEST(LogisticClassifier, DeterministicGivenSeed) {
  common::Rng data_rng(19);
  std::vector<int> labels;
  const Matrix x = blobs(data_rng, labels, 120, 2.0);
  LogisticClassifier a;
  LogisticClassifier b;
  common::Rng rng_a(23);
  common::Rng rng_b(23);
  a.train(x, labels, rng_a);
  b.train(x, labels, rng_b);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(a.predict(x.row(i)), b.predict(x.row(i)));
  }
}

TEST(LogisticClassifier, EmptyTrainingPredictsZero) {
  LogisticClassifier clf;
  common::Rng rng(29);
  clf.train(Matrix(0, 0), std::vector<int>{}, rng);
  EXPECT_EQ(clf.predict(std::vector<double>{}), 0);
}

}  // namespace
}  // namespace poiprivacy::ml
