#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/quadtree.h"

namespace poiprivacy::spatial {
namespace {

std::vector<geo::Point> random_points(std::size_t n, const geo::BBox& box,
                                      common::Rng& rng) {
  std::vector<geo::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(box.min_x, box.max_x),
                   rng.uniform(box.min_y, box.max_y)});
  }
  return pts;
}

std::set<std::uint32_t> brute_force_disk(const std::vector<geo::Point>& pts,
                                         geo::Point center, double r) {
  std::set<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (geo::distance_sq(pts[i], center) <= r * r) out.insert(i);
  }
  return out;
}

class GridIndexProperty : public ::testing::TestWithParam<double> {};

TEST_P(GridIndexProperty, MatchesBruteForceAtVariousCellSizes) {
  common::Rng rng(1234);
  const geo::BBox box{0.0, 0.0, 20.0, 15.0};
  const auto pts = random_points(800, box, rng);
  const GridIndex index(pts, box, GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const geo::Point c{rng.uniform(-2.0, 22.0), rng.uniform(-2.0, 17.0)};
    const double r = rng.uniform(0.1, 6.0);
    const auto got = index.query_disk(c, r);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, brute_force_disk(pts, c, r))
        << "cell=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(got.size(), got_set.size()) << "duplicate ids returned";
    EXPECT_EQ(index.count_in_disk(c, r), got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridIndexProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 25.0));

TEST(GridIndex, EmptyIndexReturnsNothing) {
  const geo::BBox box{0.0, 0.0, 1.0, 1.0};
  const GridIndex index({}, box);
  EXPECT_TRUE(index.query_disk({0.5, 0.5}, 10.0).empty());
  EXPECT_EQ(index.count_in_disk({0.5, 0.5}, 10.0), 0u);
}

TEST(GridIndex, BoundaryPointIncluded) {
  const geo::BBox box{0.0, 0.0, 10.0, 10.0};
  const GridIndex index({{1.0, 1.0}, {2.0, 1.0}}, box);
  // Point exactly at distance r must be included.
  const auto got = index.query_disk({0.0, 1.0}, 1.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);
}

TEST(GridIndex, QueryOutsideBoundsStillCorrect) {
  common::Rng rng(5);
  const geo::BBox box{0.0, 0.0, 10.0, 10.0};
  const auto pts = random_points(200, box, rng);
  const GridIndex index(pts, box, 1.0);
  const geo::Point far_center{50.0, 50.0};
  EXPECT_EQ(index.query_disk(far_center, 5.0).size(), 0u);
  const auto all = index.query_disk({5.0, 5.0}, 100.0);
  EXPECT_EQ(all.size(), pts.size());
}

TEST(Quadtree, CountMatchesBruteForce) {
  common::Rng rng(77);
  const geo::BBox box{0.0, 0.0, 16.0, 16.0};
  const auto pts = random_points(600, box, rng);
  const Quadtree tree(pts, box, 8);
  for (int trial = 0; trial < 50; ++trial) {
    geo::BBox q{rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0), 0.0, 0.0};
    q.max_x = q.min_x + rng.uniform(0.5, 6.0);
    q.max_y = q.min_y + rng.uniform(0.5, 6.0);
    std::size_t expected = 0;
    for (const geo::Point p : pts) {
      if (q.contains(p)) ++expected;
    }
    EXPECT_EQ(tree.count_in_box(q), expected) << "trial " << trial;
    EXPECT_EQ(tree.query_box(q).size(), expected);
  }
}

TEST(Quadtree, FullBoundsCountsEverything) {
  common::Rng rng(79);
  const geo::BBox box{0.0, 0.0, 8.0, 8.0};
  const auto pts = random_points(300, box, rng);
  const Quadtree tree(pts, box);
  EXPECT_EQ(tree.count_in_box(box), pts.size());
}

TEST(Quadtree, EmptyTree) {
  const geo::BBox box{0.0, 0.0, 4.0, 4.0};
  const Quadtree tree({}, box);
  EXPECT_EQ(tree.count_in_box(box), 0u);
  EXPECT_TRUE(tree.query_box(box).empty());
}

TEST(Quadtree, DuplicatePointsDoNotRecurseForever) {
  // 100 identical points would never split apart; max_depth must stop it.
  const geo::BBox box{0.0, 0.0, 4.0, 4.0};
  std::vector<geo::Point> pts(100, geo::Point{1.0, 1.0});
  const Quadtree tree(pts, box, 4);
  EXPECT_EQ(tree.count_in_box({0.9, 0.9, 1.1, 1.1}), 100u);
}

TEST(KdTree, NearestMatchesBruteForce) {
  common::Rng rng(31);
  const geo::BBox box{0.0, 0.0, 10.0, 10.0};
  const auto pts = random_points(400, box, rng);
  const KdTree tree(pts);
  for (int trial = 0; trial < 60; ++trial) {
    const geo::Point q{rng.uniform(-1.0, 11.0), rng.uniform(-1.0, 11.0)};
    const auto got = tree.nearest(q);
    ASSERT_TRUE(got.has_value());
    double best = 1e18;
    for (const geo::Point p : pts) best = std::min(best, distance_sq(p, q));
    EXPECT_DOUBLE_EQ(geo::distance_sq(pts[*got], q), best);
  }
}

TEST(KdTree, KNearestSortedAndMatchesBruteForce) {
  common::Rng rng(33);
  const geo::BBox box{0.0, 0.0, 10.0, 10.0};
  const auto pts = random_points(200, box, rng);
  const KdTree tree(pts);
  for (int trial = 0; trial < 20; ++trial) {
    const geo::Point q{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    const auto got = tree.k_nearest(q, 7);
    ASSERT_EQ(got.size(), 7u);
    // Sorted by distance.
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(geo::distance_sq(pts[got[i - 1]], q),
                geo::distance_sq(pts[got[i]], q));
    }
    // Matches brute-force top-k set.
    std::vector<std::uint32_t> ids(pts.size());
    for (std::uint32_t i = 0; i < pts.size(); ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
      return geo::distance_sq(pts[a], q) < geo::distance_sq(pts[b], q);
    });
    EXPECT_DOUBLE_EQ(geo::distance_sq(pts[got.back()], q),
                     geo::distance_sq(pts[ids[6]], q));
  }
}

TEST(KdTree, EmptyTreeReturnsNullopt) {
  const KdTree tree({});
  EXPECT_FALSE(tree.nearest({0.0, 0.0}).has_value());
  EXPECT_TRUE(tree.k_nearest({0.0, 0.0}, 3).empty());
}

TEST(KdTree, KLargerThanSizeReturnsAll) {
  const KdTree tree({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  EXPECT_EQ(tree.k_nearest({0.0, 0.0}, 10).size(), 3u);
}

}  // namespace
}  // namespace poiprivacy::spatial
