#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"

namespace poiprivacy::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, LaplaceSymmetricWithCorrectScale) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.laplace(1.5));
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  // Var of Laplace(b) is 2 b^2.
  EXPECT_NEAR(stats.variance(), 2.0 * 1.5 * 1.5, 0.15);
}

TEST(Rng, Gamma2MeanIsTwoOverRate) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gamma2(4.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(37);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(43);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng b(55);
  b();  // consume the draw fork() made
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (child() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(median(xs), 0.0);
  EXPECT_EQ(quantile(xs, 0.5), 0.0);
}

TEST(Stats, MedianAndQuantiles) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(61);
  std::vector<double> xs;
  RunningStats running;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 9.0);
    xs.push_back(x);
    running.add(x);
  }
  EXPECT_NEAR(running.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(running.stddev(), stddev(xs), 1e-9);
}

TEST(Stats, EmpiricalCdfAtThresholds) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> thresholds{0.5, 2.0, 10.0};
  const auto cdf = empirical_cdf(samples, thresholds);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  Rng rng(67);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.uniform(0.0, 10.0));
  const auto cdf = empirical_cdf(samples, std::size_t{20});
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].fraction, cdf[i].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Stats, PercentilesMatchQuantiles) {
  Rng rng(71);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.uniform(0.0, 50.0));
  const Percentiles p = percentiles(xs);
  EXPECT_DOUBLE_EQ(p.p50, quantile(xs, 0.50));
  EXPECT_DOUBLE_EQ(p.p95, quantile(xs, 0.95));
  EXPECT_DOUBLE_EQ(p.p99, quantile(xs, 0.99));
  EXPECT_LE(p.p50, p.p95);
  EXPECT_LE(p.p95, p.p99);
}

TEST(Stats, PercentilesOfEmptyAreZero) {
  const Percentiles p = percentiles(std::vector<double>{});
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p95, 0.0);
  EXPECT_EQ(p.p99, 0.0);
}

TEST(Stats, FmtFormatsDecimals) {
  EXPECT_EQ(fmt(0.12345), "0.123");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_EQ(fmt(-2.5, 2), "-2.50");
}

TEST(Flags, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=0.5", "--gamma"};
  const Flags flags(5, argv);
  EXPECT_EQ(flags.get("alpha", std::int64_t{0}), 3);
  EXPECT_DOUBLE_EQ(flags.get("beta", 0.0), 0.5);
  EXPECT_TRUE(flags.get("gamma", false));
  EXPECT_FALSE(flags.get("missing", false));
  EXPECT_EQ(flags.get("missing", std::int64_t{7}), 7);
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "input.csv", "--k", "5", "out.csv"};
  const Flags flags(5, argv);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "out.csv");
}

TEST(Flags, UnknownFlagRejectedWhenKnownListGiven) {
  const char* argv[] = {"prog", "--oops", "1"};
  EXPECT_THROW(Flags(3, argv, {"seed"}), std::invalid_argument);
}

TEST(Flags, KnownFlagAcceptedWhenListGiven) {
  const char* argv[] = {"prog", "--seed", "9"};
  const Flags flags(3, argv, {"seed"});
  EXPECT_EQ(flags.get("seed", std::int64_t{0}), 9);
}

TEST(Flags, HelpImplicitlyKnown) {
  const char* argv[] = {"prog", "--help"};
  const Flags flags(2, argv, {"seed"});
  EXPECT_TRUE(flags.help_requested());
  const Flags no_help(1, argv, {"seed"});
  EXPECT_FALSE(no_help.help_requested());
}

TEST(Flags, UsageListsKnownFlags) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv, {"seed", "locations"});
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("usage: prog"), std::string::npos);
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("--locations"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace poiprivacy::common
