// The obs metrics layer's own contracts: counters sum across threads,
// histograms survive the empty/single/all-equal edge cases without NaN,
// exact percentiles agree with common::percentiles, and the registry
// hands out stable handles and renders in registration order.
//
// Behavioural assertions are gated on obs::kMetricsEnabled so this suite
// still compiles (and trivially passes) in a -DPOIPRIVACY_NO_METRICS tree.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "eval/json.h"
#include "obs/metrics.h"

namespace poiprivacy {
namespace {

TEST(Counter, SumsAcrossThreads) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Counter& counter = registry.counter("c");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.add(5);
  EXPECT_EQ(counter.value(), kThreads * kPerThread + 5);
}

TEST(Gauge, SetAddValue) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("g");
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.set(0);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Histogram, EmptySnapshotIsAllZeroNoNaN) {
  obs::Registry registry;
  const obs::HistogramSnapshot snap = registry.histogram("h").snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p95, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_FALSE(std::isnan(snap.mean()));
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  hist.record(2.5);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 2.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.5);
  EXPECT_DOUBLE_EQ(snap.min, 2.5);
  EXPECT_DOUBLE_EQ(snap.max, 2.5);
  EXPECT_DOUBLE_EQ(snap.p50, 2.5);
  EXPECT_DOUBLE_EQ(snap.p95, 2.5);
  EXPECT_DOUBLE_EQ(snap.p99, 2.5);
}

TEST(Histogram, AllEqualValues) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  for (int i = 0; i < 100; ++i) hist.record(3.0);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 3.0);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_DOUBLE_EQ(snap.p50, 3.0);
  EXPECT_DOUBLE_EQ(snap.p95, 3.0);
  EXPECT_DOUBLE_EQ(snap.p99, 3.0);
  // Every identical value lands in the same log bucket.
  ASSERT_EQ(snap.buckets.size(), 1u);
  EXPECT_EQ(snap.buckets[0].second, 100u);
  EXPECT_GE(snap.buckets[0].first, 3.0);
}

TEST(Histogram, ZeroAndNegativeValuesLandInUnderflowBucket) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  hist.record(0.0);
  hist.record(-1.0);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, -1.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50, -0.5);  // linear interpolation between the two
  ASSERT_EQ(snap.buckets.size(), 1u);
  EXPECT_EQ(snap.buckets[0].second, 2u);
}

TEST(Histogram, ExactPercentilesMatchCommonPercentiles) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  common::Rng rng(2024);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.exponential(3.0));
  for (const double v : values) hist.record(v);
  const obs::HistogramSnapshot snap = hist.snapshot();
  const common::Percentiles expected = common::percentiles(values);
  EXPECT_DOUBLE_EQ(snap.p50, expected.p50);
  EXPECT_DOUBLE_EQ(snap.p95, expected.p95);
  EXPECT_DOUBLE_EQ(snap.p99, expected.p99);
  EXPECT_DOUBLE_EQ(snap.min, common::min_of(values));
  EXPECT_DOUBLE_EQ(snap.max, common::max_of(values));
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.dropped, 0u);
}

TEST(Histogram, SnapshotIsCumulativeAcrossScrapes) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  hist.record(1.0);
  EXPECT_EQ(hist.snapshot().count, 1u);
  hist.record(2.0);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.p50, 1.5);
}

TEST(Histogram, SamplesBeyondCapAreDroppedButStillBucketed) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  constexpr std::uint64_t kTotal = 70000;  // cap is 65536
  for (std::uint64_t i = 0; i < kTotal; ++i) hist.record(1.0);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.dropped, kTotal - 65536);
  std::uint64_t bucketed = 0;
  for (const auto& [bound, count] : snap.buckets) bucketed += count;
  EXPECT_EQ(bucketed, kTotal);
  EXPECT_DOUBLE_EQ(snap.p50, 1.0);
}

TEST(Span, RecordsElapsedSeconds) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  {
    const obs::Span span(hist);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.min, 0.0);
}

TEST(Span, StopIsIdempotent) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h");
  {
    obs::Span span(hist);
    span.stop();
    span.stop();  // second stop and the destructor must not re-record
  }
  EXPECT_EQ(hist.snapshot().count, 1u);
}

TEST(Registry, FindOrCreateReturnsStableHandles) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  registry.gauge("y");
  registry.histogram("z");
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  registry.histogram("h");
  EXPECT_THROW(registry.counter("h"), std::logic_error);
}

TEST(Registry, JsonRendersInRegistrationOrder) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  registry.counter("zz.second").add(2);
  registry.counter("aa.first").add(1);
  registry.histogram("hh.third").record(1.0);
  const std::string json = registry.json();
  const auto z = json.find("zz.second");
  const auto a = json.find("aa.first");
  const auto h = json.find("hh.third");
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(h, std::string::npos);
  EXPECT_LT(z, a);  // registration order, not lexicographic
  EXPECT_LT(a, h);
  EXPECT_NE(json.find("\"zz.second\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(Registry, TableListsEveryMetric) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry registry;
  registry.counter("requests").add(3);
  registry.gauge("depth").set(4);
  registry.histogram("lat").record(0.25);
  const std::string table = registry.table();
  EXPECT_NE(table.find("requests"), std::string::npos);
  EXPECT_NE(table.find("depth"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
}

TEST(Registry, RenderJsonComposesIntoEnclosingDocument) {
  obs::Registry registry;
  if (obs::kMetricsEnabled) registry.counter("c").add(1);
  eval::JsonWriter json;
  json.begin_object();
  json.key("metrics");
  registry.render_json(json);
  json.field("after", std::int64_t{7});
  json.end_object();
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(json.str(), "{\"metrics\":{\"c\":1},\"after\":7}");
  } else {
    EXPECT_EQ(json.str(), "{\"metrics\":{},\"after\":7}");
  }
}

TEST(GlobalRegistry, IsASingleton) {
  EXPECT_EQ(&obs::global_registry(), &obs::global_registry());
}

}  // namespace
}  // namespace poiprivacy
