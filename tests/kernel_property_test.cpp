// Property tests for the batched frequency-kernel engine:
//
//   * every vectorized kernel (dominates, dominates_early_exit,
//     l1_distance, diff_into, total, top_k_jaccard) against its scalar
//     reference oracle on 200 seeded random vector pairs, including the
//     edge shapes the kernels special-case: empty vectors, length 1, odd
//     lengths, all-zero rows, and saturating INT32_MAX counts;
//   * the dispatch-tier differential harness: the same oracle sweep
//     repeated under every kernel tier the host can execute (scalar /
//     AVX2 / NEON), plus a cross-tier bit-identity check — and the whole
//     binary is additionally registered once per tier in ctest with
//     POIPRIVACY_KERNEL pinned, so every tier also runs the full suite
//     end to end;
//   * the allocation-free aggregate paths (freq_into, freq_batch) against
//     the canonical freq();
//   * the TileAggregates pruning invariant — the tile envelope must
//     dominate any contained disk — and the end-to-end exactness of the
//     pruned re-identification loop against an unpruned brute force.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "attack/region_reid.h"
#include "attack/robust_reid.h"
#include "common/rng.h"
#include "poi/city_model.h"
#include "poi/frequency.h"
#include "poi/tile_aggregates.h"

namespace poiprivacy {
namespace {

using poi::FrequencyVector;

constexpr std::int32_t kSat = std::numeric_limits<std::int32_t>::max();

/// The edge-shape lengths every random trial cycles through: empty,
/// length 1, odd lengths, vector-register remainders, and the real
/// per-city type counts (Beijing 177, NYC 272).
constexpr std::size_t kLengths[] = {0, 1, 2, 3, 7, 15, 16, 17,
                                    40, 63, 64, 65, 100, 177, 272, 301};

/// Draws a pair of same-length vectors for trial `t`. Mixes four regimes:
/// small uniform counts, near-equal pairs (so dominance is plausible and
/// both branches of the kernels are exercised), all-zero rows, and rows
/// salted with saturating counts.
std::pair<FrequencyVector, FrequencyVector> random_pair(common::Rng& rng,
                                                        int t) {
  const std::size_t n = kLengths[static_cast<std::size_t>(t) %
                                 std::size(kLengths)];
  FrequencyVector a(n), b(n);
  const int regime = t % 4;
  for (std::size_t i = 0; i < n; ++i) {
    switch (regime) {
      case 0:  // independent small counts
        a[i] = static_cast<std::int32_t>(rng.uniform_int(0, 50));
        b[i] = static_cast<std::int32_t>(rng.uniform_int(0, 50));
        break;
      case 1: {  // b near a: dominance often holds
        a[i] = static_cast<std::int32_t>(rng.uniform_int(0, 50));
        b[i] = std::max<std::int32_t>(
            0, a[i] + static_cast<std::int32_t>(rng.uniform_int(-1, 0)));
        break;
      }
      case 2:  // all-zero rows
        a[i] = 0;
        b[i] = 0;
        break;
      default:  // saturating counts sprinkled in
        a[i] = rng.bernoulli(0.2) ? kSat
                                  : static_cast<std::int32_t>(
                                        rng.uniform_int(0, 100));
        b[i] = rng.bernoulli(0.2) ? kSat
                                  : static_cast<std::int32_t>(
                                        rng.uniform_int(0, 100));
        break;
    }
  }
  return {std::move(a), std::move(b)};
}

/// The full 200-case oracle sweep, shared by the default-tier test and
/// the per-tier differential harness below.
void run_oracle_sweep() {
  common::Rng rng(20260806);
  for (int t = 0; t < 200; ++t) {
    const auto [a, b] = random_pair(rng, t);
    SCOPED_TRACE("trial " + std::to_string(t) + " len " +
                 std::to_string(a.size()));

    EXPECT_EQ(poi::dominates(a, b), poi::scalar_ref::dominates(a, b));
    EXPECT_EQ(poi::dominates_early_exit(a, b),
              poi::scalar_ref::dominates(a, b));
    EXPECT_EQ(poi::l1_distance(a, b), poi::scalar_ref::l1_distance(a, b));
    EXPECT_EQ(poi::total(a), poi::scalar_ref::total(a));
    EXPECT_EQ(poi::diff(a, b), poi::scalar_ref::diff(a, b));

    FrequencyVector out(a.size(), -1);
    poi::diff_into(a, b, out);
    EXPECT_EQ(out, poi::scalar_ref::diff(a, b));

    for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                                std::size_t{10}, a.size() + 3}) {
      EXPECT_EQ(poi::top_k_types(a, k), poi::scalar_ref::top_k_types(a, k));
      EXPECT_DOUBLE_EQ(poi::top_k_jaccard(a, b, k),
                       poi::scalar_ref::top_k_jaccard(a, b, k));
    }
  }
}

TEST(KernelOracle, MatchesScalarReferenceOn200SeededPairs) {
  run_oracle_sweep();
}

/// Restores whatever tier the process resolved on destruction, so the
/// tier-sweeping tests do not leak their override into later tests.
class TierGuard {
 public:
  TierGuard() : saved_(poi::active_kernel_tier()) {}
  ~TierGuard() { poi::set_kernel_tier(saved_); }

 private:
  poi::KernelTier saved_;
};

TEST(KernelTierSweep, ResolvedTierIsAvailable) {
  const poi::KernelTier active = poi::active_kernel_tier();
  EXPECT_TRUE(poi::kernel_tier_available(active));
  const std::vector<poi::KernelTier> tiers = poi::available_kernel_tiers();
  EXPECT_NE(std::find(tiers.begin(), tiers.end(), active), tiers.end());
  // Visible in the test log so a CI run shows which tier it exercised.
  std::printf("[ kernel tier ] active=%s available=%zu\n",
              std::string(poi::kernel_tier_name(active)).c_str(),
              tiers.size());
}

TEST(KernelTierSweep, ScalarTierIsAlwaysAvailable) {
  EXPECT_TRUE(poi::kernel_tier_available(poi::KernelTier::kScalar));
  for (const poi::KernelTier tier :
       {poi::KernelTier::kScalar, poi::KernelTier::kAvx2,
        poi::KernelTier::kNeon}) {
    // set_kernel_tier accepts exactly the available tiers.
    TierGuard guard;
    EXPECT_EQ(poi::set_kernel_tier(tier), poi::kernel_tier_available(tier));
  }
}

// The dispatch-tier differential harness: the full oracle sweep re-runs
// under every tier this host can execute. Each tier must match the
// scalar reference bit for bit — there is no tolerance anywhere in the
// kernel layer.
TEST(KernelTierSweep, EveryAvailableTierMatchesScalarOracle) {
  TierGuard guard;
  for (const poi::KernelTier tier : poi::available_kernel_tiers()) {
    ASSERT_TRUE(poi::set_kernel_tier(tier));
    ASSERT_EQ(poi::active_kernel_tier(), tier);
    SCOPED_TRACE(std::string("tier ") +
                 std::string(poi::kernel_tier_name(tier)));
    run_oracle_sweep();
  }
}

// Cross-tier bit-identity stated directly (not just through the oracle):
// record every kernel's outputs under the scalar tier, then require the
// identical bits from each other available tier.
TEST(KernelTierSweep, TiersAreBitIdenticalToEachOther) {
  TierGuard guard;
  common::Rng rng(20260807);
  for (int t = 0; t < 60; ++t) {
    const auto [a, b] = random_pair(rng, t);
    SCOPED_TRACE("trial " + std::to_string(t) + " len " +
                 std::to_string(a.size()));

    ASSERT_TRUE(poi::set_kernel_tier(poi::KernelTier::kScalar));
    const bool dom = poi::dominates(a, b);
    const bool dom_early = poi::dominates_early_exit(a, b);
    const std::int64_t l1 = poi::l1_distance(a, b);
    const std::int64_t tot = poi::total(a);
    const FrequencyVector d = poi::diff(a, b);
    const std::vector<poi::TypeId> topk = poi::top_k_types(a, 5);
    std::vector<poi::FingerprintWord> fp(poi::fingerprint_words(a.size()));
    poi::pack_fingerprint(a, fp);

    for (const poi::KernelTier tier : poi::available_kernel_tiers()) {
      if (tier == poi::KernelTier::kScalar) continue;
      ASSERT_TRUE(poi::set_kernel_tier(tier));
      SCOPED_TRACE(std::string("tier ") +
                   std::string(poi::kernel_tier_name(tier)));
      EXPECT_EQ(poi::dominates(a, b), dom);
      EXPECT_EQ(poi::dominates_early_exit(a, b), dom_early);
      EXPECT_EQ(poi::l1_distance(a, b), l1);
      EXPECT_EQ(poi::total(a), tot);
      EXPECT_EQ(poi::diff(a, b), d);
      EXPECT_EQ(poi::top_k_types(a, 5), topk);
      std::vector<poi::FingerprintWord> fp2(poi::fingerprint_words(a.size()));
      poi::pack_fingerprint(a, fp2);
      EXPECT_EQ(fp2, fp);
    }
  }
}

TEST(KernelOracle, DominatesReflexiveAndEdgeCases) {
  const FrequencyVector empty;
  EXPECT_TRUE(poi::dominates(empty, empty));
  EXPECT_TRUE(poi::dominates_early_exit(empty, empty));
  EXPECT_EQ(poi::l1_distance(empty, empty), 0);
  EXPECT_EQ(poi::total(empty), 0);
  EXPECT_DOUBLE_EQ(poi::top_k_jaccard(empty, empty, 10), 1.0);

  const FrequencyVector one_lo{3}, one_hi{4};
  EXPECT_TRUE(poi::dominates(one_hi, one_lo));
  EXPECT_FALSE(poi::dominates(one_lo, one_hi));
  EXPECT_FALSE(poi::dominates_early_exit(one_lo, one_hi));
  EXPECT_EQ(poi::l1_distance(one_lo, one_hi), 1);

  // Saturating counts: |INT32_MAX - 0| must not overflow the accumulator.
  const FrequencyVector sat(100, kSat), zero(100, 0);
  EXPECT_EQ(poi::l1_distance(sat, zero), 100ll * kSat);
  EXPECT_EQ(poi::total(sat), 100ll * kSat);
  EXPECT_TRUE(poi::dominates(sat, zero));
  EXPECT_FALSE(poi::dominates(zero, sat));

  // A single violation in the last lane must defeat both variants.
  FrequencyVector a(177, 9), b(177, 9);
  b.back() = 10;
  EXPECT_FALSE(poi::dominates(a, b));
  EXPECT_FALSE(poi::dominates_early_exit(a, b));
  b.back() = 9;
  EXPECT_TRUE(poi::dominates(a, b));
  EXPECT_TRUE(poi::dominates_early_exit(a, b));
}

TEST(KernelOracle, DiffIntoAllowsAliasing) {
  FrequencyVector a{5, 3, 8, 1}, b{1, 1, 9, 1};
  const FrequencyVector expect = poi::scalar_ref::diff(a, b);
  poi::diff_into(a, b, a);  // out aliases a
  EXPECT_EQ(a, expect);
}

TEST(FreqArena, ResetReusesCapacityAndZeroFills) {
  poi::FreqArena arena;
  arena.reset(4, 100);
  EXPECT_EQ(arena.rows(), 4u);
  EXPECT_EQ(arena.row_len(), 100u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (const std::int32_t v : arena.row(i)) EXPECT_EQ(v, 0);
    arena.row(i)[0] = static_cast<std::int32_t>(i) + 1;
  }
  // Shrinking then regrowing must re-zero everything.
  arena.reset(2, 50);
  EXPECT_EQ(arena.row(1).size(), 50u);
  arena.reset(4, 100);
  for (std::size_t i = 0; i < 4; ++i) {
    for (const std::int32_t v : arena.row(i)) EXPECT_EQ(v, 0);
  }
}

class SeededKernelCity : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  poi::City city() const {
    return poi::generate_city(poi::test_preset(), GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededKernelCity,
                         ::testing::Values(1u, 7u, 21u, 42u));

TEST_P(SeededKernelCity, FreqIntoAndFreqBatchMatchFreq) {
  const poi::City c = city();
  common::Rng rng(GetParam() * 131 + 3);
  std::vector<geo::Point> centers;
  for (int i = 0; i < 12; ++i) {
    centers.push_back({rng.uniform(-1.0, 9.0), rng.uniform(-1.0, 9.0)});
  }
  const double r = rng.uniform(0.2, 2.0);

  poi::FreqArena arena;
  c.db.freq_batch(centers, r, arena);
  ASSERT_EQ(arena.rows(), centers.size());
  ASSERT_EQ(arena.row_len(), c.db.num_types());

  FrequencyVector reused;
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const FrequencyVector direct = c.db.freq(centers[i], r);
    c.db.freq_into(centers[i], r, reused);  // reused across iterations
    EXPECT_EQ(reused, direct);
    EXPECT_TRUE(std::equal(direct.begin(), direct.end(),
                           arena.row(i).begin(), arena.row(i).end()));
  }
}

// The pruning invariant: the tile envelope dominates any contained disk.
TEST_P(SeededKernelCity, TileEnvelopeDominatesAnyContainedDisk) {
  const poi::City c = city();
  const poi::TileAggregates& tiles = c.db.tile_aggregates();
  common::Rng rng(GetParam() * 977 + 5);
  for (int trial = 0; trial < 25; ++trial) {
    // Probes include points outside the bounds (clamped binning must stay
    // sound there too).
    const geo::Point p{rng.uniform(-2.0, 10.0), rng.uniform(-2.0, 10.0)};
    const double r = rng.uniform(0.1, 3.0);
    const FrequencyVector f = c.db.freq(p, r);
    EXPECT_GE(tiles.total_upper_bound(p, r), poi::total(f));
    for (poi::TypeId t = 0; t < f.size(); ++t) {
      ASSERT_GE(tiles.type_upper_bound(p, r, t), f[t])
          << "probe (" << p.x << ", " << p.y << ") r=" << r << " type=" << t;
    }
  }
}

// End-to-end exactness: the pruned re-identification loop must produce
// exactly the candidates of the unpruned brute force.
TEST_P(SeededKernelCity, PrunedReidMatchesBruteForce) {
  const poi::City c = city();
  const attack::RegionReidentifier reid(c.db);
  common::Rng rng(GetParam() * 53 + 17);
  for (int trial = 0; trial < 15; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.4, 1.6);
    const FrequencyVector released = c.db.freq(l, r);
    const attack::ReidResult result = reid.infer(released, r);
    if (!result.pivot_type) continue;

    std::vector<poi::PoiId> brute;
    for (const poi::PoiId id : c.db.pois_of_type(*result.pivot_type)) {
      if (poi::scalar_ref::dominates(c.db.freq(c.db.poi(id).pos, 2.0 * r),
                                     released)) {
        brute.push_back(id);
      }
    }
    EXPECT_EQ(result.candidates, brute);
  }
}

// The tolerant-prune lemma the robust attack relies on: when even the
// envelope plus the allowed deficit cannot reach the released total, the
// tolerant dominance test must fail.
TEST_P(SeededKernelCity, TolerantPruneBoundIsSound) {
  const poi::City c = city();
  const poi::TileAggregates& tiles = c.db.tile_aggregates();
  common::Rng rng(GetParam() * 211 + 29);
  for (int trial = 0; trial < 20; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const geo::Point p{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.4, 1.6);
    const FrequencyVector released = c.db.freq(l, r);
    const std::int32_t max_deficit = 3;
    if (tiles.total_upper_bound(p, 2.0 * r) + max_deficit <
        poi::total(released)) {
      EXPECT_FALSE(attack::dominates_tolerant(c.db.freq(p, 2.0 * r), released,
                                              /*max_violations=*/released.size(),
                                              max_deficit));
    }
  }
}

}  // namespace
}  // namespace poiprivacy
