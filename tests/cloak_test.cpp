#include <gtest/gtest.h>

#include "cloak/kcloak.h"
#include "common/rng.h"

namespace poiprivacy::cloak {
namespace {

AdaptiveIntervalCloaker make_cloaker(std::size_t users, std::uint64_t seed,
                                     geo::BBox bounds = {0.0, 0.0, 16.0,
                                                         16.0}) {
  common::Rng rng(seed);
  return AdaptiveIntervalCloaker(uniform_population(bounds, users, rng),
                                 bounds);
}

TEST(UniformPopulation, StaysInBounds) {
  common::Rng rng(3);
  const geo::BBox bounds{2.0, 3.0, 10.0, 8.0};
  const auto users = uniform_population(bounds, 500, rng);
  EXPECT_EQ(users.size(), 500u);
  for (const geo::Point u : users) EXPECT_TRUE(bounds.contains(u));
}

TEST(Cloak, RegionAlwaysContainsTarget) {
  const auto cloaker = make_cloaker(2000, 7);
  common::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const geo::Point target{rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0)};
    for (const std::size_t k : {2u, 10u, 50u}) {
      const CloakResult result = cloaker.cloak(target, k);
      EXPECT_TRUE(result.region.contains(target))
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(Cloak, RegionSatisfiesKAnonymity) {
  const auto cloaker = make_cloaker(2000, 13);
  common::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const geo::Point target{rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0)};
    for (const std::size_t k : {2u, 10u, 30u}) {
      const CloakResult result = cloaker.cloak(target, k);
      // Region users + the requester must reach k.
      EXPECT_GE(result.users_inside + 1, k);
    }
  }
}

TEST(Cloak, RegionGrowsWithK) {
  const auto cloaker = make_cloaker(3000, 19);
  common::Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const geo::Point target{rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0)};
    double prev_area = 0.0;
    for (const std::size_t k : {2u, 10u, 30u, 100u}) {
      const double area = cloaker.cloak(target, k).region.area();
      EXPECT_GE(area, prev_area);
      prev_area = area;
    }
  }
}

TEST(Cloak, ImpossibleKReturnsWholeCity) {
  const auto cloaker = make_cloaker(50, 29);
  const CloakResult result = cloaker.cloak({8.0, 8.0}, 10000);
  EXPECT_DOUBLE_EQ(result.region.area(), cloaker.bounds().area());
  EXPECT_EQ(result.depth, 0);
}

TEST(Cloak, TrivialKDescendsDeep) {
  const auto cloaker = make_cloaker(1000, 31);
  const CloakResult result = cloaker.cloak({8.0, 8.0}, 1);
  EXPECT_GT(result.depth, 3);
  EXPECT_LT(result.region.area(), 1.0);
}

TEST(Dummies, CorrectCountAndContainment) {
  const auto cloaker = make_cloaker(2000, 37);
  common::Rng rng(41);
  const geo::Point target{5.0, 5.0};
  const auto dummies = cloaker.dummy_locations(target, 20, rng);
  ASSERT_EQ(dummies.size(), 20u);
  EXPECT_EQ(dummies.front(), target);
  const CloakResult cloaked = cloaker.cloak(target, 20);
  for (const geo::Point d : dummies) {
    EXPECT_TRUE(cloaked.region.contains(d));
  }
}

TEST(Dummies, SparsePopulationToppedUpWithSynthetic) {
  const auto cloaker = make_cloaker(5, 43);
  common::Rng rng(47);
  const auto dummies = cloaker.dummy_locations({8.0, 8.0}, 25, rng);
  EXPECT_EQ(dummies.size(), 25u);
  for (const geo::Point d : dummies) {
    EXPECT_TRUE(cloaker.bounds().contains(d));
  }
}

TEST(Dummies, ZeroKGivesEmpty) {
  const auto cloaker = make_cloaker(100, 53);
  common::Rng rng(59);
  EXPECT_TRUE(cloaker.dummy_locations({1.0, 1.0}, 0, rng).empty());
}

class CloakKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CloakKSweep, DepthDecreasesWithK) {
  const auto cloaker = make_cloaker(4000, 61);
  common::Rng rng(67);
  // Averaged over targets, larger k must not cloak deeper.
  double mean_depth = 0.0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const geo::Point target{rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0)};
    mean_depth += cloaker.cloak(target, GetParam()).depth;
  }
  mean_depth /= trials;
  // With 4000 users over 256 km^2 a k of 2 should cloak much deeper than
  // k of 200; spot-check monotonic envelope via bounds per k.
  if (GetParam() <= 2) EXPECT_GT(mean_depth, 3.0);
  if (GetParam() >= 200) EXPECT_LT(mean_depth, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, CloakKSweep,
                         ::testing::Values(2u, 10u, 50u, 200u));

}  // namespace
}  // namespace poiprivacy::cloak
