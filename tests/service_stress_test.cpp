// Concurrency stress for the lock-free serving path: many threads
// hammering serve_concurrent() over a shared user population, asserting
// the invariants that must hold under EVERY interleaving —
//
//   * conservation: granted + degraded + exhausted + invalid equals the
//     requests issued (no request lost or double-counted);
//   * safety: no user's charged budget ever exceeds the ceiling, however
//     the CAS races resolve;
//   * the session table never over-admits first contacts past capacity.
//
// The suite carries the `tsan` label: scripts/check.sh rebuilds it under
// ThreadSanitizer, which turns any locking mistake in the session table,
// release cache or budget meter into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/workload.h"

namespace poiprivacy {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kRequestsPerThread = 10000;
constexpr std::size_t kUsers = 64;  ///< shared across threads: CAS contention

poi::City stress_city() { return poi::generate_city(poi::test_preset(), 7); }

cloak::AdaptiveIntervalCloaker stress_cloaker(const poi::PoiDatabase& db) {
  common::Rng rng(3);
  return cloak::AdaptiveIntervalCloaker(
      cloak::uniform_population(db.bounds(), 500, rng), db.bounds());
}

service::ServiceConfig stress_config() {
  service::ServiceConfig config;
  config.policies.push_back(
      {"precise", {.k = 8, .epsilon = 1.0, .delta = 0.05}});
  config.policies.push_back(
      {"coarse", {.k = 8, .epsilon = 0.25, .delta = 0.01}});
  config.degrade_policy = 1;
  config.epsilon_ceiling = 3.5;
  config.delta_ceiling = 1.0;
  config.advanced_slack = 0.0;
  config.seed = 99;
  return config;
}

TEST(ServiceStress, ConcurrentAdmissionConservesAndNeverOverspends) {
  const poi::City city = stress_city();
  const cloak::AdaptiveIntervalCloaker cloaker = stress_cloaker(city.db);
  const service::ServiceConfig config = stress_config();
  service::ReleaseService gsp(city.db, cloaker, config);

  const geo::BBox bounds = city.db.bounds();
  std::atomic<std::uint64_t> vectors_released{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      common::Rng rng(1000 + t);
      std::uint64_t released = 0;
      for (std::size_t i = 0; i < kRequestsPerThread; ++i) {
        service::ReleaseRequest request;
        request.user_id = (t * kRequestsPerThread + i) % kUsers;
        request.location = {
            bounds.min_x + rng.uniform() * (bounds.max_x - bounds.min_x),
            bounds.min_y + rng.uniform() * (bounds.max_y - bounds.min_y)};
        // A sprinkle of malformed requests keeps the invalid counter in
        // the conservation check.
        request.radius = i % 97 == 0 ? -1.0 : 1.0;
        request.policy = static_cast<service::PolicyId>(i % 2);
        const service::ReleaseResult result = gsp.serve_concurrent(request);
        if (result.status == service::ReleaseStatus::kGranted ||
            result.status == service::ReleaseStatus::kDegraded) {
          ASSERT_FALSE(result.vector.empty());
          ++released;
        } else {
          ASSERT_TRUE(result.vector.empty());
        }
        // The spent budget reported with ANY outcome respects the
        // ceiling (the CAS refuses rather than overshoots).
        ASSERT_LE(result.spent.epsilon, config.epsilon_ceiling + 1e-9);
        ASSERT_LE(result.spent.delta, config.delta_ceiling + 1e-9);
      }
      vectors_released.fetch_add(released, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr std::uint64_t kTotal = kThreads * kRequestsPerThread;
  const service::ServiceStats stats = gsp.concurrent_stats();
  EXPECT_EQ(stats.requests, kTotal);
  EXPECT_EQ(stats.granted + stats.degraded + stats.budget_exhausted +
                stats.invalid,
            kTotal);
  EXPECT_EQ(stats.granted + stats.degraded,
            vectors_released.load(std::memory_order_relaxed));
  EXPECT_GT(stats.granted, 0u);
  EXPECT_GT(stats.budget_exhausted, 0u);
  EXPECT_GT(stats.invalid, 0u);
  // Cache accounting covers every released vector exactly once.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            stats.granted + stats.degraded);

  // Post-mortem per-user audit: the final ledger respects the ceiling,
  // and the whole shared population was admitted at least once.
  const service::SessionTableStats sessions = gsp.session_stats();
  EXPECT_EQ(sessions.sessions, kUsers);
  EXPECT_EQ(sessions.sessions_created, kUsers);
  EXPECT_EQ(sessions.full_refusals, 0u);
  EXPECT_EQ(sessions.evictions_ttl, 0u);
  for (service::UserId user = 0; user < kUsers; ++user) {
    const dp::PrivacyParams spent = gsp.user_spent(user);
    EXPECT_LE(spent.epsilon, config.epsilon_ceiling + 1e-9);
    EXPECT_LE(spent.delta, config.delta_ceiling + 1e-9);
    // Every user saw kThreads x 10000 / kUsers >> budget requests, so
    // each must have been driven to exhaustion: too little remains for
    // even the cheap policy.
    const dp::PrivacyParams remaining = gsp.user_remaining(user);
    EXPECT_LT(remaining.epsilon, 0.25);
  }
}

TEST(ServiceStress, ConcurrentFirstContactsRespectTableCapacity) {
  const poi::City city = stress_city();
  const cloak::AdaptiveIntervalCloaker cloaker = stress_cloaker(city.db);
  service::ServiceConfig config = stress_config();
  config.session_capacity = 24;  ///< far fewer slots than distinct users
  config.session_shards = 4;
  service::ReleaseService gsp(city.db, cloaker, config);

  constexpr std::size_t kDistinctUsers = 512;
  std::atomic<std::uint64_t> table_full{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t refused = 0;
      for (std::size_t i = t; i < kDistinctUsers; i += kThreads) {
        service::ReleaseRequest request;
        request.user_id = i;
        request.location = {4.0, 4.0};
        request.radius = 1.0;
        request.policy = 1;
        const service::ReleaseResult result = gsp.serve_concurrent(request);
        if (result.status == service::ReleaseStatus::kBudgetExhausted &&
            result.spent.epsilon == 0.0) {
          ++refused;  // fail-closed: refused without ever being tracked
        }
      }
      table_full.fetch_add(refused, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();

  const service::SessionTableStats sessions = gsp.session_stats();
  // Capacity is a hard bound under any interleaving of racing inserts.
  EXPECT_LE(sessions.sessions, config.session_capacity);
  EXPECT_GT(sessions.full_refusals, 0u);
  EXPECT_EQ(sessions.sessions + table_full.load(std::memory_order_relaxed),
            kDistinctUsers);
}

}  // namespace
}  // namespace poiprivacy
