#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "attack/fine_grained.h"
#include "attack/recovery.h"
#include "attack/region_reid.h"
#include "attack/trajectory_attack.h"
#include "common/rng.h"
#include "defense/sanitizer.h"
#include "poi/city_model.h"
#include "traj/generators.h"

namespace poiprivacy::attack {
namespace {

poi::City make_city(std::uint64_t seed = 7) {
  return poi::generate_city(poi::test_preset(), seed);
}

TEST(RegionReid, EmptyVectorHasNoPivot) {
  const poi::City city = make_city();
  const RegionReidentifier reid(city.db);
  const poi::FrequencyVector empty(city.db.num_types(), 0);
  const ReidResult result = reid.infer(empty, 1.0);
  EXPECT_FALSE(result.pivot_type.has_value());
  EXPECT_TRUE(result.candidates.empty());
  EXPECT_FALSE(result.unique());
}

TEST(RegionReid, PivotIsCitywideRarestPresentType) {
  const poi::City city = make_city();
  const RegionReidentifier reid(city.db);
  common::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector f = city.db.freq(l, 1.0);
    const auto pivot = reid.pivot_type(f);
    if (!pivot) continue;
    EXPECT_GT(f[*pivot], 0);
    for (poi::TypeId t = 0; t < f.size(); ++t) {
      if (f[t] > 0) {
        EXPECT_LE(city.db.city_freq()[*pivot], city.db.city_freq()[t]);
      }
    }
  }
}

// The attack's defining no-false-negative property: the true anchor (some
// pivot-type POI within r of l) always survives pruning, so the candidate
// set is never empty on an honest release.
TEST(RegionReid, NoFalseNegativesOnHonestReleases) {
  const poi::City city = make_city();
  const RegionReidentifier reid(city.db);
  common::Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = rng.uniform(0.3, 1.5);
    const poi::FrequencyVector f = city.db.freq(l, r);
    const ReidResult result = reid.infer(f, r);
    if (!result.pivot_type) continue;  // nothing within range
    EXPECT_FALSE(result.candidates.empty());
    // At least one candidate is a true anchor (within r of l).
    const bool has_true_anchor = std::any_of(
        result.candidates.begin(), result.candidates.end(),
        [&](poi::PoiId id) {
          return geo::distance(city.db.poi(id).pos, l) <= r + 1e-9;
        });
    EXPECT_TRUE(has_true_anchor) << "trial " << trial;
  }
}

TEST(RegionReid, UniqueResultIsAlwaysCorrectOnHonestReleases) {
  const poi::City city = make_city();
  const RegionReidentifier reid(city.db);
  common::Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const ReidResult result = reid.infer(city.db.freq(l, r), r);
    if (result.unique()) {
      EXPECT_TRUE(attack_success(result, city.db, l, r));
    }
  }
}

TEST(RegionReid, PlantedUniquePoiIsAlwaysFound) {
  // Build a tiny hand-crafted city with one singleton type: any query disk
  // containing it must re-identify uniquely.
  poi::PoiTypeRegistry registry;
  const poi::TypeId common_t = registry.intern("common");
  const poi::TypeId rare_t = registry.intern("rare");
  std::vector<poi::Poi> pois;
  common::Rng rng(11);
  for (poi::PoiId i = 0; i < 50; ++i) {
    pois.push_back({i, common_t,
                    {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}});
  }
  pois.push_back({50, rare_t, {5.0, 5.0}});
  const poi::PoiDatabase db("planted", std::move(pois), std::move(registry),
                            {0.0, 0.0, 10.0, 10.0});
  const RegionReidentifier reid(db);
  const geo::Point user{5.3, 4.8};
  const double r = 1.0;
  const ReidResult result = reid.infer(db.freq(user, r), r);
  ASSERT_TRUE(result.unique());
  EXPECT_EQ(result.candidates.front(), 50u);
  EXPECT_TRUE(attack_success(result, db, user, r));
}

TEST(RegionReid, TwoCoLocatedRarePoisAreAmbiguous) {
  poi::PoiTypeRegistry registry;
  const poi::TypeId common_t = registry.intern("common");
  const poi::TypeId rare_t = registry.intern("rare");
  std::vector<poi::Poi> pois;
  common::Rng rng(13);
  for (poi::PoiId i = 0; i < 50; ++i) {
    pois.push_back({i, common_t,
                    {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}});
  }
  pois.push_back({50, rare_t, {5.0, 5.0}});
  pois.push_back({51, rare_t, {5.2, 5.0}});  // both within r of the user
  const poi::PoiDatabase db("ambiguous", std::move(pois), std::move(registry),
                            {0.0, 0.0, 10.0, 10.0});
  const RegionReidentifier reid(db);
  const geo::Point user{5.1, 5.0};
  const ReidResult result = reid.infer(db.freq(user, 1.0), 1.0);
  EXPECT_EQ(result.candidates.size(), 2u);
  EXPECT_FALSE(result.unique());
}

TEST(FineGrained, FailsWhenBaselineFails) {
  const poi::City city = make_city();
  const FineGrainedAttack fine(city.db);
  const poi::FrequencyVector empty(city.db.num_types(), 0);
  const FineGrainedResult result = fine.infer(empty, 1.0);
  EXPECT_FALSE(result.baseline_unique);
  EXPECT_TRUE(result.feasible_disks.empty());
  EXPECT_DOUBLE_EQ(result.area_km2, 0.0);
}

TEST(FineGrained, AreaNeverExceedsBaselineDisk) {
  const poi::City city = make_city();
  const FineGrainedAttack fine(city.db);
  common::Rng rng(17);
  int successes = 0;
  for (int trial = 0; trial < 80 && successes < 20; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const FineGrainedResult result = fine.infer(city.db.freq(l, r), r);
    if (!result.baseline_unique) continue;
    ++successes;
    EXPECT_LE(result.area_km2, M_PI * r * r * 1.05);
    EXPECT_GT(result.area_km2, 0.0);
  }
  EXPECT_GT(successes, 0);
}

TEST(FineGrained, ExactRuleAnchorsNeverExcludeTruth) {
  // With the pruned rule disabled (max_pruned_diff = 0) every auxiliary
  // anchor comes from the exact rule and is provably within r of the true
  // location, so the anchor disks must always contain it.
  const poi::City city = make_city();
  FineGrainedConfig config;
  config.max_aux = 30;
  config.max_pruned_diff = 0;
  const FineGrainedAttack fine(city.db, config);
  common::Rng rng(19);
  int successes = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const FineGrainedResult result = fine.infer(city.db.freq(l, r), r);
    if (!result.baseline_unique) continue;
    const geo::Point anchor = city.db.poi(result.major_anchor).pos;
    if (geo::distance(anchor, l) > r) continue;
    ++successes;
    EXPECT_TRUE(geo::in_all_disks(l, result.feasible_disks))
        << "trial " << trial;
    EXPECT_EQ(result.rejected_anchors, 0u);
  }
  ASSERT_GT(successes, 5);
}

TEST(FineGrained, ConsistencyFilterKeepsRegionNonEmpty) {
  // The full attack (pruned rule enabled) may harvest false anchors, but
  // the consistency filter guarantees a nonempty feasible region.
  const poi::City city = make_city();
  const FineGrainedAttack fine(city.db);
  common::Rng rng(20);
  int successes = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const FineGrainedResult result = fine.infer(city.db.freq(l, r), r);
    if (!result.baseline_unique) continue;
    ++successes;
    EXPECT_GT(result.area_km2, 0.0);
  }
  ASSERT_GT(successes, 5);
}

TEST(FineGrained, MoreAnchorsNeverEnlargeArea) {
  const poi::City city = make_city();
  common::Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const poi::FrequencyVector f = city.db.freq(l, r);
    double prev = 1e18;
    for (const std::size_t max_aux : {0u, 2u, 5u, 10u, 20u}) {
      FineGrainedConfig config;
      config.max_aux = max_aux;
      config.area_resolution = 256;
      const FineGrainedAttack fine(city.db, config);
      const FineGrainedResult result = fine.infer(f, r);
      if (!result.baseline_unique) break;
      EXPECT_LE(result.area_km2, prev * 1.05) << "max_aux " << max_aux;
      prev = result.area_km2;
    }
  }
}

TEST(FineGrained, AnchorsAreWithinTwoROfMajorAnchor) {
  const poi::City city = make_city();
  const FineGrainedAttack fine(city.db);
  common::Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const double r = 0.8;
    const FineGrainedResult result = fine.infer(city.db.freq(l, r), r);
    if (!result.baseline_unique) continue;
    const geo::Point major = city.db.poi(result.major_anchor).pos;
    for (const poi::PoiId aux : result.aux_anchors) {
      EXPECT_LE(geo::distance(city.db.poi(aux).pos, major), 2.0 * r + 1e-9);
      EXPECT_NE(aux, result.major_anchor);
    }
    EXPECT_LE(result.aux_anchors.size(), fine.config().max_aux);
  }
}

TEST(Recovery, LearnsToPredictSanitizedFrequencies) {
  const poi::City city = make_city();
  const defense::Sanitizer sanitizer(city.db, 10);
  ASSERT_FALSE(sanitizer.sanitized_types().empty());
  common::Rng rng(31);
  RecoveryConfig config;
  config.train_samples = 250;
  config.validation_samples = 80;
  const SanitizationRecovery recovery(
      city.db, sanitizer.sanitized_types(), 0.8, config, rng);
  // Rare types are absent from most disks, so even the zero-classifier
  // gets high accuracy; a trained model must do at least that well.
  EXPECT_GT(recovery.mean_validation_accuracy(), 0.9);
  EXPECT_EQ(recovery.validation_accuracies().size(),
            sanitizer.sanitized_types().size());
}

TEST(Recovery, RecoveredVectorFillsOnlySanitizedEntries) {
  const poi::City city = make_city();
  const defense::Sanitizer sanitizer(city.db, 10);
  common::Rng rng(37);
  RecoveryConfig config;
  config.train_samples = 150;
  config.validation_samples = 40;
  const SanitizationRecovery recovery(
      city.db, sanitizer.sanitized_types(), 0.8, config, rng);
  const geo::Point l{4.0, 4.0};
  const poi::FrequencyVector truth = city.db.freq(l, 0.8);
  const poi::FrequencyVector sanitized = sanitizer.sanitize(truth);
  const poi::FrequencyVector recovered = recovery.recover(sanitized);
  ASSERT_EQ(recovered.size(), truth.size());
  for (poi::TypeId t = 0; t < truth.size(); ++t) {
    if (!sanitizer.is_sanitized(t)) {
      EXPECT_EQ(recovered[t], sanitized[t]);
    } else {
      EXPECT_GE(recovered[t], 0);
    }
  }
}

TEST(Recovery, ImprovesAttackOverSanitizedRelease) {
  const poi::City city = make_city();
  const defense::Sanitizer sanitizer(city.db, 10);
  const RegionReidentifier reid(city.db);
  common::Rng rng(41);
  RecoveryConfig config;
  config.train_samples = 300;
  config.validation_samples = 50;
  const SanitizationRecovery recovery(
      city.db, sanitizer.sanitized_types(), 0.8, config, rng);
  int sanitized_success = 0;
  int recovered_success = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const geo::Point l{rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)};
    const poi::FrequencyVector sanitized =
        sanitizer.sanitize(city.db.freq(l, 0.8));
    sanitized_success +=
        attack_success(reid.infer(sanitized, 0.8), city.db, l, 0.8);
    recovered_success += attack_success(
        reid.infer(recovery.recover(sanitized), 0.8), city.db, l, 0.8);
  }
  EXPECT_GE(recovered_success, sanitized_success);
}

TEST(TrajectoryAttack, RegressorLearnsDistance) {
  const poi::City city = make_city();
  common::Rng rng(43);
  traj::TaxiConfig taxi_config;
  taxi_config.num_taxis = 40;
  taxi_config.points_per_taxi = 40;
  const auto trajectories =
      traj::generate_taxi_trajectories(city, taxi_config, rng);
  const auto pairs =
      traj::extract_release_pairs(trajectories, city.db, 0.8, 600);
  ASSERT_GT(pairs.size(), 50u);
  const TrajectoryAttackConfig config;
  const TrajectoryAttack attack(city.db, pairs, 0.8, config, rng);
  // Speeds are 20..50 km/h over <= 5 min gaps => distances up to ~4 km.
  // A useful regressor should beat a 1.5 km MAE easily.
  EXPECT_LT(attack.validation_mae_km(), 1.5);
  EXPECT_GT(attack.tolerance_km(), 0.0);
}

TEST(TrajectoryAttack, FilterNeverDropsTrueAnchor) {
  const poi::City city = make_city();
  common::Rng rng(47);
  traj::TaxiConfig taxi_config;
  taxi_config.num_taxis = 40;
  taxi_config.points_per_taxi = 40;
  const auto trajectories =
      traj::generate_taxi_trajectories(city, taxi_config, rng);
  const auto pairs =
      traj::extract_release_pairs(trajectories, city.db, 0.8, 600);
  ASSERT_GT(pairs.size(), 60u);
  // Train on the first half, attack the second half.
  const std::size_t half = pairs.size() / 2;
  const std::span<const traj::ReleasePair> history(pairs.data(), half);
  const TrajectoryAttackConfig config;
  const TrajectoryAttack attack(city.db, history, 0.8, config, rng);
  int enhanced = 0;
  int baseline = 0;
  int eligible = 0;
  int kept_count = 0;
  for (std::size_t i = half; i < pairs.size(); ++i) {
    const traj::ReleasePair& pair = pairs[i];
    const PairInferenceResult result = attack.infer(
        city.db.freq(pair.first, 0.8), city.db.freq(pair.second, 0.8),
        pair.first_time, pair.second_time);
    baseline += result.baseline_unique();
    enhanced += result.enhanced_unique();
    // The filter keeps the true anchor unless the regressor erred beyond
    // its tolerance, which should be rare.
    const bool true_anchor_in_first = std::any_of(
        result.first.candidates.begin(), result.first.candidates.end(),
        [&](poi::PoiId id) {
          return geo::distance(city.db.poi(id).pos, pair.first) <= 0.8 + 1e-9;
        });
    if (true_anchor_in_first && !result.second.candidates.empty()) {
      ++eligible;
      kept_count += std::any_of(
          result.filtered_first_candidates.begin(),
          result.filtered_first_candidates.end(), [&](poi::PoiId id) {
            return geo::distance(city.db.poi(id).pos, pair.first) <=
                   0.8 + 1e-9;
          });
    }
  }
  ASSERT_GT(eligible, 0);
  EXPECT_GE(static_cast<double>(kept_count) / eligible, 0.8);
  // With the empty-filter fallback, the pair filter can only help.
  EXPECT_GE(enhanced, baseline);
}

}  // namespace
}  // namespace poiprivacy::attack
