// Tests of the membership-inference subsystem (src/mia): mobility
// generation, the aggregate-stream releaser (incl. a pinned golden
// regression on a tiny fixed city, raw and DP-noised), feature
// extraction, priors, and the distinguishing game's determinism across
// thread counts.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "dp/ledger.h"
#include "mia/features.h"
#include "mia/game.h"
#include "mia/mobility.h"
#include "mia/priors.h"
#include "mia/stream_release.h"
#include "poi/city_model.h"

namespace poiprivacy::mia {
namespace {

// One tiny fixed city per suite run; everything downstream is a pure
// function of it, the configs, and the seeds.
const poi::City& tiny_city() {
  static const poi::City city = poi::generate_city(poi::test_preset(), 7);
  return city;
}

UserTraces tiny_traces(std::uint64_t seed = 11) {
  MobilityConfig config;
  config.num_users = 6;
  config.epochs = 4;
  config.visits_per_epoch = 2;
  config.profile_tiles = 2;
  config.routine_prob = 0.9;
  const attack::AttackContext ctx(tiny_city().db);
  return generate_traces(ctx, config, seed);
}

std::vector<std::int32_t> flatten(const poi::FreqArena& arena) {
  std::vector<std::int32_t> flat;
  for (std::size_t w = 0; w < arena.rows(); ++w) {
    const auto row = arena.row(w);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

// ---- Mobility --------------------------------------------------------------

TEST(Mobility, ShapeAndRange) {
  const UserTraces traces = tiny_traces();
  EXPECT_EQ(traces.num_users(), 6u);
  EXPECT_EQ(traces.epochs(), 4u);
  EXPECT_EQ(traces.visits_per_epoch(), 2u);
  EXPECT_GT(traces.num_tiles(), 0u);
  for (std::size_t u = 0; u < traces.num_users(); ++u) {
    for (std::size_t e = 0; e < traces.epochs(); ++e) {
      for (const TileId tile : traces.visits(u, e)) {
        EXPECT_GE(tile, 0);
        EXPECT_LT(static_cast<std::size_t>(tile), traces.num_tiles());
      }
    }
  }
}

TEST(Mobility, DeterministicInSeed) {
  const UserTraces a = tiny_traces(11);
  const UserTraces b = tiny_traces(11);
  const UserTraces c = tiny_traces(12);
  bool all_equal = true;
  bool any_differs = false;
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    for (std::size_t e = 0; e < a.epochs(); ++e) {
      const auto va = a.visits(u, e);
      const auto vb = b.visits(u, e);
      const auto vc = c.visits(u, e);
      all_equal &= std::equal(va.begin(), va.end(), vb.begin());
      any_differs |= !std::equal(va.begin(), va.end(), vc.begin());
    }
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs);
}

TEST(Mobility, RoutineDominatesVisits) {
  // With routine_prob = 0.9 and 2 profile tiles, most of a user's visits
  // land on its two most-visited tiles.
  const UserTraces traces = tiny_traces();
  std::size_t routine_visits = 0;
  std::size_t total_visits = 0;
  for (std::size_t u = 0; u < traces.num_users(); ++u) {
    std::vector<std::size_t> counts(traces.num_tiles(), 0);
    for (std::size_t e = 0; e < traces.epochs(); ++e) {
      for (const TileId tile : traces.visits(u, e)) {
        ++counts[static_cast<std::size_t>(tile)];
        ++total_visits;
      }
    }
    std::vector<std::size_t> sorted = counts;
    std::sort(sorted.rbegin(), sorted.rend());
    routine_visits += sorted[0] + sorted[1];
  }
  EXPECT_GT(routine_visits * 2, total_visits);
}

// ---- Stream releaser -------------------------------------------------------

TEST(StreamRelease, WindowCountAndSensitivity) {
  const UserTraces traces = tiny_traces();
  StreamConfig config;
  config.window_epochs = 2;
  config.stride = 1;
  const AggregateStreamReleaser releaser(traces, config, 4, 4);
  EXPECT_EQ(releaser.num_windows(0, 4), 3u);
  EXPECT_EQ(releaser.num_windows(0, 2), 1u);
  EXPECT_EQ(releaser.num_windows(0, 1), 0u);
  EXPECT_EQ(releaser.num_windows(2, 4), 1u);
  EXPECT_DOUBLE_EQ(releaser.sensitivity(), 4.0);  // 2 visits * 2 epochs
}

TEST(StreamRelease, RoiIsSortedByActivity) {
  const UserTraces traces = tiny_traces();
  const AggregateStreamReleaser releaser(traces, StreamConfig{}, 4, 4);
  ASSERT_EQ(releaser.roi().size(), 4u);
  // ROI tiles must be distinct full-grid ids.
  std::vector<TileId> roi = releaser.roi();
  std::sort(roi.begin(), roi.end());
  EXPECT_EQ(std::unique(roi.begin(), roi.end()), roi.end());
}

TEST(StreamRelease, RawReleaseMatchesDirectCount) {
  const UserTraces traces = tiny_traces();
  StreamConfig config;
  config.window_epochs = 2;
  config.stride = 1;
  const AggregateStreamReleaser releaser(traces, config, 4, 4);
  const std::vector<std::uint32_t> group{0, 2, 4};
  common::Rng rng(1);
  poi::FreqArena arena;
  releaser.release(group, 0, 4, rng, arena);
  ASSERT_EQ(arena.rows(), 3u);
  ASSERT_EQ(arena.row_len(), 4u);
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t slot = 0; slot < releaser.roi().size(); ++slot) {
      std::int32_t expected = 0;
      for (const std::uint32_t user : group) {
        for (std::size_t e = w; e < w + 2; ++e) {
          for (const TileId tile : traces.visits(user, e)) {
            expected += tile == releaser.roi()[slot];
          }
        }
      }
      EXPECT_EQ(arena.row(w)[slot], expected) << "w=" << w << " slot=" << slot;
    }
  }
}

TEST(StreamRelease, EpochRangeOutOfBoundsThrows) {
  const UserTraces traces = tiny_traces();
  const AggregateStreamReleaser releaser(traces, StreamConfig{}, 4, 4);
  common::Rng rng(1);
  poi::FreqArena arena;
  EXPECT_THROW(releaser.release(std::vector<std::uint32_t>{0}, 0, 5, rng,
                                arena),
               std::invalid_argument);
}

// Golden smoke-regression: the exact released tables of a fixed tiny
// configuration, raw and DP-noised at one epsilon. Any change to the
// mobility generator, ROI selection, window accumulation, or the noise
// draw order shows up here first.
TEST(StreamRelease, GoldenRawTable) {
  const UserTraces traces = tiny_traces();
  StreamConfig config;
  config.window_epochs = 2;
  config.stride = 1;
  const AggregateStreamReleaser releaser(traces, config, 4, 4);
  const std::vector<std::uint32_t> group{0, 1, 2};
  common::Rng rng(99);
  poi::FreqArena arena;
  releaser.release(group, 0, 4, rng, arena);
  const std::vector<std::int32_t> expected = {
      2, 0, 4, 0,   // window [0, 2)
      1, 0, 4, 0,   // window [1, 3)
      2, 0, 2, 0};  // window [2, 4)
  EXPECT_EQ(flatten(arena), expected);
}

TEST(StreamRelease, GoldenNoisedTable) {
  const UserTraces traces = tiny_traces();
  StreamConfig config;
  config.window_epochs = 2;
  config.stride = 1;
  config.epsilon = 1.0;
  config.accounting = {2, 10.0};
  const AggregateStreamReleaser releaser(traces, config, 4, 4);
  const std::vector<std::uint32_t> group{0, 1, 2};
  common::Rng rng(99);
  poi::FreqArena arena;
  dp::Ledger ledger(dp::LedgerConfig{
      dp::LedgerPolicy::kWindowedRenewal, dp::LedgerBackend::kExact, 0.0, 0.0,
      0.0, config.accounting});
  releaser.release(group, 0, 4, rng, arena, &ledger);
  // Laplace(eps=1, sens=4) draws from Rng(99) in window-major order,
  // rounded and clamped at zero.
  const std::vector<std::int32_t> expected = {
      3, 0, 5, 0,   // window [0, 2)
      0, 4, 6, 9,   // window [1, 3)
      0, 0, 0, 4};  // window [2, 4)
  EXPECT_EQ(flatten(arena), expected);
  // Window starts 0, 1, 2 -> accounting windows {0, 1} of 2 epochs.
  EXPECT_EQ(ledger.releases(), 3u);
  EXPECT_EQ(ledger.windows_touched(), 2u);
  EXPECT_DOUBLE_EQ(ledger.peak_window_composition().epsilon, 2.0);
}

TEST(StreamRelease, NoisedCountsAreNonNegative) {
  const UserTraces traces = tiny_traces();
  StreamConfig config;
  config.epsilon = 0.2;  // heavy noise
  const AggregateStreamReleaser releaser(traces, config, 4, 4);
  common::Rng rng(5);
  poi::FreqArena arena;
  for (int trial = 0; trial < 20; ++trial) {
    releaser.release(std::vector<std::uint32_t>{0, 1}, 0, 4, rng, arena);
    for (const std::int32_t v : flatten(arena)) EXPECT_GE(v, 0);
  }
}

// ---- Features --------------------------------------------------------------

TEST(Features, DimsMatchExtraction) {
  poi::FreqArena arena;
  arena.reset(3, 4);
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t t = 0; t < 4; ++t) {
      arena.row(w)[t] = static_cast<std::int32_t>(w * 4 + t);
    }
  }
  std::vector<double> out;
  for (const FeatureSet set : kAllFeatureSets) {
    extract_features(arena, set, out);
    EXPECT_EQ(out.size(), feature_dim(set, 3, 4)) << feature_set_name(set);
  }
}

TEST(Features, RawConcatIsTheFlattenedStream) {
  poi::FreqArena arena;
  arena.reset(2, 3);
  const std::int32_t values[] = {5, 0, 2, 1, 4, 3};
  for (std::size_t w = 0; w < 2; ++w) {
    for (std::size_t t = 0; t < 3; ++t) arena.row(w)[t] = values[w * 3 + t];
  }
  std::vector<double> out;
  extract_features(arena, FeatureSet::kRawConcat, out);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(out[i], values[i]);
}

TEST(Features, DeltasAreConsecutiveDifferences) {
  poi::FreqArena arena;
  arena.reset(3, 2);
  const std::int32_t values[] = {1, 2, 4, 1, 3, 5};
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t t = 0; t < 2; ++t) arena.row(w)[t] = values[w * 2 + t];
  }
  std::vector<double> out;
  extract_features(arena, FeatureSet::kDeltas, out);
  const std::vector<double> expected = {3.0, -1.0, -1.0, 4.0};
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], expected[i]) << i;
  }
}

TEST(Features, StatsPerWindow) {
  poi::FreqArena arena;
  arena.reset(2, 3);
  const std::int32_t values[] = {2, 0, 3, 1, 1, 0};
  for (std::size_t w = 0; w < 2; ++w) {
    for (std::size_t t = 0; t < 3; ++t) arena.row(w)[t] = values[w * 3 + t];
  }
  std::vector<double> out;
  extract_features(arena, FeatureSet::kStats, out);
  // Per window: total, max, occupied, L1 to previous (0 for the first).
  const std::vector<double> expected = {5.0, 3.0, 2.0, 0.0,
                                        2.0, 1.0, 2.0, 5.0};
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], expected[i]) << i;
  }
}

// ---- Priors ----------------------------------------------------------------

TEST(Priors, SubsetPoolScalesWithFraction) {
  PriorConfig config;
  config.kind = PriorKind::kSubsetOfLocations;
  config.known_fraction = 0.5;
  const PriorKnowledge knowledge = resolve_prior(config, 100, 10);
  EXPECT_EQ(knowledge.training_pool.size(), 50u);
  EXPECT_FALSE(knowledge.trains_on_released);
}

TEST(Priors, SubsetPoolClampsToMinPool) {
  PriorConfig config;
  config.known_fraction = 0.01;
  const PriorKnowledge knowledge = resolve_prior(config, 100, 21);
  EXPECT_EQ(knowledge.training_pool.size(), 21u);
}

TEST(Priors, PastGroupsUsesFullPopulationThroughRelease) {
  PriorConfig config;
  config.kind = PriorKind::kPastGroups;
  const PriorKnowledge knowledge = resolve_prior(config, 40, 10);
  EXPECT_EQ(knowledge.training_pool.size(), 40u);
  EXPECT_TRUE(knowledge.trains_on_released);
}

TEST(Priors, InvalidInputsThrow) {
  PriorConfig config;
  EXPECT_THROW(resolve_prior(config, 5, 10), std::invalid_argument);
  config.known_fraction = 0.0;
  EXPECT_THROW(resolve_prior(config, 100, 10), std::invalid_argument);
  config.known_fraction = 1.5;
  EXPECT_THROW(resolve_prior(config, 100, 10), std::invalid_argument);
}

// ---- Game ------------------------------------------------------------------

GameConfig small_game_config() {
  GameConfig config;
  config.stream.window_epochs = 2;
  config.stream.stride = 2;
  config.roi_tiles = 48;
  config.group_size = 5;
  config.train_pairs = 24;
  config.test_pairs = 4;
  config.train_epochs = 8;
  config.trials = 4;
  config.seed = 21;
  return config;
}

UserTraces game_traces() {
  MobilityConfig config;
  config.num_users = 40;
  config.epochs = 16;
  config.visits_per_epoch = 3;
  config.profile_tiles = 3;
  config.routine_prob = 0.85;
  const attack::AttackContext ctx(tiny_city().db);
  return generate_traces(ctx, config, 17);
}

TEST(Game, RawStreamIsDistinguishable) {
  const UserTraces traces = game_traces();
  const GameResult result = play_game(traces, small_game_config());
  EXPECT_EQ(result.scores.size(), 4u * 4u * 2u);
  EXPECT_EQ(result.labels.size(), result.scores.size());
  EXPECT_EQ(result.dp_releases, 0u);
  EXPECT_DOUBLE_EQ(result.peak_window.epsilon, 0.0);
  // Raw aggregates of routine-driven traces leak membership clearly
  // (deterministic: the exact value is 0.965 for this configuration).
  EXPECT_GE(result.auc, 0.85);
}

TEST(Game, HeavyNoiseDegradesAuc) {
  const UserTraces traces = game_traces();
  GameConfig config = small_game_config();
  config.stream.epsilon = 0.05;
  config.stream.accounting = {4, 1e9};
  const GameResult noised = play_game(traces, config);
  const GameResult raw = play_game(traces, small_game_config());
  EXPECT_GT(noised.dp_releases, 0u);
  EXPECT_GT(noised.peak_window.epsilon, 0.0);
  EXPECT_LT(noised.auc, raw.auc);
}

TEST(Game, InvalidConfigsThrow) {
  const UserTraces traces = game_traces();
  GameConfig config = small_game_config();
  config.group_size = traces.num_users();
  EXPECT_THROW(play_game(traces, config), std::invalid_argument);
  config = small_game_config();
  config.train_epochs = traces.epochs();
  EXPECT_THROW(play_game(traces, config), std::invalid_argument);
  config = small_game_config();
  config.trials = 0;
  EXPECT_THROW(play_game(traces, config), std::invalid_argument);
}

// The acceptance gate: the full game — trials fanned out over the global
// pool — must be bit-identical at --threads 1, 2 and 8.
TEST(Game, BitIdenticalAcrossThreadCounts) {
  const UserTraces traces = game_traces();
  GameConfig config = small_game_config();
  config.stream.epsilon = 1.0;
  config.stream.accounting = {4, 1e9};

  common::set_default_thread_count(1);
  const GameResult baseline = play_game(traces, config);
  for (const std::size_t threads : {2u, 8u}) {
    common::set_default_thread_count(threads);
    const GameResult result = play_game(traces, config);
    EXPECT_EQ(result.scores, baseline.scores) << "threads=" << threads;
    EXPECT_EQ(result.labels, baseline.labels) << "threads=" << threads;
    EXPECT_EQ(result.auc, baseline.auc) << "threads=" << threads;
    EXPECT_EQ(result.dp_releases, baseline.dp_releases)
        << "threads=" << threads;
  }
  common::set_default_thread_count(0);
}

}  // namespace
}  // namespace poiprivacy::mia
